#!/usr/bin/env python3
"""Head-to-head: every registered index under YCSB-B in one store.

Reproduces the paper's end-to-end methodology in miniature: every index
in ``repro.registry`` — learned, traditional, plus the beyond-the-paper
extensions (LIPP, APEX, FINEdex) — serves the same read-mostly request
stream from the same Viper store, and the simulated throughput/tail table
shows who wins and why (the DRAM hops column is the paper's cache-miss
story).  Registering a new index makes it show up here automatically.

Run:  python examples/compare_indexes.py [n_keys]
"""

import sys

from repro import PerfContext, ViperStore, ycsb_keys
from repro.bench import format_table, run_store_ops
from repro.registry import specs
from repro.workloads import YCSB_B, generate_operations
from repro.workloads.ycsb import split_load_and_inserts

# Every registered index, straight from the registry.  Skip the
# static-PGM spec: the dynamic PGM already represents the family here,
# as in the paper's mixed-workload figures.
_TAGS = {"extension": " (ext)", "hash": " (hash)"}
INDEXES = {
    spec.name
    + (" (read-only)" if not spec.build().capabilities().updatable
       else _TAGS.get(spec.category, "")): spec
    for spec in specs()
    if spec.name != "PGM-static"
}


def main(n_keys: int = 50_000) -> None:
    keys = ycsb_keys(n_keys, seed=3)
    load, _ = split_load_and_inserts(keys, 1.0, seed=3)
    ops = generate_operations(YCSB_B, 20_000, load, seed=3)

    rows = []
    for name, factory in INDEXES.items():
        perf = PerfContext()
        index = factory(perf)
        if "read-only" in name:
            # Read-only indexes cannot take YCSB-B's 5% updates; serve
            # the reads only so they still appear in the comparison.
            workload = [op for op in ops if op.kind.value == "read"]
        else:
            workload = ops
        store = ViperStore(index, perf)
        store.bulk_load([(k, k) for k in load])
        recorder, _ = run_store_ops(store, workload, perf)
        hops = perf.counters.dram_hop / max(1, len(recorder))
        rows.append(
            [
                name,
                f"{recorder.throughput_mops():.3f}",
                f"{recorder.p50() / 1000:.2f}",
                f"{recorder.p999() / 1000:.2f}",
                f"{hops:.1f}",
            ]
        )

    rows.sort(key=lambda r: -float(r[1]))
    print(
        format_table(
            ["index", "Mops/s", "p50 (us)", "p99.9 (us)", "hops/op"],
            rows,
            title=f"YCSB-B over {n_keys:,} keys (simulated single-thread)",
        )
    )
    print(
        "\nReading the table: throughput tracks DRAM hops per operation —"
        "\nthe paper's finding that every level searched down is a cache"
        "\nmiss, which is why shallow learned indexes win."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
