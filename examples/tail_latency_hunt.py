#!/usr/bin/env python3
"""Hunting a learned index's tail latency with the event profiler.

The paper explains RMI's bad tail ("much larger than PGM-Index") by its
unbounded prediction error.  This example *shows* that mechanism: profile
the same read workload on RMI and PGM over the complex OSM-like dataset,
split each index's time by hardware event, and inspect the single worst
operation each index served.

Run:  python examples/tail_latency_hunt.py
"""

import random

from repro import PGMIndex, PerfContext, RMIIndex, osm_keys
from repro.perf import Profiler

N = 60_000
N_PROBES = 8_000


def profile_index(name, factory, keys, probes):
    perf = PerfContext()
    index = factory(perf)
    index.bulk_load([(k, k) for k in keys])
    profiler = Profiler(perf)
    for key in probes:
        with profiler.operation(f"{name} get({key})"):
            index.get(key)
    return profiler


def main() -> None:
    keys = osm_keys(N, seed=13)
    rng = random.Random(13)
    probes = rng.sample(keys, N_PROBES)

    print("dataset: OSM-like (complex CDF), "
          f"{N:,} keys, {N_PROBES:,} point reads\n")

    profilers = {
        "RMI (unbounded error)": profile_index(
            "rmi", lambda p: RMIIndex(perf=p), keys, probes
        ),
        "PGM (error <= eps)": profile_index(
            "pgm", lambda p: PGMIndex(perf=p), keys, probes
        ),
    }

    for name, profiler in profilers.items():
        print(f"== {name} ==")
        print(profiler.explain())
        worst = profiler.worst(3)
        print("three worst ops:")
        for op in worst:
            probes_paid = op.counters.compare
            print(
                f"  {op.time_ns:7.0f} ns  "
                f"{op.counters.dram_hop:3d} cache misses, "
                f"{probes_paid:3d} comparisons  <- {op.label}"
            )
        print()

    rmi_worst = profilers["RMI (unbounded error)"].worst(1)[0].time_ns
    pgm_worst = profilers["PGM (error <= eps)"].worst(1)[0].time_ns
    print(
        f"worst-case ratio RMI/PGM = {rmi_worst / pgm_worst:.1f}x — the\n"
        "unbounded second-stage error turns into a long correction search\n"
        "(each wide probe is a cache miss), which is exactly the paper's\n"
        "explanation for RMI's tail in Fig 10(b)."
    )


if __name__ == "__main__":
    main()
