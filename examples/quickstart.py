#!/usr/bin/env python3
"""Quickstart: a learned index inside an NVM key-value store.

Builds a Viper-style store over an ALEX learned index, loads 100K keys,
runs point reads, inserts, updates and a range scan, and reports the
simulated hardware cost of each phase.

Run:  python examples/quickstart.py
"""

import random

from repro import ALEXIndex, PerfContext, ViperStore, ycsb_keys


def main() -> None:
    # Every index charges abstract hardware events (cache misses, key
    # comparisons, NVM block accesses) into a PerfContext; the cost model
    # turns them into simulated nanoseconds.
    perf = PerfContext()
    store = ViperStore(ALEXIndex(perf=perf), perf)

    print("== load ==")
    keys = ycsb_keys(100_000, seed=7)
    mark = perf.begin()
    store.bulk_load([(k, f"value-{k}") for k in keys])
    build = perf.end(mark)
    print(f"loaded {len(store):,} records "
          f"in {build.time_ns / 1e6:.2f} simulated ms")

    print("\n== point reads ==")
    rng = random.Random(42)
    sample = rng.sample(keys, 10_000)
    mark = perf.begin()
    for key in sample:
        assert store.get(key) == f"value-{key}"
    reads = perf.end(mark)
    per_read = reads.time_ns / len(sample)
    print(f"{len(sample):,} reads, {per_read:.0f} ns each "
          f"({1e3 / per_read:.2f} Mops/s simulated)")

    print("\n== inserts and updates ==")
    fresh = [k + 1 for k in rng.sample(keys, 5_000) if k + 1 not in set(keys)]
    mark = perf.begin()
    for key in fresh:
        store.put(key, "new")
    for key in sample[:2_000]:
        store.put(key, "updated")
    writes = perf.end(mark)
    n_writes = len(fresh) + 2_000
    print(f"{n_writes:,} writes, {writes.time_ns / n_writes:.0f} ns each")
    assert store.get(sample[0]) == "updated"

    print("\n== range scan ==")
    start = keys[len(keys) // 2]
    mark = perf.begin()
    rows = store.scan(start, 100)
    scan = perf.end(mark)
    print(f"scan of {len(rows)} records cost {scan.time_ns / 1e3:.2f} us")

    print("\n== index internals ==")
    stats = store.index.stats()
    print(f"leaves={stats.leaf_count}  avg depth={stats.depth_avg:.2f}  "
          f"retrains so far={stats.retrain_count}")
    print(f"index structure size: {store.index.size_bytes() / 1024:.1f} KB "
          f"for {len(store):,} records")

    print("\n== crash and recovery ==")
    store.crash()
    elapsed = store.recover(lambda: ALEXIndex(perf=perf))
    print(f"recovered {len(store):,} records "
          f"in {elapsed / 1e6:.2f} simulated ms")
    assert store.get(sample[0]) == "updated"
    print("\nall good.")


if __name__ == "__main__":
    main()
