#!/usr/bin/env python3
"""Compose a brand-new learned index from the four design dimensions.

The paper's §IV observes that the four dimensions of updatable learned
indexes — approximation algorithm, internal structure, insertion
strategy, retraining strategy — are orthogonal and "can be combined to
form brand new indexes".  This example builds three indexes no published
system ships, races them against ALEX, and shows how the dimension
choices surface in the measurements.

Run:  python examples/compose_your_own.py
"""

import random

from repro import ALEXIndex, ComposedIndex, PerfContext, ycsb_keys
from repro.bench import format_table
from repro.core.approximation import (
    GreedyPLAApproximator,
    OptPLAApproximator,
    SplineApproximator,
)
from repro.core.insertion.strategies import (
    BufferStrategy,
    GappedStrategy,
    InplaceStrategy,
)
from repro.core.retraining import ExpandOrSplitPolicy, SplitRetrainPolicy
from repro.core.structures import ATSStructure, BTreeStructure, LRSStructure


def hybrid_pgm_gap(perf):
    """PGM's bounded-error segmentation + ALEX's gapped leaves: the
    combination §V-A hints at (LIPP went this way)."""
    return ComposedIndex(
        OptPLAApproximator(eps=64),
        LRSStructure(eps=4),
        GappedStrategy(density=0.7),
        ExpandOrSplitPolicy(density=0.6),
        perf=perf,
    )


def spline_over_btree(perf):
    """RadixSpline's one-pass leaves under a FITing-tree-style B+tree."""
    return ComposedIndex(
        SplineApproximator(eps=32),
        BTreeStructure(fanout=16),
        BufferStrategy(buffer_capacity=128),
        SplitRetrainPolicy(),
        perf=perf,
    )


def greedy_ats_inplace(perf):
    """Greedy PLA + asymmetric tree + inplace inserts: cheap to build,
    pays for it on writes."""
    return ComposedIndex(
        GreedyPLAApproximator(eps=32),
        ATSStructure(),
        InplaceStrategy(reserve=128),
        SplitRetrainPolicy(),
        perf=perf,
    )


CANDIDATES = {
    "ALEX (published)": lambda perf: ALEXIndex(perf=perf),
    "OptPLA+LRS+gap": hybrid_pgm_gap,
    "Spline+BTree+buf": spline_over_btree,
    "Greedy+ATS+inplace": greedy_ats_inplace,
}


def main() -> None:
    keys = ycsb_keys(40_000, seed=11)
    rng = random.Random(11)
    load = sorted(rng.sample(keys, 20_000))
    load_set = set(load)
    inserts = [k for k in keys if k not in load_set][:10_000]
    probes = rng.sample(load, 5_000)

    rows = []
    for name, factory in CANDIDATES.items():
        perf = PerfContext()
        index = factory(perf)
        index.bulk_load([(k, k) for k in load])

        mark = perf.begin()
        for k in probes:
            index.get(k)
        read_ns = perf.end(mark).time_ns / len(probes)

        mark = perf.begin()
        for k in inserts:
            index.insert(k, k)
        write_ns = perf.end(mark).time_ns / len(inserts)

        stats = index.stats()
        rows.append(
            [
                name,
                f"{read_ns:.0f}",
                f"{write_ns:.0f}",
                stats.leaf_count,
                stats.retrain_count,
            ]
        )

    print(
        format_table(
            ["index", "read (ns)", "insert (ns)", "leaves", "retrains"],
            rows,
            title="Recombining the four dimensions (simulated costs)",
        )
    )
    print(
        "\nEvery row answers lookups and inserts correctly; the dimensions"
        "\nonly change the cost profile — which is the paper's point."
    )


if __name__ == "__main__":
    main()
