#!/usr/bin/env python3
"""How the key distribution makes or breaks a learned index.

The paper's second headline finding: learned-index performance "is much
easier to be affected by the key distribution of stored data" than
traditional indexes.  This example runs the same read workload over four
synthetic datasets — smooth (ycsb), complex (osm-like), skewed (face-like)
and uniform — and shows each index's sensitivity, including RadixSpline's
collapse on skew (the paper's Fig 11).

Run:  python examples/dataset_sensitivity.py
"""

import random

from repro import (
    ALEXIndex,
    BPlusTree,
    PerfContext,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
    face_keys,
    osm_keys,
    uniform_keys,
    ycsb_keys,
)
from repro.bench import format_table
from repro.core.approximation import OptPLAApproximator

N = 50_000

DATASETS = {
    "ycsb (smooth)": ycsb_keys,
    "osm (complex)": osm_keys,
    "face (skewed)": face_keys,
    "uniform": uniform_keys,
}

INDEXES = {
    "RMI": lambda perf: RMIIndex(perf=perf),
    "RS": lambda perf: RadixSplineIndex(eps=8, r_bits=8, perf=perf),
    "PGM": lambda perf: PGMIndex(perf=perf),
    "ALEX": lambda perf: ALEXIndex(perf=perf),
    "BTree": lambda perf: BPlusTree(perf=perf),
}


def main() -> None:
    rows = []
    for ds_name, maker in DATASETS.items():
        keys = maker(N, seed=5)
        # How hard is this CDF?  Count the bounded-error segments it needs.
        complexity = OptPLAApproximator(eps=64).fit(keys).leaf_count
        rng = random.Random(5)
        probes = rng.sample(keys, 5_000)
        for idx_name, factory in INDEXES.items():
            perf = PerfContext()
            index = factory(perf)
            index.bulk_load([(k, k) for k in keys])
            mark = perf.begin()
            for key in probes:
                index.get(key)
            cost = perf.end(mark).time_ns / len(probes)
            rows.append([ds_name, complexity, idx_name, f"{cost:.0f}"])

    print(
        format_table(
            ["dataset", "PLA segments", "index", "lookup (sim ns)"],
            rows,
            title=f"Distribution sensitivity over {N:,} keys",
        )
    )
    print(
        "\nThings to notice:"
        "\n * the BTree column barely moves across datasets;"
        "\n * every learned index pays on 'osm' (more segments = deeper"
        "\n   structures and bigger errors);"
        "\n * RS collapses on 'face': nearly all keys share one radix"
        "\n   prefix, so its table stops discriminating (paper Fig 11)."
    )


if __name__ == "__main__":
    main()
