"""Stateful (model-based) property tests with hypothesis state machines.

A dictionary + sorted list is the model; the store/index under test must
agree with it after any interleaving of puts, gets, deletes, scans,
crashes and recoveries.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro import ALEXIndex, BPlusTree, DynamicPGMIndex, PerfContext, ViperStore

keys_st = st.integers(min_value=0, max_value=10_000)
values_st = st.integers(min_value=-(10**6), max_value=10**6)


class ViperStoreMachine(RuleBasedStateMachine):
    """The Viper store against a dict model, including crash/recovery."""

    def __init__(self):
        super().__init__()
        self.perf = PerfContext()
        self.store = ViperStore(BPlusTree(perf=self.perf), self.perf)
        self.store.bulk_load([])
        self.model = {}

    @rule(key=keys_st, value=values_st)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=keys_st)
    def get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys_st)
    def delete(self, key):
        expected = key in self.model
        assert self.store.delete(key) is expected
        self.model.pop(key, None)

    @rule(start=keys_st, count=st.integers(1, 20))
    def scan(self, start, count):
        got = self.store.scan(start, count)
        expected = sorted(
            (k, v) for k, v in self.model.items() if k >= start
        )[:count]
        assert got == expected

    @rule()
    def crash_and_recover(self):
        self.store.crash()
        self.store.recover(lambda: BPlusTree(perf=self.perf))

    @rule(key=keys_st, value=values_st)
    def torn_put_then_recover(self, key, value):
        # A torn write must not change any visible state.
        self.store.crash_during_put(key, value)
        self.store.recover(lambda: BPlusTree(perf=self.perf))

    @invariant()
    def count_matches(self):
        assert len(self.store) == len(self.model)


class ALEXIndexMachine(RuleBasedStateMachine):
    """ALEX (gapped leaves, ATS, expand/split) against a dict model."""

    def __init__(self):
        super().__init__()
        self.index = ALEXIndex(segment_size=256, perf=PerfContext())
        base = [(k, k) for k in range(0, 2000, 4)]
        self.index.bulk_load(base)
        self.model = dict(base)

    @rule(key=keys_st, value=values_st)
    def insert(self, key, value):
        self.index.insert(key, value)
        self.model[key] = value

    @rule(key=keys_st)
    def get(self, key):
        assert self.index.get(key) == self.model.get(key)

    @rule(key=keys_st)
    def delete(self, key):
        expected = key in self.model
        assert self.index.delete(key) is expected
        self.model.pop(key, None)

    @rule(lo=keys_st, hi=keys_st)
    def range_scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = list(self.index.range(lo, hi))
        expected = sorted(
            (k, v) for k, v in self.model.items() if lo <= k <= hi
        )
        assert got == expected

    @invariant()
    def count_matches(self):
        assert len(self.index) == len(self.model)


class DynamicPGMMachine(RuleBasedStateMachine):
    """The LSM-of-PGMs against a dict model (tombstones included)."""

    def __init__(self):
        super().__init__()
        self.index = DynamicPGMIndex(base_level_size=16, perf=PerfContext())
        base = [(k, k) for k in range(0, 500, 2)]
        self.index.bulk_load(base)
        self.model = dict(base)

    @rule(key=keys_st, value=values_st)
    def insert(self, key, value):
        self.index.insert(key, value)
        self.model[key] = value

    @rule(key=keys_st, value=values_st)
    def update(self, key, value):
        expected = key in self.model
        assert self.index.update(key, value) is expected
        if expected:
            self.model[key] = value

    @rule(key=keys_st)
    def get(self, key):
        assert self.index.get(key) == self.model.get(key)

    @rule(key=keys_st)
    def delete(self, key):
        expected = key in self.model
        assert self.index.delete(key) is expected
        self.model.pop(key, None)

    @rule(lo=keys_st, hi=keys_st)
    def range_scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = list(self.index.range(lo, hi))
        expected = sorted(
            (k, v) for k, v in self.model.items() if lo <= k <= hi
        )
        assert got == expected


common = settings(max_examples=12, stateful_step_count=30, deadline=None)

TestViperStoreStateful = ViperStoreMachine.TestCase
TestViperStoreStateful.settings = common
TestALEXStateful = ALEXIndexMachine.TestCase
TestALEXStateful.settings = common
TestDynamicPGMStateful = DynamicPGMMachine.TestCase
TestDynamicPGMStateful.settings = common


class WormholeMachine(RuleBasedStateMachine):
    """Wormhole's leaf-split bookkeeping under mixed churn."""

    def __init__(self):
        super().__init__()
        from repro import Wormhole

        self.index = Wormhole(leaf_size=16, perf=PerfContext())
        base = [(k, k) for k in range(0, 600, 3)]
        self.index.bulk_load(base)
        self.model = dict(base)

    @rule(key=keys_st, value=values_st)
    def insert(self, key, value):
        self.index.insert(key, value)
        self.model[key] = value

    @rule(key=keys_st)
    def get(self, key):
        assert self.index.get(key) == self.model.get(key)

    @rule(key=keys_st)
    def delete(self, key):
        expected = key in self.model
        assert self.index.delete(key) is expected
        self.model.pop(key, None)

    @invariant()
    def leaves_bounded_and_ordered(self):
        for leaf in self.index._leaves:
            assert len(leaf.keys) <= self.index.leaf_size
            assert leaf.keys == sorted(leaf.keys)
        assert self.index._fences == sorted(self.index._fences)

    @invariant()
    def count_matches(self):
        assert len(self.index) == len(self.model)


class MasstreeMachine(RuleBasedStateMachine):
    """Masstree over byte keys, exercising the trie layering."""

    def __init__(self):
        super().__init__()
        from repro import Masstree

        self.tree = Masstree(perf=PerfContext())
        self.model = {}

    @rule(
        prefix=st.sampled_from([b"", b"shared--", b"shared--deep----"]),
        tail=st.binary(min_size=1, max_size=6),
        value=values_st,
    )
    def put(self, prefix, tail, value):
        key = prefix + tail
        self.tree.put_bytes(key, value)
        self.model[key] = value

    @rule(
        prefix=st.sampled_from([b"", b"shared--"]),
        tail=st.binary(min_size=1, max_size=6),
    )
    def get(self, prefix, tail):
        key = prefix + tail
        assert self.tree.get_bytes(key) == self.model.get(key)

    @rule(
        prefix=st.sampled_from([b"", b"shared--"]),
        tail=st.binary(min_size=1, max_size=6),
    )
    def delete(self, prefix, tail):
        key = prefix + tail
        expected = key in self.model
        assert self.tree.delete_bytes(key) is expected
        self.model.pop(key, None)


TestWormholeStateful = WormholeMachine.TestCase
TestWormholeStateful.settings = common
TestMasstreeStateful = MasstreeMachine.TestCase
TestMasstreeStateful.settings = common
