"""Long-running churn tests: sustained insert/delete/update cycles.

The paper's workloads only grow the indexes; these tests grind them the
other way too — repeated grow/shrink cycles — and assert the structures
stay correct and do not degenerate (leaf counts bounded, routing intact).
"""

import random

import pytest

from repro import (
    ALEXIndex,
    APEXIndex,
    BPlusTree,
    CCEH,
    DynamicPGMIndex,
    FINEdexIndex,
    FITingTree,
    LIPPIndex,
    PerfContext,
    SkipList,
    Wormhole,
    XIndexIndex,
)

CHURNERS = {
    "ALEX": lambda p: ALEXIndex(segment_size=512, perf=p),
    "APEX": lambda p: APEXIndex(node_size=512, perf=p),
    "FINEdex": lambda p: FINEdexIndex(bin_capacity=8, perf=p),
    "FITing-inp": lambda p: FITingTree(strategy="inplace", perf=p),
    "FITing-buf": lambda p: FITingTree(strategy="buffer", perf=p),
    "PGM": lambda p: DynamicPGMIndex(base_level_size=32, perf=p),
    "XIndex": lambda p: XIndexIndex(perf=p),
    "LIPP": lambda p: LIPPIndex(perf=p),
    "BTree": lambda p: BPlusTree(perf=p),
    "SkipList": lambda p: SkipList(perf=p),
    "Wormhole": lambda p: Wormhole(perf=p),
    "CCEH": lambda p: CCEH(segment_bits=6, perf=p),
}

DELETE_CAPABLE = {
    "ALEX",
    "APEX",
    "FINEdex",
    "FITing-inp",
    "FITing-buf",
    "PGM",
    "XIndex",
    "LIPP",
    "BTree",
    "SkipList",
    "Wormhole",
    "CCEH",
}


@pytest.mark.parametrize("name", sorted(CHURNERS))
def test_grow_shrink_cycles(name):
    rng = random.Random(hash(name) & 0xFFFF)
    base = sorted(rng.sample(range(10**8), 1500))
    idx = CHURNERS[name](PerfContext())
    idx.bulk_load([(k, k) for k in base])
    oracle = {k: k for k in base}

    for cycle in range(4):
        # Grow phase: 800 inserts.
        for k in rng.sample(range(10**8), 800):
            idx.insert(k, cycle)
            oracle[k] = cycle
        # Shrink phase: delete a third of the live keys.
        if name in DELETE_CAPABLE:
            victims = rng.sample(sorted(oracle), len(oracle) // 3)
            for k in victims:
                assert idx.delete(k) is True, f"{name} lost {k}"
                del oracle[k]
        # Update phase: rewrite a slice.
        for k in rng.sample(sorted(oracle), 200):
            idx.insert(k, -cycle)
            oracle[k] = -cycle
        # Verify a sample each cycle.
        for k in rng.sample(sorted(oracle), 300):
            assert idx.get(k) == oracle[k], f"{name} wrong for {k}"
        for k in rng.sample(range(10**8), 100):
            if k not in oracle:
                assert idx.get(k) is None, f"{name} fabricated {k}"

    assert len(idx) == len(oracle), f"{name} count drift"


@pytest.mark.parametrize(
    "name", sorted(n for n in CHURNERS if n not in ("CCEH",))
)
def test_range_correct_after_churn(name):
    rng = random.Random(hash(name) >> 3 & 0xFFFF)
    base = sorted(rng.sample(range(10**7), 1000))
    idx = CHURNERS[name](PerfContext())
    idx.bulk_load([(k, k) for k in base])
    oracle = {k: k for k in base}
    for k in rng.sample(range(10**7), 1200):
        idx.insert(k, -k)
        oracle[k] = -k
    if name in DELETE_CAPABLE:
        for k in rng.sample(sorted(oracle), 400):
            idx.delete(k)
            del oracle[k]
    keys = sorted(oracle)
    lo, hi = keys[50], keys[-50]
    got = list(idx.range(lo, hi))
    expected = [(k, oracle[k]) for k in keys if lo <= k <= hi]
    assert got == expected, f"{name} wrong range after churn"
