"""Tests for internal structures (paper dimension #2)."""

import random
from bisect import bisect_right

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.structures import (
    ATSStructure,
    BTreeStructure,
    LRSStructure,
    RadixTableStructure,
    RMIStructure,
    exponential_search,
)
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf import PerfContext

ALL_STRUCTURES = [
    lambda perf: RMIStructure(branching=64, perf=perf),
    lambda perf: BTreeStructure(fanout=16, perf=perf),
    lambda perf: LRSStructure(eps=4, perf=perf),
    lambda perf: ATSStructure(max_node_fences=16, perf=perf),
    lambda perf: RadixTableStructure(r_bits=10, perf=perf),
]

fences_strategy = st.lists(
    st.integers(min_value=0, max_value=2**48),
    min_size=1,
    max_size=400,
    unique=True,
).map(sorted)


def ground_truth(fences, key):
    return max(0, bisect_right(fences, key) - 1)


def probe_keys(fences, rng):
    """Fences themselves, midpoints, extremes, and random keys."""
    probes = list(fences)
    probes += [f + 1 for f in fences]
    probes += [max(0, f - 1) for f in fences]
    probes += [0, 2**48 + 5]
    probes += [rng.randrange(0, 2**48) for _ in range(50)]
    return probes


class TestRoutingCorrectness:
    @pytest.mark.parametrize("make", ALL_STRUCTURES)
    def test_lookup_matches_bisect(self, make):
        rng = random.Random(42)
        fences = sorted(rng.sample(range(2**48), 500))
        structure = make(PerfContext())
        structure.build(fences)
        for key in probe_keys(fences, rng):
            assert structure.lookup(key) == ground_truth(fences, key), (
                f"{structure.name} misroutes key {key}"
            )

    @pytest.mark.parametrize("make", ALL_STRUCTURES)
    @given(fences=fences_strategy)
    @settings(max_examples=25, deadline=None)
    def test_lookup_matches_bisect_property(self, make, fences):
        structure = make(PerfContext())
        structure.build(fences)
        rng = random.Random(0)
        for key in probe_keys(fences, rng)[:200]:
            assert structure.lookup(key) == ground_truth(fences, key)

    @pytest.mark.parametrize("make", ALL_STRUCTURES)
    def test_single_fence(self, make):
        structure = make(PerfContext())
        structure.build([1000])
        assert structure.lookup(0) == 0
        assert structure.lookup(1000) == 0
        assert structure.lookup(10**12) == 0

    @pytest.mark.parametrize("make", ALL_STRUCTURES)
    def test_empty_build_rejected(self, make):
        structure = make(PerfContext())
        with pytest.raises(EmptyIndexError):
            structure.build([])

    @pytest.mark.parametrize("make", ALL_STRUCTURES)
    def test_lookup_before_build_rejected(self, make):
        structure = make(PerfContext())
        with pytest.raises(EmptyIndexError):
            structure.lookup(1)


class TestExponentialSearch:
    @given(fences_strategy, st.integers(min_value=0, max_value=2**48))
    @settings(max_examples=100, deadline=None)
    def test_matches_bisect_from_any_guess(self, fences, key):
        rng = random.Random(key)
        perf = PerfContext()
        for guess in (0, len(fences) - 1, rng.randrange(len(fences)), -5, 10**6):
            assert exponential_search(fences, key, guess, perf) == ground_truth(
                fences, key
            )

    def test_good_guess_is_cheaper(self):
        fences = list(range(0, 100_000, 10))
        perf_good = PerfContext()
        truth = ground_truth(fences, 50_000)
        exponential_search(fences, 50_000, truth, perf_good)
        perf_bad = PerfContext()
        exponential_search(fences, 50_000, 0, perf_bad)
        assert perf_good.elapsed_ns() < perf_bad.elapsed_ns()


class TestStructureProperties:
    def test_rmi_depth_is_two(self):
        s = RMIStructure(branching=32, perf=PerfContext())
        s.build(list(range(0, 10_000, 3)))
        assert s.avg_depth() == 2.0

    def test_btree_height_grows_with_leaves(self):
        small = BTreeStructure(fanout=8, perf=PerfContext())
        small.build(list(range(8)))
        big = BTreeStructure(fanout=8, perf=PerfContext())
        big.build(list(range(10_000)))
        assert big.max_depth() > small.max_depth()

    def test_ats_is_asymmetric_on_skewed_fences(self):
        # Half the fences are linear (cheap to model), half are random
        # (hard): ATS should terminate early on the easy half.
        rng = random.Random(9)
        easy = list(range(0, 2**20, 2**10))
        hard = sorted(rng.sample(range(2**40, 2**48), 4096))
        s = ATSStructure(max_node_fences=16, error_threshold=4, perf=PerfContext())
        s.build(easy + hard)
        assert s.max_depth() > 1
        assert s.avg_depth() < s.max_depth()

    def test_lrs_collapses_on_linear_fences(self):
        s = LRSStructure(eps=8, perf=PerfContext())
        s.build(list(range(0, 64_000, 8)))
        assert s.max_depth() == 1

    def test_radix_bucket_sizes_reflect_skew(self):
        # FACE-like: almost everything tiny, one giant outlier.
        skewed = list(range(5000)) + [2**60]
        s = RadixTableStructure(r_bits=10, perf=PerfContext())
        s.build(skewed)
        sizes = s.bucket_sizes()
        assert max(sizes) >= 5000  # everything collapses into one bucket

    def test_structures_report_positive_size(self):
        fences = list(range(0, 100_000, 7))
        for make in ALL_STRUCTURES:
            s = make(PerfContext())
            s.build(fences)
            assert s.size_bytes() > 0

    def test_invalid_configs_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            RMIStructure(branching=0)
        with pytest.raises(InvalidConfigurationError):
            BTreeStructure(fanout=1)
        with pytest.raises(InvalidConfigurationError):
            LRSStructure(eps=0)
        with pytest.raises(InvalidConfigurationError):
            ATSStructure(max_fanout=1)
        with pytest.raises(InvalidConfigurationError):
            RadixTableStructure(r_bits=0)


class TestStructureCosts:
    """The cost relationships §IV-B reports."""

    def _cost_per_lookup(self, structure, fences, keys):
        structure.build(fences)
        perf = structure.perf
        mark = perf.begin()
        for key in keys:
            structure.lookup(key)
        op = perf.end(mark)
        return op.time_ns / len(keys)

    def test_lrs_beats_btree_at_high_leaf_count(self):
        rng = random.Random(21)
        fences = sorted(rng.sample(range(2**44), 60_000))
        keys = rng.sample(range(2**44), 2000)
        lrs = self._cost_per_lookup(LRSStructure(eps=4, perf=PerfContext()), fences, keys)
        btree = self._cost_per_lookup(
            BTreeStructure(fanout=16, perf=PerfContext()), fences, keys
        )
        assert lrs < btree

    def test_fewer_leaves_is_cheaper_for_every_structure(self):
        rng = random.Random(22)
        many = sorted(rng.sample(range(2**44), 40_000))
        few = many[::40]
        keys = rng.sample(range(2**44), 1000)
        for make in ALL_STRUCTURES:
            cost_many = self._cost_per_lookup(make(PerfContext()), many, keys)
            cost_few = self._cost_per_lookup(make(PerfContext()), few, keys)
            assert cost_few < cost_many, f"{make(PerfContext()).name}"
