"""Bit-identity contract for the vectorized scan engine.

``scan_many(starts, count)`` must be indistinguishable from the scalar
``scan`` loop everywhere it is offered: same tuples, same order, and the
same simulated hardware charges (counter deltas compare equal) — for
every sorted registry spec, flat and through the Viper store, under
in-process sharding and the process-parallel engine.  Edge cases pinned
here: scans spanning leaf boundaries, empty ranges past the last key,
duplicate start keys, post-insert buffers, and hash indexes failing with
:class:`UnsupportedOperationError`, never ``AttributeError``.
"""

import random

import pytest

from repro import PerfContext, ViperStore
from repro.bench.runner import IndexAdapter, execute_ops
from repro.concurrency.parallel import parallel_sharded_index
from repro.concurrency.sharding import ShardedStore, sharded_index
from repro.core.interfaces import SortedIndex
from repro.errors import UnsupportedOperationError
from repro.registry import has_native_batch_scan, resolve, specs
from repro.workloads.ycsb import Operation, OpKind

SPECS = list(specs())
SHARD_COUNTS = (1, 2, 7)
WORKER_COUNTS = (1, 2, 4)

N_KEYS = 2000


def _spec_params():
    return [pytest.param(spec, id=spec.name) for spec in SPECS]


def _keys(n=N_KEYS, seed=4321):
    rng = random.Random(seed)
    return sorted(rng.sample(range(1, 2**48), n))


def _start_batches(keys, n=80):
    """Start-key batches covering the contract's edge cases."""
    rng = random.Random(17)
    present = rng.sample(keys, n)
    return {
        "random": present,
        "duplicates": present[:20] * 4,
        "between_keys": [k + 1 for k in present[: n // 2]],
        "below_min": [0, max(0, keys[0] - 1)],
        "past_max": [keys[-1] + 1, keys[-1] + 10_000],  # empty ranges
        "empty": [],
    }


def _assert_parity(obj, perf, starts, count, label=""):
    """scan_many == sequential scan in results AND charge deltas."""
    mark = perf.begin()
    scalar = [obj.scan(start, count) for start in starts]
    scalar_delta = perf.end(mark).counters
    mark = perf.begin()
    batched = obj.scan_many(starts, count)
    batched_delta = perf.end(mark).counters
    assert batched == scalar, (label, count)
    assert batched_delta == scalar_delta, (label, count)


# --------------------------------------------------------------- flat


class TestFlatIndex:
    @pytest.mark.parametrize("spec", _spec_params())
    def test_scan_many_matches_scalar(self, spec):
        perf = PerfContext()
        index = spec.build(perf)
        if not isinstance(index, SortedIndex):
            pytest.skip("hash index: covered by the raising tests")
        keys = _keys()
        index.bulk_load([(k, k * 3) for k in keys])
        batches = _start_batches(keys)
        # count=300 spans several leaves; count<=0 keeps the scalar
        # quirk (at most one item); 1 and 50 are the YCSB-E shapes.
        for label, starts in batches.items():
            for count in (0, 1, 50, 300):
                _assert_parity(index, perf, starts, count, label)

    @pytest.mark.parametrize("spec", _spec_params())
    def test_scan_many_after_inserts(self, spec):
        """Parity survives mutation: buffers, gaps, bins, splits."""
        perf = PerfContext()
        index = spec.build(perf)
        if not isinstance(index, SortedIndex):
            pytest.skip("hash index: covered by the raising tests")
        if not index.capabilities().updatable:
            pytest.skip(f"{spec.name} is read-only")
        keys = _keys()
        index.bulk_load([(k, k * 3) for k in keys])
        rng = random.Random(7)
        key_set = set(keys)
        fresh = [
            k for k in rng.sample(range(1, 2**48), 600) if k not in key_set
        ]
        for k in fresh:
            index.insert(k, -k)
        starts = rng.sample(fresh, 40) + rng.sample(keys, 40)
        for count in (1, 50, 300):
            _assert_parity(index, perf, starts, count, "post-insert")

    def test_leaf_boundary_span_returns_global_order(self):
        """One scan crossing many leaves equals the sorted-items slice."""
        perf = PerfContext()
        index = resolve("ALEX").build(perf)
        keys = _keys()
        items = [(k, k * 3) for k in keys]
        index.bulk_load(items)
        (run,) = index.scan_many([keys[5]], 700)
        assert run == items[5 : 5 + 700]

    def test_registry_flags_native_batch_scan(self):
        flagged = set()
        for spec in SPECS:
            index = spec.build(PerfContext())
            if has_native_batch_scan(index):
                flagged.add(spec.name)
        # The vectorized paths must be recognised as native...
        assert {"PGM-static", "RS", "BTree", "ALEX", "XIndex"} <= flagged
        # ...fallback-only sorted indexes and hash indexes must not be.
        assert "Skiplist" not in flagged
        assert "CCEH" not in flagged


# --------------------------------------------------------------- store


@pytest.mark.parametrize("name", ["PGM-static", "ALEX", "BTree"])
def test_store_scan_many_matches_scalar(name):
    perf = PerfContext()
    store = ViperStore(resolve(name).build(perf), perf)
    keys = _keys()
    store.bulk_load([(k, k * 3) for k in keys])
    starts = _start_batches(keys)["random"]
    for count in (0, 1, 50, 300):
        _assert_parity(store, perf, starts, count, f"viper[{name}]")


# ------------------------------------------------------------- sharded


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("spec", _spec_params())
def test_sharded_scan_many_matches_scalar(spec, shards):
    perf = PerfContext()
    probe = spec.build(PerfContext())
    if not isinstance(probe, SortedIndex):
        pytest.skip("hash index: covered by the raising tests")
    index = sharded_index(spec, shards, perf=perf)
    keys = _keys(1200)
    index.bulk_load([(k, k * 3) for k in keys])
    rng = random.Random(23)
    starts = rng.sample(keys, 50) + [0, keys[-1] + 5] + [keys[3]] * 4
    # count=400 forces cross-shard spill at every shard count > 1.
    for count in (0, 1, 50, 400):
        _assert_parity(index, perf, starts, count, f"x{shards}")


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_store_scan_many_matches_scalar(shards):
    perf = PerfContext()
    store = ShardedStore(resolve("BTree"), shards, perf=perf)
    keys = _keys(1200)
    store.bulk_load([(k, k * 3) for k in keys])
    rng = random.Random(29)
    starts = rng.sample(keys, 50) + [0, keys[-1] + 5] + [keys[3]] * 4
    before = list(store.shard_ops)
    store.scan_many(starts, 50)
    mid = list(store.shard_ops)
    for start in starts:
        store.scan(start, 50)
    after = list(store.shard_ops)
    # Batched and scalar visit the same shards the same number of times.
    assert [m - b for m, b in zip(mid, before)] == [
        a - m for a, m in zip(after, mid)
    ]
    for count in (0, 1, 50, 400):
        _assert_parity(store, perf, starts, count, f"store x{shards}")


# ------------------------------------------------------------ parallel


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("name", ["PGM-static", "ALEX", "BTree"])
def test_parallel_scan_many_matches_scalar(name, workers):
    perf = PerfContext()
    engine = parallel_sharded_index(resolve(name), workers, perf=perf)
    try:
        keys = _keys(1000)
        engine.bulk_load([(k, k * 3) for k in keys])
        rng = random.Random(31)
        starts = rng.sample(keys, 40) + [0, keys[-1] + 5] + [keys[3]] * 3
        for count in (0, 1, 50, 400):
            _assert_parity(engine, perf, starts, count, f"workers={workers}")
    finally:
        engine.close()


# ------------------------------------------------------------- raising


def _hash_specs():
    return [
        spec
        for spec in SPECS
        if not isinstance(spec.build(PerfContext()), SortedIndex)
    ]


def test_hash_store_scan_many_raises_cleanly():
    assert _hash_specs(), "registry lost its hash index?"
    for spec in _hash_specs():
        perf = PerfContext()
        store = ViperStore(spec.build(perf), perf)
        store.bulk_load([(k, k) for k in range(1, 200)])
        with pytest.raises(UnsupportedOperationError):
            store.scan_many([5, 50], 10)


def test_hash_index_batched_executor_raises_cleanly():
    """SCAN stays on the scalar path for unsorted targets, so a batched
    run still fails with the domain error, not ``AttributeError``."""
    for spec in _hash_specs():
        perf = PerfContext()
        index = spec.build(perf)
        index.bulk_load([(k, k) for k in range(1, 200)])
        ops = [Operation(OpKind.SCAN, key=5, scan_length=10)]
        with pytest.raises(UnsupportedOperationError):
            execute_ops(IndexAdapter(index), ops, perf, batch_size=8)


# ------------------------------------------------------------- executor


def test_executor_batches_scans_with_identical_accounting():
    """Batched SCAN dispatch records the same op count, per-kind rows,
    and simulated charges as the scalar loop."""
    perf = PerfContext()
    index = resolve("PGM-static").build(perf)
    keys = _keys(1500)
    index.bulk_load([(k, k) for k in keys])
    rng = random.Random(41)
    ops = [
        Operation(OpKind.SCAN, key=rng.choice(keys), scan_length=rng.randrange(1, 51))
        for _ in range(300)
    ]
    mark = perf.begin()
    scalar_result = execute_ops(IndexAdapter(index), ops, perf, batch_size=1)
    scalar_delta = perf.end(mark).counters
    mark = perf.begin()
    batched_result = execute_ops(IndexAdapter(index), ops, perf, batch_size=64)
    batched_delta = perf.end(mark).counters
    assert batched_delta == scalar_delta
    assert len(batched_result.recorder) == len(scalar_result.recorder)
    assert set(batched_result.by_kind) == {OpKind.SCAN}
    assert len(batched_result.by_kind[OpKind.SCAN]) == len(ops)
