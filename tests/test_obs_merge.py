"""Observability merges must be drain-order independent.

``drain_obs`` folds each worker's tracer/metrics/profiler/span state
into the parent's instances in whatever order the workers reply.  That
order is scheduling noise, so the merged state — counts, rendered
metrics, profiler ledgers, span summaries — must be identical however
the payloads are permuted.  (Record *lists* may be ordered differently;
every aggregate view must not be.)
"""

import itertools

import pytest

from repro import PerfContext
from repro.concurrency import parallel_sharded_index
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    Tracer,
    prometheus_text,
    summarize_spans,
    trace_summary,
)
from repro.perf import Profiler
from repro.registry import specs
from repro.workloads import uniform_keys


def _merge(payloads):
    """Replicate drain_obs's merge into fresh parent-side instances."""
    tracer = Tracer(rate=0.0)
    metrics = MetricsRegistry()
    profiler = Profiler(PerfContext())
    spans = SpanRecorder(rate=1.0, seed=0, prefix="p")
    for p in payloads:
        tracer.absorb(p["trace_counts"], p["trace_records"])
        metrics.merge_from(p["metrics"])
        profiler.absorb(p["profiler_counters"], p["profiler_ops"])
        spans.absorb(p.get("spans", ()))
    return tracer, metrics, profiler, spans


def _state(tracer, metrics, profiler, spans):
    """Every aggregate view a caller can observe after the merge."""
    return (
        tracer.counts,
        trace_summary(tracer.records),
        prometheus_text(metrics, tracer),
        profiler.total.as_dict(),
        profiler.op_count,
        sorted(s.span_id for s in spans.spans),
        summarize_spans(spans.spans),
    )


@pytest.fixture(scope="module")
def worker_payloads():
    """Real per-worker obs payloads from a traced 3-worker run."""
    spec = next(s for s in specs() if s.name == "PGM")
    keys = uniform_keys(600, seed=11)
    engine = parallel_sharded_index(
        spec, 3, trace_rate=1.0, span_rate=1.0, seed=7
    )
    try:
        engine.bulk_load([(k, k) for k in keys[:500]])
        engine.get_many(keys)
        engine.insert_many([(k, k) for k in keys[500:]])
        payloads = engine._broadcast(("obs",))
    finally:
        engine.close()
    assert len(payloads) == 3
    return payloads


def test_payloads_carry_all_four_obs_channels(worker_payloads):
    for p in worker_payloads:
        assert p["profiler_ops"] > 0
        assert p["spans"]
        names = {name for name, _k, _l, _i in p["metrics"].collect()}
        assert "repro_worker_cmds_total" in names
    # Lifecycle events fire on retrain thresholds, so not every worker
    # necessarily saw one — but the run as a whole must have.
    assert any(p["trace_counts"] for p in worker_payloads)


def test_every_drain_order_yields_identical_state(worker_payloads):
    reference = _state(*_merge(worker_payloads))
    for perm in itertools.permutations(worker_payloads):
        assert _state(*_merge(perm)) == reference


def test_merged_counts_are_the_sum_of_the_parts(worker_payloads):
    tracer, _, profiler, spans = _merge(worker_payloads)
    for etype in tracer.counts:
        assert tracer.counts[etype] == sum(
            p["trace_counts"].get(etype, 0) for p in worker_payloads
        )
    assert profiler.op_count == sum(
        p["profiler_ops"] for p in worker_payloads
    )
    assert len(spans.spans) == sum(len(p["spans"]) for p in worker_payloads)


def test_span_ids_stay_unique_across_workers(worker_payloads):
    _, _, _, spans = _merge(worker_payloads)
    ids = [s.span_id for s in spans.spans]
    assert len(ids) == len(set(ids))
    prefixes = {i.split("-", 1)[0] for i in ids}
    assert prefixes == {"w0", "w1", "w2"}


def test_synthetic_tracer_absorb_commutes():
    payload_a = ({"retrain": 3, "latch_wait": 1}, [])
    payload_b = ({"retrain": 2}, [])
    ab, ba = Tracer(rate=0.0), Tracer(rate=0.0)
    ab.absorb(*payload_a)
    ab.absorb(*payload_b)
    ba.absorb(*payload_b)
    ba.absorb(*payload_a)
    assert ab.counts == ba.counts == {"retrain": 5, "latch_wait": 1}


def test_synthetic_metrics_merge_commutes():
    def registry(n):
        reg = MetricsRegistry()
        reg.counter("repro_worker_cmds_total", worker=str(n)).inc(n + 1)
        reg.histogram("repro_worker_cmd_wall_ns", worker=str(n)).record(1e6 * n + 1)
        return reg

    ab, ba = MetricsRegistry(), MetricsRegistry()
    ab.merge_from(registry(0))
    ab.merge_from(registry(1))
    ba.merge_from(registry(1))
    ba.merge_from(registry(0))
    assert prometheus_text(ab) == prometheus_text(ba)
