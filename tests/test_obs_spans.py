"""Causal spans, worker health, and tail-latency attribution.

Mechanism-level tests on hand-built span trees and an injectable clock;
the end-to-end contracts on the real parallel engine (every worker
event reachable from its request, span counts == untraced counters,
flight-recorder postmortems) live in ``test_parallel_engine.py``.
"""

import json

import pytest

from repro.concurrency import ConcurrencySpec, OpProfile, make_streams, simulate
from repro.obs import (
    EventType,
    Tracer,
    Span,
    SpanRecorder,
    attribute_spans,
    children_index,
    chrome_trace_events,
    read_spans_jsonl,
    roots,
    subtree_events,
    summarize_spans,
    walk,
    write_spans_jsonl,
)
from repro.obs.health import FlightEntry, HealthMonitor, format_flight
from repro.perf import BandwidthModel


# ----------------------------------------------------------- SpanRecorder


class TestSpanRecorder:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SpanRecorder(rate=1.5)
        with pytest.raises(ValueError):
            SpanRecorder(rate=-0.1)

    def test_ids_are_prefixed_and_sequential(self):
        rec = SpanRecorder(prefix="w3")
        assert rec.next_id() == "w3-1"
        assert rec.next_id() == "w3-2"

    def test_rate_zero_counts_requests_but_records_none(self):
        rec = SpanRecorder(rate=0.0, seed=1)
        assert all(not rec.sample() for _ in range(50))
        assert rec.requests == 50
        assert rec.sampled_requests == 0

    def test_rate_one_samples_everything(self):
        rec = SpanRecorder(rate=1.0, seed=1)
        assert all(rec.sample() for _ in range(50))
        assert rec.requests == rec.sampled_requests == 50

    def test_partial_rate_is_deterministic_per_seed(self):
        a = SpanRecorder(rate=0.3, seed=42)
        b = SpanRecorder(rate=0.3, seed=42)
        decisions_a = [a.sample() for _ in range(200)]
        decisions_b = [b.sample() for _ in range(200)]
        assert decisions_a == decisions_b
        assert 0 < a.sampled_requests < 200
        other = SpanRecorder(rate=0.3, seed=43)
        assert decisions_a != [other.sample() for _ in range(200)]

    def test_start_finish_records_duration_and_attrs(self):
        rec = SpanRecorder()
        span = rec.start("request:get_many", "request", ops=10)
        assert len(rec) == 0  # not recorded until finished
        done = rec.finish(span, status="ok")
        assert done is span
        assert rec.spans == [span]
        assert span.dur_ns >= 0.0
        assert span.attrs == {"ops": 10, "status": "ok"}
        assert span.end_ns == span.start_ns + span.dur_ns

    def test_event_carries_cost_and_parent(self):
        rec = SpanRecorder(worker=2)
        ev = rec.event("event:retrain", "p-1", cost_ns=123.0, reason="merge")
        assert ev.kind == "event"
        assert ev.parent_id == "p-1"
        assert ev.dur_ns == 0.0
        assert ev.worker == 2
        assert ev.attrs["cost_ns"] == 123.0
        assert ev.attrs["reason"] == "merge"

    def test_bind_tracer_attaches_events_under_current_span(self):
        rec = SpanRecorder(prefix="w0", worker=0)
        tracer = Tracer(rate=1.0)
        rec.bind_tracer(tracer)

        cmd = rec.start("cmd:get_many", "worker", parent="p-9")
        rec.current = cmd
        tracer.emit(EventType.RETRAIN, 10.0, index="alex", cost_ns=7.0)
        rec.current = None
        tracer.emit(EventType.RETRAIN, 20.0, index="alex", cost_ns=7.0)
        rec.finish(cmd)

        events = [s for s in rec.spans if s.kind == "event"]
        assert len(events) == 2
        assert events[0].parent_id == cmd.span_id
        assert events[0].attrs["etype"] == EventType.RETRAIN
        # Events outside any command are kept, parentless — never dropped.
        assert events[1].parent_id is None

    def test_absorb_preserves_foreign_ids(self):
        parent = SpanRecorder(prefix="p")
        worker = SpanRecorder(prefix="w1", worker=1)
        req = parent.finish(parent.start("request:get", "request"))
        worker.finish(worker.start("cmd:get", "worker", parent=req.span_id))
        assert parent.absorb(worker.spans) == 1
        index = children_index(parent.spans)
        assert [c.span_id for c in index[req.span_id]] == ["w1-1"]


# -------------------------------------------------------------- tree tools


def _tree():
    """request(p-1, 100ns) -> batch(p-2) -> shard(p-3) -> worker(w0-1)
    -> event(w0-2); plus an orphan shard (partial trace)."""
    return [
        Span("p-1", None, "request:get_many", "request", 0.0, 100.0),
        Span("p-2", "p-1", "batch:0", "batch", 10.0, 80.0),
        Span("p-3", "p-2", "shard:0", "shard", 20.0, 60.0, worker=0),
        Span("w0-1", "p-3", "cmd:get_many", "worker", 25.0, 50.0, worker=0),
        Span("w0-2", "w0-1", "event:retrain", "event", 30.0, 0.0, worker=0,
             attrs={"etype": "retrain", "cost_ns": 5.0}),
        Span("p-9", "gone-1", "shard:1", "shard", 0.0, 10.0),
    ]


class TestTreeTools:
    def test_children_index_groups_by_parent(self):
        index = children_index(_tree())
        assert [s.span_id for s in index[None]] == ["p-1"]
        assert [s.span_id for s in index["p-1"]] == ["p-2"]
        assert [s.span_id for s in index["w0-1"]] == ["w0-2"]

    def test_roots_are_requests_plus_orphaned_intervals(self):
        assert [s.span_id for s in roots(_tree())] == ["p-1", "p-9"]

    def test_walk_is_depth_first_and_complete(self):
        spans = _tree()
        index = children_index(spans)
        ids = [s.span_id for s in walk(spans[0], index)]
        assert ids == ["p-1", "p-2", "p-3", "w0-1", "w0-2"]

    def test_subtree_events(self):
        spans = _tree()
        index = children_index(spans)
        assert [e.span_id for e in subtree_events(spans[0], index)] == ["w0-2"]
        assert subtree_events(spans[5], index) == []

    def test_summarize_counts_kinds_and_event_types(self):
        summary = summarize_spans(_tree())
        assert summary["request"] == {"spans": 1, "dur_ns": 100.0}
        assert summary["shard"]["spans"] == 2
        assert summary["events"] == {"retrain": 1}
        assert "batch" in summary


# ---------------------------------------------------------------- exports


class TestSpanExport:
    def test_jsonl_round_trip_is_exact(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        spans = _tree()
        assert write_spans_jsonl(spans, path) == len(spans)
        assert read_spans_jsonl(path) == spans

    def test_chrome_trace_structure(self):
        doc = chrome_trace_events(_tree())
        events = doc["traceEvents"]
        by_id = {
            e["args"]["span_id"]: e for e in events if e["ph"] in ("X", "i")
        }
        # Interval spans are complete events with duration in us.
        req = by_id["p-1"]
        assert req["ph"] == "X"
        assert req["dur"] == pytest.approx(0.1)  # 100 ns
        assert req["cat"] == "request"
        # Event spans are thread-scoped instants.
        assert by_id["w0-2"]["ph"] == "i"
        assert by_id["w0-2"]["s"] == "t"
        # Process rows follow the span-id prefix; shard lanes the worker.
        assert by_id["p-1"]["pid"] == 0
        assert by_id["w0-1"]["pid"] == 1
        assert by_id["p-3"]["tid"] == 1
        names = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert names == {"parent", "worker 0"}

    def test_chrome_align_slides_foreign_epoch_children(self):
        # A worker child whose clock epoch differs wildly from the
        # parent's must still render inside its parent.
        spans = [
            Span("p-1", None, "request:get", "request", 1000.0, 100.0),
            Span("w0-1", "p-1", "cmd:get", "worker", 9_999_000.0, 50.0),
        ]
        doc = chrome_trace_events(spans)
        by_id = {e["args"]["span_id"]: e for e in doc["traceEvents"][:2]}
        assert by_id["w0-1"]["ts"] == by_id["p-1"]["ts"]
        raw = chrome_trace_events(spans, align=False)
        assert raw["traceEvents"][1]["ts"] == pytest.approx(9_999.0)

    def test_chrome_trace_is_json_serializable(self, tmp_path):
        json.dumps(chrome_trace_events(_tree()))


# ------------------------------------------------------------ attribution


class TestAttribution:
    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            attribute_spans([], quantile=1.0)
        with pytest.raises(ValueError):
            attribute_spans([], quantile=-0.2)

    def test_empty_spans(self):
        result = attribute_spans([])
        assert result.requests == [] and result.tail == []

    def test_components_sum_exactly_to_request_total(self):
        result = attribute_spans(_tree(), quantile=0.0)
        (req,) = result.requests
        assert sum(req.components().values()) == pytest.approx(req.total_ns)
        assert req.total_ns == 100.0

    def test_decomposition_math(self):
        # One batch of 120ns with two shards: 100ns and 60ns.
        spans = [
            Span("p-1", None, "request:get_many", "request", 0.0, 200.0),
            Span("p-2", "p-1", "batch:0", "batch", 10.0, 120.0),
            Span("p-3", "p-2", "shard:0", "shard", 10.0, 100.0, worker=0),
            Span("p-4", "p-2", "shard:1", "shard", 10.0, 60.0, worker=1),
        ]
        result = attribute_spans(spans, quantile=0.0)
        (req,) = result.requests
        assert req.batches == 1 and req.shards == 2
        assert req.serialize_ns == pytest.approx(20.0)  # 120 - max(100, 60)
        assert req.skew_ns == pytest.approx(20.0)  # 100 - mean(80)
        assert req.struct_ns == 0.0  # no events
        assert req.work_ns == pytest.approx(80.0)  # the mean
        assert req.queue_ns == pytest.approx(80.0)  # 200 - 120
        assert sum(req.components().values()) == pytest.approx(200.0)

    def test_struct_share_uses_event_cost_over_worker_sim_time(self):
        # The shard's worker reports sim_ns=100; events cost 25 => 25%
        # of the (single-shard) mean goes to struct.
        spans = [
            Span("p-1", None, "request:insert_many", "request", 0.0, 80.0),
            Span("p-2", "p-1", "shard:0", "shard", 0.0, 80.0, worker=0),
            Span("w0-1", "p-2", "cmd:insert_many", "worker", 0.0, 70.0,
                 worker=0, attrs={"sim_ns": 100.0}),
            Span("w0-2", "w0-1", "event:retrain", "event", 5.0, 0.0,
                 worker=0, attrs={"etype": "retrain", "cost_ns": 25.0}),
        ]
        result = attribute_spans(spans, quantile=0.0)
        (req,) = result.requests
        assert req.events == 1
        assert req.event_counts == {"retrain": 1}
        assert req.struct_ns == pytest.approx(20.0)  # 80 * (25 / 100)
        assert req.work_ns == pytest.approx(60.0)
        assert sum(req.components().values()) == pytest.approx(80.0)

    def test_tail_keeps_the_slowest_quantile(self):
        spans = []
        for i in range(10):
            spans.append(
                Span(f"p-{i}", None, "request:get", "request", 0.0, float(i + 1))
            )
        result = attribute_spans(spans, quantile=0.8)
        assert [r.total_ns for r in result.tail] == [10.0, 9.0]
        assert [r.total_ns for r in result.requests] == [
            float(i + 1) for i in range(10)
        ]

    def test_tail_never_empty_when_requests_exist(self):
        spans = [Span("p-1", None, "request:get", "request", 0.0, 5.0)]
        assert len(attribute_spans(spans, quantile=0.99).tail) == 1

    def test_table_renders_totals_and_caps_rows(self):
        spans = [
            Span(f"p-{i}", None, "request:get", "request", 0.0, 1e6 * (i + 1))
            for i in range(20)
        ]
        text = attribute_spans(spans, quantile=0.0).table(limit=3)
        assert "TAIL p0+ (20 reqs)" in text
        assert "... 17 more tail requests" in text
        assert text.count("request:get (") == 3


# -------------------------------------------------------- simulator spans


LIGHT = OpProfile(mean_ns=500.0, p999_ns=1000.0, bytes_per_op=64.0)
WIDE_BW = BandwidthModel(peak_gbps=10_000.0)


def _simulate(spans=None, **kwargs):
    streams = make_streams(4, 100, 0.5, seed=7)
    spec = ConcurrencySpec(scheme="global_lock")
    return simulate(
        spec, LIGHT, streams, bandwidth=WIDE_BW, seed=7, spans=spans, **kwargs
    )


class TestSimulatorSpans:
    def test_one_request_span_per_op_at_rate_one(self):
        rec = SpanRecorder(rate=1.0, seed=3, prefix="sim")
        _simulate(spans=rec)
        requests = [s for s in rec.spans if s.kind == "request"]
        assert len(requests) == 400
        assert rec.requests == rec.sampled_requests == 400
        assert all(s.clock == "sim" for s in rec.spans)
        assert all(s.span_id.startswith("sim-") for s in rec.spans)

    def test_contention_events_attach_to_their_op(self):
        rec = SpanRecorder(rate=1.0, seed=3, prefix="sim")
        _simulate(spans=rec)
        events = [s for s in rec.spans if s.kind == "event"]
        assert events  # global_lock at 4 threads must contend
        index = children_index(rec.spans)
        by_id = {s.span_id: s for s in rec.spans}
        for ev in events:
            parent = by_id[ev.parent_id]
            assert parent.kind == "request"
            assert ev.worker == parent.worker
            assert ev.attrs["cost_ns"] > 0.0
        assert {e.name for e in events} <= {
            "event:latch_wait", "event:retrain_stall"
        }
        # summarize + subtree agree on the event population.
        total = sum(
            len(subtree_events(r, index))
            for r in rec.spans
            if r.kind == "request"
        )
        assert total == len(events)

    def test_recording_spans_never_perturbs_the_schedule(self):
        bare = _simulate()
        traced = _simulate(spans=SpanRecorder(rate=1.0, seed=99, prefix="sim"))
        assert traced.makespan_ns == bare.makespan_ns
        assert traced.latch_wait_ns == bare.latch_wait_ns
        assert traced.mean_ns == bare.mean_ns

    def test_sim_span_durations_match_recorded_latency(self):
        rec = SpanRecorder(rate=1.0, seed=3, prefix="sim")
        result = _simulate(spans=rec)
        requests = [s for s in rec.spans if s.kind == "request"]
        mean = sum(s.dur_ns for s in requests) / len(requests)
        assert mean == pytest.approx(result.mean_ns)


# ----------------------------------------------------------- HealthMonitor


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestHealthMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(0)
        with pytest.raises(ValueError):
            HealthMonitor(2, flight_capacity=0)

    def test_reply_updates_heartbeat_and_counts(self):
        clock = FakeClock()
        mon = HealthMonitor(2, clock=clock)
        mon.sent(0, "get_many", span_id="p-7")
        clock.t = 1.0
        mon.reply(0, 2.5e6, (12, 9.9e6))
        wh = mon.workers[0]
        assert (wh.cmds_sent, wh.cmds_done) == (1, 1)
        assert (wh.hb_cmds, wh.hb_busy_ns) == (12, 9.9e6)
        assert wh.last_reply_t == 1.0
        (entry,) = mon.flight(0)
        assert entry.status == "ok"
        assert entry.span_id == "p-7"
        assert entry.wall_ns == 2.5e6

    def test_untracked_reply_is_heartbeat_only(self):
        # The build-ready handshake replies without a tracked send.
        mon = HealthMonitor(1, clock=FakeClock())
        mon.reply(0, 0.0, (0, 0.0))
        wh = mon.workers[0]
        assert (wh.cmds_sent, wh.cmds_done) == (0, 0)
        assert wh.last_reply_t is not None

    def test_stall_fires_once_then_recovers(self):
        clock = FakeClock()
        mon = HealthMonitor(1, stall_threshold_s=5.0, clock=clock)
        mon.sent(0, "bulk_load")
        clock.t = 4.9
        assert mon.waiting(0) is False
        clock.t = 5.1
        assert mon.waiting(0) is True  # first crossing: warn
        assert mon.waiting(0) is False  # same command: no re-warn
        assert mon.stalled_workers() == [0]
        assert mon.workers[0].stalls == 1
        mon.reply(0, 1e6, (1, 1e6))
        assert mon.stalled_workers() == []
        assert mon.flight(0)[0].status == "stalled-ok"

    def test_waiting_without_in_flight_is_noop(self):
        mon = HealthMonitor(1, clock=FakeClock())
        assert mon.waiting(0) is False

    def test_died_marks_the_in_flight_command(self):
        mon = HealthMonitor(1, clock=FakeClock())
        mon.sent(0, "get_many")
        mon.died(0)
        (entry,) = mon.flight(0)
        assert entry.status == "died"
        assert mon.workers[0].in_flight is None
        mon.died(0)  # idempotent with nothing in flight

    def test_flight_ring_is_bounded(self):
        mon = HealthMonitor(1, flight_capacity=3, clock=FakeClock())
        for i in range(5):
            mon.sent(0, f"cmd{i}")
            mon.reply(0, 1.0, (i + 1, 1.0))
        entries = mon.flight(0)
        assert len(entries) == 3
        assert [e.cmd for e in entries] == ["cmd2", "cmd3", "cmd4"]
        assert [e.seq for e in entries] == [3, 4, 5]

    def test_snapshot_fields(self):
        clock = FakeClock()
        mon = HealthMonitor(2, clock=clock)
        mon.sent(1, "get_many")
        clock.t = 2.0
        mon.reply(1, 3e6, (1, 3e6))
        clock.t = 6.0
        snap = mon.snapshot()
        assert snap[0]["last_reply_age_s"] is None
        assert snap[1]["last_reply_age_s"] == pytest.approx(4.0)
        assert snap[1]["cmds_done"] == 1
        assert snap[1]["hb_busy_ms"] == pytest.approx(3.0)
        assert snap[1]["worker"] == 1

    def test_format_flight(self):
        assert "empty" in format_flight([])
        entry = FlightEntry(3, "get_many", "p-1", 0.0)
        entry.wall_ns = 1.25e6
        entry.status = "ok"
        text = format_flight([entry])
        assert "#3 get_many [ok] wall=1.25ms" in text
        many = [FlightEntry(i, "c", None, 0.0) for i in range(20)]
        assert format_flight(many, limit=4).count("\n") == 3
