"""Tests for the LIPP extension (precise-position learned index)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALEXIndex, LIPPIndex, PerfContext
from repro.errors import InvalidConfigurationError
from repro.learned.lipp import _Entry, _Node


def build(keys, perf=None, **kwargs):
    idx = LIPPIndex(perf=perf or PerfContext(), **kwargs)
    idx.bulk_load([(k, k * 2) for k in keys])
    return idx


class TestLIPPPrecisePositions:
    def test_every_lookup_is_exact(self):
        """The defining property: a get never searches — the predicted
        slot either holds the key or proves its absence."""
        rng = random.Random(1)
        keys = sorted(rng.sample(range(10**12), 20_000))
        perf = PerfContext()
        idx = build(keys, perf)
        mark = perf.begin()
        for k in rng.sample(keys, 2000):
            assert idx.get(k) == k * 2
        measured = perf.end(mark)
        # No correction search: zero galloping/binary probes, only one
        # equality comparison per reached entry.
        assert measured.counters.compare <= 2000
        assert measured.counters.dram_seq == 0

    def test_slot_order_is_key_order(self):
        rng = random.Random(2)
        keys = sorted(rng.sample(range(10**10), 5000))
        idx = build(keys)

        def in_order(node):
            for cell in node.slots:
                if isinstance(cell, _Entry):
                    yield cell.key
                elif isinstance(cell, _Node):
                    yield from in_order(cell)

        assert list(in_order(idx._root)) == keys

    def test_reads_beat_alex(self):
        """The §V-B prediction the paper could not test."""
        rng = random.Random(3)
        keys = sorted(rng.sample(range(10**12), 30_000))
        probes = rng.sample(keys, 3000)
        costs = {}
        for name, factory in (
            ("lipp", lambda p: LIPPIndex(perf=p)),
            ("alex", lambda p: ALEXIndex(perf=p)),
        ):
            perf = PerfContext()
            idx = factory(perf)
            idx.bulk_load([(k, k) for k in keys])
            mark = perf.begin()
            for k in probes:
                idx.get(k)
            costs[name] = perf.end(mark).time_ns
        assert costs["lipp"] < costs["alex"]


class TestLIPPMutations:
    def test_insert_get_delete_roundtrip(self):
        idx = build(list(range(0, 1000, 2)))
        for k in range(1, 1000, 2):
            idx.insert(k, -k)
        for k in range(1, 1000, 2):
            assert idx.get(k) == -k
        assert len(idx) == 1000
        for k in range(1, 1000, 4):
            assert idx.delete(k) is True
        for k in range(1, 1000, 4):
            assert idx.get(k) is None
        assert idx.delete(10**15) is False

    def test_conflict_chains_create_children(self):
        idx = build([10, 20])
        # Force collisions by inserting keys between existing ones.
        for k in (11, 12, 13, 14, 15):
            idx.insert(k, k)
        for k in (10, 11, 12, 13, 14, 15, 20):
            assert idx.get(k) == k * 2 if k in (10, 20) else True
        stats = idx.stats()
        assert stats.depth_max >= 2

    def test_rebuild_triggers_and_flattens(self):
        rng = random.Random(4)
        base = sorted(rng.sample(range(0, 10**9, 2), 2000))
        idx = build(base)
        for k in rng.sample(range(1, 10**9, 2), 6000):
            idx.insert(k, k)
        assert idx.retrain_stats.count > 0
        # After rebuilds the average depth stays modest.
        assert idx.stats().depth_avg < 6

    def test_range_sorted_and_complete(self):
        rng = random.Random(5)
        keys = sorted(rng.sample(range(10**8), 2000))
        idx = build(keys)
        lo, hi = keys[300], keys[1500]
        got = list(idx.range(lo, hi))
        assert got == [(k, k * 2) for k in keys if lo <= k <= hi]

    @given(
        st.lists(st.integers(0, 10**9), min_size=1, max_size=300, unique=True),
        st.lists(st.integers(0, 10**9), max_size=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_oracle_property(self, base, extra):
        idx = build(sorted(base))
        oracle = {k: k * 2 for k in base}
        for k in extra:
            idx.insert(k, k + 1)
            oracle[k] = k + 1
        assert len(idx) == len(oracle)
        for k in list(oracle)[:100]:
            assert idx.get(k) == oracle[k]


class TestLIPPConfig:
    def test_rejects_bad_slot_factor(self):
        with pytest.raises(InvalidConfigurationError):
            LIPPIndex(slot_factor=0.5)

    def test_empty_and_single(self):
        idx = LIPPIndex(perf=PerfContext())
        idx.bulk_load([])
        assert idx.get(1) is None
        assert len(idx) == 0
        idx.insert(5, "five")
        assert idx.get(5) == "five"
        assert len(idx) == 1

    def test_size_and_stats(self):
        idx = build(list(range(0, 10_000, 3)))
        assert idx.size_bytes() > 0
        assert idx.key_store_bytes() == 0  # entries live inside the nodes
        stats = idx.stats()
        assert stats.extra["entries"] == len(idx)
