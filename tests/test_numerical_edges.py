"""Numerical edge cases: 64-bit extremes, degenerate shapes, precision.

Double-precision arithmetic loses integer exactness above 2^53; every
model works in segment-local coordinates to stay accurate, and these
tests pin that behaviour at the edges of the key space.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALEXIndex, BPlusTree, PGMIndex, PerfContext, RMIIndex
from repro.core.approximation import (
    GreedyPLAApproximator,
    LSAApproximator,
    LSAGapApproximator,
    OptPLAApproximator,
)
from repro.core.approximation.lsa import fit_least_squares
from repro.errors import ReproError

U64_MAX = 2**64 - 1


def high_keys(n, seed=0):
    """Keys crowded just below 2^64."""
    rng = random.Random(seed)
    return sorted(rng.sample(range(U64_MAX - 10**9, U64_MAX), n))


class TestHighMagnitudeKeys:
    @pytest.mark.parametrize(
        "approximator",
        [
            LSAApproximator(segment_size=64),
            OptPLAApproximator(eps=8),
            GreedyPLAApproximator(eps=8),
            LSAGapApproximator(segment_size=64),
        ],
    )
    def test_approximators_survive_top_of_keyspace(self, approximator):
        keys = high_keys(2000, seed=1)
        approx = approximator.fit(keys)
        for i in range(0, 2000, 37):
            seg = approx.segment_for(keys[i])
            assert seg.start <= i < seg.start + seg.n

    def test_optpla_bound_holds_at_extremes(self):
        keys = high_keys(3000, seed=2)
        approx = OptPLAApproximator(eps=16).fit(keys)
        assert approx.max_error <= 16

    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: RMIIndex(perf=p),
            lambda p: PGMIndex(perf=p),
            lambda p: ALEXIndex(segment_size=512, perf=p),
            lambda p: BPlusTree(perf=p),
        ],
    )
    def test_indexes_at_keyspace_boundaries(self, factory):
        keys = [0, 1, 2, 2**63, U64_MAX - 2, U64_MAX - 1, U64_MAX]
        idx = factory(PerfContext())
        idx.bulk_load([(k, k) for k in keys])
        for k in keys:
            assert idx.get(k) == k
        assert idx.get(3) is None
        assert idx.get(U64_MAX - 3) is None


class TestDegenerateShapes:
    def test_two_adjacent_keys(self):
        for approximator in (
            OptPLAApproximator(eps=0),
            GreedyPLAApproximator(eps=0),
        ):
            approx = approximator.fit([7, 8])
            assert approx.max_error == 0

    def test_collinear_run_with_one_outlier(self):
        keys = list(range(0, 10_000, 10)) + [2**62]
        approx = OptPLAApproximator(eps=2).fit(keys)
        assert approx.max_error <= 2
        # The collinear prefix must not fragment.
        assert approx.leaf_count <= 3

    def test_giant_gap_between_clusters(self):
        keys = list(range(1000)) + list(range(2**63, 2**63 + 1000))
        approx = OptPLAApproximator(eps=4).fit(keys)
        assert approx.max_error <= 4
        idx = PGMIndex(eps=4, perf=PerfContext())
        idx.bulk_load([(k, k) for k in keys])
        assert idx.get(999) == 999
        assert idx.get(2**63) == 2**63
        assert idx.get(10**6) is None  # inside the gap

    def test_least_squares_on_identical_span(self):
        # Keys so close that float(x) collapses: slope falls back safely.
        base = 2**63
        keys = [base, base + 1]
        slope, intercept = fit_least_squares(keys, base)
        assert slope >= 0.0

    @given(st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_constant_stride_always_one_segment(self, stride):
        keys = list(range(0, 5000 * stride, stride))
        approx = OptPLAApproximator(eps=1).fit(keys)
        assert approx.leaf_count == 1


class TestFitInputValidation:
    """Error-bounded fits reject input their segmentation math cannot model.

    A NaN or an out-of-order key would silently produce a zero/negative
    key delta inside the greedy window (division blow-up) or a
    non-monotone hull in Opt-PLA; both now fail fast with a
    :class:`ReproError` subclass instead.
    """

    APPROXIMATORS = [
        GreedyPLAApproximator(eps=8),
        GreedyPLAApproximator(eps=8, vectorized=False),
        OptPLAApproximator(eps=8),
    ]

    @pytest.mark.parametrize("approximator", APPROXIMATORS)
    def test_nan_rejected(self, approximator):
        keys = [1.0, 2.0, float("nan"), 4.0]
        with pytest.raises(ReproError, match="NaN|ascending"):
            approximator.fit(keys)

    @pytest.mark.parametrize("approximator", APPROXIMATORS)
    def test_unsorted_rejected(self, approximator):
        with pytest.raises(ReproError, match="ascending"):
            approximator.fit([10, 5, 20, 30])

    @pytest.mark.parametrize("approximator", APPROXIMATORS)
    def test_duplicates_rejected(self, approximator):
        with pytest.raises(ReproError, match="ascending"):
            approximator.fit([1, 2, 2, 3])

    @pytest.mark.parametrize("approximator", APPROXIMATORS)
    def test_large_unsorted_rejected(self, approximator):
        # Big enough to hit the numpy validation path, not the scalar one.
        keys = list(range(1, 5000))
        keys[3000], keys[3001] = keys[3001], keys[3000]
        with pytest.raises(ReproError, match="ascending"):
            approximator.fit(keys)

    @pytest.mark.parametrize("approximator", APPROXIMATORS)
    def test_valid_input_still_fits(self, approximator):
        approx = approximator.fit(list(range(0, 1000, 3)))
        assert approx.n_keys == len(range(0, 1000, 3))


class TestPrecisionInvariant:
    @given(
        st.lists(
            st.integers(2**62, U64_MAX), min_size=2, max_size=200, unique=True
        ).map(sorted),
        st.sampled_from([1, 8, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_optpla_bound_is_scale_free(self, keys, eps):
        approx = OptPLAApproximator(eps=eps).fit(keys)
        for i, key in enumerate(keys):
            seg = approx.segment_for(key)
            assert abs(seg.predict(key) - (i - seg.start)) <= eps
