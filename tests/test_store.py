"""Tests for the simulated PMem device and the Viper-style store."""

import random

import pytest

from repro.errors import CrashedError, DeviceError, UnsupportedOperationError
from repro.learned import ALEXIndex, DynamicPGMIndex, RMIIndex
from repro.perf import PerfContext
from repro.store import PMemDevice, ViperStore
from repro.traditional import CCEH, BPlusTree


def make_store(index_factory, perf=None, **kwargs):
    perf = perf or PerfContext()
    return ViperStore(index_factory(perf), perf, **kwargs), perf


class TestPMemDevice:
    def test_write_read_roundtrip(self):
        perf = PerfContext()
        dev = PMemDevice(perf=perf)
        page = dev.allocate_page()
        dev.write_record(page, 0, 42, "hello")
        assert dev.read_record(page, 0) == (42, "hello")

    def test_access_charges_nvm_blocks(self):
        perf = PerfContext()
        dev = PMemDevice(record_bytes=208, perf=perf)  # 208B -> 1 block
        page = dev.allocate_page()
        before = perf.counters.nvm_write
        dev.write_record(page, 0, 1, "v")
        assert perf.counters.nvm_write == before + 1
        dev2 = PMemDevice(record_bytes=1024, perf=perf)  # 1024B -> 4 blocks
        page2 = dev2.allocate_page()
        before = perf.counters.nvm_write
        dev2.write_record(page2, 0, 1, "v")
        assert perf.counters.nvm_write == before + 4

    def test_bad_access_rejected(self):
        dev = PMemDevice(perf=PerfContext())
        with pytest.raises(DeviceError):
            dev.read_record(0, 0)
        page = dev.allocate_page()
        with pytest.raises(DeviceError):
            dev.write_record(page, 999, 1, "v")
        with pytest.raises(DeviceError):
            dev.read_record(page, 3)  # empty slot

    def test_capacity_limit(self):
        dev = PMemDevice(capacity_pages=2, perf=PerfContext())
        dev.allocate_page()
        dev.allocate_page()
        with pytest.raises(DeviceError):
            dev.allocate_page()

    def test_scan_returns_live_records_in_order(self):
        dev = PMemDevice(slots_per_page=4, perf=PerfContext())
        p0 = dev.allocate_page()
        p1 = dev.allocate_page()
        dev.write_record(p0, 0, 1, "a")
        dev.write_record(p0, 2, 2, "b")
        dev.write_record(p1, 1, 3, "c")
        dev.free_record(p0, 2)
        got = [(k, v) for _, _, k, v in dev.scan_records()]
        assert got == [(1, "a"), (3, "c")]


class TestViperStore:
    def test_bulk_load_and_get(self):
        store, _ = make_store(lambda p: BPlusTree(perf=p))
        items = [(i, f"v{i}") for i in range(0, 2000, 2)]
        store.bulk_load(items)
        assert len(store) == 1000
        assert store.get(100) == "v100"
        assert store.get(101) is None

    def test_put_get_update_delete(self):
        store, _ = make_store(lambda p: BPlusTree(perf=p))
        store.bulk_load([(i, i) for i in range(0, 100, 2)])
        store.put(1, "one")
        assert store.get(1) == "one"
        assert store.update(1, "uno") is True
        assert store.get(1) == "uno"
        assert store.update(3, "x") is False
        assert store.delete(1) is True
        assert store.get(1) is None
        assert store.delete(1) is False

    def test_put_with_learned_index(self):
        store, _ = make_store(lambda p: ALEXIndex(segment_size=256, perf=p))
        items = [(i, i * 2) for i in range(0, 4000, 2)]
        store.bulk_load(items)
        rng = random.Random(1)
        for k in rng.sample(range(1, 4000, 2), 500):
            store.put(k, -k)
        for k in rng.sample(range(1, 4000, 2), 500):
            expected = -k if store.index.get(k) is not None else None
        assert store.get(3999) is None or True  # smoke
        for k, v in rng.sample(items, 200):
            assert store.get(k) == v

    def test_scan_through_sorted_index(self):
        store, _ = make_store(lambda p: DynamicPGMIndex(perf=p))
        items = [(i, i * 7) for i in range(0, 1000, 2)]
        store.bulk_load(items)
        got = store.scan(100, 10)
        assert got == [(k, k * 7) for k in range(100, 120, 2)]

    def test_scan_rejected_on_hash_index(self):
        store, _ = make_store(lambda p: CCEH(segment_bits=6, perf=p))
        store.bulk_load([(i, i) for i in range(100)])
        with pytest.raises(UnsupportedOperationError):
            store.scan(0, 10)

    def test_get_charges_nvm_read(self):
        store, perf = make_store(lambda p: BPlusTree(perf=p))
        store.bulk_load([(i, i) for i in range(100)])
        before = perf.counters.nvm_read
        store.get(50)
        assert perf.counters.nvm_read == before + 1

    def test_space_overhead_scenarios(self):
        store, _ = make_store(lambda p: BPlusTree(perf=p))
        store.bulk_load([(i, i) for i in range(1000)])
        overhead = store.space_overhead()
        assert overhead["index"] > 0
        # 16 bytes per resident key slot (key + record pointer), 200-byte
        # values on top of that for the in-memory-database scenario.
        assert overhead["index+key"] >= overhead["index"] + 16_000
        assert overhead["index+kv"] == overhead["index+key"] + 200_000


class TestCrashRecovery:
    def test_crash_blocks_operations(self):
        store, _ = make_store(lambda p: BPlusTree(perf=p))
        store.bulk_load([(1, "a")])
        store.crash()
        with pytest.raises(CrashedError):
            store.get(1)
        with pytest.raises(CrashedError):
            store.put(2, "b")

    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: BPlusTree(perf=p),
            lambda p: RMIIndex(perf=p),
            lambda p: DynamicPGMIndex(perf=p),
            lambda p: ALEXIndex(segment_size=256, perf=p),
        ],
    )
    def test_recovery_restores_committed_state(self, factory):
        perf = PerfContext()
        store = ViperStore(BPlusTree(perf=perf), perf)
        items = [(i, i * 3) for i in range(0, 3000, 2)]
        store.bulk_load(items)
        oracle = dict(items)
        rng = random.Random(4)
        for k in rng.sample(range(1, 3000, 2), 300):
            store.put(k, -k)
            oracle[k] = -k
        for k in rng.sample(range(0, 3000, 2), 100):
            store.put(k, "updated")
            oracle[k] = "updated"

        store.crash()
        elapsed = store.recover(lambda: factory(perf))
        assert elapsed > 0
        assert len(store) == len(oracle)
        for k in rng.sample(sorted(oracle), 500):
            assert store.get(k) == oracle[k]

    def test_recovery_charges_nvm_scan(self):
        perf = PerfContext()
        store = ViperStore(BPlusTree(perf=perf), perf)
        store.bulk_load([(i, i) for i in range(1000)])
        store.crash()
        before = perf.counters.nvm_read
        store.recover(lambda: BPlusTree(perf=perf))
        # The scan is charged at streaming bandwidth: one read per
        # SEQ_BLOCKS_PER_READ blocks.
        from repro.store.pmem import PMemDevice

        expected = 1000 // PMemDevice.SEQ_BLOCKS_PER_READ
        assert perf.counters.nvm_read - before >= expected

    def test_store_usable_after_recovery(self):
        perf = PerfContext()
        store = ViperStore(BPlusTree(perf=perf), perf)
        store.bulk_load([(i, i) for i in range(0, 100, 2)])
        store.crash()
        store.recover(lambda: BPlusTree(perf=perf))
        store.put(1, "post-recovery")
        assert store.get(1) == "post-recovery"
