"""The process-parallel engine must be invisible, like sharding itself.

Contract under test: a :class:`~repro.concurrency.ParallelShardedIndex`
(worker *processes*, shared-memory transport) returns bit-identical
answers to the flat in-process index for every registry spec and every
worker count — and it fails loudly (``WorkerDiedError``) instead of
hanging when a worker dies, and leaks no shared-memory segments on
close.
"""

import os
import signal
import time

import pytest

from repro import PerfContext, ViperStore
from repro.concurrency import (
    ParallelShardedIndex,
    ParallelShardedStore,
    ParallelSortedShardedIndex,
    parallel_sharded_index,
    parallel_sharded_store,
)
from repro.core.interfaces import SortedIndex
from repro.errors import ReproError, WorkerDiedError
from repro.obs import MetricsRegistry, Tracer
from repro.perf import Profiler
from repro.registry import specs
from repro.workloads import uniform_keys

WORKER_COUNTS = (1, 2, 4)

N_KEYS = 500
N_EXTRA = 100


def _keys():
    keys = uniform_keys(N_KEYS + N_EXTRA, seed=11)
    return keys[:N_KEYS], keys[N_KEYS:]


def _spec_params():
    return [pytest.param(spec, id=spec.name) for spec in specs()]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("spec", _spec_params())
def test_engine_matches_flat_index(spec, workers):
    load, extra = _keys()
    items = [(k, k * 3) for k in load]

    flat = spec.build(PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_index(spec, workers)
    try:
        engine.bulk_load(items)

        probe = list(load) + list(extra)
        assert engine.get_many(probe) == flat.get_many(probe)
        assert len(engine) == len(flat)

        if flat.capabilities().updatable:
            flat.insert_many([(k, k * 3) for k in extra])
            engine.insert_many([(k, k * 3) for k in extra])
            assert engine.get_many(probe) == flat.get_many(probe)
            for k in load[:10]:
                flat.update(k, k + 1)
                engine.update(k, k + 1)
            assert engine.get_many(load[:10]) == flat.get_many(load[:10])
            for k in load[10:15]:
                assert engine.delete(k) == flat.delete(k)
            assert engine.get_many(load[10:15]) == [None] * 5
            assert len(engine) == len(flat)

        if isinstance(flat, SortedIndex):
            assert isinstance(engine, ParallelSortedShardedIndex)
            start = sorted(load)[len(load) // 3]
            for count in (1, 40, len(load)):
                assert engine.scan(start, count) == flat.scan(start, count)
            assert list(engine.range(start, start + 10**17)) == list(
                flat.range(start, start + 10**17)
            )

        stats = engine.stats()
        assert stats.leaf_count >= min(workers, flat.stats().leaf_count or 1)
    finally:
        engine.close()


@pytest.mark.parametrize("workers", (1, 3))
def test_engine_store_matches_flat_store(workers):
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, f"v{k}") for k in load]

    flat = ViperStore(spec.build(PerfContext()), PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_store(spec, workers)
    try:
        engine.bulk_load(items)
        probe = list(load) + list(extra)
        assert engine.get_many(probe) == flat.get_many(probe)
        for k in extra:
            flat.put(k, f"n{k}")
            engine.put(k, f"n{k}")
        assert engine.get_many(probe) == flat.get_many(probe)
        assert (load[0] in engine) and (extra[0] in engine)
        assert len(engine) == len(flat)
        start = sorted(load)[5]
        assert engine.scan(start, 30) == flat.scan(start, 30)
    finally:
        engine.close()


def test_pipe_transport_matches_shm():
    spec = next(s for s in specs() if s.name == "BTree")
    load, extra = _keys()
    items = [(k, k) for k in load]
    probe = list(load) + list(extra)

    shm_engine = parallel_sharded_index(spec, 2, transport="shm")
    pipe_engine = parallel_sharded_index(spec, 2, transport="pipe")
    try:
        shm_engine.bulk_load(items)
        pipe_engine.bulk_load(items)
        assert shm_engine.get_many(probe) == pipe_engine.get_many(probe)
        # Non-integer values force the pipe fallback inside the shm
        # engine; answers must still agree.
        extras = [(k, f"s{k}") for k in extra]
        shm_engine.upsert_many(extras)
        pipe_engine.upsert_many(extras)
        assert shm_engine.get_many(extra) == pipe_engine.get_many(extra)
    finally:
        shm_engine.close()
        pipe_engine.close()


def test_worker_death_is_surfaced_not_hung():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        victim = engine._handles[1].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5)
        with pytest.raises(WorkerDiedError) as err:
            # Several batches: at least one routes to the dead worker.
            for _ in range(3):
                engine.get_many(load)
        assert "worker 1" in str(err.value)
        # The engine latches broken: no silent half-answers afterwards.
        with pytest.raises(WorkerDiedError):
            engine.get_many(load[:5])
    finally:
        engine.close()  # close after a crash must still succeed


def test_close_unlinks_every_shm_segment():
    shm_mod = pytest.importorskip("multiprocessing.shared_memory")
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, transport="shm")
    names = [h.seg.shm.name for h in engine._handles]
    assert len(names) == 2
    engine.bulk_load([(k, k) for k in load])
    engine.get_many(load)
    engine.close()
    engine.close()  # idempotent
    time.sleep(0.05)
    for name in names:
        with pytest.raises(FileNotFoundError):
            shm_mod.SharedMemory(name=name)
    with pytest.raises(ReproError):
        engine.get_many(load[:1])


def test_drain_obs_merges_worker_state_into_parent():
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    engine = parallel_sharded_index(spec, 2, trace_rate=1.0, seed=7)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        engine.insert_many([(k, k) for k in extra])

        tracer = Tracer(rate=0.0)
        metrics = MetricsRegistry()
        profiler = Profiler(PerfContext())
        payloads = engine.drain_obs(
            tracer=tracer, metrics=metrics, profiler=profiler
        )
        assert len(payloads) == 2
        # Worker-side lifecycle events land in the parent tracer...
        assert sum(tracer.counts.values()) > 0
        # ...command metrics in the parent registry (per-worker labels)...
        names = {name for name, _kind, _labels, _inst in metrics.collect()}
        assert "repro_worker_cmds_total" in names
        # ...and measured work in the parent profiler.
        assert profiler.op_count > 0
        assert profiler.total.total() > 0
    finally:
        engine.close()

    # Simulated charges flow back continuously (not only at drain time):
    # the engine's own PerfContext saw the workers' counter deltas.
    assert engine.perf.counters.total() > 0


def test_engine_perf_charges_match_in_process_sharding():
    """The simulated cost model must not notice the process boundary."""
    from repro.concurrency import sharded_index

    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, k) for k in load]
    probe = list(load) + list(extra)

    perf_local = PerfContext()
    local = sharded_index(spec.build, 2, perf=perf_local)
    local.bulk_load(items)
    local.get_many(probe)

    perf_engine = PerfContext()
    engine = parallel_sharded_index(spec, 2, perf=perf_engine)
    try:
        engine.bulk_load(items)
        engine.get_many(probe)
    finally:
        engine.close()

    assert perf_engine.counters.as_dict() == perf_local.counters.as_dict()
    assert perf_engine.counters.total() > 0


def test_engine_utilization_and_balance_accounting():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        assert sum(engine.worker_ops) == len(load)
        shares = engine.worker_utilization()
        assert len(shares) == 2
        assert all(s >= 0.0 for s in shares)
        assert sum(shares) == pytest.approx(1.0)
        assert engine.name.startswith("parallel[")
    finally:
        engine.close()


def test_bad_configuration_rejected():
    with pytest.raises(ReproError):
        ParallelShardedIndex("pgm", 0)
    with pytest.raises(ReproError):
        ParallelShardedIndex("pgm", 2, transport="carrier-pigeon")
    with pytest.raises(ReproError):
        ParallelShardedStore("no-such-spec", 2)
