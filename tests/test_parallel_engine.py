"""The process-parallel engine must be invisible, like sharding itself.

Contract under test: a :class:`~repro.concurrency.ParallelShardedIndex`
(worker *processes*, shared-memory transport) returns bit-identical
answers to the flat in-process index for every registry spec and every
worker count — and it fails loudly (``WorkerDiedError``) instead of
hanging when a worker dies, and leaks no shared-memory segments on
close.
"""

import os
import signal
import time

import pytest

from repro import PerfContext, ViperStore
from repro.concurrency import (
    ParallelShardedIndex,
    ParallelShardedStore,
    ParallelSortedShardedIndex,
    parallel_sharded_index,
    parallel_sharded_store,
)
from repro.core.interfaces import SortedIndex
from repro.errors import ReproError, WorkerDiedError
from repro.obs import MetricsRegistry, Tracer
from repro.perf import Profiler
from repro.registry import specs
from repro.workloads import uniform_keys

WORKER_COUNTS = (1, 2, 4)

N_KEYS = 500
N_EXTRA = 100


def _keys():
    keys = uniform_keys(N_KEYS + N_EXTRA, seed=11)
    return keys[:N_KEYS], keys[N_KEYS:]


def _spec_params():
    return [pytest.param(spec, id=spec.name) for spec in specs()]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("spec", _spec_params())
def test_engine_matches_flat_index(spec, workers):
    load, extra = _keys()
    items = [(k, k * 3) for k in load]

    flat = spec.build(PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_index(spec, workers)
    try:
        engine.bulk_load(items)

        probe = list(load) + list(extra)
        assert engine.get_many(probe) == flat.get_many(probe)
        assert len(engine) == len(flat)

        if flat.capabilities().updatable:
            flat.insert_many([(k, k * 3) for k in extra])
            engine.insert_many([(k, k * 3) for k in extra])
            assert engine.get_many(probe) == flat.get_many(probe)
            for k in load[:10]:
                flat.update(k, k + 1)
                engine.update(k, k + 1)
            assert engine.get_many(load[:10]) == flat.get_many(load[:10])
            for k in load[10:15]:
                assert engine.delete(k) == flat.delete(k)
            assert engine.get_many(load[10:15]) == [None] * 5
            assert len(engine) == len(flat)

        if isinstance(flat, SortedIndex):
            assert isinstance(engine, ParallelSortedShardedIndex)
            start = sorted(load)[len(load) // 3]
            for count in (1, 40, len(load)):
                assert engine.scan(start, count) == flat.scan(start, count)
            assert list(engine.range(start, start + 10**17)) == list(
                flat.range(start, start + 10**17)
            )

        stats = engine.stats()
        assert stats.leaf_count >= min(workers, flat.stats().leaf_count or 1)
    finally:
        engine.close()


@pytest.mark.parametrize("workers", (1, 3))
def test_engine_store_matches_flat_store(workers):
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, f"v{k}") for k in load]

    flat = ViperStore(spec.build(PerfContext()), PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_store(spec, workers)
    try:
        engine.bulk_load(items)
        probe = list(load) + list(extra)
        assert engine.get_many(probe) == flat.get_many(probe)
        for k in extra:
            flat.put(k, f"n{k}")
            engine.put(k, f"n{k}")
        assert engine.get_many(probe) == flat.get_many(probe)
        assert (load[0] in engine) and (extra[0] in engine)
        assert len(engine) == len(flat)
        start = sorted(load)[5]
        assert engine.scan(start, 30) == flat.scan(start, 30)
    finally:
        engine.close()


def test_pipe_transport_matches_shm():
    spec = next(s for s in specs() if s.name == "BTree")
    load, extra = _keys()
    items = [(k, k) for k in load]
    probe = list(load) + list(extra)

    shm_engine = parallel_sharded_index(spec, 2, transport="shm")
    pipe_engine = parallel_sharded_index(spec, 2, transport="pipe")
    try:
        shm_engine.bulk_load(items)
        pipe_engine.bulk_load(items)
        assert shm_engine.get_many(probe) == pipe_engine.get_many(probe)
        # Non-integer values force the pipe fallback inside the shm
        # engine; answers must still agree.
        extras = [(k, f"s{k}") for k in extra]
        shm_engine.upsert_many(extras)
        pipe_engine.upsert_many(extras)
        assert shm_engine.get_many(extra) == pipe_engine.get_many(extra)
    finally:
        shm_engine.close()
        pipe_engine.close()


def test_worker_death_is_surfaced_not_hung():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        victim = engine._handles[1].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5)
        with pytest.raises(WorkerDiedError) as err:
            # Several batches: at least one routes to the dead worker.
            for _ in range(3):
                engine.get_many(load)
        assert "worker 1" in str(err.value)
        # The engine latches broken: no silent half-answers afterwards.
        with pytest.raises(WorkerDiedError):
            engine.get_many(load[:5])
    finally:
        engine.close()  # close after a crash must still succeed


def test_close_unlinks_every_shm_segment():
    shm_mod = pytest.importorskip("multiprocessing.shared_memory")
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, transport="shm")
    names = [h.seg.shm.name for h in engine._handles]
    assert len(names) == 2
    engine.bulk_load([(k, k) for k in load])
    engine.get_many(load)
    engine.close()
    engine.close()  # idempotent
    time.sleep(0.05)
    for name in names:
        with pytest.raises(FileNotFoundError):
            shm_mod.SharedMemory(name=name)
    with pytest.raises(ReproError):
        engine.get_many(load[:1])


def test_drain_obs_merges_worker_state_into_parent():
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    engine = parallel_sharded_index(spec, 2, trace_rate=1.0, seed=7)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        engine.insert_many([(k, k) for k in extra])

        tracer = Tracer(rate=0.0)
        metrics = MetricsRegistry()
        profiler = Profiler(PerfContext())
        payloads = engine.drain_obs(
            tracer=tracer, metrics=metrics, profiler=profiler
        )
        assert len(payloads) == 2
        # Worker-side lifecycle events land in the parent tracer...
        assert sum(tracer.counts.values()) > 0
        # ...command metrics in the parent registry (per-worker labels)...
        names = {name for name, _kind, _labels, _inst in metrics.collect()}
        assert "repro_worker_cmds_total" in names
        # ...and measured work in the parent profiler.
        assert profiler.op_count > 0
        assert profiler.total.total() > 0
    finally:
        engine.close()

    # Simulated charges flow back continuously (not only at drain time):
    # the engine's own PerfContext saw the workers' counter deltas.
    assert engine.perf.counters.total() > 0


def test_engine_perf_charges_match_in_process_sharding():
    """The simulated cost model must not notice the process boundary."""
    from repro.concurrency import sharded_index

    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, k) for k in load]
    probe = list(load) + list(extra)

    perf_local = PerfContext()
    local = sharded_index(spec.build, 2, perf=perf_local)
    local.bulk_load(items)
    local.get_many(probe)

    perf_engine = PerfContext()
    engine = parallel_sharded_index(spec, 2, perf=perf_engine)
    try:
        engine.bulk_load(items)
        engine.get_many(probe)
    finally:
        engine.close()

    assert perf_engine.counters.as_dict() == perf_local.counters.as_dict()
    assert perf_engine.counters.total() > 0


def test_engine_utilization_and_balance_accounting():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        assert sum(engine.worker_ops) == len(load)
        shares = engine.worker_utilization()
        assert len(shares) == 2
        assert all(s >= 0.0 for s in shares)
        assert sum(shares) == pytest.approx(1.0)
        assert engine.name.startswith("parallel[")
    finally:
        engine.close()


def test_bad_configuration_rejected():
    with pytest.raises(ReproError):
        ParallelShardedIndex("pgm", 0)
    with pytest.raises(ReproError):
        ParallelShardedIndex("pgm", 2, transport="carrier-pigeon")
    with pytest.raises(ReproError):
        ParallelShardedStore("no-such-spec", 2)


def _walk_to_root(span, by_id):
    while span.parent_id is not None:
        span = by_id[span.parent_id]
    return span


def test_traced_run_attaches_every_worker_event_to_its_request():
    """Acceptance: a traced 2-worker run yields a span tree where every
    worker-side lifecycle event is reachable from an originating
    request span."""
    from repro.obs import children_index, subtree_events

    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    engine = parallel_sharded_index(
        spec, 2, trace_rate=1.0, span_rate=1.0, seed=7
    )
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        engine.insert_many([(k, k) for k in extra])
        engine.get(load[0])
        engine.drain_obs(spans=engine.spans)
        spans = list(engine.spans.spans)
    finally:
        engine.close()

    by_id = {s.span_id: s for s in spans}
    kinds = {s.kind for s in spans}
    assert kinds == {"request", "batch", "shard", "worker", "event"}
    events = [s for s in spans if s.kind == "event"]
    assert events, "a traced PGM insert run must emit lifecycle events"
    for ev in events:
        root = _walk_to_root(ev, by_id)
        assert root.kind == "request"
        assert ev.worker >= 0  # events fire inside worker processes

    # The tree is consistent both ways: walking down from the requests
    # reaches exactly the events that walk up to a request.
    index = children_index(spans)
    reachable = sum(
        len(subtree_events(r, index)) for r in spans if r.kind == "request"
    )
    assert reachable == len(events)

    # Worker command spans parent under parent-side shard spans.
    workers = [s for s in spans if s.kind == "worker"]
    assert workers
    assert all(by_id[w.parent_id].kind == "shard" for w in workers)


def test_span_counts_match_untraced_event_counters_at_rate_one():
    """Acceptance: at sample rate 1.0 the event-span population equals
    the exact (pre-sampling) lifecycle counters of an untraced run."""
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()

    def run(span_rate):
        engine = parallel_sharded_index(
            spec, 2, trace_rate=1.0, span_rate=span_rate, seed=7
        )
        try:
            engine.bulk_load([(k, k) for k in load])
            engine.get_many(load)
            engine.insert_many([(k, k) for k in extra])
            tracer = Tracer(rate=0.0)
            engine.drain_obs(tracer=tracer, spans=engine.spans)
            spans = list(engine.spans.spans) if engine.spans else []
            return tracer, spans, engine.spans
        finally:
            engine.close()

    _, spans, recorder = run(span_rate=1.0)
    untraced_tracer, _, untraced_recorder = run(span_rate=0.0)
    assert untraced_recorder is None  # rate 0: the no-op fast path

    by_etype = {}
    for s in spans:
        if s.kind == "event":
            etype = s.attrs["etype"]
            by_etype[etype] = by_etype.get(etype, 0) + 1
    assert by_etype == untraced_tracer.counts

    # Every engine API call became exactly one sampled request span.
    api_calls = 3  # bulk_load + get_many + insert_many
    assert recorder.requests == recorder.sampled_requests == api_calls
    assert sum(1 for s in spans if s.kind == "request") == api_calls


def test_partial_span_rate_still_counts_every_request():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, span_rate=0.5, seed=3)
    try:
        engine.bulk_load([(k, k) for k in load])
        for _ in range(40):
            engine.get_many(load[:20])
        assert engine.spans.requests == 41  # bulk_load + 40 batches
        assert 0 < engine.spans.sampled_requests < 41
    finally:
        engine.close()


def test_worker_death_dumps_flight_recorder():
    """Acceptance: killing a worker mid-run attaches its flight-recorder
    ring to the WorkerDiedError."""
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, span_rate=1.0)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)  # populate worker 1's flight ring
        victim = engine._handles[1].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5)
        with pytest.raises(WorkerDiedError) as err:
            for _ in range(3):
                engine.get_many(load)
        exc = err.value
        assert exc.worker_id == 1
        assert exc.pid == victim.pid
        assert exc.flight, "the postmortem must carry the flight ring"
        assert {e["status"] for e in exc.flight} <= {"ok", "died"}
        # Span-traced commands carry their span ids into the postmortem.
        assert any(e["span_id"] for e in exc.flight)
        assert "flight recorder (most recent last):" in str(exc)
        assert "while serving 'get_many'" in str(exc)
        assert "#" in str(exc)  # the formatted flight lines
        # The latched engine re-raises the same postmortem.
        with pytest.raises(WorkerDiedError) as again:
            engine.get_many(load[:5])
        assert again.value.flight == exc.flight
    finally:
        engine.close()


def test_health_monitor_tracks_live_engine():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        snap = engine.health.snapshot()
        assert [row["worker"] for row in snap] == [0, 1]
        for row in snap:
            assert row["cmds_sent"] == row["cmds_done"] > 0
            assert row["last_reply_age_s"] is not None
            assert row["stalls"] == 0 and not row["stalled"]
        # Heartbeats agree with the parent's own books.
        for wh, ops in zip(engine.health.workers, engine.worker_ops):
            assert wh.hb_cmds == wh.cmds_done
        assert engine.health.stalled_workers() == []
        assert all(engine.health.flight(w) for w in range(2))
    finally:
        engine.close()
