"""The process-parallel engine must be invisible, like sharding itself.

Contract under test: a :class:`~repro.concurrency.ParallelShardedIndex`
(worker *processes*, shared-memory transport) returns bit-identical
answers to the flat in-process index for every registry spec and every
worker count — and it fails loudly (``WorkerDiedError``) instead of
hanging when a worker dies, and leaks no shared-memory segments on
close.
"""

import os
import signal
import time

import pytest

from repro import PerfContext, ViperStore
from repro.concurrency import (
    ParallelShardedIndex,
    ParallelShardedStore,
    ParallelSortedShardedIndex,
    parallel_sharded_index,
    parallel_sharded_store,
)
from repro.core.interfaces import SortedIndex
from repro.errors import ReproError, WorkerDiedError
from repro.obs import MetricsRegistry, Tracer
from repro.perf import Profiler
from repro.registry import specs
from repro.workloads import uniform_keys

WORKER_COUNTS = (1, 2, 4)

N_KEYS = 500
N_EXTRA = 100


def _keys():
    keys = uniform_keys(N_KEYS + N_EXTRA, seed=11)
    return keys[:N_KEYS], keys[N_KEYS:]


def _spec_params():
    return [pytest.param(spec, id=spec.name) for spec in specs()]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("spec", _spec_params())
def test_engine_matches_flat_index(spec, workers):
    load, extra = _keys()
    items = [(k, k * 3) for k in load]

    flat = spec.build(PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_index(spec, workers)
    try:
        engine.bulk_load(items)

        probe = list(load) + list(extra)
        assert engine.get_many(probe) == flat.get_many(probe)
        assert len(engine) == len(flat)

        if flat.capabilities().updatable:
            flat.insert_many([(k, k * 3) for k in extra])
            engine.insert_many([(k, k * 3) for k in extra])
            assert engine.get_many(probe) == flat.get_many(probe)
            for k in load[:10]:
                flat.update(k, k + 1)
                engine.update(k, k + 1)
            assert engine.get_many(load[:10]) == flat.get_many(load[:10])
            for k in load[10:15]:
                assert engine.delete(k) == flat.delete(k)
            assert engine.get_many(load[10:15]) == [None] * 5
            assert len(engine) == len(flat)

        if isinstance(flat, SortedIndex):
            assert isinstance(engine, ParallelSortedShardedIndex)
            start = sorted(load)[len(load) // 3]
            for count in (1, 40, len(load)):
                assert engine.scan(start, count) == flat.scan(start, count)
            assert list(engine.range(start, start + 10**17)) == list(
                flat.range(start, start + 10**17)
            )

        stats = engine.stats()
        assert stats.leaf_count >= min(workers, flat.stats().leaf_count or 1)
    finally:
        engine.close()


@pytest.mark.parametrize("workers", (1, 3))
def test_engine_store_matches_flat_store(workers):
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, f"v{k}") for k in load]

    flat = ViperStore(spec.build(PerfContext()), PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_store(spec, workers)
    try:
        engine.bulk_load(items)
        probe = list(load) + list(extra)
        assert engine.get_many(probe) == flat.get_many(probe)
        for k in extra:
            flat.put(k, f"n{k}")
            engine.put(k, f"n{k}")
        assert engine.get_many(probe) == flat.get_many(probe)
        assert (load[0] in engine) and (extra[0] in engine)
        assert len(engine) == len(flat)
        start = sorted(load)[5]
        assert engine.scan(start, 30) == flat.scan(start, 30)
    finally:
        engine.close()


def test_pipe_transport_matches_shm():
    spec = next(s for s in specs() if s.name == "BTree")
    load, extra = _keys()
    items = [(k, k) for k in load]
    probe = list(load) + list(extra)

    shm_engine = parallel_sharded_index(spec, 2, transport="shm")
    pipe_engine = parallel_sharded_index(spec, 2, transport="pipe")
    try:
        shm_engine.bulk_load(items)
        pipe_engine.bulk_load(items)
        assert shm_engine.get_many(probe) == pipe_engine.get_many(probe)
        # Non-integer values force the pipe fallback inside the shm
        # engine; answers must still agree.
        extras = [(k, f"s{k}") for k in extra]
        shm_engine.upsert_many(extras)
        pipe_engine.upsert_many(extras)
        assert shm_engine.get_many(extra) == pipe_engine.get_many(extra)
    finally:
        shm_engine.close()
        pipe_engine.close()


def test_worker_death_is_surfaced_not_hung():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        victim = engine._handles[1].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5)
        with pytest.raises(WorkerDiedError) as err:
            # Several batches: at least one routes to the dead worker.
            for _ in range(3):
                engine.get_many(load)
        assert "worker 1" in str(err.value)
        # The engine latches broken: no silent half-answers afterwards.
        with pytest.raises(WorkerDiedError):
            engine.get_many(load[:5])
    finally:
        engine.close()  # close after a crash must still succeed


def test_close_unlinks_every_shm_segment():
    shm_mod = pytest.importorskip("multiprocessing.shared_memory")
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, transport="shm")
    names = [h.seg.shm.name for h in engine._handles]
    assert len(names) == 2
    engine.bulk_load([(k, k) for k in load])
    engine.get_many(load)
    engine.close()
    engine.close()  # idempotent
    time.sleep(0.05)
    for name in names:
        with pytest.raises(FileNotFoundError):
            shm_mod.SharedMemory(name=name)
    with pytest.raises(ReproError):
        engine.get_many(load[:1])


def test_drain_obs_merges_worker_state_into_parent():
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    engine = parallel_sharded_index(spec, 2, trace_rate=1.0, seed=7)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        engine.insert_many([(k, k) for k in extra])

        tracer = Tracer(rate=0.0)
        metrics = MetricsRegistry()
        profiler = Profiler(PerfContext())
        payloads = engine.drain_obs(
            tracer=tracer, metrics=metrics, profiler=profiler
        )
        assert len(payloads) == 2
        # Worker-side lifecycle events land in the parent tracer...
        assert sum(tracer.counts.values()) > 0
        # ...command metrics in the parent registry (per-worker labels)...
        names = {name for name, _kind, _labels, _inst in metrics.collect()}
        assert "repro_worker_cmds_total" in names
        # ...and measured work in the parent profiler.
        assert profiler.op_count > 0
        assert profiler.total.total() > 0
    finally:
        engine.close()

    # Simulated charges flow back continuously (not only at drain time):
    # the engine's own PerfContext saw the workers' counter deltas.
    assert engine.perf.counters.total() > 0


def test_engine_perf_charges_match_in_process_sharding():
    """The simulated cost model must not notice the process boundary."""
    from repro.concurrency import sharded_index

    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, k) for k in load]
    probe = list(load) + list(extra)

    perf_local = PerfContext()
    local = sharded_index(spec.build, 2, perf=perf_local)
    local.bulk_load(items)
    local.get_many(probe)

    perf_engine = PerfContext()
    engine = parallel_sharded_index(spec, 2, perf=perf_engine)
    try:
        engine.bulk_load(items)
        engine.get_many(probe)
    finally:
        engine.close()

    assert perf_engine.counters.as_dict() == perf_local.counters.as_dict()
    assert perf_engine.counters.total() > 0


def test_engine_utilization_and_balance_accounting():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        assert sum(engine.worker_ops) == len(load)
        shares = engine.worker_utilization()
        assert len(shares) == 2
        assert all(s >= 0.0 for s in shares)
        assert sum(shares) == pytest.approx(1.0)
        assert engine.name.startswith("parallel[")
    finally:
        engine.close()


def test_bad_configuration_rejected():
    with pytest.raises(ReproError):
        ParallelShardedIndex("pgm", 0)
    with pytest.raises(ReproError):
        ParallelShardedIndex("pgm", 2, transport="carrier-pigeon")
    with pytest.raises(ReproError):
        ParallelShardedStore("no-such-spec", 2)


def _walk_to_root(span, by_id):
    while span.parent_id is not None:
        span = by_id[span.parent_id]
    return span


def test_traced_run_attaches_every_worker_event_to_its_request():
    """Acceptance: a traced 2-worker run yields a span tree where every
    worker-side lifecycle event is reachable from an originating
    request span."""
    from repro.obs import children_index, subtree_events

    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    engine = parallel_sharded_index(
        spec, 2, trace_rate=1.0, span_rate=1.0, seed=7
    )
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        engine.insert_many([(k, k) for k in extra])
        engine.get(load[0])
        engine.drain_obs(spans=engine.spans)
        spans = list(engine.spans.spans)
    finally:
        engine.close()

    by_id = {s.span_id: s for s in spans}
    kinds = {s.kind for s in spans}
    assert kinds == {"request", "batch", "shard", "worker", "event"}
    events = [s for s in spans if s.kind == "event"]
    assert events, "a traced PGM insert run must emit lifecycle events"
    for ev in events:
        root = _walk_to_root(ev, by_id)
        assert root.kind == "request"
        assert ev.worker >= 0  # events fire inside worker processes

    # The tree is consistent both ways: walking down from the requests
    # reaches exactly the events that walk up to a request.
    index = children_index(spans)
    reachable = sum(
        len(subtree_events(r, index)) for r in spans if r.kind == "request"
    )
    assert reachable == len(events)

    # Worker command spans parent under parent-side shard spans.
    workers = [s for s in spans if s.kind == "worker"]
    assert workers
    assert all(by_id[w.parent_id].kind == "shard" for w in workers)


def test_span_counts_match_untraced_event_counters_at_rate_one():
    """Acceptance: at sample rate 1.0 the event-span population equals
    the exact (pre-sampling) lifecycle counters of an untraced run."""
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()

    def run(span_rate):
        engine = parallel_sharded_index(
            spec, 2, trace_rate=1.0, span_rate=span_rate, seed=7
        )
        try:
            engine.bulk_load([(k, k) for k in load])
            engine.get_many(load)
            engine.insert_many([(k, k) for k in extra])
            tracer = Tracer(rate=0.0)
            engine.drain_obs(tracer=tracer, spans=engine.spans)
            spans = list(engine.spans.spans) if engine.spans else []
            return tracer, spans, engine.spans
        finally:
            engine.close()

    _, spans, recorder = run(span_rate=1.0)
    untraced_tracer, _, untraced_recorder = run(span_rate=0.0)
    assert untraced_recorder is None  # rate 0: the no-op fast path

    by_etype = {}
    for s in spans:
        if s.kind == "event":
            etype = s.attrs["etype"]
            by_etype[etype] = by_etype.get(etype, 0) + 1
    assert by_etype == untraced_tracer.counts

    # Every engine API call became exactly one sampled request span.
    api_calls = 3  # bulk_load + get_many + insert_many
    assert recorder.requests == recorder.sampled_requests == api_calls
    assert sum(1 for s in spans if s.kind == "request") == api_calls


def test_partial_span_rate_still_counts_every_request():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, span_rate=0.5, seed=3)
    try:
        engine.bulk_load([(k, k) for k in load])
        for _ in range(40):
            engine.get_many(load[:20])
        assert engine.spans.requests == 41  # bulk_load + 40 batches
        assert 0 < engine.spans.sampled_requests < 41
    finally:
        engine.close()


def test_worker_death_dumps_flight_recorder():
    """Acceptance: killing a worker mid-run attaches its flight-recorder
    ring to the WorkerDiedError."""
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2, span_rate=1.0)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)  # populate worker 1's flight ring
        victim = engine._handles[1].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5)
        with pytest.raises(WorkerDiedError) as err:
            for _ in range(3):
                engine.get_many(load)
        exc = err.value
        assert exc.worker_id == 1
        assert exc.pid == victim.pid
        assert exc.flight, "the postmortem must carry the flight ring"
        assert {e["status"] for e in exc.flight} <= {"ok", "died"}
        # Span-traced commands carry their span ids into the postmortem.
        assert any(e["span_id"] for e in exc.flight)
        assert "flight recorder (most recent last):" in str(exc)
        assert "while serving 'get_many'" in str(exc)
        assert "#" in str(exc)  # the formatted flight lines
        # The latched engine re-raises the same postmortem.
        with pytest.raises(WorkerDiedError) as again:
            engine.get_many(load[:5])
        assert again.value.flight == exc.flight
    finally:
        engine.close()


def test_health_monitor_tracks_live_engine():
    spec = next(s for s in specs() if s.name == "BTree")
    load, _ = _keys()
    engine = parallel_sharded_index(spec, 2)
    try:
        engine.bulk_load([(k, k) for k in load])
        engine.get_many(load)
        snap = engine.health.snapshot()
        assert [row["worker"] for row in snap] == [0, 1]
        for row in snap:
            assert row["cmds_sent"] == row["cmds_done"] > 0
            assert row["last_reply_age_s"] is not None
            assert row["stalls"] == 0 and not row["stalled"]
        # Heartbeats agree with the parent's own books.
        for wh, ops in zip(engine.health.workers, engine.worker_ops):
            assert wh.hb_cmds == wh.cmds_done
        assert engine.health.stalled_workers() == []
        assert all(engine.health.flight(w) for w in range(2))
    finally:
        engine.close()


# --------------------------------------------------------- fault injection
#
# The supervision layer (repro.concurrency.supervise) converts the
# fail-stop contract above into fail-recover: a killed (or deadline-
# overrunning) worker is respawned, its partition rebuilt from the
# retained recipe + acknowledged-mutation journal, and the in-flight
# command replayed exactly once.  The contract under test: results after
# recovery are bit-identical to a run where nothing failed.

from repro.concurrency import FaultPlan  # noqa: E402
from repro.errors import ShardUnavailableError  # noqa: E402


def _btree():
    return next(s for s in specs() if s.name == "BTree")


def _unfailed_reference(items, probe, writes, scan_start):
    flat = _btree().build(PerfContext())
    flat.bulk_load(items)
    reads = flat.get_many(probe)
    old = [flat.get(k) for k, _ in writes]
    for k, v in writes:
        flat.upsert(k, v)
    after = flat.get_many(probe)
    scan = flat.scan(scan_start, 80)
    # Scan starts spanning both range partitions, so batch scans reach
    # worker 1 (where the faults are scripted).
    srt = sorted(k for k, _ in items)
    starts = [srt[i] for i in (3, 150, 260, 350, 450, 495)]
    scans = [flat.scan(s, 40) for s in starts]
    return {
        "reads": reads, "old": old, "after": after, "scan": scan,
        "scan_starts": starts, "scans": scans,
    }


FAULT_KILL_OPS = {
    "read": "get_many",
    "write": "write_many",
    "scan": "scan_many",
}


@pytest.mark.parametrize("budget", (1, 3))
@pytest.mark.parametrize("degraded", ("fail", "partial"))
@pytest.mark.parametrize("during", sorted(FAULT_KILL_OPS))
def test_kill_matrix_recovers_bit_identical(during, degraded, budget):
    """Kill worker 1 during a read/write/scan; with budget left the
    engine must recover and answer exactly like an unfailed run, in
    both degraded modes (the mode only matters once the budget is
    gone)."""
    load, extra = _keys()
    items = [(k, k * 3) for k in load]
    probe = list(load) + list(extra)
    writes = [(k, k + 7) for k in sorted(load)[::5]]
    scan_start = sorted(load)[3]
    ref = _unfailed_reference(items, probe, writes, scan_start)

    plan = FaultPlan().kill(1, op=FAULT_KILL_OPS[during], nth=1)
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=budget, degraded=degraded,
        backoff_base_s=0.0, fault_plan=plan,
    )
    try:
        engine.bulk_load(items)
        assert engine.get_many(probe) == ref["reads"]
        assert engine.upsert_many(writes) == ref["old"]
        assert engine.get_many(probe) == ref["after"]
        assert engine.scan(scan_start, 80) == ref["scan"]
        assert engine.scan_many(ref["scan_starts"], 40) == ref["scans"]
        # Exactly one recovery, fully recovered: shard back in service.
        assert engine.supervisor.restarts_used == [0, 1]
        assert engine.availability() == [True, True]
        assert engine.supervisor.last_recovery_s[1] > 0
    finally:
        engine.close()


@pytest.mark.parametrize("during", sorted(FAULT_KILL_OPS))
def test_kill_matrix_budget_zero_fail_mode(during):
    """budget=0 + degraded='fail' is the legacy fail-stop contract."""
    load, extra = _keys()
    items = [(k, k * 3) for k in load]
    plan = FaultPlan().kill(1, op=FAULT_KILL_OPS[during], nth=1)
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=0, fault_plan=plan
    )
    try:
        engine.bulk_load(items)
        with pytest.raises(WorkerDiedError) as err:
            engine.get_many(list(load) + list(extra))
            engine.upsert_many([(k, k + 7) for k in load])
            srt = sorted(load)
            engine.scan_many([srt[i] for i in (3, 260, 450)], 40)
        assert "worker 1" in str(err.value)
        assert err.value.restarts == 0
        assert err.value.restart_budget == 0
        # Latched broken, like before supervision existed.
        with pytest.raises(WorkerDiedError):
            engine.get_many(load[:5])
    finally:
        engine.close()


def test_kill_budget_zero_partial_mode_serves_survivors():
    load, extra = _keys()
    items = [(k, k * 3) for k in load]
    probe = sorted(load)
    plan = FaultPlan().kill(1, op="get_many", nth=1)
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=0, degraded="partial", fault_plan=plan
    )
    try:
        engine.bulk_load(items)
        out = engine.get_many(probe)
        assert engine.availability() == [True, False]
        # Worker 0's half is exact; worker 1's half is None holes.
        flat = _btree().build(PerfContext())
        flat.bulk_load(items)
        expected = flat.get_many(probe)
        holes = sum(1 for v in out if v is None)
        assert 0 < holes < len(probe)
        assert all(g == e for g, e in zip(out, expected) if g is not None)
        # Scans spill past the dead shard instead of raising.
        assert engine.scan(probe[0], 10) == flat.scan(probe[0], 10)[:10]
        # Writes into the lost range refuse loudly (surviving shards
        # are still applied before the batch-level error surfaces)...
        with pytest.raises(ShardUnavailableError) as err:
            engine.upsert_many([(k, 1) for k in probe])
        assert err.value.lost_ops > 0
        # ...but the surviving shard keeps taking both reads and writes.
        low = probe[:3]
        engine.upsert_many([(k, 5) for k in low])
        assert engine.get_many(low) == [5, 5, 5]
        # Telemetry: the down transition and the holes are counted.
        metrics = MetricsRegistry()
        engine.drain_obs(metrics=metrics)
        names = {
            name: inst
            for name, _k, labels, inst in metrics.collect()
            if name in ("repro_worker_down_total",
                        "repro_shard_unavailable_total")
        }
        assert set(names) == {
            "repro_worker_down_total", "repro_shard_unavailable_total"
        }
    finally:
        engine.close()


def test_kill_after_apply_replays_exactly_once():
    """The applied-but-unacknowledged write: the worker dies AFTER
    applying the batch but before replying.  The rebuild must discard
    the partial application and the replay must land it exactly once —
    old values and final state bit-identical to an unfailed run."""
    load, _ = _keys()
    items = [(k, k) for k in load]
    writes = [(k, k + 1) for k in sorted(load)]
    flat = _btree().build(PerfContext())
    flat.bulk_load(items)
    expected_old = [flat.get(k) for k, _ in writes]
    for k, v in writes:
        flat.upsert(k, v)

    plan = FaultPlan().kill(1, op="write_many", nth=1, when="after")
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=1, backoff_base_s=0.0, fault_plan=plan
    )
    try:
        engine.bulk_load(items)
        assert engine.upsert_many(writes) == expected_old
        assert engine.get_many([k for k, _ in writes]) == [
            v for _, v in writes
        ]
        assert len(engine) == len(flat)
        assert engine.supervisor.restarts_used[1] == 1
    finally:
        engine.close()


def test_repeated_kills_walk_the_budget_ladder():
    """Incarnation-pinned directives script two failures of the same
    worker; budget 1 exhausts on the second, budget 3 rides both out."""
    load, _ = _keys()
    items = [(k, k) for k in load]
    probe = sorted(load)
    two_kills = lambda: (  # noqa: E731
        FaultPlan()
        .kill(1, op="get_many", nth=1, incarnation=0)
        .kill(1, op="get_many", nth=1, incarnation=1)
    )

    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=1, backoff_base_s=0.0,
        fault_plan=two_kills(),
    )
    try:
        with pytest.raises(WorkerDiedError) as err:
            engine.bulk_load(items)
            engine.get_many(probe)
        assert err.value.restarts == 1
        assert err.value.restart_budget == 1
        assert "restart budget exhausted (1/1)" in str(err.value)
    finally:
        engine.close()

    flat = _btree().build(PerfContext())
    flat.bulk_load(items)
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=3, backoff_base_s=0.0,
        fault_plan=two_kills(),
    )
    try:
        engine.bulk_load(items)
        assert engine.get_many(probe) == flat.get_many(probe)
        assert engine.supervisor.restarts_used[1] == 2
    finally:
        engine.close()


def test_drop_reply_hits_deadline_and_recovers():
    """A worker that serves but never replies trips the per-command
    deadline; the parent kills it and routes through the same recovery
    path (flight recorder says 'timeout', not 'died')."""
    load, _ = _keys()
    items = [(k, k) for k in load]
    plan = FaultPlan().drop_reply(1, op="get_many", nth=1)
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=1, backoff_base_s=0.0,
        worker_timeout_s=0.5, fault_plan=plan,
    )
    try:
        engine.bulk_load(items)
        flat = _btree().build(PerfContext())
        flat.bulk_load(items)
        assert engine.get_many(sorted(load)) == flat.get_many(sorted(load))
        assert engine.supervisor.restarts_used == [0, 1]
        statuses = [e.status for e in engine.health.flight(1)]
        assert "timeout" in statuses
    finally:
        engine.close()


def test_recovery_emits_events_metrics_and_spans():
    load, _ = _keys()
    items = [(k, k) for k in load]
    plan = FaultPlan().kill(1, op="get_many", nth=1)
    engine = parallel_sharded_index(
        _btree(), 2, restart_budget=1, backoff_base_s=0.0,
        span_rate=1.0, fault_plan=plan,
    )
    tracer = Tracer()
    engine.perf.tracer = tracer
    try:
        engine.bulk_load(items)
        engine.get_many(sorted(load))
        assert tracer.counts.get("worker_restart") == 1
        assert tracer.counts.get("worker_recovered") == 1
        metrics = MetricsRegistry()
        engine.drain_obs(metrics=metrics)
        by_name = {
            name for name, _k, _labels, _inst in metrics.collect()
        }
        assert "repro_worker_restarts_total" in by_name
        assert "repro_worker_recovery_ns" in by_name
        # The recovery span tree: recovery root + respawn/rebuild stages.
        rec = [s for s in engine.spans.spans if s.kind == "recovery"]
        names = {s.name for s in rec}
        assert names == {"recovery:1", "recovery:respawn", "recovery:rebuild"}
        root = next(s for s in rec if s.name == "recovery:1")
        assert root.attrs["outcome"] == "recovered"
        assert all(
            s.parent_id == root.span_id
            for s in rec if s.name != "recovery:1"
        )
    finally:
        engine.close()


def test_close_escalates_to_kill_on_stuck_worker():
    """A worker that refuses the shutdown command must not wedge
    close(): the engine escalates terminate -> kill and returns."""
    load, _ = _keys()
    plan = FaultPlan().drop_reply(1, op="close", nth=1)
    engine = parallel_sharded_index(
        _btree(), 2, close_timeout_s=0.3, fault_plan=plan
    )
    engine.bulk_load([(k, k) for k in load])
    procs = [h.proc for h in engine._handles]
    t0 = time.monotonic()
    engine.close()
    assert time.monotonic() - t0 < 10.0
    for p in procs:
        assert not p.is_alive()


def test_store_recovery_matches_unfailed_store():
    """The supervision layer covers the store engine too (string
    values ride the pipe fallback, exercising journal replay of
    pipe-form mutations)."""
    spec = next(s for s in specs() if s.name == "PGM")
    load, extra = _keys()
    items = [(k, f"v{k}") for k in load]
    probe = list(load) + list(extra)

    fresh = [(k, f"n{k}") for k in sorted(extra)]
    flat = ViperStore(spec.build(PerfContext()), PerfContext())
    flat.bulk_load(items)
    flat.put_many(fresh)
    expected = flat.get_many(probe)

    plan = (
        FaultPlan()
        .kill(1, op="write_many", nth=1, when="after")
        .kill(0, op="get_many", nth=2)
    )
    engine = parallel_sharded_store(
        spec, 2, restart_budget=2, backoff_base_s=0.0, fault_plan=plan
    )
    try:
        engine.bulk_load(items)
        engine.get_many(probe)
        engine.put_many(fresh)
        assert engine.get_many(probe) == expected
        assert sum(engine.supervisor.restarts_used) == 2
    finally:
        engine.close()
