"""Smoke tests: the shipped examples must run end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_compare_indexes_small(self):
        result = run_example("compare_indexes.py", "8000")
        assert result.returncode == 0, result.stderr
        assert "CCEH" in result.stdout
        assert "Mops/s" in result.stdout

    def test_compose_your_own(self):
        result = run_example("compose_your_own.py")
        assert result.returncode == 0, result.stderr
        assert "ALEX (published)" in result.stdout
        assert "OptPLA+LRS+gap" in result.stdout

    @pytest.mark.slow
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "all good." in result.stdout

    @pytest.mark.slow
    def test_tail_latency_hunt(self):
        result = run_example("tail_latency_hunt.py")
        assert result.returncode == 0, result.stderr
        assert "worst-case ratio RMI/PGM" in result.stdout

    @pytest.mark.slow
    def test_dataset_sensitivity(self):
        result = run_example("dataset_sensitivity.py")
        assert result.returncode == 0, result.stderr
        assert "face (skewed)" in result.stdout
