"""Tests for the approximation-CDF algorithms (paper dimension #1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximation import (
    Approximation,
    GreedyPLAApproximator,
    LSAApproximator,
    LSAGapApproximator,
    OptPLAApproximator,
    SplineApproximator,
    fit_least_squares,
)
from repro.core.approximation.spline import build_spline
from repro.errors import InvalidConfigurationError

sorted_keys = st.lists(
    st.integers(min_value=0, max_value=2**40), min_size=1, max_size=300, unique=True
).map(sorted)

small_sorted_keys = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60, unique=True
).map(sorted)


def linear_keys(n, step=10, start=5):
    return [start + i * step for i in range(n)]


# ---------------------------------------------------------------- LSA


class TestLeastSquares:
    def test_perfectly_linear_keys_have_zero_error(self):
        keys = linear_keys(100)
        approx = LSAApproximator(segment_size=100).fit(keys)
        assert approx.leaf_count == 1
        assert approx.max_error == 0

    def test_segment_count_is_ceil_n_over_size(self):
        keys = linear_keys(250)
        approx = LSAApproximator(segment_size=100).fit(keys)
        assert approx.leaf_count == 3

    def test_fit_least_squares_single_key(self):
        assert fit_least_squares([42], 42) == (0.0, 0.0)

    def test_smaller_segments_give_lower_error(self):
        rng = random.Random(7)
        keys = sorted(rng.sample(range(10**9), 5000))
        coarse = LSAApproximator(segment_size=2500).fit(keys)
        fine = LSAApproximator(segment_size=100).fit(keys)
        assert fine.avg_error <= coarse.avg_error
        assert fine.leaf_count > coarse.leaf_count

    def test_rejects_bad_segment_size(self):
        with pytest.raises(InvalidConfigurationError):
            LSAApproximator(segment_size=0)

    def test_rejects_empty_keys(self):
        with pytest.raises(InvalidConfigurationError):
            LSAApproximator().fit([])

    @given(sorted_keys)
    @settings(max_examples=50, deadline=None)
    def test_predictions_stay_in_segment(self, keys):
        approx = LSAApproximator(segment_size=32).fit(keys)
        for key in keys:
            seg = approx.segment_for(key)
            pos = seg.predict(key)
            assert 0 <= pos < seg.n


# ---------------------------------------------------------------- Opt-PLA


def _segment_errors_hold(approx: Approximation, keys, eps):
    for seg in approx.segments:
        assert seg.max_error <= eps, (
            f"segment {seg} violates eps={eps}"
        )
    # Cross-check against a fresh measurement from global state.
    for i, key in enumerate(keys):
        seg = approx.segment_for(key)
        local = i - seg.start
        assert abs(seg.predict(key) - local) <= eps


class TestOptPLA:
    @given(sorted_keys, st.sampled_from([0, 1, 4, 16, 64]))
    @settings(max_examples=80, deadline=None)
    def test_error_bound_holds(self, keys, eps):
        approx = OptPLAApproximator(eps=eps).fit(keys)
        _segment_errors_hold(approx, keys, eps)

    @given(sorted_keys, st.sampled_from([1, 4, 16]))
    @settings(max_examples=50, deadline=None)
    def test_never_more_segments_than_greedy(self, keys, eps):
        opt = OptPLAApproximator(eps=eps).fit(keys)
        greedy = GreedyPLAApproximator(eps=eps).fit(keys)
        assert opt.leaf_count <= greedy.leaf_count

    @given(small_sorted_keys, st.sampled_from([0, 1, 3]))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce_optimum(self, keys, eps):
        opt = OptPLAApproximator(eps=eps).fit(keys)
        assert opt.leaf_count == _bruteforce_min_segments(keys, eps)

    def test_linear_keys_collapse_to_one_segment(self):
        keys = linear_keys(10_000)
        approx = OptPLAApproximator(eps=1).fit(keys)
        assert approx.leaf_count == 1
        assert approx.max_error <= 1

    def test_eps_tradeoff(self):
        rng = random.Random(3)
        keys = sorted(rng.sample(range(10**12), 20_000))
        tight = OptPLAApproximator(eps=4).fit(keys)
        loose = OptPLAApproximator(eps=256).fit(keys)
        assert loose.leaf_count < tight.leaf_count
        assert loose.max_error <= 256
        assert tight.max_error <= 4

    def test_rejects_negative_eps(self):
        with pytest.raises(InvalidConfigurationError):
            OptPLAApproximator(eps=-1)


def _bruteforce_min_segments(keys, eps):
    """Greedy maximal extension with exact LP feasibility (optimal count)."""
    from scipy.optimize import linprog

    def feasible(points):
        if len(points) <= 2:
            return True
        # Variables (a, b): y - eps <= a*x + b <= y + eps for all points.
        a_ub, b_ub = [], []
        x0 = points[0][0]
        for x, y in points:
            lx = x - x0
            a_ub.append([lx, 1.0])
            b_ub.append(y + eps)
            a_ub.append([-lx, -1.0])
            b_ub.append(-(y - eps))
        res = linprog(
            c=[0.0, 0.0],
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(None, None), (None, None)],
            method="highs",
        )
        return res.status == 0

    count = 0
    start = 0
    n = len(keys)
    while start < n:
        end = start + 1
        while end < n:
            pts = [(float(keys[i]), float(i - start)) for i in range(start, end + 1)]
            if not feasible(pts):
                break
            end += 1
        count += 1
        start = end
    return count


# ---------------------------------------------------------------- Greedy PLA


class TestGreedyPLA:
    @given(sorted_keys, st.sampled_from([0, 1, 8, 32]))
    @settings(max_examples=60, deadline=None)
    def test_error_bound_holds(self, keys, eps):
        approx = GreedyPLAApproximator(eps=eps).fit(keys)
        _segment_errors_hold(approx, keys, eps)

    def test_anchored_at_first_key(self):
        keys = linear_keys(1000)
        approx = GreedyPLAApproximator(eps=4).fit(keys)
        seg = approx.segments[0]
        assert seg.predict(keys[0]) == 0


# ---------------------------------------------------------------- Spline


class TestSpline:
    @given(sorted_keys, st.sampled_from([1, 8, 32]))
    @settings(max_examples=60, deadline=None)
    def test_spline_error_bound(self, keys, eps):
        spline = build_spline(keys, eps)
        for i, key in enumerate(keys):
            assert abs(spline.predict(key) - i) <= eps

    def test_knots_are_subset_of_keys(self):
        rng = random.Random(11)
        keys = sorted(rng.sample(range(10**9), 2000))
        spline = build_spline(keys, 16)
        key_set = set(keys)
        for k, p in spline.knots:
            assert k in key_set
            assert keys[p] == k

    def test_single_key(self):
        spline = build_spline([99], 4)
        assert spline.predict(99) == 0

    def test_approximator_interface(self):
        rng = random.Random(5)
        keys = sorted(rng.sample(range(10**9), 1000))
        approx = SplineApproximator(eps=16).fit(keys)
        assert approx.leaf_count == len(build_spline(keys, 16)) - 1
        for i, key in enumerate(keys):
            seg = approx.segment_for(key)
            assert abs((seg.start + seg.predict(key)) - i) <= 16 + 1


# ---------------------------------------------------------------- LSA-gap


class TestLSAGap:
    def test_occupied_slots_hold_sorted_keys(self):
        rng = random.Random(13)
        keys = sorted(rng.sample(range(10**10), 3000))
        approx = LSAGapApproximator(segment_size=1024, density=0.7).fit(keys)
        for seg in approx.segments:
            placed = [k for k in seg.slot_keys if k is not None]
            assert placed == sorted(placed)
            assert len(placed) == seg.n

    def test_gap_error_is_much_lower_than_plain_lsa(self):
        """The paper's core finding: gaps flatten the CDF (Fig 17a/b)."""
        rng = random.Random(17)
        keys = sorted(rng.sample(range(10**12), 20_000))
        lsa = LSAApproximator(segment_size=4096).fit(keys)
        gap = LSAGapApproximator(segment_size=4096, density=0.7).fit(keys)
        assert gap.avg_error < lsa.avg_error / 4
        assert gap.leaf_count == lsa.leaf_count

    def test_density_controls_gap_fraction(self):
        keys = linear_keys(1000)
        approx = LSAGapApproximator(segment_size=1000, density=0.5).fit(keys)
        seg = approx.segments[0]
        assert seg.slots >= 2 * seg.n * 0.95

    def test_rejects_bad_density(self):
        with pytest.raises(InvalidConfigurationError):
            LSAGapApproximator(density=0.0)
        with pytest.raises(InvalidConfigurationError):
            LSAGapApproximator(density=1.5)

    @given(sorted_keys)
    @settings(max_examples=40, deadline=None)
    def test_every_key_findable_within_window(self, keys):
        approx = LSAGapApproximator(segment_size=64, density=0.7).fit(keys)
        for key in keys:
            seg = approx.segment_for(key)
            lo, hi = seg.search_window(key)
            assert any(seg.slot_keys[s] == key for s in range(lo, hi + 1))


# ---------------------------------------------------------------- shared


class TestApproximationContainer:
    def test_segment_for_routes_boundaries(self):
        keys = list(range(0, 1000, 7))
        approx = OptPLAApproximator(eps=2).fit(keys)
        for i, key in enumerate(keys):
            seg = approx.segment_for(key)
            assert seg.start <= i < seg.start + seg.n

    def test_avg_error_is_key_weighted(self):
        keys = linear_keys(100)
        approx = LSAApproximator(segment_size=50).fit(keys)
        manual = sum(s.avg_error * s.n for s in approx.segments) / 100
        assert approx.avg_error == pytest.approx(manual)
