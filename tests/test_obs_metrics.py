"""Histogram backend, metrics registry, Prometheus export, profiler batching."""

import math
import random

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, Tracer, prometheus_text
from repro.obs.trace import EventType
from repro.perf import LatencyRecorder, LogHistogram, PerfContext
from repro.perf.breakdown import Profiler
from repro.perf.events import Event


def _exact_nearest_rank(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered) - 1e-9))
    return ordered[rank - 1]


class TestLogHistogram:
    def test_bucket_roundtrip(self):
        for value in (1e-9, 0.5, 1.0, 3.7, 1024.0, 1e12):
            b = LogHistogram.bucket_of(value)
            upper = LogHistogram.bucket_upper(b)
            assert value <= upper <= value * (1.0 + LogHistogram.RELATIVE_ERROR)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99, 0.999, 1.0])
    def test_quantile_error_bound_random(self, q):
        rng = random.Random(17)
        samples = [rng.lognormvariate(6.0, 2.0) for _ in range(5_000)]
        hist = LogHistogram()
        for s in samples:
            hist.record(s)
        exact = _exact_nearest_rank(samples, q)
        reported = hist.quantile(q)
        assert exact <= reported <= exact * (1.0 + LogHistogram.RELATIVE_ERROR)

    def test_all_equal_samples(self):
        hist = LogHistogram()
        hist.record(42.0, n=1_000)
        # All mass in one bucket; clamping to [min, max] makes it exact.
        for q in (0.01, 0.5, 0.999, 1.0):
            assert hist.quantile(q) == 42.0
        assert hist.mean() == 42.0
        assert hist.min() == hist.max() == 42.0

    def test_single_value(self):
        hist = LogHistogram()
        hist.record(3.25)
        assert hist.quantile(0.5) == 3.25
        assert len(hist) == 1

    def test_zero_and_negative_values_counted(self):
        hist = LogHistogram()
        hist.record(0.0)
        hist.record(-1.0)
        hist.record(10.0)
        assert hist.count == 3
        # Rank 1 and 2 land in the zero bucket; its edge clamps to min.
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == 10.0

    def test_max_is_exact(self):
        hist = LogHistogram()
        for v in (1.0, 77.3, 12.5):
            hist.record(v)
        assert hist.quantile(1.0) == 77.3
        assert hist.max() == 77.3

    def test_merge_equals_combined_recording(self):
        rng = random.Random(3)
        xs = [rng.uniform(1, 1e6) for _ in range(800)]
        ys = [rng.uniform(1, 1e6) for _ in range(700)]
        a, b, both = LogHistogram(), LogHistogram(), LogHistogram()
        for x in xs:
            a.record(x)
            both.record(x)
        for y in ys:
            b.record(y)
            both.record(y)
        a.merge(b)
        assert a.count == both.count
        assert a.total == pytest.approx(both.total)
        for q in (0.5, 0.99, 1.0):
            assert a.quantile(q) == both.quantile(q)

    def test_buckets_iterate_ascending(self):
        hist = LogHistogram()
        for v in (100.0, 1.0, 50.0, 1.0):
            hist.record(v)
        edges = [edge for edge, _ in hist.buckets()]
        assert edges == sorted(edges)
        assert sum(n for _, n in hist.buckets()) == 4

    def test_empty_raises(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.quantile(0.5)
        with pytest.raises(ValueError):
            hist.mean()

    def test_bad_quantile_rejected(self):
        hist = LogHistogram()
        hist.record(1.0)
        for q in (0.0, -0.5, 1.01):
            with pytest.raises(ValueError):
                hist.quantile(q)


class TestLatencyRecorderEquivalence:
    """Satellite 1: the compat wrapper pins p50/p99/p999 behaviour."""

    def test_percentiles_match_histogram_quantiles(self):
        rng = random.Random(5)
        samples = [rng.expovariate(1e-3) + 1.0 for _ in range(10_000)]
        rec = LatencyRecorder()
        rec.extend(samples)
        for p, q in ((50.0, 0.5), (99.0, 0.99), (99.9, 0.999)):
            assert rec.percentile(p) == rec.histogram.quantile(q)
            exact = _exact_nearest_rank(samples, q)
            assert (
                exact
                <= rec.percentile(p)
                <= exact * (1.0 + LogHistogram.RELATIVE_ERROR)
            )

    def test_named_accessors_delegate(self):
        rec = LatencyRecorder()
        rec.extend(float(i) for i in range(1, 101))
        assert rec.p50() == rec.percentile(50.0)
        assert rec.p99() == rec.percentile(99.0)
        assert rec.p999() == rec.percentile(99.9)

    def test_merge_recorders(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.extend([1.0, 2.0])
        b.extend([3.0, 4.0])
        a.merge(b)
        assert len(a) == 4
        assert a.mean() == pytest.approx(2.5)


class TestMetricsRegistry:
    def test_counter_identity_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", kind="read").inc(3)
        reg.counter("ops_total", kind="insert").inc(5)
        # Same (name, labels) -> same instrument.
        assert reg.counter("ops_total", kind="read").value == 3
        assert reg.counter("ops_total", kind="insert").value == 5
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x_total", a="1", b="2").inc()
        assert reg.counter("x_total", b="2", a="1").value == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")
        with pytest.raises(ValueError):
            reg.histogram("thing")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", **{"bad-label": "x"})

    def test_counter_monotone(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(4)
        g.inc(1)
        assert g.value == 7

    def test_collect_yields_every_series(self):
        reg = MetricsRegistry()
        reg.counter("a_total", k="1")
        reg.gauge("b")
        reg.histogram("c_ns", k="2").record(5.0)
        rows = list(reg.collect())
        assert len(rows) == 3
        kinds = {name: kind for name, kind, _, _ in rows}
        assert kinds == {"a_total": "counter", "b": "gauge", "c_ns": "histogram"}


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_ops_total", target="alex", kind="read").inc(42)
        reg.gauge("repro_leaves").set(7.0)
        text = prometheus_text(reg)
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{kind="read",target="alex"} 42.0' in text
        assert "repro_leaves 7.0" in text

    def test_histogram_rendered_as_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_op_latency_ns", kind="read")
        for v in (100.0, 200.0, 300.0):
            hist.record(v)
        text = prometheus_text(reg)
        assert "# TYPE repro_op_latency_ns summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.999"' in text
        assert 'repro_op_latency_ns_sum{kind="read"} 600.0' in text
        assert 'repro_op_latency_ns_count{kind="read"} 3' in text

    def test_tracer_counts_exported(self):
        tracer = Tracer(rate=0.0)  # counts survive even with keep-nothing
        for _ in range(9):
            tracer.emit(EventType.RETRAIN, 0.0)
        text = prometheus_text(tracer=tracer)
        assert 'repro_trace_events_total{event="retrain"} 9' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", path='a"b\\c').inc()
        text = prometheus_text(reg)
        assert 'path="a\\"b\\\\c"' in text

    def test_help_lines_precede_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_ops_total", target="alex", kind="read").inc()
        reg.histogram("repro_op_latency_ns", kind="read").record(5.0)
        reg.counter("repro_custom_total").inc()
        text = prometheus_text(reg)
        lines = text.splitlines()
        for family in ("repro_ops_total", "repro_op_latency_ns"):
            help_i = lines.index(
                next(l for l in lines if l.startswith(f"# HELP {family} "))
            )
            assert lines[help_i + 1].startswith(f"# TYPE {family} ")
        # Unknown families still get a HELP line (generic text).
        assert "# HELP repro_custom_total repro metric" in text

    def test_tracer_section_has_help_and_escaped_labels(self):
        tracer = Tracer(rate=0.0)
        tracer.emit('odd"event\\', 0.0)
        text = prometheus_text(tracer=tracer)
        assert "# HELP repro_trace_events_total " in text
        assert "# TYPE repro_trace_events_total counter" in text
        assert 'event="odd\\"event\\\\"' in text

    def test_help_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("repro_ops_total", kind="read").inc()
        reg.counter("repro_ops_total", kind="write").inc()
        text = prometheus_text(reg)
        assert text.count("# HELP repro_ops_total") == 1
        assert text.count("# TYPE repro_ops_total") == 1



class TestProfilerBatchedOps:
    """Satellite 2: batched measurements split across the run length."""

    def _measured(self, perf, hops, compares):
        mark = perf.begin()
        perf.charge(Event.DRAM_HOP, hops)
        perf.charge(Event.COMPARE, compares)
        return perf.end(mark)

    def test_ops_split_amortises_heap_and_count(self):
        perf = PerfContext()
        profiler = Profiler(perf)
        measured = self._measured(perf, hops=80, compares=160)
        profiler.record_measured("put", measured, ops=8)
        assert profiler.op_count == 8
        # Aggregate attribution stays exact...
        assert profiler.total.dram_hop == 80
        assert profiler.total.compare == 160
        # ...while the worst-op entry is per-operation.
        worst = profiler.worst(1)[0]
        assert worst.time_ns == pytest.approx(measured.time_ns / 8)
        assert worst.counters.dram_hop == pytest.approx(10)
        assert worst.counters.compare == pytest.approx(20)

    def test_batched_run_comparable_to_scalar_ops(self):
        perf = PerfContext()
        profiler = Profiler(perf)
        for _ in range(4):
            profiler.record_measured("get", self._measured(perf, 10, 5))
        big = self._measured(perf, 40, 20)
        profiler.record_measured("get_many", big, ops=4)
        assert profiler.op_count == 8
        times = sorted(p.time_ns for p in profiler.worst())
        # The amortised batch entries sit at the same per-op scale as the
        # scalar entries instead of one 4x outlier.
        assert max(times) <= min(times) * 1.01

    def test_mean_time_uses_per_op_units(self):
        perf = PerfContext()
        profiler = Profiler(perf)
        measured = self._measured(perf, 100, 0)
        profiler.record_measured("batch", measured, ops=10)
        assert profiler.mean_time_ns() == pytest.approx(measured.time_ns / 10)
