"""Contract tests for the index registry (the single source of truth).

The registry is what keeps the CLI, the benchmark figure modules, and the
exported API in agreement: these tests pin the invariants every consumer
relies on — exported classes are registered, aliases resolve, factories
build working indexes, and ``python -m repro info`` advertises everything.
"""

import random

import pytest

import repro
from repro import registry
from repro.cli import main as cli_main
from repro.core.interfaces import Index
from repro.errors import InvalidConfigurationError
from repro.perf import PerfContext
from repro.registry import (
    CATEGORIES,
    FIGURES,
    IndexSpec,
    UnknownIndexError,
    factories,
    resolve,
    specs,
)


# ComposedIndex is the recombination framework, not a competitor: it has
# no zero-argument configuration (callers supply the four dimensions), so
# it has no registry spec.  ShardedIndex likewise wraps a child factory
# across K range partitions rather than competing itself.
EXEMPT = {repro.ComposedIndex, repro.ShardedIndex}


def exported_index_classes():
    return {
        name: obj
        for name in repro.__all__
        if isinstance(obj := getattr(repro, name), type)
        and issubclass(obj, Index)
        and obj not in EXEMPT
    }


class TestCoverage:
    def test_every_exported_index_class_is_registered(self):
        registered = {spec.factory for spec in specs()}
        for name, cls in exported_index_classes().items():
            assert cls in registered, f"{name} exported but not registered"

    def test_every_spec_factory_is_an_exported_index_class(self):
        exported = set(exported_index_classes().values())
        for spec in specs():
            assert spec.factory in exported, (
                f"{spec.name} registered but its class is not exported"
            )

    def test_one_spec_per_class_and_configuration(self):
        seen = {}
        for spec in specs():
            key = (spec.factory, tuple(sorted(spec.default_kwargs.items())))
            assert key not in seen, (
                f"{spec.name} duplicates {seen[key]}: same factory and kwargs"
            )
            seen[key] = spec.name

    def test_categories_and_figures_are_valid(self):
        for spec in specs():
            assert spec.category in CATEGORIES
            for figure in spec.figures:
                assert figure in FIGURES

    def test_extensions_present(self):
        # LIPP/APEX/FINEdex are CLI-reachable AND benchmark-reachable.
        ext = {spec.name for spec in specs(category="extension")}
        assert ext == {"LIPP", "APEX", "FINEdex"}


class TestResolution:
    def test_every_alias_resolves_to_its_spec(self):
        for spec in specs():
            assert resolve(spec.name) is spec
            for alias in spec.aliases:
                assert resolve(alias) is spec, f"{alias} -> {spec.name}"

    def test_resolution_is_case_and_separator_insensitive(self):
        assert resolve("ALEX") is resolve("alex")
        assert resolve("FITING-TREE-BUF") is resolve("fiting_buf")
        assert resolve("  pgm  ") is resolve("pgm")

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownIndexError):
            resolve("frobnicator")

    def test_aliases_are_unique_across_specs(self):
        seen = {}
        for spec in specs():
            for key in (spec.name, *spec.aliases):
                norm = key.strip().casefold().replace("_", "-")
                assert seen.setdefault(norm, spec.name) == spec.name


class TestFactories:
    @pytest.mark.parametrize("spec", specs(), ids=lambda s: s.name)
    def test_build_load_and_roundtrip(self, spec):
        rng = random.Random(99)
        keys = sorted(rng.sample(range(0, 10**9, 2), 1000))
        items = [(k, k ^ 0x5A5A) for k in keys]
        index = spec.build(PerfContext())
        index.bulk_load(items)
        assert len(index) == 1000
        for k, v in rng.sample(items, 100):
            assert index.get(k) == v, f"{spec.name} lost key {k}"
        assert index.get(keys[0] + 1) is None

    def test_build_kwarg_overrides(self):
        index = resolve("cceh").build(PerfContext(), segment_bits=4)
        assert index.segment_bits == 4

    def test_spec_is_callable_like_a_factory(self):
        perf = PerfContext()
        index = resolve("btree")(perf)
        assert index.perf is perf

    def test_views_match_specs(self):
        read = factories(figure="read")
        write = factories(figure="write")
        assert set(read) == {
            s.label_in("read") for s in specs(figure="read")
        }
        # The read-only case calls the static PGM just "PGM"...
        assert read["PGM"].spec is resolve("pgm-static")
        # ...while the updatable case means the dynamic one.
        assert write["PGM"].spec is resolve("pgm")

    def test_view_overrides_reach_the_constructor(self):
        view = factories(figure="read", overrides={"RS": {"eps": 4}})
        index = view["RS"](PerfContext())
        assert index.eps == 4


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            registry.register(
                IndexSpec(
                    name="ALEX",
                    factory=resolve("alex").factory,
                    category="extension",
                )
            )

    def test_duplicate_alias_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            registry.register(
                IndexSpec(
                    name="NotAlex",
                    factory=resolve("alex").factory,
                    category="extension",
                    aliases=("alex",),
                )
            )

    def test_bad_category_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            IndexSpec(
                name="X", factory=resolve("alex").factory, category="nope"
            )

    def test_register_and_unregister_roundtrip(self):
        spec = registry.register(
            name="TestOnly",
            factory=resolve("btree").factory,
            category="extension",
            aliases=("test-only",),
        )
        try:
            assert resolve("test-only") is spec
            assert spec in specs(category="extension")
        finally:
            registry.unregister("TestOnly")
        with pytest.raises(UnknownIndexError):
            resolve("test-only")

    def test_decorator_form_registers_class(self):
        @registry.register(name="TestDecorated", category="extension")
        class _Decorated(type(resolve("btree").build())):
            pass

        try:
            assert resolve("testdecorated").factory is _Decorated
        finally:
            registry.unregister("TestDecorated")


class TestCliAgreement:
    def test_info_lists_every_registered_index(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        for spec in specs():
            assert spec.cli_name in out, f"{spec.cli_name} missing from info"
            assert spec.category in out

    def test_bench_accepts_any_alias(self, capsys):
        code = cli_main(
            ["bench", "--index", "FITING_TREE_BUF", "--workload",
             "read-only", "--keys", "1000", "--ops", "200"]
        )
        assert code == 0
        assert "FITing-tree-buf" in capsys.readouterr().out
