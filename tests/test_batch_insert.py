"""Contract tests for the batch write APIs and the vectorized gapped leaf.

Three guarantees pinned here:

1. ``insert_many`` / ``ViperStore.put_many`` are observably equivalent to
   the per-key write loop for *every* registry index — same lookups, same
   lengths, same scans, same device occupancy — on batches mixing fresh
   keys, upserts, and in-batch duplicates (where the last write wins).
2. The vectorized ``GappedLeaf`` storage backend is **bit-identical** to
   the scalar one: same insert results, same per-operation event charges,
   same slot layout, same retrain trigger points.  Unlike the batch APIs
   (whose event bills are coarse aggregates — see ``docs/performance.md``)
   this is a storage-backend swap under an unchanged algorithm, so exact
   parity is the contract.
3. The bulk NVM primitives (``allocate_slots``/``write_records``) produce
   the same addresses and charge totals as the sequential walk they
   replace.
"""

import random

import pytest

from repro.bench.runner import IndexAdapter, execute_ops
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion.base import InsertResult
from repro.core.insertion.gapped import GappedLeaf
from repro.core.interfaces import SortedIndex
from repro.errors import UnsupportedOperationError
from repro.perf.context import PerfContext
from repro.registry import (
    has_native_batch_insert,
    has_native_batch_upsert,
    resolve,
    specs,
)
from repro.store.pmem import PMemDevice
from repro.store.viper import ViperStore
from repro.workloads import generate_operations, osm_keys, ycsb_keys
from repro.workloads.ycsb import WorkloadSpec

SPECS = list(specs())
UPDATABLE = [s for s in SPECS if s.build().capabilities().updatable]
READ_ONLY = [s for s in SPECS if not s.build().capabilities().updatable]

N_KEYS = 2_000


def _load_items(rng):
    keys = sorted(rng.sample(range(1, 2**48), N_KEYS))
    return [(k, k * 3) for k in keys]


def _write_batch(load_keys, rng):
    """Fresh keys + upserts of loaded keys + in-batch duplicates, shuffled.

    Duplicate occurrences carry distinct values so last-write-wins
    violations cannot cancel out.
    """
    key_set = set(load_keys)
    fresh = [
        k for k in rng.sample(range(1, 2**48), 500) if k not in key_set
    ][:250]
    existing = rng.sample(load_keys, 120)
    batch = [(k, k * 7) for k in fresh] + [(k, -k) for k in existing]
    rng.shuffle(batch)
    for k in rng.sample(fresh, 40) + rng.sample(existing, 10):
        batch.append((k, k ^ 0xBEEF))  # duplicates appended last: they win
    return batch


def _probe_keys(load_keys, batch, rng):
    batch_keys = [k for k, _ in batch]
    absent = [k + 1 for k in rng.sample(batch_keys, 50)]
    return batch_keys + rng.sample(load_keys, 100) + absent


class TestInsertManyContract:
    @pytest.mark.parametrize("spec", UPDATABLE, ids=lambda s: s.name)
    def test_matches_sequential_inserts(self, spec):
        rng = random.Random(31)
        items = _load_items(rng)
        load_keys = [k for k, _ in items]
        batch = _write_batch(load_keys, rng)

        seq = spec.build()
        seq.bulk_load(items)
        bat = spec.build()
        bat.bulk_load(items)

        for key, value in batch:
            seq.insert(key, value)
        bat.insert_many(batch)

        assert len(bat) == len(seq)
        probes = _probe_keys(load_keys, batch, rng)
        assert bat.get_many(probes) == seq.get_many(probes)
        if isinstance(seq, SortedIndex):
            lo, hi = load_keys[10], load_keys[-10]
            assert list(bat.range(lo, hi)) == list(seq.range(lo, hi))

    @pytest.mark.parametrize("spec", UPDATABLE, ids=lambda s: s.name)
    def test_empty_batch_is_a_noop(self, spec):
        index = spec.build()
        index.bulk_load([(1, 1), (2, 2)])
        index.insert_many([])
        assert len(index) == 2

    @pytest.mark.parametrize("spec", UPDATABLE, ids=lambda s: s.name)
    def test_in_batch_duplicate_last_write_wins(self, spec):
        index = spec.build()
        index.bulk_load([(10, 10), (20, 20)])
        index.insert_many([(15, 1), (15, 2), (10, 5), (15, 3), (10, 6)])
        assert index.get(15) == 3
        assert index.get(10) == 6
        assert len(index) == 3

    @pytest.mark.parametrize("spec", READ_ONLY, ids=lambda s: s.name)
    def test_read_only_indexes_refuse(self, spec):
        index = spec.build()
        index.bulk_load([(1, 1), (2, 2)])
        with pytest.raises(UnsupportedOperationError):
            index.insert_many([(3, 3)])


def test_has_native_batch_insert_classifies_fast_paths():
    flagged = {
        spec.name for spec in SPECS if has_native_batch_insert(spec.build())
    }
    # The bulk write paths must be recognised as native...
    assert {"PGM", "BTree", "ALEX"} <= flagged
    # ...and an index using the per-key fallback must not be.
    assert "Skiplist" not in flagged


def test_has_native_batch_upsert_classifies_fast_paths():
    flagged = {
        spec.name for spec in SPECS if has_native_batch_upsert(spec.build())
    }
    assert "BTree" in flagged
    assert "Skiplist" not in flagged


class TestUpsertManyContract:
    @pytest.mark.parametrize("spec", UPDATABLE, ids=lambda s: s.name)
    def test_matches_sequential_upserts(self, spec):
        """Old values and final state equal the per-key upsert loop —
        including in-batch duplicates, where the second occurrence must
        see the first occurrence's value as its "old"."""
        rng = random.Random(59)
        items = _load_items(rng)
        load_keys = [k for k, _ in items]
        batch = _write_batch(load_keys, rng)

        seq = spec.build()
        seq.bulk_load(items)
        bat = spec.build()
        bat.bulk_load(items)

        expected = [seq.upsert(key, value) for key, value in batch]
        assert bat.upsert_many(batch) == expected
        assert len(bat) == len(seq)
        probes = _probe_keys(load_keys, batch, rng)
        assert bat.get_many(probes) == seq.get_many(probes)


class TestPutManyContract:
    @pytest.mark.parametrize("spec", UPDATABLE, ids=lambda s: s.name)
    def test_matches_sequential_puts(self, spec):
        rng = random.Random(47)
        items = _load_items(rng)
        load_keys = [k for k, _ in items]
        batch = _write_batch(load_keys, rng)

        perf_a = PerfContext()
        seq = ViperStore(spec.build(perf_a), perf_a)
        seq.bulk_load(items)
        perf_b = PerfContext()
        bat = ViperStore(spec.build(perf_b), perf_b)
        bat.bulk_load(items)

        for key, value in batch:
            seq.put(key, value)
        bat.put_many(batch)

        assert len(bat) == len(seq)
        # Stale records freed on both sides: live NVM footprint matches.
        assert bat.device.used_bytes() == seq.device.used_bytes()
        probes = _probe_keys(load_keys, batch, rng)
        assert bat.get_many(probes) == seq.get_many(probes)
        if isinstance(seq.index, SortedIndex):
            assert bat.scan(load_keys[5], 200) == seq.scan(load_keys[5], 200)

    def test_empty_batch_is_a_noop(self):
        perf = PerfContext()
        store = ViperStore(resolve("btree").build(perf), perf)
        store.bulk_load([(1, 1)])
        before = perf.counters.copy()
        store.put_many([])
        assert len(store) == 1
        assert perf.counters == before

    def test_put_single_probe_beats_get_plus_insert(self):
        """Satellite fix: ``put`` descends once, not get-then-insert twice."""
        perf = PerfContext()
        store = ViperStore(resolve("btree").build(perf), perf)
        store.bulk_load([(k, k) for k in range(0, 4_000, 2)])
        before = perf.counters.copy()
        store.put(2_000, -1)  # overwrite an existing key
        hops = perf.counters.delta(before).dram_hop
        before = perf.counters.copy()
        store.get(2_000)
        get_hops = perf.counters.delta(before).dram_hop
        assert hops < 2 * get_hops


class TestUpsert:
    @pytest.mark.parametrize("spec", UPDATABLE, ids=lambda s: s.name)
    def test_returns_previous_value(self, spec):
        index = spec.build()
        index.bulk_load([(10, "a"), (20, "b")])
        assert index.upsert(10, "c") == "a"
        assert index.upsert(15, "d") is None
        assert index.get(10) == "c"
        assert index.get(15) == "d"
        assert len(index) == 3


# ---------------------------------------------------------------- gapped leaf


def _leaf_pair(keys, density=0.6, upper_density=0.85):
    segment = GappedSegment(keys[0], 0, list(keys), density)
    values = [k * 2 for k in keys]
    perf_s = PerfContext()
    scalar = GappedLeaf(
        segment, list(values), perf_s, upper_density, vectorized=False
    )
    perf_v = PerfContext()
    vector = GappedLeaf(
        segment, list(values), perf_v, upper_density, vectorized=True
    )
    assert vector._np_keys is not None, "vectorized backend did not engage"
    return scalar, perf_s, vector, perf_v


def _realistic_keys(dataset, n=2_500):
    maker = {"ycsb": ycsb_keys, "osm": osm_keys}[dataset]
    return sorted(set(maker(n, seed=21)))


class TestGappedLeafEquivalence:
    """The vectorized backend must be *bit-identical* to the scalar one."""

    @pytest.mark.parametrize("dataset", ["ycsb", "osm"])
    def test_inserts_charge_identically_until_full(self, dataset):
        keys = _realistic_keys(dataset)
        scalar, perf_s, vector, perf_v = _leaf_pair(keys)
        assert perf_s.counters == perf_v.counters  # construction is free
        rng = random.Random(77)
        key_set = set(keys)
        news = [k for k in rng.sample(range(1, 2**48), 4_000) if k not in key_set]
        full_at = None
        for i, k in enumerate(news):
            rs = scalar.insert(k, k)
            rv = vector.insert(k, k)
            assert rs is rv, f"diverged at insert {i}"
            assert perf_s.counters == perf_v.counters, f"charges diverged at {i}"
            assert scalar._move_ema == vector._move_ema
            if rs is InsertResult.FULL:
                full_at = i
                break
        assert full_at is not None, "workload never filled the leaf"
        assert scalar.slot_layout() == vector.slot_layout()
        assert scalar.items() == vector.items()
        assert scalar.density() == vector.density()
        assert scalar.first_key == vector.first_key

    @pytest.mark.parametrize("dataset", ["ycsb", "osm"])
    def test_mixed_ops_identical(self, dataset):
        keys = _realistic_keys(dataset, n=1_200)
        scalar, perf_s, vector, perf_v = _leaf_pair(keys, density=0.5)
        rng = random.Random(78)
        key_set = set(keys)
        fresh = [k for k in rng.sample(range(1, 2**48), 600) if k not in key_set]
        ops = (
            [("insert", k) for k in fresh[:200]]
            + [("upsert", k) for k in rng.sample(keys, 150)]
            + [("delete", k) for k in rng.sample(keys, 100)]
            + [("get", k) for k in rng.sample(keys + fresh[:200], 200)]
        )
        rng.shuffle(ops)
        for i, (op, k) in enumerate(ops):
            if op == "insert":
                out_s = scalar.insert(k, -k)
                out_v = vector.insert(k, -k)
            elif op == "upsert":
                out_s = scalar.upsert(k, k + 1)
                out_v = vector.upsert(k, k + 1)
            elif op == "delete":
                out_s = scalar.delete(k)
                out_v = vector.delete(k)
            else:
                out_s = scalar.get(k)
                out_v = vector.get(k)
            assert out_s == out_v, f"{op} diverged at op {i}"
            assert perf_s.counters == perf_v.counters, f"charges diverged at {i}"
        assert scalar.slot_layout() == vector.slot_layout()
        assert scalar.items() == vector.items()
        assert scalar.n == vector.n
        assert scalar._move_ema == vector._move_ema

    def test_get_many_matches_scalar_loop(self):
        keys = _realistic_keys("ycsb", n=1_500)
        _, _, vector, _ = _leaf_pair(keys, density=0.5)
        rng = random.Random(79)
        batch = [k + rng.choice((0, 1)) for k in rng.choices(keys, k=500)]
        assert vector.get_many(batch) == [vector.get(k) for k in batch]

    def test_overdense_segment_rejected(self):
        """Satellite: a leaf born over its density limit must refuse."""
        from repro.errors import InvalidConfigurationError

        keys = list(range(0, 200, 2))
        segment = GappedSegment(keys[0], 0, keys, density=0.99)
        values = [k * 2 for k in keys]
        with pytest.raises(InvalidConfigurationError):
            GappedLeaf(segment, values, PerfContext(), upper_density=0.5)


# ------------------------------------------------------------------ NVM bulk


class TestBulkNVMPrimitives:
    def test_allocate_slots_matches_sequential_walk(self):
        perf_a = PerfContext()
        seq_dev = PMemDevice(slots_per_page=16, perf=perf_a)
        perf_b = PerfContext()
        bulk_dev = PMemDevice(slots_per_page=16, perf=perf_b)
        n = 53
        seq_addrs = []
        page, slot = seq_dev.allocate_page(), 0
        for i in range(n):
            if slot >= seq_dev.slots_per_page:
                page, slot = seq_dev.allocate_page(), 0
            seq_addrs.append((page, slot))
            slot += 1
        bulk_addrs = bulk_dev.allocate_slots(n)
        assert bulk_addrs == seq_addrs
        assert perf_a.counters == perf_b.counters
        assert bulk_dev.page_count == seq_dev.page_count

    def test_write_records_matches_sequential_writes(self):
        perf_a = PerfContext()
        seq_dev = PMemDevice(slots_per_page=8, perf=perf_a)
        perf_b = PerfContext()
        bulk_dev = PMemDevice(slots_per_page=8, perf=perf_b)
        addrs_a = seq_dev.allocate_slots(20)
        addrs_b = bulk_dev.allocate_slots(20)
        for (p, s), i in zip(addrs_a, range(20)):
            seq_dev.write_record(p, s, i, -i)
        bulk_dev.write_records(
            [(p, s, i, -i) for (p, s), i in zip(addrs_b, range(20))]
        )
        assert perf_a.counters == perf_b.counters
        assert bulk_dev.used_bytes() == seq_dev.used_bytes()
        for (p, s), i in zip(addrs_b, range(20)):
            assert bulk_dev.read_record(p, s) == (i, -i)

    def test_store_allocator_reuses_freed_slots_first(self):
        perf = PerfContext()
        store = ViperStore(resolve("btree").build(perf), perf)
        store.bulk_load([(k, k) for k in range(0, 100, 2)])
        store.delete(10)
        store.delete(20)
        freed = list(store._free_slots)
        addrs = store._allocate_slots(5)
        # LIFO drain of the free list, then fresh cursor slots.
        assert addrs[: len(freed)] == list(reversed(freed))
        assert len(set(addrs)) == 5


# ------------------------------------------------------------- harness wiring


def test_execute_ops_batches_writes_equivalently():
    mixed = WorkloadSpec("rw-mix", read=0.4, update=0.3, insert=0.3)
    rng = random.Random(5)
    load = sorted(rng.sample(range(1, 2**40), 1_000))
    inserts = [k for k in range(2**41, 2**41 + 2_000) ]
    ops = generate_operations(mixed, 1_500, load, inserts, seed=5)

    def run(batch_size):
        index = resolve("btree").build()
        index.bulk_load([(k, k) for k in load])
        perf = PerfContext()
        result = execute_ops(IndexAdapter(index), ops, perf, batch_size=batch_size)
        return index, result

    scalar_index, scalar_result = run(1)
    batched_index, batched_result = run(16)
    # Amortised recording keeps op counts comparable...
    assert len(batched_result.recorder) == len(scalar_result.recorder)
    assert set(batched_result.by_kind) == set(scalar_result.by_kind)
    # ...and the target ends in the same observable state.
    probes = [op.key for op in ops]
    assert batched_index.get_many(probes) == scalar_index.get_many(probes)
    assert len(batched_index) == len(scalar_index)
