"""Deeper, index-specific tests for the traditional indexes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import PerfContext
from repro.traditional import CCEH, BPlusTree, BwTree, Masstree, SkipList, Wormhole
from repro.traditional.cceh import _hash64


class TestBPlusTreeInternals:
    def test_height_grows_logarithmically(self):
        heights = []
        for n in (100, 10_000):
            tree = BPlusTree(fanout=8, perf=PerfContext())
            tree.bulk_load([(i, i) for i in range(n)])
            heights.append(tree.stats().depth_max)
        assert heights[0] < heights[1] <= heights[0] + 4

    def test_splits_preserve_leaf_chain(self):
        tree = BPlusTree(fanout=8, perf=PerfContext())
        tree.bulk_load([(i, i) for i in range(0, 400, 2)])
        rng = random.Random(1)
        for k in rng.sample(range(1, 400, 2), 150):
            tree.insert(k, k)
        # The leaf chain must still produce globally sorted output.
        got = [k for k, _ in tree.range(0, 400)]
        assert got == sorted(got)
        assert len(got) == len(tree)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=400, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_insert_order_independence(self, keys):
        a = BPlusTree(fanout=8, perf=PerfContext())
        a.bulk_load([(k, k) for k in sorted(keys)])
        b = BPlusTree(fanout=8, perf=PerfContext())
        b.bulk_load([])
        for k in keys:
            b.insert(k, k)
        assert list(a.range(0, 10**6)) == list(b.range(0, 10**6))


class TestSkipListInternals:
    def test_deterministic_given_seed(self):
        a = SkipList(seed=7, perf=PerfContext())
        b = SkipList(seed=7, perf=PerfContext())
        items = [(i, i) for i in range(1000)]
        a.bulk_load(items)
        b.bulk_load(items)
        assert a.stats().depth_max == b.stats().depth_max
        assert a.size_bytes() == b.size_bytes()

    def test_tower_heights_shrink_size_after_delete(self):
        sl = SkipList(perf=PerfContext())
        sl.bulk_load([(i, i) for i in range(500)])
        before = sl.size_bytes()
        for i in range(0, 500, 2):
            sl.delete(i)
        assert sl.size_bytes() < before

    def test_search_cost_grows_with_n(self):
        costs = []
        for n in (100, 100_000):
            perf = PerfContext()
            sl = SkipList(perf=perf)
            sl.bulk_load([(i * 7, i) for i in range(n)])
            mark = perf.begin()
            for k in range(0, n * 7, max(1, n // 50 * 7)):
                sl.get(k)
            ops = perf.end(mark)
            costs.append(ops.time_ns)
        assert costs[1] > costs[0]


class TestMasstreeBytes:
    @given(
        st.lists(
            st.binary(min_size=1, max_size=24),
            min_size=1,
            max_size=120,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_byte_key_oracle(self, byte_keys):
        tree = Masstree(perf=PerfContext())
        oracle = {}
        for i, bk in enumerate(byte_keys):
            tree.put_bytes(bk, i)
            oracle[bk] = i
        for bk, v in oracle.items():
            assert tree.get_bytes(bk) == v
        # Overwrites.
        for bk in list(oracle)[:10]:
            tree.put_bytes(bk, "new")
            assert tree.get_bytes(bk) == "new"

    def test_deep_shared_prefixes(self):
        tree = Masstree(perf=PerfContext())
        prefix = b"x" * 64
        keys = [prefix + bytes([i]) for i in range(50)]
        for i, bk in enumerate(keys):
            tree.put_bytes(bk, i)
        for i, bk in enumerate(keys):
            assert tree.get_bytes(bk) == i
        assert tree.get_bytes(prefix) is None


class TestBwTreeInternals:
    def test_delta_chain_length_bounded(self):
        tree = BwTree(node_size=64, consolidate_after=6, perf=PerfContext())
        tree.bulk_load([(i, i) for i in range(0, 2000, 2)])
        rng = random.Random(2)
        for k in rng.sample(range(1, 2000, 2), 600):
            tree.insert(k, k)
        assert max(tree._chain_len) <= 6

    def test_delete_via_delta(self):
        tree = BwTree(consolidate_after=100, perf=PerfContext())
        tree.bulk_load([(i, i) for i in range(100)])
        assert tree.delete(50) is True
        assert tree.get(50) is None  # delete delta shadows the base entry
        assert tree.delete(50) is False
        tree.insert(50, "back")
        assert tree.get(50) == "back"

    def test_range_sees_through_deltas(self):
        tree = BwTree(consolidate_after=1000, perf=PerfContext())
        tree.bulk_load([(i, i) for i in range(0, 100, 2)])
        tree.insert(51, 51)
        tree.delete(50)
        got = dict(tree.range(48, 54))
        assert got == {48: 48, 51: 51, 52: 52, 54: 54}


class TestWormholeInternals:
    def test_leaves_split_at_capacity(self):
        wh = Wormhole(leaf_size=16, perf=PerfContext())
        wh.bulk_load([(i, i) for i in range(0, 64, 2)])
        before = wh.stats().leaf_count
        for i in range(1, 64, 2):
            wh.insert(i, i)
        assert wh.stats().leaf_count > before
        assert all(
            len(leaf.keys) <= 16 for leaf in wh._leaves
        )

    def test_fences_match_leaf_heads(self):
        wh = Wormhole(leaf_size=8, perf=PerfContext())
        wh.bulk_load([(i, i) for i in range(100)])
        rng = random.Random(3)
        for k in rng.sample(range(100, 1000), 200):
            wh.insert(k, k)
        for fence, leaf in zip(wh._fences, wh._leaves):
            assert leaf.keys[0] == fence or fence <= leaf.keys[0]


class TestCCEHInternals:
    def test_hash_is_deterministic_and_mixing(self):
        assert _hash64(42) == _hash64(42)
        # Consecutive keys land in different buckets (avalanche).
        buckets = {_hash64(k) >> 54 for k in range(64)}
        assert len(buckets) > 32

    @given(
        st.lists(st.integers(0, 2**62), min_size=1, max_size=500, unique=True),
        st.integers(0, 2**62),
    )
    @settings(max_examples=25, deadline=None)
    def test_oracle_property(self, keys, probe):
        table = CCEH(segment_bits=5, initial_depth=1, perf=PerfContext())
        for k in keys:
            table.insert(k, k * 3)
        for k in keys[:100]:
            assert table.get(k) == k * 3
        expected = probe * 3 if probe in set(keys) else None
        assert table.get(probe) == expected

    def test_delete_reinsert_cycles(self):
        table = CCEH(segment_bits=5, perf=PerfContext())
        rng = random.Random(4)
        keys = rng.sample(range(10**9), 500)
        for k in keys:
            table.insert(k, k)
        for _ in range(3):
            for k in keys[:250]:
                assert table.delete(k) is True
            for k in keys[:250]:
                table.insert(k, k)
        assert len(table) == 500
        for k in keys:
            assert table.get(k) == k
