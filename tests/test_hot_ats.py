"""Tests for the hot-aware ATS extension (§V-B1's future direction)."""

import random
from bisect import bisect_right

import pytest

from repro.core.structures import ATSStructure, HotATSStructure
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf import PerfContext
from repro.workloads import osm_keys


def fences_and_weights(n=5000, hot_fraction=0.05, seed=1):
    fences = osm_keys(n, seed=seed)
    rng = random.Random(seed)
    weights = [1.0] * n
    hot = rng.sample(range(n), int(n * hot_fraction))
    for i in hot:
        weights[i] = 500.0
    return fences, weights, hot


class TestHotATSCorrectness:
    def test_routing_matches_bisect(self):
        fences, weights, _ = fences_and_weights()
        s = HotATSStructure(max_node_fences=16, perf=PerfContext())
        s.build_weighted(fences, weights)
        rng = random.Random(2)
        for key in list(fences[:200]) + [rng.randrange(2**50) for _ in range(300)]:
            assert s.lookup(key) == max(0, bisect_right(fences, key) - 1)

    def test_unweighted_build_still_works(self):
        fences, _, _ = fences_and_weights(1000)
        s = HotATSStructure(max_node_fences=16, perf=PerfContext())
        s.build(fences)
        for key in fences[::37]:
            assert s.lookup(key) == bisect_right(fences, key) - 1

    def test_zero_weight_regions_terminate_early(self):
        fences, _, _ = fences_and_weights(2000)
        s = HotATSStructure(max_node_fences=16, error_threshold=1,
                            perf=PerfContext())
        s.build_weighted(fences, [0.0] * len(fences))
        # Nothing is ever queried, so nothing justifies depth.
        assert s.max_depth() == 1


class TestHotATSOptimisation:
    def test_hot_keys_sit_shallower(self):
        fences, weights, hot = fences_and_weights(8000, seed=3)
        s = HotATSStructure(max_node_fences=16, error_threshold=2,
                            perf=PerfContext())
        s.build_weighted(fences, weights)
        plain = HotATSStructure(max_node_fences=16, error_threshold=2,
                                perf=PerfContext())
        plain.build(fences)
        assert s.weighted_avg_depth() <= plain.avg_depth() + 1e-9

    def test_weighted_depth_reported(self):
        fences, weights, _ = fences_and_weights(2000)
        s = HotATSStructure(perf=PerfContext())
        s.build_weighted(fences, weights)
        assert s.weighted_avg_depth() >= 1.0


class TestHotATSValidation:
    def test_weight_length_mismatch(self):
        s = HotATSStructure(perf=PerfContext())
        with pytest.raises(InvalidConfigurationError):
            s.build_weighted([1, 2, 3], [1.0, 2.0])

    def test_negative_weights_rejected(self):
        s = HotATSStructure(perf=PerfContext())
        with pytest.raises(InvalidConfigurationError):
            s.build_weighted([1, 2], [1.0, -1.0])

    def test_weighted_depth_requires_build(self):
        s = HotATSStructure(perf=PerfContext())
        with pytest.raises(EmptyIndexError):
            s.weighted_avg_depth()
