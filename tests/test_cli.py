"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import INDEXES, WORKLOADS, main


class TestInfo:
    def test_lists_every_index(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in INDEXES:
            assert name in out


class TestBench:
    def test_runs_small_benchmark(self, capsys):
        code = main(
            [
                "bench",
                "--index",
                "btree",
                "--workload",
                "read-only",
                "--keys",
                "2000",
                "--ops",
                "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput (sim Mops/s)" in out
        assert "p99.9" in out

    def test_insert_workload(self, capsys):
        code = main(
            [
                "bench",
                "--index",
                "alex",
                "--workload",
                "ycsb-d",
                "--keys",
                "4000",
                "--ops",
                "1000",
            ]
        )
        assert code == 0
        assert "YCSB-D" in capsys.readouterr().out

    def test_unknown_index_rejected(self, capsys):
        assert main(["bench", "--index", "nope"]) == 2
        assert "unknown index" in capsys.readouterr().err

    def test_unknown_workload_rejected(self, capsys):
        assert main(["bench", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_every_registered_workload_parses(self):
        # Workload registry must be consistent with the generator's needs.
        for name, spec in WORKLOADS.items():
            assert abs(
                spec.read + spec.update + spec.insert + spec.scan + spec.rmw
                - 1.0
            ) < 1e-9, name


class TestDatasets:
    def test_summary(self, capsys):
        assert main(["datasets", "--name", "osm", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "keys" in out
        assert "2,000" in out

    def test_dump(self, capsys):
        assert main(["datasets", "--name", "uniform", "--n", "50", "--dump"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 50
        values = [int(x) for x in lines]
        assert values == sorted(values)

    def test_unknown_dataset_rejected(self, capsys):
        assert main(["datasets", "--name", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err
