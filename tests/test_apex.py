"""Tests for the APEX extension (persistent-memory learned index)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import APEXIndex, PerfContext
from repro.errors import InvalidConfigurationError


def build(keys, perf=None, **kwargs):
    idx = APEXIndex(perf=perf or PerfContext(), **kwargs)
    idx.bulk_load([(k, k * 2) for k in keys])
    return idx


class TestAPEXBasics:
    def test_bulk_load_and_get(self):
        rng = random.Random(1)
        keys = sorted(rng.sample(range(10**10), 10_000))
        idx = build(keys)
        for k in rng.sample(keys, 500):
            assert idx.get(k) == k * 2
        for k in rng.sample(range(10**10), 200):
            if k not in set(keys):
                assert idx.get(k) is None

    def test_insert_update_delete(self):
        idx = build(list(range(0, 2000, 2)))
        for k in range(1, 2000, 2):
            idx.insert(k, -k)
        for k in range(1, 2000, 2):
            assert idx.get(k) == -k
        idx.insert(1, "updated")
        assert idx.get(1) == "updated"
        assert idx.delete(1) is True
        assert idx.get(1) is None
        assert idx.delete(1) is False
        assert len(idx) == 1999

    def test_range_merges_stash(self):
        rng = random.Random(2)
        keys = sorted(rng.sample(range(10**8), 3000))
        idx = build(keys)
        extra = rng.sample(range(10**8), 800)
        oracle = {k: k * 2 for k in keys}
        for k in extra:
            idx.insert(k, -k)
            oracle[k] = -k
        lo, hi = sorted(oracle)[200], sorted(oracle)[2800]
        got = list(idx.range(lo, hi))
        expected = sorted((k, v) for k, v in oracle.items() if lo <= k <= hi)
        assert got == expected

    @given(
        st.lists(st.integers(0, 10**8), min_size=1, max_size=300, unique=True),
        st.lists(st.integers(0, 10**8), max_size=150),
    )
    @settings(max_examples=25, deadline=None)
    def test_oracle_property(self, base, extra):
        idx = build(sorted(base))
        oracle = {k: k * 2 for k in base}
        for k in extra:
            idx.insert(k, k + 9)
            oracle[k] = k + 9
        assert len(idx) == len(oracle)
        for k in list(oracle)[:80]:
            assert idx.get(k) == oracle[k]


class TestAPEXCostProfile:
    def test_reads_touch_pm(self):
        idx = build(list(range(0, 10_000, 3)))
        perf = idx.perf
        before = perf.counters.nvm_read
        idx.get(3000)
        assert perf.counters.nvm_read > before

    def test_probe_is_one_block_on_hit(self):
        """Most hits must cost exactly one PM block read (APEX's point)."""
        rng = random.Random(3)
        keys = sorted(rng.sample(range(10**10), 5000))
        perf = PerfContext()
        idx = build(keys, perf)
        probes = rng.sample(keys, 500)
        before = perf.counters.nvm_read
        for k in probes:
            idx.get(k)
        reads = perf.counters.nvm_read - before
        assert reads <= len(probes) * 1.5  # stash lookups add a few

    def test_stash_overflow_triggers_smo(self):
        idx = build(list(range(0, 4000, 4)), node_size=512)
        rng = random.Random(4)
        for k in rng.sample(range(1, 4000, 2), 1500):
            idx.insert(k, k)
        assert idx.retrain_stats.count > 0
        # After SMOs the stashes are back under control.
        stash = idx.stats().extra["stash_keys"]
        assert stash <= len(idx) * 0.2

    def test_recovery_is_metadata_only(self):
        rng = random.Random(5)
        keys = sorted(rng.sample(range(10**10), 20_000))
        perf = PerfContext()
        idx = build(keys, perf)
        recover_ns = idx.recover_metadata()
        # Orders of magnitude below a per-key rebuild (20K keys at
        # ~70 ns/key would be ~1.4 ms).
        assert recover_ns < 0.3e6


class TestAPEXValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            APEXIndex(node_size=4)
        with pytest.raises(InvalidConfigurationError):
            APEXIndex(density=0.0)
        with pytest.raises(InvalidConfigurationError):
            APEXIndex(stash_limit_fraction=0.0)

    def test_empty_then_insert(self):
        idx = APEXIndex(perf=PerfContext())
        idx.bulk_load([])
        assert idx.get(5) is None
        idx.insert(5, "v")
        assert idx.get(5) == "v"
        assert len(idx) == 1
