"""Tests for operation-trace record/replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidConfigurationError
from repro.workloads import YCSB_E, generate_operations, sequential_keys
from repro.workloads.trace import iter_trace, load_trace, save_trace
from repro.workloads.ycsb import Operation, OpKind

op_strategy = st.builds(
    lambda kind, key, length: Operation(
        kind, key, length if kind is OpKind.SCAN else 0
    ),
    st.sampled_from(list(OpKind)),
    st.integers(0, 2**63),
    st.integers(1, 100),
)


class TestTraceRoundtrip:
    @given(st.lists(op_strategy, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_save_load_identity(self, ops):
        import os
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "t.trace")
            assert save_trace(path, ops) == len(ops)
            assert load_trace(path) == ops

    def test_real_workload_roundtrip(self, tmp_path):
        loaded = sequential_keys(500)
        inserts = [k + 1 for k in loaded]
        ops = generate_operations(YCSB_E, 300, loaded, inserts, seed=1)
        path = tmp_path / "ycsb_e.trace"
        save_trace(str(path), ops)
        assert load_trace(str(path)) == ops
        assert list(iter_trace(str(path))) == ops

    def test_scan_lengths_survive(self, tmp_path):
        ops = [Operation(OpKind.SCAN, 5, 42)]
        path = tmp_path / "s.trace"
        save_trace(str(path), ops)
        assert load_trace(str(path))[0].scan_length == 42


class TestTraceValidation:
    def test_missing_file(self):
        with pytest.raises(InvalidConfigurationError):
            load_trace("/nonexistent/trace")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\nread 1\n")
        with pytest.raises(InvalidConfigurationError, match="not a repro trace"):
            load_trace(str(path))

    def test_garbage_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nfrobnicate 1\n")
        with pytest.raises(InvalidConfigurationError, match="bad trace line"):
            load_trace(str(path))

    def test_scan_without_length(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nscan 1\n")
        with pytest.raises(InvalidConfigurationError, match="scan needs"):
            load_trace(str(path))

    def test_extra_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nread 1 2\n")
        with pytest.raises(InvalidConfigurationError, match="extra fields"):
            load_trace(str(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text("# repro-trace v1\n\n# comment\nread 7\n")
        assert load_trace(str(path)) == [Operation(OpKind.READ, 7)]
