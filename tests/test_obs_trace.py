"""Lifecycle tracing: emission contracts, sampling, exporter round-trips."""

import random

import pytest

from repro import registry
from repro.bench.runner import run_index_ops
from repro.obs import (
    EventType,
    TraceEvent,
    Tracer,
    read_trace_jsonl,
    trace_summary,
    write_trace_jsonl,
)
from repro.obs.export import JsonlTraceSink
from repro.perf import PerfContext
from repro.workloads.datasets import DATASETS
from repro.workloads.ycsb import (
    READ_ONLY,
    WRITE_ONLY,
    WorkloadSpec,
    generate_operations,
    split_load_and_inserts,
)

#: Indexes whose write path refits models, so a write-heavy run must
#: produce RETRAIN events that match their internal retrain counter.
RETRAINING = [
    s.cli_name
    for s in registry.specs()
    if s.category in ("learned-updatable", "extension")
]
#: Updatable indexes without a model to retrain; they must still emit
#: *some* lifecycle event (splits, flushes, allocations) under writes.
STRUCTURAL = [
    s.cli_name
    for s in registry.specs()
    if s.category in ("traditional", "hash")
]


def _write_heavy_run(cli_name: str, n_load=1_000, n_ops=3_000, rate=1.0):
    spec = registry.resolve(cli_name)
    perf = PerfContext()
    tracer = Tracer(rate=rate, seed=7)
    perf.tracer = tracer
    index = spec.build(perf)
    keys = DATASETS["ycsb"](n_load * 5, seed=3)
    load, insert_pool = split_load_and_inserts(keys, 0.2, seed=3)
    index.bulk_load([(k, k) for k in load])
    ops = generate_operations(WRITE_ONLY, n_ops, load, insert_pool, seed=3)
    run_index_ops(index, ops, perf)
    return index, tracer


class TestTracerBasics:
    def test_emit_and_count(self):
        tracer = Tracer()
        perf = PerfContext()
        perf.tracer = tracer
        perf.trace(EventType.RETRAIN, index="X", keys=10)
        perf.trace(EventType.RETRAIN, index="X", keys=20)
        perf.trace(EventType.LEAF_SPLIT, index="X")
        assert tracer.count(EventType.RETRAIN) == 2
        assert tracer.count(EventType.LEAF_SPLIT) == 1
        assert tracer.count(EventType.NVM_GC) == 0
        assert tracer.total_count() == 3
        assert [e.etype for e in tracer.records] == [
            EventType.RETRAIN,
            EventType.RETRAIN,
            EventType.LEAF_SPLIT,
        ]
        assert [e.seq for e in tracer.records] == [1, 2, 3]

    def test_no_tracer_is_noop(self):
        perf = PerfContext()
        perf.trace(EventType.RETRAIN, index="X")  # must not raise

    def test_timestamps_use_simulated_clock(self):
        from repro.perf.events import Event

        perf = PerfContext()
        perf.tracer = Tracer()
        perf.charge(Event.DRAM_HOP, 10)
        perf.trace(EventType.RETRAIN)
        assert perf.tracer.records[0].ts_ns == pytest.approx(perf.elapsed_ns())

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(rate=1.5)
        with pytest.raises(ValueError):
            Tracer(rates={EventType.RETRAIN: -0.1})


class TestSampling:
    def test_counts_exact_under_sampling(self):
        tracer = Tracer(rate=0.25, seed=11)
        for _ in range(4_000):
            tracer.emit(EventType.NODE_ALLOC, 0.0)
        assert tracer.count(EventType.NODE_ALLOC) == 4_000
        sampled = len(tracer.records)
        assert sampled == tracer.sampled[EventType.NODE_ALLOC]
        # Honours the rate: a binomial(4000, 0.25) stays well inside this.
        assert 700 < sampled < 1_300

    def test_rate_zero_counts_but_keeps_nothing(self):
        tracer = Tracer(rate=0.0)
        for _ in range(100):
            tracer.emit(EventType.RETRAIN, 0.0)
        assert tracer.count(EventType.RETRAIN) == 100
        assert tracer.records == []

    def test_sampling_deterministic_for_seed(self):
        def run(seed):
            tracer = Tracer(rate=0.5, seed=seed)
            for i in range(500):
                tracer.emit(EventType.RETRAIN, float(i))
            return [e.seq for e in tracer.records]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_per_type_rate_override(self):
        tracer = Tracer(rate=1.0, rates={EventType.NODE_ALLOC: 0.0})
        for _ in range(50):
            tracer.emit(EventType.NODE_ALLOC, 0.0)
            tracer.emit(EventType.RETRAIN, 0.0)
        assert tracer.count(EventType.NODE_ALLOC) == 50
        assert all(e.etype == EventType.RETRAIN for e in tracer.records)
        assert len(tracer.records) == 50

    def test_index_counters_exact_even_when_sampled(self):
        index, tracer = _write_heavy_run("alex", rate=0.1)
        assert tracer.count(EventType.RETRAIN) == index.stats().retrain_count
        assert len(tracer.records) < tracer.total_count()


class TestEveryIndexEmits:
    @pytest.mark.parametrize("cli_name", RETRAINING)
    def test_retraining_indexes_emit_retrain(self, cli_name):
        index, tracer = _write_heavy_run(cli_name)
        stats = index.stats()
        assert stats.retrain_count > 0, "write-heavy run must trigger retrains"
        assert tracer.count(EventType.RETRAIN) == stats.retrain_count

    @pytest.mark.parametrize("cli_name", STRUCTURAL)
    def test_structural_indexes_emit_lifecycle_events(self, cli_name):
        _, tracer = _write_heavy_run(cli_name)
        assert tracer.total_count() > 0

    def test_composed_split_counter_matches_trace(self):
        index, tracer = _write_heavy_run("alex")
        assert (
            tracer.count(EventType.LEAF_SPLIT)
            == index.stats().extra["leaf_splits"]
        )


class TestAcceptance100k:
    """The PR's acceptance run: 100k mixed YCSB ops at sampling 1.0."""

    MIXED = WorkloadSpec("mixed-rw", read=0.6, insert=0.4)

    @pytest.mark.parametrize("cli_name", ["alex", "pgm"])
    def test_trace_counts_match_internal_counters(self, cli_name, tmp_path):
        spec = registry.resolve(cli_name)
        perf = PerfContext()
        tracer = Tracer(rate=1.0)
        perf.tracer = tracer
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlTraceSink(open(path, "w"))
        tracer.add_sink(sink)
        index = spec.build(perf)
        keys = DATASETS["ycsb"](120_000, seed=42)
        load, insert_pool = split_load_and_inserts(keys, 0.25, seed=42)
        index.bulk_load([(k, k) for k in load])
        ops = generate_operations(
            self.MIXED, 100_000, load, insert_pool, seed=42
        )
        run_index_ops(index, ops, perf)
        sink.close()

        stats = index.stats()
        events = read_trace_jsonl(path)
        retrains = sum(
            1
            for e in events
            if e.etype == EventType.RETRAIN and e.index == index.name
        )
        splits = sum(
            1
            for e in events
            if e.etype == EventType.LEAF_SPLIT and e.index == index.name
        )
        assert stats.retrain_count > 0
        assert retrains == stats.retrain_count
        assert retrains == tracer.count(EventType.RETRAIN)
        expected_splits = stats.extra.get("leaf_splits", 0)
        assert splits == expected_splits
        assert splits == tracer.count(EventType.LEAF_SPLIT)


class TestExportRoundTrip:
    def _events(self):
        tracer = Tracer()
        tracer.emit(EventType.RETRAIN, 10.0, index="A", keys=5, cost_ns=3.5)
        tracer.emit(
            EventType.LEAF_SPLIT,
            20.5,
            index="A",
            leaf=3,
            key_lo=1,
            key_hi=99,
            keys=7,
            count=2,
            reason="model_refit_split",
        )
        tracer.emit(EventType.NVM_GC, 30.0, index="viper[A]", keys=12)
        return tracer.records

    def test_jsonl_round_trip_identical_records(self, tmp_path):
        events = self._events()
        path = str(tmp_path / "t.jsonl")
        assert write_trace_jsonl(events, path) == 3
        parsed = read_trace_jsonl(path)
        assert parsed == events

    def test_round_trip_summary_identical(self, tmp_path):
        events = self._events()
        path = str(tmp_path / "t.jsonl")
        write_trace_jsonl(events, path)
        assert trace_summary(read_trace_jsonl(path)) == trace_summary(events)

    def test_streaming_sink_equals_batch_write(self, tmp_path):
        events = self._events()
        streamed = str(tmp_path / "streamed.jsonl")
        tracer = Tracer()
        sink = JsonlTraceSink(open(streamed, "w"))
        tracer.add_sink(sink)
        for e in events:
            tracer.emit(
                e.etype,
                e.ts_ns,
                index=e.index,
                leaf=e.leaf,
                key_lo=e.key_lo,
                key_hi=e.key_hi,
                reason=e.reason,
                keys=e.keys,
                count=e.count,
                cost_ns=e.cost_ns,
            )
        sink.close()
        assert read_trace_jsonl(streamed) == events

    def test_event_dict_round_trip(self):
        event = TraceEvent(
            seq=1, ts_ns=5.0, etype=EventType.BUFFER_FLUSH, keys=3
        )
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestStoreEvents:
    def test_gc_reclaims_slots_lost_by_recovery(self):
        from repro.learned.alex import ALEXIndex
        from repro.store.viper import ViperStore

        perf = PerfContext()
        tracer = Tracer()
        perf.tracer = tracer
        store = ViperStore(ALEXIndex(perf=perf), perf)
        store.bulk_load([(i, i) for i in range(100)])
        for k in range(0, 40, 2):
            assert store.delete(k)
        store.crash()
        store.recover(lambda: ALEXIndex(perf=perf))
        assert store._free_slots == []  # recovery forgets freed slots
        reclaimed = store.gc()
        # 20 deleted slots plus the 12-slot tail of the page that was open
        # before the crash: recover() starts a fresh open page, so that tail
        # is unreachable by the cursor until gc returns it to the free list.
        assert reclaimed == 20 + 12
        assert tracer.count(EventType.NVM_GC) == 1
        event = [e for e in tracer.records if e.etype == EventType.NVM_GC][0]
        assert event.keys == 32
        # A second pass finds nothing new.
        assert store.gc() == 0
        # Reclaimed slots are actually reused by subsequent puts.
        pages_before = store.device.page_count
        for k in range(1_000, 1_015):
            store.put(k, k)
        assert store.device.page_count == pages_before

    def test_gc_ignores_open_page_tail(self):
        from repro.learned.alex import ALEXIndex
        from repro.store.viper import ViperStore

        perf = PerfContext()
        tracer = Tracer()
        perf.tracer = tracer
        store = ViperStore(ALEXIndex(perf=perf), perf)
        store.bulk_load([(i, i) for i in range(4)])
        store.put(100, 100)  # lands on the open page; tail stays unallocated
        assert store.gc() == 0

    def test_pmem_page_alloc_traced(self):
        from repro.store.pmem import PMemDevice

        perf = PerfContext()
        tracer = Tracer()
        perf.tracer = tracer
        device = PMemDevice(slots_per_page=4, perf=perf)
        device.allocate_page()
        device.allocate_slots(9)
        allocs = [
            e for e in tracer.records if e.etype == EventType.NODE_ALLOC
        ]
        assert [a.count for a in allocs] == [1, 3]


class TestRunnerIntegration:
    def test_metrics_and_progress_wiring(self, tmp_path):
        import io

        from repro.obs import MetricsRegistry, ProgressReporter
        from repro.traditional.btree import BPlusTree

        perf = PerfContext()
        index = BPlusTree(perf=perf)
        index.bulk_load([(i, i) for i in range(0, 2_000, 2)])
        rng = random.Random(0)
        keys = [rng.randrange(0, 2_000) for _ in range(500)]
        ops = generate_operations(
            READ_ONLY, 500, keys, None, seed=0
        )
        metrics = MetricsRegistry()
        stream = io.StringIO()
        progress = ProgressReporter(total=500, every=100, stream=stream)
        result = run_index_ops(
            index, ops, perf, metrics=metrics, progress=progress
        )
        counted = metrics.counter(
            "repro_ops_total", target=index.name, kind="read"
        )
        assert counted.value == len(result.recorder)
        hist = metrics.histogram(
            "repro_op_latency_ns", target=index.name, kind="read"
        )
        assert hist.count == len(result.recorder)
        out = stream.getvalue()
        assert "ops:" in out and "done" in out
