"""Tests for dataset synthesizers and YCSB workload generation."""

import pytest

from repro.errors import InvalidConfigurationError
from repro.workloads import (
    LatestGenerator,
    OpKind,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WorkloadSpec,
    YCSB_A,
    YCSB_B,
    YCSB_D,
    YCSB_E,
    ZipfianGenerator,
    face_keys,
    generate_operations,
    osm_keys,
    sequential_keys,
    uniform_keys,
    ycsb_keys,
)
from repro.workloads.ycsb import split_load_and_inserts
from repro.core.approximation import OptPLAApproximator


class TestDatasets:
    @pytest.mark.parametrize(
        "maker", [ycsb_keys, osm_keys, face_keys, uniform_keys, sequential_keys]
    )
    def test_sorted_unique_exact_count(self, maker):
        keys = maker(5000, seed=3)
        assert len(keys) == 5000
        assert all(keys[i] < keys[i + 1] for i in range(len(keys) - 1))
        assert keys[0] >= 0
        assert keys[-1] < 2**64

    @pytest.mark.parametrize(
        "maker", [ycsb_keys, osm_keys, face_keys, uniform_keys]
    )
    def test_deterministic_in_seed(self, maker):
        assert maker(1000, seed=7) == maker(1000, seed=7)
        assert maker(1000, seed=7) != maker(1000, seed=8)

    def test_face_skew_property(self):
        keys = face_keys(10_000, seed=1)
        low = sum(1 for k in keys if k < 2**50)
        assert low / len(keys) > 0.99
        assert max(keys) > 2**59

    def test_osm_cdf_more_complex_than_ycsb(self):
        """The §III-B property: OSM needs more PLA segments at equal eps."""
        n = 30_000
        osm = osm_keys(n, seed=2)
        ycsb = ycsb_keys(n, seed=2)
        approx = OptPLAApproximator(eps=64)
        assert approx.fit(osm).leaf_count > approx.fit(ycsb).leaf_count

    def test_rejects_bad_n(self):
        with pytest.raises(InvalidConfigurationError):
            ycsb_keys(0)


class TestDistributions:
    def test_zipfian_skew(self):
        gen = ZipfianGenerator(10_000, seed=5)
        draws = [gen.next() for _ in range(20_000)]
        top = sum(1 for d in draws if d < 100)
        assert top / len(draws) > 0.3  # heavy head
        assert all(0 <= d < 10_000 for d in draws)

    def test_scrambled_zipfian_spreads_hotspots(self):
        gen = ScrambledZipfianGenerator(10_000, seed=5)
        draws = [gen.next() for _ in range(5000)]
        assert all(0 <= d < 10_000 for d in draws)
        # The most frequent item should NOT be item 0 in general.
        from collections import Counter

        most_common = Counter(draws).most_common(1)[0][0]
        assert most_common != 0 or len(set(draws)) > 1000

    def test_uniform_bounds(self):
        gen = UniformGenerator(100, seed=1)
        assert all(0 <= gen.next() < 100 for _ in range(1000))

    def test_latest_favours_recent(self):
        gen = LatestGenerator(1000, seed=2)
        for _ in range(500):
            gen.advance()
        draws = [gen.next() for _ in range(2000)]
        recent = sum(1 for d in draws if d >= 1400)
        assert recent / len(draws) > 0.3
        assert all(0 <= d < 1500 for d in draws)

    def test_invalid_params(self):
        with pytest.raises(InvalidConfigurationError):
            ZipfianGenerator(0)
        with pytest.raises(InvalidConfigurationError):
            ZipfianGenerator(10, theta=1.5)


class TestWorkloadSpecs:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(InvalidConfigurationError):
            WorkloadSpec("bad", read=0.5, update=0.2)

    def test_standard_mixes(self):
        assert YCSB_A.read == 0.5
        assert YCSB_B.read == 0.95
        assert YCSB_D.distribution == "latest"
        assert YCSB_E.scan == 0.95


class TestGenerateOperations:
    def setup_method(self):
        self.loaded = sequential_keys(2000, step=4)
        self.inserts = [k + 1 for k in sequential_keys(2000, step=4)]

    def test_mix_proportions_approximate(self):
        ops = generate_operations(
            YCSB_A, 10_000, self.loaded, self.inserts, seed=1
        )
        reads = sum(1 for op in ops if op.kind is OpKind.READ)
        assert 0.45 < reads / len(ops) < 0.55

    def test_reads_hit_known_keys(self):
        ops = generate_operations(YCSB_B, 2000, self.loaded, self.inserts, seed=2)
        known = set(self.loaded) | set(self.inserts)
        for op in ops:
            assert op.key in known

    def test_insert_keys_are_fresh_and_in_order(self):
        ops = generate_operations(YCSB_D, 4000, self.loaded, self.inserts, seed=3)
        issued = [op.key for op in ops if op.kind is OpKind.INSERT]
        assert issued == self.inserts[: len(issued)]

    def test_latest_reads_can_hit_inserted_keys(self):
        ops = generate_operations(YCSB_D, 8000, self.loaded, self.inserts, seed=4)
        inserted_so_far = set()
        read_of_inserted = 0
        for op in ops:
            if op.kind is OpKind.INSERT:
                inserted_so_far.add(op.key)
            elif op.key in inserted_so_far:
                read_of_inserted += 1
        assert read_of_inserted > 0

    def test_scan_lengths_bounded(self):
        ops = generate_operations(YCSB_E, 2000, self.loaded, self.inserts, seed=5)
        for op in ops:
            if op.kind is OpKind.SCAN:
                assert 1 <= op.scan_length <= YCSB_E.scan_length

    def test_missing_insert_keys_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            generate_operations(YCSB_D, 1000, self.loaded, None, seed=6)

    def test_deterministic(self):
        a = generate_operations(YCSB_A, 500, self.loaded, self.inserts, seed=7)
        b = generate_operations(YCSB_A, 500, self.loaded, self.inserts, seed=7)
        assert a == b

    def test_split_load_and_inserts(self):
        keys = uniform_keys(1000, seed=8)
        load, inserts = split_load_and_inserts(keys, 0.6, seed=9)
        assert len(load) == 600
        assert len(inserts) == 400
        assert load == sorted(load)
        assert set(load) | set(inserts) == set(keys)
        assert not set(load) & set(inserts)
