"""Units for the fault-injection harness and supervisor policy knobs.

Engine-level recovery behaviour (respawn, rebuild, exactly-once replay,
degraded modes) is covered end-to-end in ``test_parallel_engine.py``;
here we pin the deterministic pieces that do not need worker processes:
directive validation and matching, plan shipping, and the backoff
ladder's arithmetic.
"""

import pytest

from repro.concurrency import FaultDirective, FaultPlan, WorkerSupervisor
from repro.concurrency.supervise import base_op, match_faults
from repro.errors import ReproError


class TestFaultDirective:
    def test_validation(self):
        with pytest.raises(ReproError):
            FaultDirective(0, "explode")
        with pytest.raises(ReproError):
            FaultDirective(0, "kill", when="during")
        with pytest.raises(ReproError):
            FaultDirective(0, "kill", nth=0)

    def test_roundtrips_to_dict(self):
        d = FaultDirective(2, "delay", op="scan_many", nth=3,
                           delay_s=0.25, incarnation=1)
        assert FaultDirective(**d.to_dict()) == d


class TestFaultPlan:
    def test_builder_accumulates_and_filters_by_worker(self):
        plan = (
            FaultPlan()
            .kill(1, op="get_many", nth=2)
            .drop_reply(0, op="write_many")
            .delay(1, seconds=0.1, incarnation=1)
        )
        assert len(plan.directives) == 3
        mine = plan.for_worker(1)
        assert [d["action"] for d in mine] == ["kill", "delay"]
        assert plan.for_worker(0)[0]["action"] == "drop"
        assert plan.for_worker(7) == []
        # Shipped form is plain picklable dicts.
        assert all(isinstance(d, dict) for d in mine)

    def test_base_op_strips_transport_suffix(self):
        assert base_op("get_many_pipe") == "get_many"
        assert base_op("get_many") == "get_many"
        assert base_op("scan_many_pipe") == "scan_many"
        assert base_op("close") == "close"


class TestMatchFaults:
    def _plan(self):
        return (
            FaultPlan()
            .kill(0, op="get_many", nth=2)
            .kill(0, op="write_many", nth=1, when="after")
            .drop_reply(0, op="get_many", nth=3)
            .kill(0, op="get_many", nth=1, incarnation=1)
        ).for_worker(0)

    def test_matches_op_ordinal_phase(self):
        ds = self._plan()
        assert match_faults(ds, 0, "get_many", 1, "before") == []
        hit = match_faults(ds, 0, "get_many", 2, "before")
        assert [d["action"] for d in hit] == ["kill"]
        # 'after' kills only match the after phase.
        assert match_faults(ds, 0, "write_many", 1, "before") == []
        assert [
            d["when"] for d in match_faults(ds, 0, "write_many", 1, "after")
        ] == ["after"]
        # Drops always match after (served, reply withheld).
        assert [
            d["action"] for d in match_faults(ds, 0, "get_many", 3, "after")
        ] == ["drop"]

    def test_incarnation_pinning(self):
        ds = self._plan()
        assert match_faults(ds, 1, "get_many", 2, "before") == []
        hit = match_faults(ds, 1, "get_many", 1, "before")
        assert [d["incarnation"] for d in hit] == [1]

    def test_wildcard_op_matches_any_command(self):
        ds = FaultPlan().kill(0, nth=2).for_worker(0)
        assert match_faults(ds, 0, "get_many", 2, "before")
        assert match_faults(ds, 0, "scan_many", 2, "before")
        assert match_faults(ds, 0, "get_many", 1, "before") == []


class _FakeEngine:
    workers = 3


class TestSupervisorPolicy:
    def test_config_validation(self):
        with pytest.raises(ReproError):
            WorkerSupervisor(_FakeEngine(), degraded="maybe")
        with pytest.raises(ReproError):
            WorkerSupervisor(_FakeEngine(), restart_budget=-1)

    def test_backoff_ladder_is_bounded_exponential(self):
        sup = WorkerSupervisor(
            _FakeEngine(), restart_budget=5,
            backoff_base_s=0.1, backoff_cap_s=0.35,
        )
        delays = [
            min(sup.backoff_base_s * (2 ** k), sup.backoff_cap_s)
            for k in range(5)
        ]
        assert delays == [0.1, 0.2, 0.35, 0.35, 0.35]

    def test_initial_books_per_worker(self):
        sup = WorkerSupervisor(_FakeEngine(), restart_budget=2)
        assert sup.restarts_used == [0, 0, 0]
        assert sup.last_recovery_s == [None, None, None]
