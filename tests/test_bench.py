"""Tests for the benchmark harness (runner, metrics, report)."""

import os

import pytest

from repro import BPlusTree, CCEH, PerfContext, ViperStore
from repro.bench import (
    BenchResult,
    IndexAdapter,
    OP_HANDLERS,
    StoreAdapter,
    execute_ops,
    format_table,
    measure_build,
    run_index_ops,
    run_store_ops,
    thread_scaling,
)
from repro.errors import UnsupportedOperationError
from repro.perf import BandwidthModel, LatencyRecorder, Profiler
from repro.workloads import YCSB_A, READ_ONLY, generate_operations
from repro.workloads.ycsb import OpKind, Operation


def small_store():
    perf = PerfContext()
    store = ViperStore(BPlusTree(perf=perf), perf)
    store.bulk_load([(i, i) for i in range(0, 2000, 2)])
    return store, perf


class TestRunners:
    def test_run_store_ops_counts_everything(self):
        store, perf = small_store()
        ops = generate_operations(READ_ONLY, 500, list(range(0, 2000, 2)), seed=1)
        recorder, bytes_per_op = run_store_ops(store, ops, perf)
        assert len(recorder) == 500
        assert recorder.mean() > 0
        assert bytes_per_op > 0

    def test_run_store_ops_mixed(self):
        store, perf = small_store()
        loaded = list(range(0, 2000, 2))
        inserts = list(range(1, 2000, 2))
        ops = generate_operations(YCSB_A, 400, loaded, inserts, seed=2)
        recorder, _ = run_store_ops(store, ops, perf)
        assert len(recorder) == 400

    def test_run_index_ops_scan(self):
        perf = PerfContext()
        index = BPlusTree(perf=perf)
        index.bulk_load([(i, i) for i in range(100)])
        ops = [Operation(OpKind.SCAN, 10, 5), Operation(OpKind.READ, 50)]
        recorder, _ = run_index_ops(index, ops, perf)
        assert len(recorder) == 2

    def test_rmw_costs_more_than_read(self):
        store, perf = small_store()
        read = [Operation(OpKind.READ, 100)] * 50
        rmw = [Operation(OpKind.RMW, 100)] * 50
        rec_read, _ = run_store_ops(store, read, perf)
        rec_rmw, _ = run_store_ops(store, rmw, perf)
        assert rec_rmw.mean() > rec_read.mean()

    def test_measure_build(self):
        perf = PerfContext()
        index = BPlusTree(perf=perf)
        ns = measure_build(
            lambda: index.bulk_load([(i, i) for i in range(1000)]), perf
        )
        assert ns > 0


class TestUnifiedExecutor:
    """Both run_* entry points are thin wrappers over one dispatch loop."""

    def test_every_op_kind_has_a_handler(self):
        assert set(OP_HANDLERS) == set(OpKind)

    def test_rmw_on_absent_key_writes_the_key_not_none(self):
        store, perf = small_store()
        absent = 3001  # odd keys were never loaded
        run_store_ops(store, [Operation(OpKind.RMW, absent)], perf)
        assert store.get(absent) == absent  # previously persisted None

    def test_rmw_on_present_key_preserves_the_stored_value(self):
        store, perf = small_store()
        store.put(100, "precious")
        run_store_ops(store, [Operation(OpKind.RMW, 100)], perf)
        assert store.get(100) == "precious"

    def test_scan_on_hash_index_raises_unsupported(self):
        perf = PerfContext()
        index = CCEH(perf=perf)
        for k in range(100):
            index.insert(k, k)
        ops = [Operation(OpKind.SCAN, 10, 5)]
        # Bare index: used to die with AttributeError (no .scan on CCEH).
        with pytest.raises(UnsupportedOperationError):
            run_index_ops(index, ops, perf)
        # Same contract through the store path.
        store = ViperStore(CCEH(perf=perf), perf)
        store.bulk_load([(i, i) for i in range(100)])
        with pytest.raises(UnsupportedOperationError):
            run_store_ops(store, ops, perf)

    def test_per_kind_latency_breakdown(self):
        store, perf = small_store()
        loaded = list(range(0, 2000, 2))
        inserts = list(range(1, 2000, 2))
        ops = generate_operations(YCSB_A, 400, loaded, inserts, seed=5)
        result = run_store_ops(store, ops, perf)
        assert set(result.by_kind) == {op.kind for op in ops}
        assert sum(len(r) for r in result.by_kind.values()) == len(
            result.recorder
        )
        summary = result.kind_summary()
        assert {row[0] for row in summary} == {
            kind.value for kind in result.by_kind
        }
        assert all(row[2] > 0 for row in summary)

    def test_adapters_expose_capabilities(self):
        perf = PerfContext()
        sorted_target = IndexAdapter(BPlusTree(perf=perf))
        hash_target = IndexAdapter(CCEH(perf=perf))
        assert sorted_target.supports_scan
        assert not hash_target.supports_scan
        store, _ = small_store()
        assert StoreAdapter(store).supports_scan

    def test_executor_feeds_profiler(self):
        store, perf = small_store()
        profiler = Profiler(perf)
        ops = [Operation(OpKind.READ, 100), Operation(OpKind.UPDATE, 100)]
        result = execute_ops(StoreAdapter(store), ops, perf, profiler)
        assert profiler.op_count == 2
        assert profiler.total_time_ns() == pytest.approx(
            result.recorder.total_time_ns()
        )
        labels = {p.label for p in profiler.worst()}
        assert labels == {"read", "update"}

    def test_store_and_index_paths_share_semantics(self):
        # Identical op stream through both targets: both count every op.
        ops = [Operation(OpKind.READ, 10), Operation(OpKind.INSERT, 11)]
        perf = PerfContext()
        index = BPlusTree(perf=perf)
        index.bulk_load([(i, i) for i in range(0, 100, 2)])
        rec_idx, _ = run_index_ops(index, ops, perf)
        store, perf2 = small_store()
        rec_store, _ = run_store_ops(store, ops, perf2)
        assert len(rec_idx) == len(rec_store) == 2
        assert index.get(11) == 11
        assert store.get(11) == 11


class TestThreadScaling:
    def test_rows_shape(self):
        rows = thread_scaling(500.0, 900.0, 700.0, (1, 8, 32))
        assert [r["threads"] for r in rows] == [1, 8, 32]
        assert rows[0]["slowdown"] == 1.0

    def test_saturation_monotonic(self):
        bw = BandwidthModel(peak_gbps=2.0)
        rows = thread_scaling(500.0, 900.0, 700.0, (1, 2, 4, 8, 16), bw)
        slowdowns = [r["slowdown"] for r in rows]
        assert slowdowns == sorted(slowdowns)
        # Throughput never decreases with threads in this model...
        tputs = [r["throughput_mops"] for r in rows]
        assert tputs == sorted(tputs)
        # ...but saturates: the last doubling gains almost nothing.
        assert tputs[-1] < tputs[-2] * 1.05


class TestBenchResult:
    def test_from_recorder(self):
        rec = LatencyRecorder()
        rec.extend([100.0, 200.0, 300.0])
        result = BenchResult.from_recorder("X", "w", rec, 64.0, note="hi")
        assert result.ops == 3
        assert result.mean_ns == pytest.approx(200.0)
        assert result.extra["note"] == "hi"
        assert len(result.row()) == 4


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/rows consistently padded

    def test_write_result_creates_file(self, tmp_path, monkeypatch):
        import repro.bench.report as report

        monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
        path = report.write_result("unit_test", "hello table")
        assert os.path.exists(path)
        with open(path) as f:
            assert "hello table" in f.read()


class TestFormatBars:
    def test_scales_to_peak(self):
        from repro.bench import format_bars

        text = format_bars([("a", 10), ("b", 5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        from repro.bench import format_bars

        text = format_bars([("x", 2.5)], title="T", unit=" Mops")
        assert text.splitlines()[0] == "T"
        assert "2.5 Mops" in text

    def test_rejects_empty_and_nonpositive(self):
        import pytest as _pytest

        from repro.bench import format_bars

        with _pytest.raises(ValueError):
            format_bars([])
        with _pytest.raises(ValueError):
            format_bars([("a", 0)])
