"""Tests for the hyper-parameter grid search."""

import pytest

from repro import BPlusTree, PGMIndex
from repro.bench.tuning import grid_search
from repro.errors import InvalidConfigurationError


def items(n=2000):
    return [(i * 7, i) for i in range(n)]


class TestGridSearch:
    def test_finds_a_best_trial(self):
        data = items()
        probes = [k for k, _ in data[::20]]
        result = grid_search(
            lambda fanout, perf: BPlusTree(fanout=fanout, perf=perf),
            {"fanout": (8, 32, 128)},
            data,
            probes,
        )
        assert len(result.trials) == 3
        assert result.best in result.trials
        assert result.best.read_ns == min(t.read_ns for t in result.trials)

    def test_multi_dimensional_grid(self):
        data = items(1000)
        probes = [k for k, _ in data[::10]]
        result = grid_search(
            lambda eps, eps_internal, perf: PGMIndex(
                eps=eps, eps_internal=eps_internal, perf=perf
            ),
            {"eps": (8, 64), "eps_internal": (2, 8)},
            data,
            probes,
        )
        assert len(result.trials) == 4
        combos = {tuple(sorted(t.params.items())) for t in result.trials}
        assert len(combos) == 4

    def test_invalid_combinations_skipped(self):
        data = items(500)
        probes = [k for k, _ in data[::10]]
        result = grid_search(
            lambda fanout, perf: BPlusTree(fanout=fanout, perf=perf),
            {"fanout": (2, 16)},  # fanout=2 is rejected by BPlusTree
            data,
            probes,
        )
        assert len(result.trials) == 1
        assert result.trials[0].params == {"fanout": 16}

    def test_all_invalid_raises(self):
        with pytest.raises(InvalidConfigurationError):
            grid_search(
                lambda fanout, perf: BPlusTree(fanout=fanout, perf=perf),
                {"fanout": (1, 2)},
                items(100),
                [7],
            )

    def test_insert_weighting_changes_winner_potentially(self):
        data = items(1000)
        probes = [k for k, _ in data[::10]]
        extra = [(k + 1, 0) for k, _ in data[::9]]
        result = grid_search(
            lambda fanout, perf: BPlusTree(fanout=fanout, perf=perf),
            {"fanout": (8, 64)},
            data,
            probes,
            insert_items=extra,
            read_weight=0.0,
            insert_weight=1.0,
        )
        assert result.best.insert_ns > 0
        ranked = result.ranked(read_weight=0.0, insert_weight=1.0)
        assert ranked[0] == result.best

    def test_empty_grid_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            grid_search(lambda perf: BPlusTree(perf=perf), {}, items(10), [7])

    def test_nothing_to_measure_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            grid_search(
                lambda fanout, perf: BPlusTree(fanout=fanout, perf=perf),
                {"fanout": (8,)},
                items(10),
                [],
            )

    def test_trial_records_build_and_size(self):
        data = items(500)
        result = grid_search(
            lambda fanout, perf: BPlusTree(fanout=fanout, perf=perf),
            {"fanout": (16,)},
            data,
            [data[0][0]],
        )
        trial = result.best
        assert trial.build_ns > 0
        assert trial.size_bytes > 0
