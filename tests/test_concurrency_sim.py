"""The discrete-event concurrency simulator: scheme semantics + shapes.

Mechanism-level tests on small synthetic profiles — the paper-shape
claims on *measured* profiles live in ``benchmarks/bench_fig12*`` and
``bench_fig14*``; here we pin what each CC scheme is supposed to do.
"""

import pytest

from repro.concurrency import (
    CC_SCHEMES,
    ConcurrencySpec,
    OpProfile,
    RWLOCK_BOUNCE_NS,
    make_streams,
    simulate,
    simulate_scaling,
)
from repro.errors import InvalidConfigurationError
from repro.obs import EventType, Tracer
from repro.perf import BandwidthModel

#: A light profile far from bandwidth saturation, so scheme effects are
#: visible in isolation.
LIGHT = OpProfile(mean_ns=500.0, p999_ns=1000.0, bytes_per_op=64.0)
#: Wide bandwidth so the pool never saturates in these tests.
WIDE_BW = BandwidthModel(peak_gbps=10_000.0)


def run(spec, threads, write_fraction=0.0, profile=LIGHT, **kwargs):
    streams = make_streams(threads, 400, write_fraction, seed=7)
    return simulate(spec, profile, streams, bandwidth=WIDE_BW, seed=7, **kwargs)


class TestSpec:
    def test_scheme_validation(self):
        with pytest.raises(InvalidConfigurationError):
            ConcurrencySpec(scheme="hopeful")
        with pytest.raises(InvalidConfigurationError):
            ConcurrencySpec(latch_domains=0)
        with pytest.raises(InvalidConfigurationError):
            ConcurrencySpec(retry_base=1.5)

    def test_effective_domains(self):
        assert ConcurrencySpec(scheme="global_lock", latch_domains=64
                               ).effective_domains == 1
        assert ConcurrencySpec(scheme="lock_free").effective_domains >= 1024
        assert ConcurrencySpec(scheme="fine_grained_latch", latch_domains=64
                               ).effective_domains == 64

    def test_describe_mentions_scheme_and_blocking(self):
        spec = ConcurrencySpec(
            scheme="fine_grained_latch", latch_domains=8, retrain_blocking=True
        )
        assert "fine_grained_latch[8]" in spec.describe()
        assert "retrain-block" in spec.describe()

    def test_every_scheme_simulates(self):
        for scheme in CC_SCHEMES:
            result = run(ConcurrencySpec(scheme=scheme), 4, 0.5)
            assert result.ops == 4 * 400
            assert result.throughput_mops > 0


class TestSchemeSemantics:
    def test_lock_free_reads_never_wait(self):
        result = run(ConcurrencySpec(scheme="lock_free"), 8, 0.0)
        assert result.latch_wait_ns == 0.0
        assert result.retries == 0
        assert result.counters.latch_acquire == 0

    def test_global_lock_serialises_writers(self):
        spec = ConcurrencySpec(scheme="global_lock")
        t1 = run(spec, 1, 1.0)
        t8 = run(spec, 8, 1.0)
        # All writes fight over one domain: 8 threads gain (almost)
        # nothing over 1.
        assert t8.throughput_mops < t1.throughput_mops * 1.5
        assert t8.latch_wait_ns > 0

    def test_global_lock_readers_pay_the_lock_cacheline(self):
        spec = ConcurrencySpec(scheme="global_lock")
        t1 = run(spec, 1, 0.0)
        t8 = run(spec, 8, 0.0)
        # Read-only still degrades per-op: each read ships the lock word.
        assert t8.mean_ns >= t1.mean_ns + RWLOCK_BOUNCE_NS * 6
        # ... but reads share the lock, so aggregate throughput grows.
        assert t8.throughput_mops > t1.throughput_mops * 4

    def test_more_latch_domains_less_waiting(self):
        few = run(
            ConcurrencySpec(scheme="fine_grained_latch", latch_domains=2),
            8, 1.0,
        )
        many = run(
            ConcurrencySpec(scheme="fine_grained_latch", latch_domains=512),
            8, 1.0,
        )
        assert many.latch_wait_ns < few.latch_wait_ns
        assert many.throughput_mops > few.throughput_mops

    def test_optimistic_reads_retry_only_under_writes(self):
        spec = ConcurrencySpec(scheme="optimistic_read", retry_base=0.5)
        readonly = run(spec, 8, 0.0)
        mixed = run(spec, 8, 0.5)
        assert readonly.retries == 0
        assert mixed.retries > 0
        assert mixed.counters.opt_retry == mixed.retries

    def test_optimistic_retries_need_other_threads(self):
        spec = ConcurrencySpec(scheme="optimistic_read", retry_base=0.5)
        assert run(spec, 1, 0.5).retries == 0

    def test_retrain_blocking_stalls_the_whole_structure(self):
        blocking = ConcurrencySpec(
            scheme="fine_grained_latch", latch_domains=512,
            retrain_blocking=True,
        )
        non_blocking = ConcurrencySpec(
            scheme="fine_grained_latch", latch_domains=512,
        )
        profile = OpProfile(
            mean_ns=500.0, p999_ns=1000.0, bytes_per_op=64.0,
            retrain_every=50, retrain_stall_ns=20_000.0,
        )
        stalled = run(blocking, 8, 1.0, profile=profile)
        free = run(non_blocking, 8, 1.0, profile=profile)
        assert stalled.retrain_stalls > 0
        assert stalled.retrain_stall_ns > 0
        assert free.retrain_stalls == 0
        assert stalled.throughput_mops < free.throughput_mops
        # Amdahl: the blocked structure scales worse than the free one.
        stalled1 = run(blocking, 1, 1.0, profile=profile)
        free1 = run(non_blocking, 1, 1.0, profile=profile)
        assert (
            stalled.throughput_mops / stalled1.throughput_mops
            < free.throughput_mops / free1.throughput_mops
        )

    def test_latency_includes_waits(self):
        result = run(ConcurrencySpec(scheme="global_lock"), 8, 1.0)
        # Mean observed latency must exceed the service mean once waits
        # are charged.
        assert result.mean_ns > LIGHT.mean_ns


class TestTraceIntegration:
    def test_sim_emits_latch_wait_and_retrain_stall(self):
        tracer = Tracer()
        profile = OpProfile(
            mean_ns=500.0, p999_ns=1000.0, bytes_per_op=64.0,
            retrain_every=50, retrain_stall_ns=20_000.0,
        )
        spec = ConcurrencySpec(
            scheme="fine_grained_latch", latch_domains=4,
            retrain_blocking=True,
        )
        streams = make_streams(8, 300, 1.0, seed=3)
        result = simulate(
            spec, profile, streams, bandwidth=WIDE_BW, seed=3,
            tracer=tracer, index_name="XIndex",
        )
        assert tracer.count(EventType.LATCH_WAIT) > 0
        assert tracer.count(EventType.RETRAIN_STALL) >= result.retrain_stalls
        record = next(
            r for r in tracer.records if r.etype == EventType.LATCH_WAIT
        )
        assert record.index == "XIndex"
        assert record.cost_ns > 0


class TestScaling:
    def test_streams_are_prefix_stable(self):
        big = make_streams(8, 100, 0.5, seed=11)
        small = make_streams(3, 100, 0.5, seed=11)
        assert big[:3] == small

    def test_simulate_scaling_matches_individual_runs(self):
        spec = ConcurrencySpec(scheme="fine_grained_latch", latch_domains=64)
        curve = simulate_scaling(
            spec, LIGHT, (1, 2, 4), write_fraction=0.5,
            ops_per_thread=200, bandwidth=WIDE_BW, seed=5,
        )
        assert [r.threads for r in curve] == [1, 2, 4]
        streams = make_streams(4, 200, 0.5, seed=5)
        solo = simulate(
            spec, LIGHT, streams[:2], bandwidth=WIDE_BW, seed=5
        )
        assert curve[1].makespan_ns == solo.makespan_ns
        assert curve[1].throughput_mops == solo.throughput_mops

    def test_bandwidth_saturation_flattens_any_scheme(self):
        heavy = OpProfile(mean_ns=500.0, p999_ns=1000.0, bytes_per_op=4096.0)
        curve = simulate_scaling(
            ConcurrencySpec(scheme="lock_free"), heavy, (1, 32),
            ops_per_thread=200, seed=5,
        )
        # 32 threads * 4KB / 500ns >> 25 GB/s: scaling must fall well
        # short of linear even with no locks at all.
        assert curve[1].bandwidth_slowdown > 1.0
        assert (
            curve[1].throughput_mops
            < curve[0].throughput_mops * 32 * 0.7
        )

    def test_empty_and_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate(ConcurrencySpec(), LIGHT, [])
        with pytest.raises(ValueError):
            make_streams(2, 10, 1.5)
        with pytest.raises(ValueError):
            OpProfile(mean_ns=0.0, p999_ns=1.0, bytes_per_op=1.0)


class TestFailureModel:
    """The worker-failure model: fail-recover on the simulated clock."""

    def _fm(self, mtbf_ns=50_000.0, rebuild_ns=20_000.0):
        from repro.concurrency import FailureModel

        return FailureModel(mtbf_ns=mtbf_ns, rebuild_ns=rebuild_ns)

    def test_validation(self):
        from repro.concurrency import FailureModel

        with pytest.raises(ValueError):
            FailureModel(mtbf_ns=0.0)
        with pytest.raises(ValueError):
            FailureModel(mtbf_ns=1.0, rebuild_ns=-1.0)

    def test_baseline_schedule_untouched_without_model(self):
        a = run(ConcurrencySpec(), 4, 0.3)
        b = run(ConcurrencySpec(), 4, 0.3, failure=None)
        assert a.makespan_ns == b.makespan_ns
        assert a.failures == 0 and a.recovery_stall_ns == 0.0

    def test_failures_fire_and_stall(self):
        base = run(ConcurrencySpec(), 4, 0.0)
        failed = run(ConcurrencySpec(), 4, 0.0, failure=self._fm())
        assert failed.failures > 0
        assert failed.recovery_stall_ns > 0.0
        assert failed.makespan_ns > base.makespan_ns
        assert 0.0 < failed.recovery_stall_share < 1.0
        # Throughput strictly degrades under failures.
        assert failed.throughput_mops < base.throughput_mops

    def test_deterministic_given_seed(self):
        a = run(ConcurrencySpec(), 4, 0.2, failure=self._fm())
        b = run(ConcurrencySpec(), 4, 0.2, failure=self._fm())
        assert a.failures == b.failures
        assert a.makespan_ns == b.makespan_ns
        assert a.recovery_stall_ns == b.recovery_stall_ns

    def test_rarer_failures_hurt_less(self):
        often = run(ConcurrencySpec(), 2, 0.0, failure=self._fm(30_000.0))
        rare = run(
            ConcurrencySpec(), 2, 0.0, failure=self._fm(3_000_000.0)
        )
        assert often.failures > rare.failures
        assert often.recovery_stall_ns >= rare.recovery_stall_ns

    def test_restart_events_on_sim_clock(self):
        tracer = Tracer()
        result = run(
            ConcurrencySpec(), 3, 0.0, failure=self._fm(), tracer=tracer
        )
        assert tracer.count(EventType.WORKER_RESTART) == result.failures
        restarts = [
            r for r in tracer.records
            if r.etype == EventType.WORKER_RESTART
        ]
        assert restarts
        assert all(0 <= r.leaf < 3 for r in restarts)
        assert all(r.cost_ns == 20_000.0 for r in restarts)
        assert all(r.ts_ns <= result.makespan_ns for r in restarts)

    def test_scaling_passthrough(self):
        curve = simulate_scaling(
            ConcurrencySpec(), LIGHT, (1, 2), ops_per_thread=300,
            seed=7, failure=self._fm(),
        )
        assert all(r.failures > 0 for r in curve)
