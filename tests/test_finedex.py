"""Tests for FINEdex and the fine-grained level-bin insertion strategy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FINEdexIndex, PerfContext
from repro.core.approximation.lsa import fit_least_squares
from repro.core.approximation.base import LinearModel
from repro.core.insertion import InsertResult
from repro.core.insertion.fine_bins import FineBinLeaf
from repro.errors import InvalidConfigurationError


def make_leaf(keys, bin_capacity=8, max_bin_fraction=1.0, perf=None):
    perf = perf or PerfContext()
    slope, intercept = fit_least_squares(keys, keys[0])
    model = LinearModel(slope, intercept, keys[0])
    return FineBinLeaf(
        keys, [k * 2 for k in keys], model, 8, bin_capacity,
        max_bin_fraction, perf,
    )


class TestFineBinLeaf:
    def test_get_from_main_and_bins(self):
        leaf = make_leaf(list(range(0, 100, 10)))
        assert leaf.get(50) == 100
        leaf.insert(55, "binned")
        assert leaf.get(55) == "binned"
        assert leaf.get(56) is None

    def test_one_bin_per_position(self):
        leaf = make_leaf(list(range(0, 100, 10)), bin_capacity=4)
        for k in (51, 52, 53, 54):
            assert leaf.insert(k, k) is InsertResult.INSERTED
        assert leaf.insert(56, 56) is InsertResult.FULL  # bin at pos full
        assert leaf.insert(61, 61) is InsertResult.INSERTED  # other bin fine

    def test_items_globally_sorted(self):
        rng = random.Random(1)
        base = sorted(rng.sample(range(0, 10**6, 2), 300))
        leaf = make_leaf(base, bin_capacity=64, max_bin_fraction=4.0)
        for k in rng.sample(range(1, 10**6, 2), 200):
            assert leaf.insert(k, k) is not InsertResult.FULL
        keys = [k for k, _ in leaf.items()]
        assert keys == sorted(keys)
        assert len(keys) == 500

    def test_delete_from_bin_and_main(self):
        leaf = make_leaf(list(range(0, 100, 10)))
        leaf.insert(55, 55)
        assert leaf.delete(55) is True
        assert leaf.get(55) is None
        assert leaf.delete(50) is True
        assert leaf.get(50) is None
        assert leaf.delete(50) is False
        keys = [k for k, _ in leaf.items()]
        assert keys == sorted(keys)

    def test_delete_main_merges_flanking_bins(self):
        leaf = make_leaf([10, 20, 30])
        leaf.insert(15, 15)  # bin before 20
        leaf.insert(25, 25)  # bin after 20
        assert leaf.delete(20) is True
        # Both binned keys must survive the merge.
        assert leaf.get(15) == 15
        assert leaf.get(25) == 25
        keys = [k for k, _ in leaf.items()]
        assert keys == [10, 15, 25, 30]

    def test_total_bin_budget_enforced(self):
        leaf = make_leaf(list(range(0, 40, 4)), bin_capacity=64,
                         max_bin_fraction=0.5)
        inserted = 0
        for k in range(1, 200, 2):
            if leaf.insert(k, k) is InsertResult.FULL:
                break
            inserted += 1
        assert inserted <= 10 * 0.5 + 1

    def test_bad_config(self):
        with pytest.raises(InvalidConfigurationError):
            make_leaf([1, 2, 3], bin_capacity=0)
        with pytest.raises(InvalidConfigurationError):
            make_leaf([1, 2, 3], max_bin_fraction=0.0)


class TestFINEdexIndex:
    def test_mixed_oracle(self):
        rng = random.Random(2)
        keys = sorted(rng.sample(range(10**9), 3000))
        idx = FINEdexIndex(perf=PerfContext())
        idx.bulk_load([(k, k) for k in keys])
        oracle = {k: k for k in keys}
        for _ in range(4000):
            k = rng.randrange(10**9)
            if rng.random() < 0.5:
                idx.insert(k, k + 1)
                oracle[k] = k + 1
            else:
                assert idx.get(k) == oracle.get(k)
        assert len(idx) == len(oracle)

    def test_retrains_are_fine_grained(self):
        """A full bin retrains one leaf, not the index: leaf count and
        retrain volume stay small relative to the data."""
        rng = random.Random(3)
        keys = sorted(rng.sample(range(10**9), 5000))
        idx = FINEdexIndex(bin_capacity=4, perf=PerfContext())
        idx.bulk_load([(k, k) for k in keys])
        for k in rng.sample(range(10**9), 5000):
            idx.insert(k, k)
        stats = idx.stats()
        assert stats.retrain_count > 0
        # Each retrain touched roughly one leaf's worth of keys.
        avg_retrained = stats.retrain_keys / stats.retrain_count
        assert avg_retrained < len(idx) / 2

    def test_capabilities(self):
        caps = FINEdexIndex.capabilities()
        assert caps.concurrent_write is True
        assert caps.bounded_error is True

    @given(
        st.lists(st.integers(0, 10**7), min_size=2, max_size=250, unique=True),
        st.lists(st.integers(0, 10**7), max_size=150),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_oracle(self, base, extra):
        idx = FINEdexIndex(bin_capacity=4, perf=PerfContext())
        idx.bulk_load([(k, k) for k in sorted(base)])
        oracle = {k: k for k in base}
        for k in extra:
            idx.insert(k, k - 1)
            oracle[k] = k - 1
        for k in list(oracle)[:80]:
            assert idx.get(k) == oracle[k]
        got = list(idx.range(0, 10**7))
        assert got == sorted(oracle.items())
