"""Sharded execution must be invisible: K shards, same answers.

The contract: a :class:`~repro.concurrency.ShardedStore` (or
``sharded_index``) over any registry spec returns bit-identical
get/put/scan results to the unsharded instance, for any shard count —
sharding partitions the key space, it never changes semantics.
"""

import pytest

from repro import PerfContext, ViperStore
from repro.concurrency import ShardRouter, ShardedStore, sharded_index
from repro.concurrency.sharding import SortedShardedIndex
from repro.core.interfaces import SortedIndex
from repro.errors import InvalidConfigurationError
from repro.registry import specs
from repro.workloads import uniform_keys

SHARD_COUNTS = (1, 2, 7)

#: Small but non-trivial: enough keys that every shard gets a spread.
N_KEYS = 600
N_EXTRA = 120


def _keys():
    keys = uniform_keys(N_KEYS + N_EXTRA, seed=5)
    return keys[:N_KEYS], keys[N_KEYS:]


def _spec_params():
    return [pytest.param(spec, id=spec.name) for spec in specs()]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("spec", _spec_params())
def test_sharded_store_matches_unsharded(spec, shards):
    load, extra = _keys()
    items = [(k, f"v{k}") for k in load]

    flat = ViperStore(spec.build(PerfContext()), PerfContext())
    flat.bulk_load(items)
    sharded = ShardedStore(spec.build, shards)
    sharded.bulk_load(items)

    updatable = flat.index.capabilities().updatable
    issued = 0

    # Point lookups: every loaded key, plus misses.
    probe = list(load) + list(extra)
    assert [sharded.get(k) for k in probe] == [flat.get(k) for k in probe]
    issued += len(probe)
    assert sharded.get_many(probe) == flat.get_many(probe)
    issued += len(probe)

    if updatable:
        for k in extra:
            flat.put(k, f"n{k}")
            sharded.put(k, f"n{k}")
        issued += len(extra)
        for k in load[:50]:
            flat.update(k, f"u{k}")
            sharded.update(k, f"u{k}")
        issued += 50
        assert sharded.get_many(probe) == flat.get_many(probe)
        issued += len(probe)
        for k in load[50:60]:
            assert sharded.delete(k) == flat.delete(k)
        issued += 10
        assert [sharded.get(k) for k in load[50:60]] == [None] * 10
        issued += 10

    assert len(sharded) == len(flat)
    assert sum(sharded.shard_ops) == issued

    # Ordered scans must cross shard boundaries seamlessly.
    if isinstance(flat.index, SortedIndex):
        start = sorted(load)[len(load) // 3]
        for count in (1, 25, len(load)):
            assert sharded.scan(start, count) == flat.scan(start, count)
        assert sharded.scan(min(load) - 1, 40) == flat.scan(min(load) - 1, 40)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_index_matches_unsharded(shards):
    spec = next(s for s in specs() if s.name == "BTree")
    load, extra = _keys()
    items = [(k, k * 3) for k in load]

    flat = spec.build(PerfContext())
    flat.bulk_load(items)
    sharded = sharded_index(spec.build, shards)
    sharded.bulk_load(items)
    assert isinstance(sharded, SortedShardedIndex)

    probe = list(load) + list(extra)
    assert sharded.get_many(probe) == flat.get_many(probe)
    for k in extra:
        flat.insert(k, k * 3)
        sharded.insert(k, k * 3)
    assert sharded.get_many(probe) == flat.get_many(probe)
    assert len(sharded) == len(flat)
    assert sharded.stats().leaf_count >= shards

    start = sorted(load)[7]
    assert sharded.scan(start, 100) == flat.scan(start, 100)
    assert list(sharded.range(start, start + 10**17)) == list(
        flat.range(start, start + 10**17)
    )


class TestRouter:
    def test_uniform_default_covers_the_key_space(self):
        router = ShardRouter(4)
        assert router.shard_of(0) == 0
        assert router.shard_of((1 << 64) - 1) == 3

    def test_from_keys_every_shard_nonempty(self):
        keys = sorted(uniform_keys(100, seed=9))
        router = ShardRouter.from_keys(keys, 7)
        parts = router.partition([(k, None) for k in keys])
        assert len(parts) == 7
        assert all(parts)
        assert sum(len(p) for p in parts) == len(keys)

    def test_partition_preserves_in_shard_order(self):
        router = ShardRouter(2, boundaries=[50])
        items = [(10, "a"), (60, "b"), (20, "c"), (10, "d")]
        parts = router.partition(items)
        assert parts[0] == [(10, "a"), (20, "c"), (10, "d")]
        assert parts[1] == [(60, "b")]

    def test_more_shards_than_keys_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            ShardRouter.from_keys([1, 2, 3], 4)

    def test_from_keys_duplicate_heavy_sample(self):
        # Regression: equal-population cuts used to land two boundaries
        # on the same repeated key and crash on the strictly-ascending
        # check.  A skewed sample (each key repeated 40x) must split.
        distinct = sorted(uniform_keys(12, seed=3))
        keys = sorted(k for k in distinct for _ in range(40))
        router = ShardRouter.from_keys(keys, 7)
        parts = router.partition([(k, None) for k in keys])
        assert len(parts) == 7
        assert all(parts)
        assert sum(len(p) for p in parts) == len(keys)

    def test_from_keys_too_few_distinct_keys_rejected(self):
        keys = sorted([5] * 50 + [9] * 50)  # 2 distinct, 3 shards
        with pytest.raises(InvalidConfigurationError) as err:
            ShardRouter.from_keys(keys, 3)
        assert "distinct" in str(err.value)

    def test_bad_boundaries_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            ShardRouter(3, boundaries=[10])  # wrong count
        with pytest.raises(InvalidConfigurationError):
            ShardRouter(3, boundaries=[20, 10])  # not ascending
        with pytest.raises(InvalidConfigurationError):
            ShardRouter(0)


class TestMergedClocks:
    def test_parallel_clock_is_max_serial_is_sum(self):
        spec = next(s for s in specs() if s.name == "BTree")
        load, _ = _keys()
        sharded = ShardedStore(spec.build, 3)
        sharded.bulk_load([(k, k) for k in load])
        for k in load[:100]:
            sharded.get(k)
        per_shard = [p.elapsed_ns() for p in sharded.perfs]
        assert sharded.elapsed_ns(parallel=True) == max(per_shard)
        assert sharded.elapsed_ns(parallel=False) == pytest.approx(
            sum(per_shard)
        )

    def test_shared_perf_mode_uses_one_clock(self):
        spec = next(s for s in specs() if s.name == "BTree")
        load, _ = _keys()
        perf = PerfContext()
        sharded = ShardedStore(spec.build, 3, perf=perf)
        sharded.bulk_load([(k, k) for k in load])
        assert all(p is perf for p in sharded.perfs)
        assert sharded.elapsed_ns(parallel=True) == perf.elapsed_ns()
