"""Tests for the per-operation cost profiler."""

import pytest

from repro import BPlusTree, PerfContext
from repro.perf import Event, Profiler


def profiled_index(n=2000):
    perf = PerfContext()
    index = BPlusTree(perf=perf)
    index.bulk_load([(i, i) for i in range(n)])
    return index, perf


class TestProfiler:
    def test_counts_and_mean(self):
        index, perf = profiled_index()
        profiler = Profiler(perf)
        for k in range(0, 100, 10):
            with profiler.operation(f"get {k}"):
                index.get(k)
        assert profiler.op_count == 10
        assert profiler.mean_time_ns() > 0

    def test_time_by_event_sums_to_total(self):
        index, perf = profiled_index()
        profiler = Profiler(perf)
        for k in range(50):
            with profiler.operation():
                index.get(k)
        assert sum(profiler.time_by_event().values()) == pytest.approx(
            profiler.total_time_ns()
        )

    def test_worst_keeps_costliest(self):
        index, perf = profiled_index()
        profiler = Profiler(perf, keep_worst=3)
        with profiler.operation("cheap"):
            perf.charge(Event.COMPARE)
        with profiler.operation("expensive"):
            perf.charge(Event.NVM_READ, 100)
        with profiler.operation("middling"):
            perf.charge(Event.DRAM_HOP, 2)
        worst = profiler.worst()
        assert worst[0].label == "expensive"
        assert worst[0].dominant == Event.NVM_READ
        assert [w.label for w in worst] == ["expensive", "middling", "cheap"]

    def test_worst_bounded_by_keep(self):
        _, perf = profiled_index(10)
        profiler = Profiler(perf, keep_worst=2)
        for i in range(10):
            with profiler.operation(str(i)):
                perf.charge(Event.COMPARE, i + 1)
        assert len(profiler.worst()) == 2
        assert {w.label for w in profiler.worst()} == {"8", "9"}

    def test_run_helper_returns_value(self):
        index, perf = profiled_index()
        profiler = Profiler(perf)
        assert profiler.run("get", lambda: index.get(7)) == 7
        assert profiler.op_count == 1

    def test_exceptions_not_recorded(self):
        _, perf = profiled_index(10)
        profiler = Profiler(perf)
        with pytest.raises(RuntimeError):
            with profiler.operation("boom"):
                raise RuntimeError("boom")
        assert profiler.op_count == 0

    def test_explain_formats(self):
        index, perf = profiled_index()
        profiler = Profiler(perf)
        with profiler.operation("the-op"):
            index.get(3)
        text = profiler.explain()
        assert "1 ops" in text
        assert "the-op" in text
        assert "dominated by" in text

    def test_explain_empty(self):
        _, perf = profiled_index(10)
        assert "no operations" in Profiler(perf).explain()

    def test_mean_requires_ops(self):
        _, perf = profiled_index(10)
        with pytest.raises(ValueError):
            Profiler(perf).mean_time_ns()
