"""Contract tests for the batch API and the vectorized fit fast paths.

Two guarantees pinned here:

1. ``get_many``/``contains_many`` agree with the per-key ``get`` loop for
   *every* registry index, on sorted, shuffled, duplicate-heavy, absent,
   and empty batches — native fast paths and scalar fallbacks alike.
2. The vectorized approximator fits produce **identical segment
   boundaries** to the scalar implementations on realistic key
   distributions (YCSB, OSM) — the bit-identity claim the fast paths are
   built on.
"""

import random

import pytest

import repro.core.approximation.vectorized as _vec
from repro.core.approximation import (
    GreedyPLAApproximator,
    LSAApproximator,
    LSAGapApproximator,
)
from repro.core.approximation.base import LinearModel
from repro.registry import has_native_batch, specs
from repro.workloads import osm_keys, ycsb_keys

SPECS = list(specs())


@pytest.fixture(scope="module")
def loaded_indexes():
    """Every registry index bulk-loaded with the same key set."""
    rng = random.Random(1234)
    keys = sorted(rng.sample(range(1, 2**48), 3000))
    items = [(k, k * 3) for k in keys]
    built = {}
    for spec in SPECS:
        index = spec.build()
        index.bulk_load(items)
        built[spec.name] = index
    return keys, built


def _batches(keys):
    rng = random.Random(99)
    present = rng.sample(keys, 150)
    key_set = set(keys)
    absent = [k for k in (p + 1 for p in present) if k not in key_set][:100]
    return {
        "sorted": sorted(present),
        "shuffled": rng.sample(present, len(present)),
        "duplicates": present[:40] * 3,
        "absent": absent,
        "mixed": rng.sample(present + absent, len(present) + len(absent)),
        "empty": [],
    }


class TestBatchContract:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_get_many_matches_scalar(self, spec, loaded_indexes):
        keys, built = loaded_indexes
        index = built[spec.name]
        for label, batch in _batches(keys).items():
            expected = [index.get(k) for k in batch]
            assert index.get_many(batch) == expected, label

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_contains_many_matches_scalar(self, spec, loaded_indexes):
        keys, built = loaded_indexes
        index = built[spec.name]
        for label, batch in _batches(keys).items():
            expected = [index.get(k) is not None for k in batch]
            assert index.contains_many(batch) == expected, label

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_get_many_after_inserts(self, spec, loaded_indexes):
        """The contract survives mutation (buffers, LSM levels, splits)."""
        keys, built = loaded_indexes
        index = built[spec.name]
        if not index.capabilities().updatable:
            pytest.skip(f"{spec.name} is read-only")
        rng = random.Random(7)
        key_set = set(keys)
        fresh = [k for k in rng.sample(range(1, 2**48), 500) if k not in key_set]
        for k in fresh:
            index.insert(k, -k)
        batch = rng.sample(fresh, 60) + rng.sample(keys, 60) + [keys[0] - 1]
        expected = [index.get(k) for k in batch]
        assert index.get_many(batch) == expected


def test_has_native_batch_classifies_fast_paths(loaded_indexes):
    _, built = loaded_indexes
    flagged = {name for name, idx in built.items() if has_native_batch(idx)}
    # The batch fast paths must be recognised as native...
    assert {"PGM", "RS", "BTree"} <= flagged
    # ...and a pure fallback index must not be.
    assert "Skiplist" not in flagged


def _keysets():
    out = {
        "ycsb": sorted(set(ycsb_keys(20_000, seed=3))),
        "osm": sorted(set(osm_keys(20_000, seed=3))),
    }
    return out


def _boundaries(approximation):
    return [(s.start, s.n, s.first_key) for s in approximation.segments]


class TestVectorizedFitIdentity:
    @pytest.mark.parametrize("dataset", ["ycsb", "osm"])
    @pytest.mark.parametrize("eps", [4, 32])
    def test_greedy_identical_segments_and_models(self, dataset, eps):
        keys = _keysets()[dataset]
        vec = GreedyPLAApproximator(eps=eps, vectorized=True).fit(keys)
        sca = GreedyPLAApproximator(eps=eps, vectorized=False).fit(keys)
        assert _boundaries(vec) == _boundaries(sca)
        for a, b in zip(vec.segments, sca.segments):
            # Greedy's vectorized window math is bit-identical, so the
            # closing slope — not just the boundary — matches exactly.
            assert a.model.slope == b.model.slope
            assert a.max_error == b.max_error
            assert a.avg_error == b.avg_error

    @pytest.mark.parametrize("dataset", ["ycsb", "osm"])
    def test_lsa_identical_boundaries(self, dataset):
        keys = _keysets()[dataset]
        vec = LSAApproximator(segment_size=256, vectorized=True).fit(keys)
        sca = LSAApproximator(segment_size=256, vectorized=False).fit(keys)
        assert _boundaries(vec) == _boundaries(sca)
        for a, b in zip(vec.segments, sca.segments):
            # Chunked least squares: boundaries exact, coefficients can
            # differ only by pairwise-vs-sequential summation (last ulp).
            assert a.model.slope == pytest.approx(b.model.slope, rel=1e-12)
            assert a.model.intercept == pytest.approx(
                b.model.intercept, rel=1e-12, abs=1e-9
            )

    @pytest.mark.parametrize("dataset", ["ycsb", "osm"])
    def test_lsa_gap_identical_boundaries(self, dataset):
        keys = _keysets()[dataset]
        vec = LSAGapApproximator(segment_size=1024, vectorized=True).fit(keys)
        sca = LSAGapApproximator(segment_size=1024, vectorized=False).fit(keys)
        assert _boundaries(vec) == _boundaries(sca)

    def test_measure_errors_matches_scalar_loop(self):
        if not _vec.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        rng = random.Random(5)
        keys = sorted(rng.sample(range(10**6, 2**52), 5000))
        model = LinearModel(
            slope=5000 / (keys[-1] - keys[0]), intercept=0.5, base_key=keys[0]
        )
        arr = _vec.as_u64(keys)
        vec_max, vec_sum = _vec.measure_errors(model, arr, len(keys))
        max_err = 0
        sum_err = 0
        for pos, key in enumerate(keys):
            err = abs(model.predict_clamped(key, len(keys)) - pos)
            sum_err += err
            if err > max_err:
                max_err = err
        assert (vec_max, vec_sum) == (max_err, sum_err)

    def test_as_u64_rejects_inexact_input(self):
        if not _vec.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        assert _vec.as_u64([1.5, 2.5]) is None  # floats: scalar semantics
        assert _vec.as_u64([1, -2]) is None  # negative: would wrap
        assert _vec.as_u64([1, 2**64]) is None  # overflow
        arr = _vec.as_u64([1, 2**63, 2**64 - 1])
        assert arr is not None
        assert [int(v) for v in arr] == [1, 2**63, 2**64 - 1]
