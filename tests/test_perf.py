"""Tests for the performance-simulation substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import (
    BandwidthModel,
    CostModel,
    Counters,
    Event,
    LatencyRecorder,
    LogHistogram,
    PerfContext,
)
from repro.perf.cost_model import EVENT_BYTES, bytes_touched


class TestCounters:
    def test_starts_at_zero(self):
        c = Counters()
        assert c.total() == 0

    def test_delta(self):
        perf = PerfContext()
        mark = perf.begin()
        perf.charge(Event.COMPARE, 3)
        perf.charge(Event.DRAM_HOP)
        op = perf.end(mark)
        assert op.counters.compare == 3
        assert op.counters.dram_hop == 1
        assert op.counters.nvm_read == 0

    def test_nested_measurements(self):
        perf = PerfContext()
        outer = perf.begin()
        perf.charge(Event.COMPARE)
        inner = perf.begin()
        perf.charge(Event.COMPARE)
        inner_op = perf.end(inner)
        outer_op = perf.end(outer)
        assert inner_op.counters.compare == 1
        assert outer_op.counters.compare == 2

    def test_add_and_copy(self):
        a = Counters()
        a.compare = 5
        b = a.copy()
        b.add(a)
        assert b.compare == 10
        assert a.compare == 5


class TestCostModel:
    def test_time_is_weighted_sum(self):
        cm = CostModel()
        c = Counters()
        c.dram_hop = 2
        c.compare = 10
        assert cm.time_ns(c) == pytest.approx(
            2 * cm.dram_hop_ns + 10 * cm.compare_ns
        )

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_monotonic_in_events(self, hops, extra):
        cm = CostModel()
        a = Counters()
        a.dram_hop = hops
        b = Counters()
        b.dram_hop = hops + extra
        assert cm.time_ns(b) >= cm.time_ns(a)

    def test_nvm_slower_than_dram(self):
        cm = CostModel()
        assert cm.nvm_read_ns > cm.dram_hop_ns

    def test_scaled(self):
        cm = CostModel().scaled(2.0)
        assert cm.dram_hop_ns == pytest.approx(180.0)

    def test_bytes_touched(self):
        c = Counters()
        c.nvm_read = 2
        c.dram_hop = 1
        assert bytes_touched(c) == 2 * EVENT_BYTES[Event.NVM_READ] + 64


class TestLatencyRecorder:
    def test_percentiles_nearest_rank(self):
        # The histogram backend reports the bucket upper edge: within
        # RELATIVE_ERROR (1/128) above the exact nearest-rank sample,
        # never below it.  max() stays exact.
        rec = LatencyRecorder()
        rec.extend(float(i) for i in range(1, 1001))
        err = LogHistogram.RELATIVE_ERROR
        for reported, exact in (
            (rec.p50(), 500.0),
            (rec.p99(), 990.0),
            (rec.p999(), 999.0),
        ):
            assert exact <= reported <= exact * (1.0 + err)
        assert rec.max() == 1000.0
        assert rec.mean() == pytest.approx(500.5)
        assert len(rec) == 1000

    def test_throughput(self):
        rec = LatencyRecorder()
        rec.extend([100.0] * 1000)  # 100 ns/op => 10 Mops
        assert rec.throughput_mops() == pytest.approx(10.0)

    def test_empty_recorder_raises(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.p50()
        with pytest.raises(ValueError):
            rec.mean()

    def test_bad_percentile_rejected(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentile(0.0)
        with pytest.raises(ValueError):
            rec.percentile(101.0)


class TestBandwidthModel:
    def test_no_slowdown_below_peak(self):
        bw = BandwidthModel(peak_gbps=40.0)
        assert bw.slowdown(1, bytes_per_op=100, base_ns=1000) == 1.0

    @given(st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_slowdown_monotonic_and_at_least_one(self, threads):
        bw = BandwidthModel(peak_gbps=10.0)
        s1 = bw.slowdown(threads, bytes_per_op=600, base_ns=100)
        s2 = bw.slowdown(threads + 1, bytes_per_op=600, base_ns=100)
        assert 1.0 <= s1 <= s2

    def test_throughput_saturates(self):
        bw = BandwidthModel(peak_gbps=5.0)
        t8 = bw.throughput_mops(8, bytes_per_op=600, base_ns=100)
        t32 = bw.throughput_mops(32, bytes_per_op=600, base_ns=100)
        # Past saturation, adding threads gains (almost) nothing.
        assert t32 <= t8 * 1.05

    def test_light_workload_scales_linearly(self):
        bw = BandwidthModel(peak_gbps=1000.0)
        t1 = bw.throughput_mops(1, bytes_per_op=64, base_ns=200)
        t16 = bw.throughput_mops(16, bytes_per_op=64, base_ns=200)
        assert t16 == pytest.approx(16 * t1)

    def test_tail_inflates_under_saturation(self):
        bw = BandwidthModel(peak_gbps=2.0)
        base_tail = 500.0
        quiet = bw.tail_latency_ns(1, 64, 200, base_tail)
        loud = bw.tail_latency_ns(64, 640, 200, base_tail)
        assert quiet == base_tail
        assert loud > base_tail

    def test_invalid_inputs(self):
        bw = BandwidthModel()
        with pytest.raises(ValueError):
            bw.slowdown(0, 100, 100)
        with pytest.raises(ValueError):
            bw.slowdown(1, 100, 0)
