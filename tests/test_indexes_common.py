"""Cross-cutting contract tests: every index, one behaviour suite.

Each index (six learned + six traditional) must honour the same
contract: bulk_load -> get finds everything; absent keys return None;
updatable indexes absorb inserts/updates; sorted indexes answer range
scans identically to a sorted-list oracle.
"""

import random

import pytest

from repro.core.interfaces import Index, SortedIndex
from repro.errors import UnsupportedOperationError
from repro.learned import (
    ALEXIndex,
    APEXIndex,
    DynamicPGMIndex,
    FINEdexIndex,
    FITingTree,
    LIPPIndex,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
    XIndexIndex,
)
from repro.perf import PerfContext
from repro.traditional import CCEH, BPlusTree, BwTree, Masstree, SkipList, Wormhole

READ_ONLY = {
    "RMI": lambda perf: RMIIndex(perf=perf),
    "RS": lambda perf: RadixSplineIndex(perf=perf),
    "PGM-static": lambda perf: PGMIndex(perf=perf),
}

UPDATABLE = {
    "FITing-tree-inp": lambda perf: FITingTree(strategy="inplace", perf=perf),
    "FITing-tree-buf": lambda perf: FITingTree(strategy="buffer", perf=perf),
    "PGM": lambda perf: DynamicPGMIndex(perf=perf),
    "ALEX": lambda perf: ALEXIndex(segment_size=512, perf=perf),
    "XIndex": lambda perf: XIndexIndex(perf=perf),
    "LIPP": lambda perf: LIPPIndex(perf=perf),
    "APEX": lambda perf: APEXIndex(node_size=512, perf=perf),
    "FINEdex": lambda perf: FINEdexIndex(perf=perf),
    "BTree": lambda perf: BPlusTree(perf=perf),
    "Skiplist": lambda perf: SkipList(perf=perf),
    "Masstree": lambda perf: Masstree(perf=perf),
    "Bwtree": lambda perf: BwTree(perf=perf),
    "Wormhole": lambda perf: Wormhole(perf=perf),
    "CCEH": lambda perf: CCEH(segment_bits=8, perf=perf),
}

ALL = {**READ_ONLY, **UPDATABLE}

SORTED = {k: v for k, v in ALL.items() if k != "CCEH"}

DELETABLE = {
    k: ALL[k]
    for k in (
        "PGM",
        "ALEX",
        "FITing-tree-inp",
        "FITing-tree-buf",
        "XIndex",
        "LIPP",
        "APEX",
        "FINEdex",
        "BTree",
        "Skiplist",
        "Masstree",
        "Bwtree",
        "Wormhole",
        "CCEH",
    )
}


def items_for(n, seed=0, spacing=2):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(0, 10**9, spacing), n))
    return [(k, k ^ 0xABCD) for k in keys]


@pytest.mark.parametrize("name", sorted(ALL))
class TestEveryIndex:
    def test_bulk_load_then_get(self, name):
        idx = ALL[name](PerfContext())
        items = items_for(4000, seed=1)
        idx.bulk_load(items)
        assert len(idx) == len(items)
        rng = random.Random(2)
        for k, v in rng.sample(items, 400):
            assert idx.get(k) == v, f"{name} lost key {k}"

    def test_absent_keys_return_none(self, name):
        idx = ALL[name](PerfContext())
        items = items_for(2000, seed=3)
        idx.bulk_load(items)
        present = {k for k, _ in items}
        rng = random.Random(4)
        for k in rng.sample(range(0, 10**9), 300):
            if k not in present:
                assert idx.get(k) is None, f"{name} fabricated key {k}"

    def test_extreme_keys(self, name):
        idx = ALL[name](PerfContext())
        idx.bulk_load([(10, "a"), (2**62, "b")])
        assert idx.get(10) == "a"
        assert idx.get(2**62) == "b"
        assert idx.get(0) is None
        assert idx.get(2**63) is None

    def test_size_and_stats_present(self, name):
        idx = ALL[name](PerfContext())
        idx.bulk_load(items_for(1000, seed=5))
        assert idx.size_bytes() > 0
        stats = idx.stats()
        assert stats.leaf_count >= 0
        caps = idx.capabilities()
        assert isinstance(caps.updatable, bool)

    def test_contains(self, name):
        idx = ALL[name](PerfContext())
        items = items_for(100, seed=6)
        idx.bulk_load(items)
        assert items[50][0] in idx
        assert (items[50][0] + 1) not in idx


@pytest.mark.parametrize("name", sorted(READ_ONLY))
class TestReadOnlyIndexes:
    def test_insert_rejected(self, name):
        idx = READ_ONLY[name](PerfContext())
        idx.bulk_load(items_for(100))
        with pytest.raises(UnsupportedOperationError):
            idx.insert(1, 2)

    def test_capabilities_not_updatable(self, name):
        assert READ_ONLY[name](PerfContext()).capabilities().updatable is False


@pytest.mark.parametrize("name", sorted(UPDATABLE))
class TestUpdatableIndexes:
    def test_insert_and_mixed_workload_oracle(self, name):
        idx = UPDATABLE[name](PerfContext())
        items = items_for(2000, seed=7)
        idx.bulk_load(items)
        oracle = dict(items)
        rng = random.Random(8)
        for _ in range(4000):
            k = rng.randrange(0, 10**9)
            if rng.random() < 0.5:
                idx.insert(k, k + 1)
                oracle[k] = k + 1
            else:
                assert idx.get(k) == oracle.get(k), f"{name} wrong for {k}"
        assert len(idx) == len(oracle), f"{name} count drifted"

    def test_insert_overwrites(self, name):
        idx = UPDATABLE[name](PerfContext())
        idx.bulk_load(items_for(500, seed=9))
        key = items_for(500, seed=9)[250][0]
        idx.insert(key, "v2")
        assert idx.get(key) == "v2"

    def test_insert_smallest_and_largest(self, name):
        idx = UPDATABLE[name](PerfContext())
        idx.bulk_load([(1000, 1), (2000, 2), (3000, 3)])
        idx.insert(1, "min")
        idx.insert(2**62, "max")
        assert idx.get(1) == "min"
        assert idx.get(2**62) == "max"
        assert len(idx) == 5

    def test_monotonic_append_workload(self, name):
        """Sequential (YCSB-D-like latest) inserts at the right edge."""
        idx = UPDATABLE[name](PerfContext())
        idx.bulk_load([(i, i) for i in range(0, 2000, 2)])
        for i in range(2001, 4001, 2):
            idx.insert(i, i)
        assert idx.get(3999) == 3999
        assert len(idx) == 2000


@pytest.mark.parametrize("name", sorted(SORTED))
class TestSortedIndexes:
    def test_range_matches_oracle(self, name):
        idx = SORTED[name](PerfContext())
        items = items_for(3000, seed=10)
        idx.bulk_load(items)
        keys = [k for k, _ in items]
        lo, hi = keys[700], keys[2100]
        got = list(idx.range(lo, hi))
        expected = [(k, v) for k, v in items if lo <= k <= hi]
        assert got == expected, f"{name} wrong range"

    def test_empty_range(self, name):
        idx = SORTED[name](PerfContext())
        items = items_for(500, seed=11)
        idx.bulk_load(items)
        gap_lo = items[100][0] + 1
        assert list(idx.range(gap_lo, gap_lo)) == []

    def test_scan_counts(self, name):
        idx = SORTED[name](PerfContext())
        items = items_for(1000, seed=12)
        idx.bulk_load(items)
        got = idx.scan(items[0][0], 50)
        assert got == items[:50]


@pytest.mark.parametrize("name", sorted(DELETABLE))
class TestDeletes:
    def test_delete_then_get(self, name):
        idx = DELETABLE[name](PerfContext())
        items = items_for(1000, seed=13)
        idx.bulk_load(items)
        victims = [items[i][0] for i in range(0, 1000, 10)]
        for k in victims:
            assert idx.delete(k) is True
        for k in victims:
            assert idx.get(k) is None
        assert len(idx) == 1000 - len(victims)
        assert idx.delete(victims[0]) is False

    def test_delete_missing_returns_false(self, name):
        idx = DELETABLE[name](PerfContext())
        idx.bulk_load(items_for(100, seed=14))
        assert idx.delete(10**12 + 7) is False


class TestCCEHSpecifics:
    def test_range_unsupported(self):
        idx = CCEH(perf=PerfContext())
        assert idx.capabilities().sorted_order is False
        assert not isinstance(idx, SortedIndex)

    def test_directory_doubles_under_load(self):
        idx = CCEH(segment_bits=4, initial_depth=1, perf=PerfContext())
        rng = random.Random(15)
        for k in rng.sample(range(10**9), 2000):
            idx.insert(k, k)
        assert idx.global_depth > 1
        for k in rng.sample(range(10**9), 50):
            pass  # presence already asserted by oracle test; depth is the point

    def test_local_depths_consistent(self):
        idx = CCEH(segment_bits=4, initial_depth=1, perf=PerfContext())
        rng = random.Random(16)
        for k in rng.sample(range(10**9), 3000):
            idx.insert(k, k)
        for seg in idx._directory:
            assert seg.local_depth <= idx.global_depth
        # Every segment must be referenced by exactly 2^(g - l) entries.
        from collections import Counter

        refs = Counter(id(s) for s in idx._directory)
        for seg in {id(s): s for s in idx._directory}.values():
            assert refs[id(seg)] == 1 << (idx.global_depth - seg.local_depth)


class TestMasstreeLayers:
    def test_long_byte_keys_create_layers(self):
        tree = Masstree(perf=PerfContext())
        assert tree.put_bytes(b"aaaaaaaa-suffix-1", 1) is True
        assert tree.put_bytes(b"aaaaaaaa-suffix-2", 2) is True
        assert tree.put_bytes(b"aaaaaaaa-suffix-1", 10) is False  # overwrite
        assert tree.get_bytes(b"aaaaaaaa-suffix-1") == 10
        assert tree.get_bytes(b"aaaaaaaa-suffix-2") == 2
        assert tree.get_bytes(b"aaaaaaaa-suffix-3") is None

    def test_prefix_key_vs_longer_key(self):
        tree = Masstree(perf=PerfContext())
        tree.put_bytes(b"aaaaaaaa", "short")
        tree.put_bytes(b"aaaaaaaabbbbbbbb", "long")
        tree.put_bytes(b"aaaaaaaabbbbbbbbcc", "longer")
        assert tree.get_bytes(b"aaaaaaaa") == "short"
        assert tree.get_bytes(b"aaaaaaaabbbbbbbb") == "long"
        assert tree.get_bytes(b"aaaaaaaabbbbbbbbcc") == "longer"

    def test_delete_bytes(self):
        tree = Masstree(perf=PerfContext())
        tree.put_bytes(b"aaaaaaaa-x", 1)
        tree.put_bytes(b"aaaaaaaa-y", 2)
        assert tree.delete_bytes(b"aaaaaaaa-x") is True
        assert tree.get_bytes(b"aaaaaaaa-x") is None
        assert tree.get_bytes(b"aaaaaaaa-y") == 2


class TestBwTreeSpecifics:
    def test_chains_consolidate(self):
        idx = BwTree(node_size=64, consolidate_after=4, perf=PerfContext())
        idx.bulk_load([(i, i) for i in range(0, 1000, 2)])
        for i in range(1, 200, 2):
            idx.insert(i, i)
        assert max(idx._chain_len) < 4 + 1
        for i in range(1, 200, 2):
            assert idx.get(i) == i

    def test_reads_slow_down_with_chains(self):
        perf = PerfContext()
        idx = BwTree(node_size=4096, consolidate_after=1 << 30, perf=perf)
        idx.bulk_load([(i, i) for i in range(0, 2000, 2)])
        mark = perf.begin()
        idx.get(1000)
        clean_cost = perf.end(mark).time_ns
        for i in range(1, 400, 2):
            idx.insert(i, i)  # never consolidates
        mark = perf.begin()
        idx.get(1000)
        dirty_cost = perf.end(mark).time_ns
        assert dirty_cost > clean_cost


class TestDynamicPGMSpecifics:
    def test_lsm_level_discipline(self):
        idx = DynamicPGMIndex(base_level_size=16, perf=PerfContext())
        rng = random.Random(17)
        for k in rng.sample(range(10**9), 500):
            idx.insert(k, k)
        assert len(idx._buffer) < 16
        for i, level in enumerate(idx._levels):
            if level is not None:
                assert len(level) <= idx._level_capacity(i)

    def test_newer_value_wins_across_levels(self):
        idx = DynamicPGMIndex(base_level_size=4, perf=PerfContext())
        for k in range(64):
            idx.insert(k, "old")
        idx.insert(10, "new")
        assert idx.get(10) == "new"

    def test_retrain_stats_populated(self):
        idx = DynamicPGMIndex(base_level_size=8, perf=PerfContext())
        for k in range(200):
            idx.insert(k, k)
        assert idx.retrain_stats.count > 0
        assert idx.retrain_stats.avg_time_ns() > 0
