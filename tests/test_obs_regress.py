"""Bench-regression tool: pairwise report diffs and exit codes."""

import json

import pytest

from repro.obs.regress import Delta, compare_reports, load_report, main

REPO_PR2 = "BENCH_PR2.json"
REPO_PR3 = "BENCH_PR3.json"


def _report(scale, **indexes):
    return {"scale": scale, "indexes": indexes}


SCALE = {"n_keys": 1000, "n_scalar": 100}


class TestCompareReports:
    def test_drop_beyond_threshold_flags_regression(self):
        old = _report(SCALE, btree={"get_ops_s": 1000.0})
        new = _report(SCALE, btree={"get_ops_s": 850.0})
        deltas, regressions, ratios_only = compare_reports(old, new, 0.10, 0.50)
        assert not ratios_only
        assert len(deltas) == 1
        assert len(regressions) == 1
        assert regressions[0].change == pytest.approx(-0.15)

    def test_drop_within_threshold_passes(self):
        old = _report(SCALE, btree={"get_ops_s": 1000.0})
        new = _report(SCALE, btree={"get_ops_s": 950.0})
        _, regressions, _ = compare_reports(old, new, 0.10, 0.50)
        assert regressions == []

    def test_improvement_never_flags(self):
        old = _report(SCALE, btree={"get_ops_s": 1000.0})
        new = _report(SCALE, btree={"get_ops_s": 5000.0})
        _, regressions, _ = compare_reports(old, new, 0.10, 0.50)
        assert regressions == []

    def test_non_metric_keys_ignored(self):
        old = _report(SCALE, btree={"name": "B+Tree", "n_keys": 1000})
        new = _report(SCALE, btree={"name": "B+Tree", "n_keys": 500})
        deltas, regressions, _ = compare_reports(old, new, 0.10, 0.50)
        assert deltas == [] and regressions == []

    def test_only_shared_indexes_and_metrics_compared(self):
        old = _report(SCALE, btree={"get_ops_s": 1.0}, rs={"get_ops_s": 1.0})
        new = _report(SCALE, btree={"put_ops_s": 1.0}, alex={"get_ops_s": 9.0})
        deltas, _, _ = compare_reports(old, new, 0.10, 0.50)
        assert deltas == []

    def test_differing_scales_restrict_to_speedup_ratios(self):
        quick = dict(SCALE, n_keys=50)
        old = _report(
            SCALE, btree={"get_ops_s": 1000.0, "batch_speedup": 20.0}
        )
        new = _report(
            quick, btree={"get_ops_s": 10.0, "batch_speedup": 15.0}
        )
        deltas, regressions, ratios_only = compare_reports(old, new, 0.10, 0.50)
        assert ratios_only
        # The 100x ops/s "drop" is a scale artifact and must be ignored;
        # the 25% speedup dip is within the looser ratio threshold.
        assert [d.metric for d in deltas] == ["batch_speedup"]
        assert regressions == []

    def test_speedup_collapse_fails_even_across_scales(self):
        quick = dict(SCALE, n_keys=50)
        old = _report(SCALE, btree={"batch_speedup": 20.0})
        new = _report(quick, btree={"batch_speedup": 4.0})
        _, regressions, ratios_only = compare_reports(old, new, 0.10, 0.50)
        assert ratios_only
        assert len(regressions) == 1

    def test_delta_change_handles_zero_old(self):
        assert Delta("x", "m_ops_s", 0.0, 5.0).change == 0.0


class TestLoadReport:
    def test_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ValueError):
            load_report(str(path))


class TestMainExitCodes:
    def test_real_committed_pair_passes(self, capsys):
        # The repo's own bench history must not trip its own gate.  The
        # committed baselines come from different sessions, so CI runs
        # this pair at the cross-machine threshold (0.2); mirror that.
        rc = main(["--threshold", "0.2", REPO_PR2, REPO_PR3])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: no regressions" in out

    def test_injected_regression_fails(self, tmp_path, capsys):
        report = load_report(REPO_PR3)
        report["indexes"]["btree"]["get_ops_s"] *= 0.5
        degraded = tmp_path / "degraded.json"
        degraded.write_text(json.dumps(report))
        rc = main([REPO_PR3, str(degraded)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_three_reports_compare_adjacent_pairs(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        c = tmp_path / "c.json"
        a.write_text(json.dumps(_report(SCALE, x={"get_ops_s": 100.0})))
        b.write_text(json.dumps(_report(SCALE, x={"get_ops_s": 101.0})))
        c.write_text(json.dumps(_report(SCALE, x={"get_ops_s": 50.0})))
        assert main([str(a), str(b)]) == 0
        capsys.readouterr()
        assert main([str(a), str(b), str(c)]) == 1

    def test_custom_threshold(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_report(SCALE, x={"get_ops_s": 100.0})))
        b.write_text(json.dumps(_report(SCALE, x={"get_ops_s": 94.0})))
        assert main([str(a), str(b)]) == 0
        assert main(["--threshold", "0.05", str(a), str(b)]) == 1

    def test_missing_file_is_load_error(self, capsys):
        rc = main([REPO_PR3, "no_such_report.json"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "error:" in err

    def test_malformed_json_is_load_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main([REPO_PR3, str(bad)])
        assert rc == 2


class TestNonComparableBaselines:
    def test_zero_baseline_is_skipped_with_warning(self):
        old = _report(SCALE, btree={"get_ops_s": 0.0})
        new = _report(SCALE, btree={"get_ops_s": 500.0})
        skipped = []
        deltas, regressions, _ = compare_reports(
            old, new, 0.10, 0.50, skipped=skipped
        )
        assert deltas == [] and regressions == []
        assert len(skipped) == 1
        assert "btree.get_ops_s" in skipped[0]
        assert "skipped" in skipped[0]

    def test_nan_and_inf_are_skipped_not_compared(self):
        old = _report(
            SCALE,
            btree={"get_ops_s": float("nan"), "put_ops_s": 100.0},
            rs={"get_ops_s": float("inf")},
        )
        new = _report(
            SCALE,
            btree={"get_ops_s": 50.0, "put_ops_s": float("nan")},
            rs={"get_ops_s": 50.0},
        )
        skipped = []
        deltas, regressions, _ = compare_reports(
            old, new, 0.10, 0.50, skipped=skipped
        )
        assert deltas == [] and regressions == []
        assert len(skipped) == 3

    def test_skip_list_is_optional(self):
        old = _report(SCALE, btree={"get_ops_s": 0.0})
        new = _report(SCALE, btree={"get_ops_s": 500.0})
        deltas, regressions, _ = compare_reports(old, new, 0.10, 0.50)
        assert deltas == [] and regressions == []

    def test_main_warns_on_stderr_but_still_passes(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(
            json.dumps(_report(SCALE, x={"get_ops_s": 0.0, "put_ops_s": 10.0}))
        )
        b.write_text(
            json.dumps(_report(SCALE, x={"get_ops_s": 9.0, "put_ops_s": 10.0}))
        )
        rc = main([str(a), str(b)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "warning: x.get_ops_s" in captured.err
        assert "OK: no regressions" in captured.out
