"""Determinism: identical runs must produce identical simulated numbers.

The whole methodology rests on the simulated clock being a pure function
of the operation stream — no wall-clock, no unseeded randomness.  These
tests run complete experiments twice and require bit-identical results.
"""

import pytest

from repro import (
    ALEXIndex,
    CCEH,
    DynamicPGMIndex,
    LIPPIndex,
    PerfContext,
    SkipList,
    ViperStore,
)
from repro.bench import run_store_ops
from repro.workloads import YCSB_A, generate_operations, osm_keys, ycsb_keys
from repro.workloads.ycsb import split_load_and_inserts


def run_experiment(factory):
    keys = ycsb_keys(8000, seed=3)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=3)
    ops = generate_operations(YCSB_A, 3000, load, inserts, seed=3)
    perf = PerfContext()
    store = ViperStore(factory(perf), perf)
    store.bulk_load([(k, k) for k in load])
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    return (
        recorder.total_time_ns(),
        recorder.p999(),
        bytes_per_op,
        perf.counters.as_dict(),
    )


@pytest.mark.parametrize(
    "factory",
    [
        lambda p: ALEXIndex(perf=p),
        lambda p: DynamicPGMIndex(perf=p),
        lambda p: LIPPIndex(perf=p),
        lambda p: SkipList(perf=p),  # seeded RNG must make this exact too
        lambda p: CCEH(segment_bits=8, perf=p),
    ],
)
def test_end_to_end_runs_are_bit_identical(factory):
    assert run_experiment(factory) == run_experiment(factory)


def test_datasets_are_deterministic_across_calls():
    assert ycsb_keys(5000, seed=9) == ycsb_keys(5000, seed=9)
    assert osm_keys(5000, seed=9) == osm_keys(5000, seed=9)


def test_workloads_are_deterministic():
    keys = ycsb_keys(2000, seed=1)
    a = generate_operations(YCSB_A, 1000, keys, seed=5)
    b = generate_operations(YCSB_A, 1000, keys, seed=5)
    assert a == b
