"""Determinism: identical runs must produce identical simulated numbers.

The whole methodology rests on the simulated clock being a pure function
of the operation stream — no wall-clock, no unseeded randomness.  These
tests run complete experiments twice and require bit-identical results.
"""

import pytest

from repro import (
    ALEXIndex,
    CCEH,
    DynamicPGMIndex,
    LIPPIndex,
    PerfContext,
    SkipList,
    ViperStore,
)
from repro.bench import run_store_ops
from repro.workloads import YCSB_A, generate_operations, osm_keys, ycsb_keys
from repro.workloads.ycsb import split_load_and_inserts


def run_experiment(factory):
    keys = ycsb_keys(8000, seed=3)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=3)
    ops = generate_operations(YCSB_A, 3000, load, inserts, seed=3)
    perf = PerfContext()
    store = ViperStore(factory(perf), perf)
    store.bulk_load([(k, k) for k in load])
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    return (
        recorder.total_time_ns(),
        recorder.p999(),
        bytes_per_op,
        perf.counters.as_dict(),
    )


@pytest.mark.parametrize(
    "factory",
    [
        lambda p: ALEXIndex(perf=p),
        lambda p: DynamicPGMIndex(perf=p),
        lambda p: LIPPIndex(perf=p),
        lambda p: SkipList(perf=p),  # seeded RNG must make this exact too
        lambda p: CCEH(segment_bits=8, perf=p),
    ],
)
def test_end_to_end_runs_are_bit_identical(factory):
    assert run_experiment(factory) == run_experiment(factory)


def test_datasets_are_deterministic_across_calls():
    assert ycsb_keys(5000, seed=9) == ycsb_keys(5000, seed=9)
    assert osm_keys(5000, seed=9) == osm_keys(5000, seed=9)


def test_workloads_are_deterministic():
    keys = ycsb_keys(2000, seed=1)
    a = generate_operations(YCSB_A, 1000, keys, seed=5)
    b = generate_operations(YCSB_A, 1000, keys, seed=5)
    assert a == b


# ------------------------------------------------- concurrency simulator

def _sim_run(keep_schedule=True):
    from repro.concurrency import ConcurrencySpec, OpProfile, make_streams, simulate

    spec = ConcurrencySpec(
        scheme="fine_grained_latch", latch_domains=16, retrain_blocking=True
    )
    profile = OpProfile(
        mean_ns=700.0, p999_ns=2500.0, bytes_per_op=300.0,
        retrain_every=120, retrain_stall_ns=9000.0,
    )
    streams = make_streams(6, 500, 0.4, seed=17)
    result = simulate(
        spec, profile, streams, seed=17, keep_schedule=keep_schedule
    )
    return result


def test_simulator_runs_are_bit_identical():
    """Same seed + op streams => identical event schedule, wait totals,
    and final clock — the contract the Figs 12/14 projections rest on."""
    a = _sim_run()
    b = _sim_run()
    assert a.schedule == b.schedule
    assert a.latch_wait_ns == b.latch_wait_ns
    assert a.retrain_stall_ns == b.retrain_stall_ns
    assert a.makespan_ns == b.makespan_ns
    assert a.throughput_mops == b.throughput_mops
    assert a.counters.as_dict() == b.counters.as_dict()
    assert (a.retries, a.retrain_stalls) == (b.retries, b.retrain_stalls)


def test_simulator_streams_are_deterministic():
    from repro.concurrency import make_streams

    assert make_streams(4, 200, 0.3, seed=2) == make_streams(4, 200, 0.3, seed=2)
    assert make_streams(4, 200, 0.3, seed=2) != make_streams(4, 200, 0.3, seed=3)


def test_sharded_store_clock_is_deterministic():
    from repro.concurrency import ShardedStore
    from repro.registry import resolve

    def once():
        keys = ycsb_keys(4000, seed=6)
        store = ShardedStore(resolve("btree").build, 4)
        store.bulk_load([(k, k) for k in keys])
        for k in keys[:500]:
            store.get(k)
        return (
            store.elapsed_ns(parallel=True),
            store.elapsed_ns(parallel=False),
            tuple(store.shard_ops),
            store.merged_counters().as_dict(),
        )

    assert once() == once()
