"""Tests for ComposedIndex + retraining policies (paper dimensions #2-#4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComposedIndex
from repro.core.approximation import (
    GreedyPLAApproximator,
    LSAApproximator,
    LSAGapApproximator,
    OptPLAApproximator,
)
from repro.core.insertion.strategies import (
    BufferStrategy,
    GappedStrategy,
    InplaceStrategy,
)
from repro.core.retraining import ExpandOrSplitPolicy, SplitRetrainPolicy
from repro.core.structures import (
    ATSStructure,
    BTreeStructure,
    LRSStructure,
    RMIStructure,
)
from repro.perf import PerfContext


def fiting_like(perf=None):
    return ComposedIndex(
        OptPLAApproximator(eps=32),
        BTreeStructure(fanout=16),
        InplaceStrategy(reserve=64),
        SplitRetrainPolicy(),
        perf=perf or PerfContext(),
    )


def xindex_like(perf=None):
    return ComposedIndex(
        LSAApproximator(segment_size=256),
        RMIStructure(branching=64),
        BufferStrategy(buffer_capacity=64),
        SplitRetrainPolicy(),
        perf=perf or PerfContext(),
    )


def alex_like(perf=None):
    return ComposedIndex(
        LSAGapApproximator(segment_size=512, density=0.7),
        ATSStructure(max_node_fences=16),
        GappedStrategy(density=0.7, upper_density=0.8),
        ExpandOrSplitPolicy(density=0.6),
        perf=perf or PerfContext(),
    )


def novel_combination(perf=None):
    """A combination no published index uses — the orthogonality claim."""
    return ComposedIndex(
        GreedyPLAApproximator(eps=16),
        LRSStructure(eps=4),
        GappedStrategy(density=0.6),
        ExpandOrSplitPolicy(density=0.6),
        perf=perf or PerfContext(),
    )


ALL_COMPOSED = [fiting_like, xindex_like, alex_like, novel_combination]


def load_items(n, seed=0, spacing=2):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(0, 10**9, spacing), n))
    return [(k, k * 3) for k in keys]


class TestComposedLookup:
    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_bulk_load_and_get(self, make):
        idx = make()
        items = load_items(5000)
        idx.bulk_load(items)
        assert len(idx) == 5000
        rng = random.Random(5)
        for k, v in rng.sample(items, 500):
            assert idx.get(k) == v
        present = {k for k, _ in items}
        for k in rng.sample(range(10**9), 200):
            if k not in present:
                assert idx.get(k) is None

    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_empty_index(self, make):
        idx = make()
        idx.bulk_load([])
        assert len(idx) == 0
        assert idx.get(42) is None

    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_insert_into_empty(self, make):
        idx = make()
        idx.bulk_load([])
        idx.insert(7, "seven")
        assert idx.get(7) == "seven"
        assert len(idx) == 1

    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_range_scan(self, make):
        idx = make()
        items = load_items(3000, seed=1)
        idx.bulk_load(items)
        lo, hi = items[500][0], items[1500][0]
        got = list(idx.range(lo, hi))
        expected = [(k, v) for k, v in items if lo <= k <= hi]
        assert got == expected

    def test_bulk_load_rejects_unsorted(self):
        idx = fiting_like()
        with pytest.raises(ValueError):
            idx.bulk_load([(5, 1), (3, 2)])
        with pytest.raises(ValueError):
            idx.bulk_load([(5, 1), (5, 2)])


class TestComposedInsert:
    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_heavy_inserts_stay_correct(self, make):
        idx = make()
        items = load_items(2000, seed=2)
        idx.bulk_load(items)
        oracle = dict(items)
        rng = random.Random(6)
        for k in rng.sample(range(1, 10**9, 2), 3000):
            idx.insert(k, -k)
            oracle[k] = -k
        assert len(idx) == len(oracle)
        for k in rng.sample(sorted(oracle), 800):
            assert idx.get(k) == oracle[k]

    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_update_existing(self, make):
        idx = make()
        idx.bulk_load(load_items(1000, seed=3))
        key = load_items(1000, seed=3)[500][0]
        assert idx.update(key, "replaced") is True
        assert idx.get(key) == "replaced"
        assert idx.update(10**12 + 1, "nope") is False

    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_retrains_happen_and_are_recorded(self, make):
        idx = make()
        idx.bulk_load(load_items(2000, seed=4))
        rng = random.Random(7)
        for k in rng.sample(range(1, 10**9, 2), 5000):
            idx.insert(k, k)
        stats = idx.stats()
        assert stats.retrain_count > 0
        assert stats.retrain_keys > 0
        assert stats.retrain_time_ns > 0

    @pytest.mark.parametrize("make", ALL_COMPOSED)
    def test_range_after_inserts(self, make):
        idx = make()
        items = load_items(1000, seed=8)
        idx.bulk_load(items)
        oracle = dict(items)
        rng = random.Random(9)
        for k in rng.sample(range(1, 10**9, 2), 1500):
            idx.insert(k, -k)
            oracle[k] = -k
        keys = sorted(oracle)
        lo, hi = keys[100], keys[-100]
        got = list(idx.range(lo, hi))
        expected = [(k, oracle[k]) for k in keys if lo <= k <= hi]
        assert got == expected


class TestComposedOracleProperty:
    @given(
        seed=st.integers(0, 10**6),
        n_base=st.integers(10, 300),
        n_ops=st.integers(0, 200),
    )
    @settings(max_examples=15, deadline=None)
    def test_alex_like_against_oracle(self, seed, n_base, n_ops):
        rng = random.Random(seed)
        base_keys = sorted(rng.sample(range(10**7), n_base))
        idx = alex_like()
        idx.bulk_load([(k, k) for k in base_keys])
        oracle = {k: k for k in base_keys}
        for _ in range(n_ops):
            k = rng.randrange(10**7)
            if rng.random() < 0.6:
                idx.insert(k, k + 1)
                oracle[k] = k + 1
            else:
                assert idx.get(k) == oracle.get(k)
        for k in rng.sample(sorted(oracle), min(50, len(oracle))):
            assert idx.get(k) == oracle[k]


class TestRetrainDynamics:
    def test_gapped_retrains_far_less_often_than_buffered(self):
        """Fig 18(b): ALEX retrains orders of magnitude less often."""
        rng = random.Random(10)
        items = load_items(4000, seed=11)
        inserts = rng.sample(range(1, 10**9, 2), 20000)

        buffered = xindex_like()
        buffered.bulk_load(items)
        for k in inserts:
            buffered.insert(k, k)

        gapped = alex_like()
        gapped.bulk_load(items)
        for k in inserts:
            gapped.insert(k, k)

        assert gapped.stats().retrain_count < buffered.stats().retrain_count / 4

    def test_bigger_buffer_fewer_retrains(self):
        """Fig 18(c): reserve size vs retrain count."""
        rng = random.Random(12)
        items = load_items(2000, seed=13)
        inserts = rng.sample(range(1, 10**9, 2), 6000)
        counts = []
        for cap in (64, 512):
            idx = ComposedIndex(
                OptPLAApproximator(eps=32),
                BTreeStructure(fanout=16),
                BufferStrategy(buffer_capacity=cap),
                SplitRetrainPolicy(),
                perf=PerfContext(),
            )
            idx.bulk_load(items)
            for k in inserts:
                idx.insert(k, k)
            counts.append(idx.stats().retrain_count)
        assert counts[1] < counts[0]

    def test_stats_shape(self):
        idx = fiting_like()
        idx.bulk_load(load_items(500))
        stats = idx.stats()
        assert stats.leaf_count >= 1
        assert stats.depth_avg >= 1.0
        assert idx.size_bytes() > 0
