"""Crash-consistency tests: torn writes must never surface after recovery.

Viper persists a CRC per record; a write interrupted by power loss fails
its checksum and is dropped by the recovery scan.  These tests inject
torn writes at every interesting point in the store's lifecycle and
assert the recovered state equals the last *committed* state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALEXIndex, BPlusTree, DynamicPGMIndex, PerfContext, ViperStore
from repro.errors import DeviceError
from repro.store import PMemDevice


class TestDeviceTornWrites:
    def test_torn_read_raises_checksum_error(self):
        dev = PMemDevice(perf=PerfContext())
        page = dev.allocate_page()
        dev.write_record_torn(page, 0, 1, "half")
        assert dev.is_torn(page, 0)
        with pytest.raises(DeviceError, match="checksum"):
            dev.read_record(page, 0)

    def test_scan_skips_torn_records(self):
        dev = PMemDevice(slots_per_page=4, perf=PerfContext())
        page = dev.allocate_page()
        dev.write_record(page, 0, 1, "a")
        dev.write_record_torn(page, 1, 2, "b")
        dev.write_record(page, 2, 3, "c")
        got = [(k, v) for _, _, k, v in dev.scan_records()]
        assert got == [(1, "a"), (3, "c")]

    def test_rewrite_clears_torn_state(self):
        dev = PMemDevice(perf=PerfContext())
        page = dev.allocate_page()
        dev.write_record_torn(page, 0, 1, "half")
        dev.write_record(page, 0, 1, "whole")
        assert not dev.is_torn(page, 0)
        assert dev.read_record(page, 0) == (1, "whole")

    def test_free_clears_torn_state(self):
        dev = PMemDevice(perf=PerfContext())
        page = dev.allocate_page()
        dev.write_record_torn(page, 0, 1, "half")
        dev.free_record(page, 0)
        assert not dev.is_torn(page, 0)


class TestStoreCrashDuringPut:
    def _fresh_store(self, items):
        perf = PerfContext()
        store = ViperStore(BPlusTree(perf=perf), perf)
        store.bulk_load(items)
        return store, perf

    def test_torn_insert_is_lost(self):
        items = [(i, i) for i in range(0, 100, 2)]
        store, perf = self._fresh_store(items)
        store.crash_during_put(51, "never-committed")
        store.recover(lambda: BPlusTree(perf=perf))
        assert store.get(51) is None
        assert len(store) == len(items)

    def test_torn_update_keeps_old_value(self):
        items = [(i, f"v{i}") for i in range(0, 100, 2)]
        store, perf = self._fresh_store(items)
        store.crash_during_put(50, "newer")
        store.recover(lambda: BPlusTree(perf=perf))
        # The old record was never freed, so the old value survives.
        assert store.get(50) == "v50"

    def test_store_usable_after_torn_recovery(self):
        store, perf = self._fresh_store([(1, "a")])
        store.crash_during_put(2, "torn")
        store.recover(lambda: BPlusTree(perf=perf))
        store.put(2, "committed")
        assert store.get(2) == "committed"

    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: BPlusTree(perf=p),
            lambda p: ALEXIndex(segment_size=256, perf=p),
            lambda p: DynamicPGMIndex(perf=p),
        ],
    )
    def test_committed_history_always_recovers(self, factory):
        perf = PerfContext()
        store = ViperStore(BPlusTree(perf=perf), perf)
        items = [(i, i) for i in range(0, 1000, 2)]
        store.bulk_load(items)
        oracle = dict(items)
        rng = random.Random(9)
        for k in rng.sample(range(1, 1000, 2), 200):
            store.put(k, -k)
            oracle[k] = -k
        store.crash_during_put(10**9, "torn-tail")
        store.recover(lambda: factory(perf))
        assert len(store) == len(oracle)
        for k in rng.sample(sorted(oracle), 300):
            assert store.get(k) == oracle[k]
        assert store.get(10**9) is None

    @given(
        n_commits=st.integers(0, 60),
        torn_key=st.integers(10**6, 10**7),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_recovery_equals_committed_prefix(self, n_commits, torn_key, seed):
        perf = PerfContext()
        store = ViperStore(BPlusTree(perf=perf), perf)
        store.bulk_load([(i, i) for i in range(0, 50, 2)])
        oracle = {i: i for i in range(0, 50, 2)}
        rng = random.Random(seed)
        for _ in range(n_commits):
            k = rng.randrange(1000)
            store.put(k, k + 1)
            oracle[k] = k + 1
        store.crash_during_put(torn_key, "lost")
        store.recover(lambda: BPlusTree(perf=perf))
        assert len(store) == len(oracle)
        for k, v in oracle.items():
            assert store.get(k) == v
