"""Tests for leaf insertion strategies (paper dimension #3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion import (
    BufferedLeaf,
    GappedLeaf,
    InplaceLeaf,
    InsertResult,
)
from repro.core.insertion.base import rank_search
from repro.core.insertion.strategies import fit_dense_model
from repro.perf import PerfContext


def make_inplace(keys, reserve=64, perf=None):
    perf = perf or PerfContext()
    model, max_err = fit_dense_model(keys)
    values = [k * 2 for k in keys]
    return InplaceLeaf(keys, values, model, max_err, reserve, perf)


def make_buffered(keys, capacity=64, perf=None):
    perf = perf or PerfContext()
    model, max_err = fit_dense_model(keys)
    values = [k * 2 for k in keys]
    return BufferedLeaf(keys, values, model, max_err, capacity, perf)


def make_gapped(keys, cap=None, perf=None, density=None, upper_density=0.8):
    """``cap`` mirrors the reserve/buffer parameter of the other makers:
    it sizes the gap headroom so roughly ``cap`` inserts fit."""
    perf = perf or PerfContext()
    if density is None:
        if cap is None:
            density = 0.5
        else:
            density = max(0.05, len(keys) / (len(keys) + cap))
            upper_density = 0.95
    segment = GappedSegment(keys[0], 0, keys, density)
    values = [k * 2 for k in keys]
    return GappedLeaf(segment, values, perf, upper_density)


LEAF_MAKERS = [make_inplace, make_buffered, make_gapped]


class TestRankSearch:
    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=200, unique=True).map(
            sorted
        ),
        st.integers(0, 10**6),
        st.integers(-3, 205),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_linear_scan(self, keys, probe, guess):
        perf = PerfContext()
        got = rank_search(keys, 0, len(keys) - 1, probe, guess, perf)
        expected = -1
        for i, k in enumerate(keys):
            if k <= probe:
                expected = i
        assert got == expected


class TestLeafBasics:
    @pytest.mark.parametrize("make", LEAF_MAKERS)
    def test_bulk_loaded_keys_found(self, make):
        rng = random.Random(1)
        keys = sorted(rng.sample(range(10**9), 500))
        leaf = make(keys)
        for k in keys:
            assert leaf.get(k) == k * 2
        for k in rng.sample(range(10**9), 100):
            if k not in set(keys):
                assert leaf.get(k) is None

    @pytest.mark.parametrize("make", LEAF_MAKERS)
    def test_insert_then_get(self, make):
        rng = random.Random(2)
        keys = sorted(rng.sample(range(0, 10**9, 2), 200))
        leaf = make(keys)
        news = rng.sample(range(1, 10**9, 2), 30)
        for k in news:
            assert leaf.insert(k, -k) is InsertResult.INSERTED
        for k in news:
            assert leaf.get(k) == -k
        for k in keys:
            assert leaf.get(k) == k * 2

    @pytest.mark.parametrize("make", LEAF_MAKERS)
    def test_insert_existing_updates(self, make):
        keys = list(range(0, 1000, 10))
        leaf = make(keys)
        assert leaf.insert(500, "new") is InsertResult.UPDATED
        assert leaf.get(500) == "new"
        assert leaf.n == len(keys)

    @pytest.mark.parametrize("make", LEAF_MAKERS)
    def test_items_sorted_and_complete(self, make):
        rng = random.Random(3)
        keys = sorted(rng.sample(range(0, 10**8, 2), 300))
        leaf = make(keys)
        extra = rng.sample(range(1, 10**8, 2), 40)
        for k in extra:
            leaf.insert(k, -k)
        items = leaf.items()
        got_keys = [k for k, _ in items]
        assert got_keys == sorted(set(keys) | set(extra))

    @pytest.mark.parametrize("make", LEAF_MAKERS)
    def test_insert_below_first_key(self, make):
        leaf = make(list(range(100, 200)))
        assert leaf.insert(5, "low") is InsertResult.INSERTED
        assert leaf.get(5) == "low"
        assert leaf.first_key == 5

    @pytest.mark.parametrize("make", LEAF_MAKERS)
    def test_eventually_full(self, make):
        leaf = make(list(range(0, 64, 2)), 8)  # tiny reserve/buffer
        result = None
        for k in range(1, 1000, 2):
            result = leaf.insert(k, k)
            if result is InsertResult.FULL:
                break
        assert result is InsertResult.FULL


class TestLeafOracle:
    """Randomized operation sequences checked against a dict oracle."""

    @pytest.mark.parametrize("make", LEAF_MAKERS)
    @given(ops=st.lists(st.tuples(st.integers(0, 500), st.booleans()), max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_against_oracle(self, make, ops):
        base = list(range(0, 1001, 50))
        leaf = make(base, 2048)  # big reserve so FULL never fires here
        oracle = {k: k * 2 for k in base}
        for key, is_insert in ops:
            if is_insert:
                result = leaf.insert(key, key + 7)
                assert result is not InsertResult.FULL
                oracle[key] = key + 7
            else:
                assert leaf.get(key) == oracle.get(key)
        assert [k for k, _ in leaf.items()] == sorted(oracle)


class TestInsertionCosts:
    """Fig 18(a)'s cost relationships."""

    def _avg_insert_ns(self, leaf, perf, new_keys):
        mark = perf.begin()
        for k in new_keys:
            leaf.insert(k, k)
        return perf.end(mark).time_ns / len(new_keys)

    def test_gapped_inserts_cheaper_than_inplace(self):
        rng = random.Random(7)
        keys = sorted(rng.sample(range(0, 10**8, 2), 4000))
        news = rng.sample(range(1, 10**8, 2), 500)
        perf_i = PerfContext()
        inplace = make_inplace(keys, reserve=2048, perf=perf_i)
        perf_g = PerfContext()
        gapped = make_gapped(keys, perf=perf_g)
        cost_inplace = self._avg_insert_ns(inplace, perf_i, news)
        cost_gapped = self._avg_insert_ns(gapped, perf_g, news)
        assert cost_gapped < cost_inplace

    def test_inplace_gets_worse_with_bigger_reserve(self):
        """Bigger reserve => longer shifts on average (paper §IV-D)."""
        rng = random.Random(8)
        keys = sorted(rng.sample(range(0, 10**8, 2), 2000))
        costs = []
        for reserve in (128, 1024):
            perf = PerfContext()
            leaf = make_inplace(keys, reserve=reserve, perf=perf)
            news = iter(rng.sample(range(1, 10**8, 2), 10**6))
            inserted = 0
            mark = perf.begin()
            while True:
                k = next(news)
                if leaf.insert(k, k) is InsertResult.FULL:
                    break
                inserted += 1
            costs.append(perf.end(mark).time_ns / inserted)
        assert costs[1] > costs[0]

    def test_key_moves_charged_by_inplace(self):
        perf = PerfContext()
        leaf = make_inplace(list(range(0, 2000, 2)), reserve=64, perf=perf)
        before = perf.counters.key_move
        leaf.insert(999, 1)
        assert perf.counters.key_move > before


class TestGappedLeafInternals:
    def test_density_triggers_full(self):
        leaf = make_gapped(list(range(0, 100, 2)), density=0.7, upper_density=0.8)
        results = []
        for k in range(1, 100, 2):
            results.append(leaf.insert(k, k))
            if results[-1] is InsertResult.FULL:
                break
        assert InsertResult.FULL in results
        assert leaf.density() >= 0.8 - 0.05

    def test_slots_stay_sorted_under_inserts(self):
        rng = random.Random(11)
        leaf = make_gapped(sorted(rng.sample(range(10**6), 200)), density=0.5)
        for k in rng.sample(range(10**6), 50):
            leaf.insert(k, k)
        occupied = [k for k in leaf.slot_layout() if k is not None]
        assert occupied == sorted(occupied)

    def test_gap_insert_is_often_free(self):
        """Most inserts into a fresh gapped leaf move zero keys."""
        rng = random.Random(12)
        keys = sorted(rng.sample(range(0, 10**8, 2), 2000))
        perf = PerfContext()
        leaf = make_gapped(keys, density=0.5, perf=perf)
        news = rng.sample(range(1, 10**8, 2), 200)
        zero_move_inserts = 0
        total_moves = 0
        for k in news:
            before = perf.counters.key_move
            leaf.insert(k, k)
            delta = perf.counters.key_move - before
            total_moves += delta
            if delta == 0:
                zero_move_inserts += 1
        # "There is little or no key movement when inserting a new key":
        # a solid majority of inserts land directly in a gap, and the
        # average displacement stays tiny (vs. ~n/4 for inplace).
        assert zero_move_inserts > len(news) // 2
        assert total_moves / len(news) < 8
