"""Ablation — hyper-parameter tuning, and whether our defaults are sane.

Reproduces the paper's selection step (§III-A1: per-index grids, best
configuration wins) for three representative indexes, and checks that the
library's *default* configurations land near the grid optimum — i.e. the
reproduced rankings are not an artefact of mis-tuned competitors.
"""

import random

from _common import SMALL_N, dataset, run_once
from repro import FITingTree, PGMIndex, PerfContext, RMIIndex
from repro.bench import format_table, write_result
from repro.bench.tuning import grid_search

GRIDS = {
    "PGM": (
        lambda eps, eps_internal, perf: PGMIndex(
            eps=eps, eps_internal=eps_internal, perf=perf
        ),
        {"eps": (4, 16, 64, 256), "eps_internal": (2, 4, 8)},
        lambda perf: PGMIndex(perf=perf),
    ),
    "RMI": (
        lambda branching, perf: RMIIndex(branching=branching, perf=perf),
        {"branching": (64, 256, 1024, 4096)},
        lambda perf: RMIIndex(perf=perf),
    ),
    "FITing-tree": (
        lambda eps, btree_fanout, perf: FITingTree(
            eps=eps, btree_fanout=btree_fanout, strategy="buffer", perf=perf
        ),
        {"eps": (8, 16, 64), "btree_fanout": (8, 16, 64)},
        lambda perf: FITingTree(strategy="buffer", perf=perf),
    ),
}

N_PROBES = 2000


def run_tuning():
    keys = list(dataset("ycsb", SMALL_N))
    items = [(k, k) for k in keys]
    rng = random.Random(38)
    probes = rng.sample(keys, N_PROBES)
    rows = []
    outcome = {}
    for name, (factory, grid, default_factory) in GRIDS.items():
        result = grid_search(factory, grid, items, probes)

        perf = PerfContext()
        default = default_factory(perf)
        default.bulk_load(items)
        mark = perf.begin()
        for key in probes:
            default.get(key)
        default_ns = perf.end(mark).time_ns / len(probes)

        outcome[name] = {
            "best_ns": result.best.read_ns,
            "default_ns": default_ns,
            "best_params": result.best.params,
        }
        rows.append(
            [
                name,
                str(result.best.params),
                f"{result.best.read_ns:.0f}",
                f"{default_ns:.0f}",
                f"{default_ns / result.best.read_ns:.2f}x",
            ]
        )
    table = format_table(
        ["index", "grid best params", "best read (ns)", "default read (ns)", "default/best"],
        rows,
        title="Ablation — per-index hyper-parameter grids (paper §III-A1)",
    )
    return table, outcome


def test_ablation_tuning(benchmark):
    table, outcome = run_once(benchmark, run_tuning)
    write_result("ablation_tuning", table)
    for name, o in outcome.items():
        # Library defaults stay near their grid optimum.  FITing-tree
        # deliberately keeps the STX-like fanout-16 inner nodes for
        # fidelity even though, at our fence counts, a flatter fanout-64
        # tree saves one level (~one cache miss) — the grid documents
        # that gap rather than hiding it.
        assert o["default_ns"] <= o["best_ns"] * 1.5, (
            f"{name} default is badly tuned: {o}"
        )


if __name__ == "__main__":
    table, _ = run_tuning()
    write_result("ablation_tuning", table)
