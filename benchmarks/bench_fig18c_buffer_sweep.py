"""Fig 18(c) — buffer reserve size vs. retraining count / times.

Paper shape: "as reserved space increases, the number of retraining
decreases ... the average retraining time increases while the total time
decreases".
"""

from _common import SMALL_N, dataset, run_once
from repro import FITingTree, PerfContext
from repro.bench import format_table, write_result
from repro.workloads.ycsb import split_load_and_inserts

RESERVES = (128, 256, 512, 1024)


def run_fig18c():
    keys = dataset("ycsb", SMALL_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=22)
    rows = []
    metrics = []
    for reserve in RESERVES:
        perf = PerfContext()
        index = FITingTree(
            strategy="buffer", eps=64, buffer_capacity=reserve, perf=perf
        )
        index.bulk_load([(k, k) for k in load])
        for k in inserts:
            index.insert(k, k)
        stats = index.retraining.stats
        metrics.append(
            {
                "reserve": reserve,
                "count": stats.count,
                "avg_ns": stats.avg_time_ns(),
                "total_ns": stats.time_ns,
            }
        )
        rows.append(
            [
                reserve,
                stats.count,
                f"{stats.avg_time_ns() / 1000:.1f}",
                f"{stats.time_ns / 1e6:.2f}",
            ]
        )
    table = format_table(
        ["reserve", "retrains", "avg retrain (sim us)", "total retrain (sim ms)"],
        rows,
        title=f"Fig 18(c) — buffer reserve sweep over {len(inserts)} inserts",
    )
    return table, metrics


def test_fig18c(benchmark):
    table, metrics = run_once(benchmark, run_fig18c)
    write_result("fig18c_buffer_sweep", table)
    counts = [m["count"] for m in metrics]
    avgs = [m["avg_ns"] for m in metrics]
    totals = [m["total_ns"] for m in metrics]
    # More reserve => fewer retrains, each bigger, lower total.
    assert counts == sorted(counts, reverse=True)
    assert avgs == sorted(avgs)
    assert totals[-1] < totals[0]


if __name__ == "__main__":
    table, _ = run_fig18c()
    write_result("fig18c_buffer_sweep", table)
