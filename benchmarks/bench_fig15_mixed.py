"""Fig 15 — read-write-mixed YCSB workloads (A, B, D, F).

Paper shape: ALEX maintains good throughput across every mix; every other
learned index drops sharply on YCSB-D, whose writes are *insertions*
(read-latest) rather than updates — "the insertion operation causes the
learned index to be continuously inserted and retrained".
"""

from _common import (
    N_OPS,
    SMALL_N,
    WRITE_CASE,
    dataset,
    loaded_store,
    run_once,
)
from repro.bench import BenchResult, format_table, run_store_ops, write_result
from repro.workloads import YCSB_A, YCSB_B, YCSB_D, YCSB_F, generate_operations
from repro.workloads.ycsb import split_load_and_inserts

WORKLOADS = (YCSB_A, YCSB_B, YCSB_D, YCSB_F)


def run_mixed():
    keys = dataset("ycsb", SMALL_N)
    load, insert_pool = split_load_and_inserts(keys, 0.5, seed=15)
    rows = []
    results = {}
    for spec in WORKLOADS:
        ops = generate_operations(spec, N_OPS, load, insert_pool, seed=15)
        for name, factory in WRITE_CASE.items():
            store, perf = loaded_store(factory, load)
            recorder, bytes_per_op = run_store_ops(store, ops, perf)
            result = BenchResult.from_recorder(
                name, spec.name, recorder, bytes_per_op
            )
            results[(spec.name, name)] = result
            rows.append(
                [
                    spec.name,
                    name,
                    f"{result.throughput_mops:.3f}",
                    f"{result.p999_ns / 1000:.2f}",
                ]
            )
    table = format_table(
        ["workload", "index", "Mops/s", "p99.9 (us)"],
        rows,
        title="Fig 15 — read-write-mixed YCSB (simulated single-thread)",
    )
    return table, results


def test_fig15_mixed(benchmark):
    table, results = run_once(benchmark, run_mixed)
    write_result("fig15_mixed", table)
    # ALEX stays on top of the learned pack in every mix.
    learned = ("FITing-tree-inp", "FITing-tree-buf", "PGM", "XIndex")
    for spec in WORKLOADS:
        for other in learned:
            assert (
                results[(spec.name, "ALEX")].throughput_mops
                > results[(spec.name, other)].throughput_mops
            ), f"ALEX not best on {spec.name}"
    # YCSB-D (insert-heavy) hurts the buffer/inplace designs more than
    # their read-heavy YCSB-B numbers by a larger factor than ALEX.
    def drop(name):
        return (
            results[("YCSB-D", name)].throughput_mops
            / results[("YCSB-B", name)].throughput_mops
        )

    assert drop("XIndex") < drop("ALEX")
    assert drop("FITing-tree-buf") < drop("ALEX")


if __name__ == "__main__":
    table, _ = run_mixed()
    write_result("fig15_mixed", table)
