"""Fig 10 — end-to-end read-only evaluation (YCSB & OSM, two sizes).

Paper shape to reproduce: ALEX best overall and clearly above the
traditional sorted indexes; learned > traditional tree indexes; RS strong
at the small size but degrading at the large one; RMI slightly above PGM
on throughput with a far worse tail; every learned index degrades on OSM
(complex CDF) while traditional indexes do not.  CCEH is the unordered
reference line.
"""

from _common import (
    N_OPS,
    READ_CASE,
    SIZE_LABELS,
    SMALL_N,
    LARGE_N,
    dataset,
    loaded_store,
    run_once,
)
from repro.bench import (
    BenchResult,
    format_bars,
    format_table,
    run_store_ops,
    write_result,
)
from repro.workloads import READ_ONLY, generate_operations


def run_readonly(dataset_name: str):
    rows = []
    results = []
    for n in (SMALL_N, LARGE_N):
        keys = dataset(dataset_name, n)
        ops = generate_operations(READ_ONLY, N_OPS, keys, seed=10)
        for name, factory in READ_CASE.items():
            store, perf = loaded_store(factory, keys)
            recorder, bytes_per_op = run_store_ops(store, ops, perf)
            result = BenchResult.from_recorder(
                name, f"{dataset_name}-{SIZE_LABELS[n]}", recorder, bytes_per_op
            )
            results.append(result)
            rows.append(
                [
                    SIZE_LABELS[n],
                    name,
                    f"{result.throughput_mops:.3f}",
                    f"{result.p50_ns / 1000:.2f}",
                    f"{result.p999_ns / 1000:.2f}",
                ]
            )
    table = format_table(
        ["size", "index", "Mops/s", "p50 (us)", "p99.9 (us)"],
        rows,
        title=f"Fig 10 — read-only, dataset={dataset_name} "
        f"(simulated single-thread)",
    )
    small_label = SIZE_LABELS[SMALL_N]
    bars = format_bars(
        [
            (r.index, round(r.throughput_mops, 3))
            for r in results
            if r.workload == f"{dataset_name}-{small_label}"
        ],
        title=f"throughput at {small_label} (Mops/s)",
        unit=" Mops",
    )
    return table + "\n\n" + bars, results


def test_fig10_ycsb(benchmark):
    table, results = run_once(benchmark, lambda: run_readonly("ycsb"))
    write_result("fig10_readonly_ycsb", table)
    by_name = {
        (r.workload, r.index): r.throughput_mops for r in results
    }
    small = SIZE_LABELS[SMALL_N]
    # ALEX beats every traditional sorted index (paper's headline).
    for trad in ("BTree", "Skiplist", "Masstree", "Bwtree", "Wormhole"):
        assert (
            by_name[(f"ycsb-{small}", "ALEX")] > by_name[(f"ycsb-{small}", trad)]
        )


def test_fig10_osm(benchmark):
    table, results = run_once(benchmark, lambda: run_readonly("osm"))
    write_result("fig10_readonly_osm", table)


if __name__ == "__main__":
    for ds in ("ycsb", "osm"):
        table, _ = run_readonly(ds)
        write_result(f"fig10_readonly_{ds}", table)
