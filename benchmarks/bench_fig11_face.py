"""Fig 11 — read-only performance on the FACE (skewed) dataset.

Paper shape: RadixSpline collapses because "a large number of keys fall
within (0, 2^50) ... which makes the first 16 bits of the RS almost
useless" — nearly every key lands in one radix bucket and the in-bucket
search degenerates.  The other learned indexes keep their ranking.
"""

from _common import (
    N_OPS,
    READ_CASE,
    SMALL_N,
    dataset,
    loaded_store,
    run_once,
)
from repro.bench import BenchResult, format_table, run_store_ops, write_result
from repro.workloads import READ_ONLY, generate_operations


def run_face():
    keys = dataset("face", SMALL_N)
    ops = generate_operations(READ_ONLY, N_OPS, keys, seed=11)
    rows = []
    results = {}
    for name, factory in READ_CASE.items():
        store, perf = loaded_store(factory, keys)
        recorder, bytes_per_op = run_store_ops(store, ops, perf)
        result = BenchResult.from_recorder(name, "face", recorder, bytes_per_op)
        results[name] = result
        rows.append(
            [
                name,
                f"{result.throughput_mops:.3f}",
                f"{result.p50_ns / 1000:.2f}",
                f"{result.p999_ns / 1000:.2f}",
            ]
        )
    table = format_table(
        ["index", "Mops/s", "p50 (us)", "p99.9 (us)"],
        rows,
        title="Fig 11 — read-only on FACE-like skew (simulated single-thread)",
    )
    return table, results


def test_fig11_face(benchmark):
    table, results = run_once(benchmark, run_face)
    write_result("fig11_face", table)
    # RS must collapse relative to the other learned indexes.
    others = [
        results[n].throughput_mops
        for n in ("RMI", "PGM", "ALEX", "FITing-tree", "XIndex")
    ]
    assert results["RS"].throughput_mops < min(others), (
        "RS should be the slowest learned index on FACE"
    )


if __name__ == "__main__":
    table, _ = run_face()
    write_result("fig11_face", table)
