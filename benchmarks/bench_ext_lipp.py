"""Extension — the evaluation the paper could not run: LIPP vs. ALEX.

§V-B: the authors predict that an asymmetric tree paired with an
approximation that *actively* reshapes the stored layout should beat
ALEX, name LIPP as the system that did it, and note "since it is not
open source now, we cannot evaluate it".  This bench closes that loop
with our LIPP implementation: precise positions remove the leaf
correction search entirely, so reads should beat ALEX; inserts remain
competitive because conflicts are absorbed by tiny child nodes.
"""

from _common import EXTENSIONS, N_OPS, SMALL_N, dataset, loaded_store, run_once
from repro.bench import format_table, run_store_ops, write_result
from repro.registry import resolve
from repro.workloads import READ_ONLY, generate_operations
from repro.workloads.ycsb import split_load_and_inserts

# The paper's updatable baselines plus the extension indexes under test
# (LIPP and FINEdex), all resolved from the one registry.
CANDIDATES = {
    "ALEX": resolve("alex"),
    "PGM": resolve("pgm"),
    "LIPP": EXTENSIONS["LIPP"],
    "FINEdex": EXTENSIONS["FINEdex"],
}


def run_lipp_comparison():
    keys = dataset("ycsb", SMALL_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=31)
    read_ops = generate_operations(READ_ONLY, N_OPS, load, seed=31)

    rows = []
    results = {}
    for name, factory in CANDIDATES.items():
        store, perf = loaded_store(factory, load)
        read_rec, _ = run_store_ops(store, read_ops, perf)

        mark = perf.begin()
        for k in inserts:
            store.put(k, k)
        insert_ns = perf.end(mark).time_ns / len(inserts)

        stats = store.index.stats()
        results[name] = {
            "read_mops": read_rec.throughput_mops(),
            "read_p999": read_rec.p999(),
            "insert_ns": insert_ns,
            "depth": stats.depth_avg,
        }
        rows.append(
            [
                name,
                f"{read_rec.throughput_mops():.3f}",
                f"{read_rec.p999() / 1000:.2f}",
                f"{insert_ns:.0f}",
                f"{stats.depth_avg:.2f}",
            ]
        )
    table = format_table(
        ["index", "read Mops/s", "read p99.9 (us)", "insert (sim ns)", "avg depth"],
        rows,
        title="Extension — LIPP vs ALEX vs PGM (the §V-B prediction)",
    )
    return table, results


def test_ext_lipp(benchmark):
    table, results = run_once(benchmark, run_lipp_comparison)
    write_result("ext_lipp", table)
    # The §V-B prediction: precise positions beat ALEX on reads.
    assert results["LIPP"]["read_mops"] > results["ALEX"]["read_mops"]
    assert results["LIPP"]["read_mops"] > results["PGM"]["read_mops"]
    # ...while staying a practical writer (same order of magnitude).
    assert results["LIPP"]["insert_ns"] < results["PGM"]["insert_ns"] * 5


if __name__ == "__main__":
    table, _ = run_lipp_comparison()
    write_result("ext_lipp", table)
