#!/usr/bin/env python3
"""Wall-clock scaling benchmark for the process-parallel sharded engine.

Like ``bench_micro`` — and unlike the ``bench_fig*`` modules — this
measures *real* wall-clock throughput, not simulated nanoseconds: the
point of :mod:`repro.concurrency.parallel` is that K worker processes
on K cores serve more operations per wall second than one interpreter,
and that claim is only checkable on a real clock.

Measured per index (PGM — learned, native batch paths; BTree — the
traditional baseline) at each ``--workers`` count:

* ``get_many_w{K}_ops_s``     — batched point lookups through K workers.
* ``insert_many_w{K}_ops_s``  — fresh-key batched inserts through K.
* ``get_many_w{K}_speedup``   — vs. the same engine at 1 worker.
* plus an in-process (no engine) baseline and a measured-vs-sim
  comparison table at the same worker counts.

Every engine run is cross-checked bit-for-bit against the in-process
answers before it is timed — a wrong fast engine is not a fast engine.

Usage::

    python benchmarks/bench_parallel.py --quick --workers 1,2
    python benchmarks/bench_parallel.py --out BENCH_PARALLEL.json
    python benchmarks/bench_parallel.py --quick --check

``--check`` exits non-zero on any correctness mismatch, and — only on a
host with >= 4 cores, where parallel speedup is physically available —
if PGM's 4-worker ``get_many`` fails to reach 2x its 1-worker figure
(the scaling floor the engine is expected to clear).  ``cpu_count`` is
recorded in the report so committed numbers from a small host are
interpretable.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from _common import pool_map
from repro.bench import format_table, thread_scaling, write_result
from repro.concurrency.parallel import parallel_sharded_index
from repro.perf.context import PerfContext
from repro.registry import resolve

SEED = 42

#: One learned index with native batch paths, one traditional baseline.
INDEXES = ("pgm", "btree")

DEFAULT_WORKERS = (1, 2, 4)

#: Full-scale parameters (the committed BENCH_PARALLEL.json numbers).
FULL = {"n_keys": 1_000_000, "n_batch": 200_000, "n_write": 50_000}
#: ``--quick`` parameters (CI perf-smoke job).
QUICK = {"n_keys": 50_000, "n_batch": 20_000, "n_write": 5_000}

#: The acceptance floor: 4-worker get_many vs 1-worker, gated only on
#: hosts with at least this many cores.
SPEEDUP_FLOOR = 2.0
SPEEDUP_FLOOR_CORES = 4


def _make_case(alias: str, scale: dict) -> dict:
    """Deterministic keys/queries for one index (bench_micro convention:
    one RNG stream per index, every 11th key held out as insert fuel)."""
    rng = random.Random(f"{SEED}:{alias}")
    n = scale["n_keys"]
    all_keys = sorted(rng.sample(range(1, 2**50), n + n // 10))
    load_keys = [k for i, k in enumerate(all_keys) if i % 11 != 5]
    extra_keys = [k for i, k in enumerate(all_keys) if i % 11 == 5]
    write_keys = rng.sample(extra_keys, min(scale["n_write"], len(extra_keys)))
    queries = [
        k + rng.choice((0, 1))
        for k in rng.choices(load_keys, k=scale["n_batch"])
    ]
    return {
        "alias": alias,
        "items": [(k, k) for k in load_keys],
        "write_items": [(k, k) for k in write_keys],
        "queries": queries,
    }


def _ops_per_sec(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def inproc_baseline(case: dict) -> dict:
    """In-process (no engine) reference: wall ops/s, expected answers,
    and the simulated single-op profile the sim projection needs.

    Top-level and picklable so ``--jobs`` can fan the per-index
    baselines out through :func:`_common.pool_map`.
    """
    spec = resolve(case["alias"])
    perf = PerfContext()
    index = spec.build(perf)
    index.bulk_load(case["items"])

    mark = perf.begin()
    t0 = time.perf_counter()
    expected = index.get_many(case["queries"])
    t_get = time.perf_counter() - t0
    op = perf.end(mark)

    fresh = spec.build(PerfContext())
    fresh.bulk_load(case["items"])
    t0 = time.perf_counter()
    fresh.insert_many(case["write_items"])
    t_insert = time.perf_counter() - t0

    n = len(case["queries"])
    return {
        "expected": expected,
        "inproc_get_many_ops_s": _ops_per_sec(n, t_get),
        "inproc_insert_many_ops_s": _ops_per_sec(
            len(case["write_items"]), t_insert
        ),
        "sim_mean_ns": op.time_ns / n,
        "sim_bytes_per_op": op.bytes / n,
    }


def bench_engine(case: dict, workers: int, expected: list) -> dict:
    """One engine at one worker count: verify answers, then time it."""
    engine = parallel_sharded_index(case["alias"], workers)
    try:
        t0 = time.perf_counter()
        engine.bulk_load(case["items"])
        t_build = time.perf_counter() - t0

        # Warm the transport (first shipment pays page-fault and pipe
        # setup costs), then verify before timing: the answers must be
        # bit-identical to the in-process index.
        got = engine.get_many(case["queries"][:2048])
        mismatch = got != expected[:2048]
        t0 = time.perf_counter()
        got = engine.get_many(case["queries"])
        t_get = time.perf_counter() - t0
        mismatch = mismatch or got != expected

        t0 = time.perf_counter()
        engine.insert_many(case["write_items"])
        t_insert = time.perf_counter() - t0
        probe = case["write_items"][:: max(1, len(case["write_items"]) // 64)]
        mismatch = mismatch or engine.get_many(
            [k for k, _ in probe]
        ) != [v for _, v in probe]
    finally:
        engine.close()
    return {
        "build_keys_s": _ops_per_sec(len(case["items"]), t_build),
        "get_many_ops_s": _ops_per_sec(len(case["queries"]), t_get),
        "insert_many_ops_s": _ops_per_sec(len(case["write_items"]), t_insert),
        "mismatch": mismatch,
    }


def run_parallel(workers=(1, 2), scale=None, jobs: int = 1):
    """Benchmark every index at every worker count.

    Returns ``(table, report)`` — the rendered comparison table and the
    JSON-ready report dict.
    """
    scale = dict(QUICK if scale is None else scale)
    workers = tuple(workers)
    cases = [_make_case(alias, scale) for alias in INDEXES]
    baselines = pool_map(inproc_baseline, cases, jobs)

    results = {}
    comparison = []
    for case, base in zip(cases, baselines):
        alias = case["alias"]
        spec = resolve(alias)
        row = {
            "name": spec.name,
            "n_keys": len(case["items"]),
            "inproc_get_many_ops_s": base["inproc_get_many_ops_s"],
            "inproc_insert_many_ops_s": base["inproc_insert_many_ops_s"],
            "mismatches": [],
        }
        sim_rows = {
            r["threads"]: r
            for r in thread_scaling(
                base["sim_mean_ns"],
                base["sim_mean_ns"] * 2,
                base["sim_bytes_per_op"],
                workers,
                projection="sim",
                concurrency=spec.concurrency,
                seed=SEED,
            )
        }
        for w in workers:
            r = bench_engine(case, w, base["expected"])
            row[f"get_many_w{w}_ops_s"] = r["get_many_ops_s"]
            row[f"insert_many_w{w}_ops_s"] = r["insert_many_ops_s"]
            row[f"build_w{w}_keys_s"] = r["build_keys_s"]
            if r["mismatch"]:
                row["mismatches"].append(w)
            comparison.append(
                {
                    "index": spec.name,
                    "workers": w,
                    "measured_mops": r["get_many_ops_s"] / 1e6,
                    "sim_mops": sim_rows[w]["throughput_mops"],
                }
            )
        base_w = workers[0]
        for w in workers:
            row[f"get_many_w{w}_speedup"] = (
                row[f"get_many_w{w}_ops_s"] / row[f"get_many_w{base_w}_ops_s"]
            )
            row[f"insert_many_w{w}_speedup"] = (
                row[f"insert_many_w{w}_ops_s"]
                / row[f"insert_many_w{base_w}_ops_s"]
            )
        results[alias] = row
        print(
            f"{spec.name:8s} inproc get_many "
            f"{row['inproc_get_many_ops_s']:>11,.0f} op/s  "
            + "  ".join(
                f"w{w} {row[f'get_many_w{w}_ops_s']:>11,.0f} op/s "
                f"({row[f'get_many_w{w}_speedup']:.2f}x)"
                for w in workers
            )
            + (f"  MISMATCH at {row['mismatches']}" if row["mismatches"] else ""),
            flush=True,
        )

    table = format_table(
        ["index", "workers", "measured Mops/s", "sim Mops/s", "meas/sim"],
        [
            [
                c["index"],
                c["workers"],
                f"{c['measured_mops']:.3f}",
                f"{c['sim_mops']:.2f}",
                f"{c['measured_mops'] / c['sim_mops']:.3f}",
            ]
            for c in comparison
        ],
        title=f"Parallel engine: measured wall-clock vs simulated "
        f"({os.cpu_count()} cores on this host)",
    )
    report = {
        "schema": "bench-parallel-v1",
        "seed": SEED,
        "scale": scale,
        "workers": list(workers),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "indexes": results,
        "comparison": comparison,
    }
    return table, report


def _check(report: dict) -> list:
    """Hard failures: any mismatch; the scaling floor on capable hosts."""
    problems = []
    for row in report["indexes"].values():
        if row["mismatches"]:
            problems.append(
                f"{row['name']}: engine answers diverged from in-process "
                f"at workers={row['mismatches']}"
            )
    cores = report["cpu_count"] or 1
    gate_w = SPEEDUP_FLOOR_CORES
    pgm = report["indexes"].get("pgm", {})
    speedup = pgm.get(f"get_many_w{gate_w}_speedup")
    if cores >= SPEEDUP_FLOOR_CORES and speedup is not None:
        if speedup < SPEEDUP_FLOOR:
            problems.append(
                f"PGM get_many at {gate_w} workers is only {speedup:.2f}x "
                f"the 1-worker figure (floor {SPEEDUP_FLOOR}x on a "
                f"{cores}-core host)"
            )
    return problems


def _parse_workers(text: str):
    counts = sorted({int(part) for part in text.split(",") if part.strip()})
    if not counts or any(w < 1 for w in counts):
        raise argparse.ArgumentTypeError(
            f"expected comma-separated counts >= 1, got {text!r}"
        )
    return tuple(counts)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (50K keys)"
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=DEFAULT_WORKERS,
        help='worker counts to measure, e.g. "1,2,4"',
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the in-process baselines",
    )
    parser.add_argument("--out", default="", help="write JSON results here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any correctness mismatch, or (on a >= 4-core "
        "host) if PGM misses the 4-worker scaling floor",
    )
    args = parser.parse_args()

    table, report = run_parallel(
        workers=args.workers,
        scale=QUICK if args.quick else FULL,
        jobs=args.jobs,
    )
    write_result("bench_parallel", table, data=report)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")

    if args.check:
        problems = _check(report)
        if problems:
            print("FAIL: " + "; ".join(problems), file=sys.stderr)
            return 1
        print("check ok: answers bit-identical, scaling floor satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
