"""Ablation — are the reproduced rankings an artefact of the cost model?

The whole reproduction rests on a calibrated event-cost model (DESIGN.md
§2), so the conclusions must not hinge on the exact nanosecond constants.
This ablation re-runs a compact read benchmark under strongly perturbed
cost models — cache misses 2x cheaper/dearer, NVM 2x faster/slower, flat
arithmetic — and asserts that the paper's headline orderings survive
every perturbation.
"""

from _common import SMALL_N, dataset, run_once
from repro import (
    ALEXIndex,
    BPlusTree,
    PerfContext,
    PGMIndex,
    RMIIndex,
    SkipList,
    ViperStore,
)
from repro.bench import format_table, write_result
from repro.perf import CostModel
from repro.workloads import READ_ONLY, generate_operations

PERTURBATIONS = {
    "baseline": CostModel(),
    "cheap-misses": CostModel(dram_hop_ns=45.0),
    "dear-misses": CostModel(dram_hop_ns=180.0),
    "fast-nvm": CostModel(nvm_read_ns=150.0, nvm_write_ns=50.0),
    "slow-nvm": CostModel(nvm_read_ns=600.0, nvm_write_ns=200.0),
    "dear-compare": CostModel(compare_ns=4.0),
}

INDEXES = {
    "RMI": lambda perf: RMIIndex(perf=perf),
    "PGM": lambda perf: PGMIndex(perf=perf),
    "ALEX": lambda perf: ALEXIndex(perf=perf),
    "BTree": lambda perf: BPlusTree(perf=perf),
    "Skiplist": lambda perf: SkipList(perf=perf),
}

N_OPS_SMALL = 8000


def run_cost_ablation():
    keys = dataset("ycsb", SMALL_N)
    ops = generate_operations(READ_ONLY, N_OPS_SMALL, keys, seed=33)
    rows = []
    ranking = {}
    for label, cost_model in PERTURBATIONS.items():
        mops = {}
        for name, factory in INDEXES.items():
            perf = PerfContext(cost_model)
            store = ViperStore(factory(perf), perf)
            store.bulk_load([(k, k) for k in keys])
            mark = perf.begin()
            for op in ops:
                store.get(op.key)
            measured = perf.end(mark)
            mops[name] = len(ops) / measured.time_ns * 1e3
            rows.append([label, name, f"{mops[name]:.3f}"])
        ranking[label] = mops
    table = format_table(
        ["cost model", "index", "Mops/s"],
        rows,
        title="Ablation — ranking stability under cost-model perturbation",
    )
    return table, ranking


def test_ablation_cost_model(benchmark):
    table, ranking = run_once(benchmark, run_cost_ablation)
    write_result("ablation_cost_model", table)
    for label, mops in ranking.items():
        # The paper's headline orderings hold under every perturbation.
        assert mops["ALEX"] > mops["BTree"], f"{label}: ALEX vs BTree"
        assert mops["PGM"] > mops["BTree"], f"{label}: PGM vs BTree"
        assert mops["ALEX"] > mops["Skiplist"], f"{label}: ALEX vs Skiplist"
        assert mops["BTree"] > mops["Skiplist"], f"{label}: BTree vs Skiplist"
        assert (
            mops["ALEX"] >= mops["RMI"] * 0.95
        ), f"{label}: ALEX vs RMI"


if __name__ == "__main__":
    table, _ = run_cost_ablation()
    write_result("ablation_cost_model", table)
