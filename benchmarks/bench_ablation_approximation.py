"""Ablation — the §III-A1 methodology decision, measured.

The paper swaps FITing-tree's greedy FSW approximator for PGM's Opt-PLA
("proved to be theoretically better ... this will help us compare the
other design dimensions") without measuring the difference.  This
ablation measures it: same index, same epsilon, only the approximation
algorithm changes.  Expected: Opt-PLA produces no more leaves, hence a
shallower/cheaper inner B+tree, at equal bounded leaf-search cost.
"""

import random

from _common import SMALL_N, dataset, run_once
from repro import FITingTree, PerfContext
from repro.bench import format_table, write_result

EPSILONS = (8, 16, 32, 64)
N_PROBES = 5000


def run_ablation():
    keys = list(dataset("ycsb", SMALL_N))
    items = [(k, k) for k in keys]
    rng = random.Random(32)
    probes = rng.sample(keys, N_PROBES)
    rows = []
    results = {}
    for eps in EPSILONS:
        for algo in ("greedy", "optpla"):
            perf = PerfContext()
            index = FITingTree(
                eps=eps, strategy="buffer", approximation=algo, perf=perf
            )
            index.bulk_load(items)
            mark = perf.begin()
            for key in probes:
                index.get(key)
            read_ns = perf.end(mark).time_ns / len(probes)
            stats = index.stats()
            results[(eps, algo)] = {
                "leaves": stats.leaf_count,
                "read_ns": read_ns,
            }
            rows.append(
                [eps, algo, stats.leaf_count, f"{read_ns:.0f}"]
            )
    table = format_table(
        ["eps", "approximation", "leaves", "read (sim ns)"],
        rows,
        title="Ablation — FITing-tree with greedy-PLA vs Opt-PLA leaves",
    )
    return table, results


def test_ablation_approximation(benchmark):
    table, results = run_once(benchmark, run_ablation)
    write_result("ablation_approximation", table)
    for eps in EPSILONS:
        greedy = results[(eps, "greedy")]
        optpla = results[(eps, "optpla")]
        # The theoretical guarantee the paper leans on, verified end to
        # end: Opt-PLA never needs more segments.
        assert optpla["leaves"] <= greedy["leaves"]
        # And the resulting index is never meaningfully slower.
        assert optpla["read_ns"] <= greedy["read_ns"] * 1.05


if __name__ == "__main__":
    table, _ = run_ablation()
    write_result("ablation_approximation", table)
