"""Fig 17(b) — approximation algorithms: average error vs. leaf count.

Paper shape: passive approximators trade error against segment count
along a curve (Opt-PLA strictly dominating LSA); LSA-gap breaks the
trade-off — "LSA-gap can ensure a minor error and a smaller number of
segments simultaneously".
"""

from _common import SMALL_N, dataset, run_once
from repro.bench import format_table, write_result
from repro.core.approximation import (
    LSAApproximator,
    LSAGapApproximator,
    OptPLAApproximator,
)

SWEEPS = [
    ("LSA", lambda p: LSAApproximator(segment_size=p),
     (64, 128, 256, 512, 1024, 2048, 4096, 8192)),
    ("Opt-PLA", lambda p: OptPLAApproximator(eps=p),
     (2, 4, 8, 16, 32, 64, 128, 256)),
    ("LSA-gap", lambda p: LSAGapApproximator(segment_size=p, density=0.7),
     (64, 128, 256, 512, 1024, 2048, 4096, 8192)),
]


def run_fig17b():
    keys = list(dataset("ycsb", SMALL_N))
    rows = []
    series = {}
    for name, make, params in SWEEPS:
        points = []
        for param in params:
            approx = make(param).fit(keys)
            points.append((approx.avg_error, approx.leaf_count))
            rows.append(
                [name, param, f"{approx.avg_error:.2f}", approx.leaf_count]
            )
        series[name] = points
    table = format_table(
        ["algorithm", "param", "avg error", "leaves"],
        rows,
        title="Fig 17(b) — error vs number of leaves",
    )
    return table, series


def _leaves_at_error(points, target):
    """Smallest leaf count achieving avg error <= target."""
    feasible = [leaves for err, leaves in points if err <= target]
    return min(feasible) if feasible else None


def test_fig17b(benchmark):
    table, series = run_once(benchmark, run_fig17b)
    write_result("fig17b_error_vs_leaves", table)
    # Opt-PLA needs no more leaves than LSA at any error budget.
    for target in (4.0, 16.0, 64.0):
        lsa = _leaves_at_error(series["LSA"], target)
        opt = _leaves_at_error(series["Opt-PLA"], target)
        assert opt is not None and lsa is not None
        assert opt <= lsa, f"Opt-PLA worse than LSA at error {target}"
    # LSA-gap breaks the trade-off: at a tight error budget it needs far
    # fewer leaves than either passive algorithm.
    target = 2.0
    gap = _leaves_at_error(series["LSA-gap"], target)
    opt = _leaves_at_error(series["Opt-PLA"], target)
    lsa = _leaves_at_error(series["LSA"], target)
    assert gap is not None
    assert opt is None or gap < opt / 4
    assert lsa is None or gap < lsa / 4


if __name__ == "__main__":
    table, _ = run_fig17b()
    write_result("fig17b_error_vs_leaves", table)
