#!/usr/bin/env python3
"""Run every benchmark module standalone and print all paper tables.

Equivalent to ``pytest benchmarks/ --benchmark-only`` minus the assertion
layer — useful for eyeballing all results in one stream.

Usage:  python benchmarks/run_all.py [--only fig10,fig17a,...] [--jobs N]

``--jobs N`` fans the experiment modules out over N worker processes.
Processes, not threads: the experiments are pure CPython, so the GIL
would serialise a thread pool — see ``thread_scaling``'s two columns.
Output order stays deterministic (module list order) regardless of which
worker finishes first.
"""

import argparse
import contextlib
import importlib
import io
import os
import sys
import time

MODULES = [
    "bench_table1_capabilities",
    "bench_table2_depth",
    "bench_table3_space",
    "bench_fig10_readonly",
    "bench_fig11_face",
    "bench_fig12_multithread_read",
    "bench_fig13_writeonly",
    "bench_fig14_multithread_write",
    "bench_concurrency",
    "bench_parallel",
    "bench_fig15_mixed",
    "bench_fig16_recovery",
    "bench_fig17a_approximation",
    "bench_fig17b_error_vs_leaves",
    "bench_fig17c_structures",
    "bench_fig17d_leaf_vs_structure",
    "bench_fig18a_insertion",
    "bench_fig18b_retraining",
    "bench_fig18c_buffer_sweep",
    "bench_fig18d_total_update",
    "bench_appendix_range",
    "bench_scan",
    "bench_ext_lipp",
    "bench_ext_apex",
    "bench_ext_hot_ats",
    "bench_ablation_approximation",
    "bench_ablation_alex_density",
    "bench_ablation_cost_model",
    "bench_ablation_tuning",
    "bench_ablation_sequential",
]

#: module -> list of (runner attr, result name) pairs; default discovery
#: finds the single ``run_*`` function and ``write_result`` call.


def _execute_module(module_name: str) -> int:
    """Import one module, run its ``run_*`` functions, print the tables."""
    module = importlib.import_module(module_name)
    runners = [
        getattr(module, attr)
        for attr in dir(module)
        if attr.startswith("run_")
        and callable(getattr(module, attr))
        # only runners defined in the module itself (not the shared
        # run_once helper imported from _common).
        and getattr(getattr(module, attr), "__module__", "") == module_name
    ]
    ran = 0
    for runner in runners:
        start = time.time()
        print(f"\n##### {module_name}.{runner.__name__} " + "#" * 20)
        try:
            result = runner()
        except TypeError:
            # runners with a required arg (fig10's dataset) get both.
            for ds in ("ycsb", "osm"):
                table, _ = runner(ds)
                print(table)
            ran += 1
            continue
        if isinstance(result, tuple):
            print(result[0])
        else:
            print(result)
        print(f"[{time.time() - start:.1f}s wall]")
        ran += 1
    return ran


def _execute_module_captured(module_name: str):
    """Worker-process entry: run a module with stdout captured.

    Top-level (picklable) and self-sufficient: it repairs ``sys.path``
    because a spawned worker does not inherit the parent's insert.
    """
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        ran = _execute_module(module_name)
    return module_name, buffer.getvalue(), ran


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated experiment substrings (e.g. fig10,ext)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan the modules out over (1 = in-process)",
    )
    args = parser.parse_args()
    wanted = [w for w in args.only.split(",") if w]
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    selected = [
        m for m in MODULES if not wanted or any(w in m for w in wanted)
    ]
    ran = 0
    t0 = time.time()
    if args.jobs > 1 and len(selected) > 1:
        from _common import pool_map

        for _name, output, count in pool_map(
            _execute_module_captured, selected, args.jobs
        ):
            sys.stdout.write(output)
            ran += count
    else:
        for module_name in selected:
            ran += _execute_module(module_name)
    print(f"\n{ran} experiments in {time.time() - t0:.0f}s wall clock.")
    return 0 if ran else 1


if __name__ == "__main__":
    raise SystemExit(main())
