"""Fig 18(d) — total update time: insertion + retraining, per index.

Paper shape: "FITing-tree-inp has the longest total time, and the next is
FITing-tree-buf.  The PGM has a shorter total time.  The shortest total
time is ALEX."
"""

from _common import LARGE_N, dataset, run_once
from repro import ALEXIndex, DynamicPGMIndex, FITingTree, PerfContext
from repro.bench import format_table, write_result
from repro.workloads.ycsb import split_load_and_inserts

CANDIDATES = {
    "FITing-tree-inp": lambda perf: FITingTree(
        strategy="inplace", eps=64, reserve=256, perf=perf
    ),
    "FITing-tree-buf": lambda perf: FITingTree(
        strategy="buffer", eps=64, buffer_capacity=128, perf=perf
    ),
    "PGM": lambda perf: DynamicPGMIndex(perf=perf),
    "ALEX": lambda perf: ALEXIndex(perf=perf),
}


def run_fig18d():
    # The larger size: PGM's LSM merge cost grows with log(n) while
    # ALEX's per-insert retrain cost shrinks as nodes grow, so the
    # paper's ALEX-shortest ordering needs enough insert volume to show.
    keys = dataset("ycsb", LARGE_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=23)
    rows = []
    totals = {}
    for name, factory in CANDIDATES.items():
        perf = PerfContext()
        index = factory(perf)
        index.bulk_load([(k, k) for k in load])
        mark = perf.begin()
        for k in inserts:
            index.insert(k, k)
        total_ns = perf.end(mark).time_ns
        if isinstance(index, DynamicPGMIndex):
            retrain_ns = index.retrain_stats.time_ns
        else:
            retrain_ns = index.retraining.stats.time_ns
        insert_ns = total_ns - retrain_ns
        totals[name] = total_ns
        rows.append(
            [
                name,
                f"{insert_ns / 1e6:.2f}",
                f"{retrain_ns / 1e6:.2f}",
                f"{total_ns / 1e6:.2f}",
            ]
        )
    table = format_table(
        ["index", "insert (sim ms)", "retrain (sim ms)", "total (sim ms)"],
        rows,
        title=f"Fig 18(d) — total update time over {len(inserts)} inserts",
    )
    return table, totals


def test_fig18d(benchmark):
    table, totals = run_once(benchmark, run_fig18d)
    write_result("fig18d_total_update", table)
    assert totals["ALEX"] < totals["PGM"]
    assert totals["PGM"] < totals["FITing-tree-buf"]
    assert totals["FITing-tree-buf"] < totals["FITing-tree-inp"]


if __name__ == "__main__":
    table, _ = run_fig18d()
    write_result("fig18d_total_update", table)
