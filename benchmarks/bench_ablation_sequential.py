"""Ablation — §V-B2's sequential-insert warning, measured.

"Since sequential data will always be inserted at the end of the storage
space, the inplace insertion strategy proposed by ALEX will waste much
space.  Therefore, we should design different insertion strategies
according to different target data."  This ablation appends
monotonically increasing keys to ALEX, FITing-tree-buf and a B+tree and
compares (a) key-store space per live key and (b) insert cost — on
append-only data the gapped array's reserved space buys nothing.
"""

from _common import SMALL_N, run_once
from repro import ALEXIndex, BPlusTree, FITingTree, PerfContext
from repro.bench import format_table, write_result
from repro.workloads import sequential_keys

CANDIDATES = {
    "ALEX": lambda p: ALEXIndex(perf=p),
    "FITing-tree-buf": lambda p: FITingTree(strategy="buffer", perf=p),
    "BTree": lambda p: BPlusTree(perf=p),
}


def run_sequential():
    keys = sequential_keys(SMALL_N, step=8)
    half = SMALL_N // 2
    load = [(k, k) for k in keys[:half]]
    appends = keys[half:]
    rows = []
    metrics = {}
    for name, factory in CANDIDATES.items():
        perf = PerfContext()
        index = factory(perf)
        index.bulk_load(load)
        mark = perf.begin()
        for k in appends:
            index.insert(k, k)
        insert_ns = perf.end(mark).time_ns / len(appends)
        per_key = index.key_store_bytes() / len(index)
        metrics[name] = {"insert_ns": insert_ns, "bytes_per_key": per_key}
        rows.append([name, f"{insert_ns:.0f}", f"{per_key:.1f}"])
    table = format_table(
        ["index", "append insert (sim ns)", "key-store bytes/key"],
        rows,
        title="Ablation — append-only inserts (the §V-B2 scenario)",
    )
    return table, metrics


def test_ablation_sequential(benchmark):
    table, metrics = run_once(benchmark, run_sequential)
    write_result("ablation_sequential", table)
    # ALEX keeps paying for gaps the append-only workload never uses:
    # its resident bytes per key exceed the plain sorted layouts'.
    assert (
        metrics["ALEX"]["bytes_per_key"]
        > metrics["FITing-tree-buf"]["bytes_per_key"] * 1.1
    )
    # Everyone appends cheaply (no mid-array shifting on this workload).
    for name, m in metrics.items():
        assert m["insert_ns"] < 3000, name


if __name__ == "__main__":
    table, _ = run_sequential()
    write_result("ablation_sequential", table)
