#!/usr/bin/env python3
"""Wall-clock micro-benchmark for the vectorized scan engine (PR 8).

Like ``bench_micro.py`` this measures real wall-clock throughput of the
Python implementation, not simulated nanoseconds: fixed seed, fixed
start-key sets, so two runs on the same machine are comparable.

Measured per index (PGM-static — the read figure's "PGM"; the dynamic
LSM variant keeps the per-item fallback by design — plus ALEX and
BTree):

* ``scan``        — scalar 50-record scans per second.
* ``scan_many``   — the same start keys answered through the batch API.
* ``ycsbe``       — a YCSB-E mix (95% scans of 1..50 records, 5%
  inserts) through the executor at ``batch_size=1``.
* ``ycsbe_batched`` — the same op stream at ``batch_size=2048``
  (read-only indexes skip the insert-bearing mix).

Usage::

    python benchmarks/bench_scan.py --quick            # CI smoke scale
    python benchmarks/bench_scan.py --out BENCH_SCAN.json
    python benchmarks/bench_scan.py --quick --check    # fail on regression

``--check`` verifies a small ``scan_many`` sample against the scalar
loop bit-for-bit, then gates the speedups: at full scale a native batch
scan path must beat the scalar loop >= 5x (the vectorized engine's
acceptance floor on 1M keys / 50-record scans); at ``--quick`` scale a
looser floor guards against the path silently degrading to per-item
work.  The JSON report is ``repro.obs.regress``-compatible.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time

from repro.bench.runner import IndexAdapter, execute_ops
from repro.perf.context import PerfContext
from repro.registry import has_native_batch_scan, resolve
from repro.workloads import YCSB_E, generate_operations
from repro.workloads.ycsb import split_load_and_inserts

SEED = 43

#: Registry aliases of the measured indexes.
INDEXES = ("pgm-static", "alex", "btree")

SCAN_LENGTH = 50
#: Starts per scan_many call — the serving stack's batch granularity.
BATCH = 1024
#: Timed repetitions per measurement; the minimum is reported.
REPS = 3

#: Scalar-vs-batch floors for --check, per alias as (full, quick).
#: PGM and ALEX replay their whole search ledger vectorized, so they must
#: clear the acceptance bar (>= 5x at 1M keys / 50-record scans); BTree
#: has no model to replay — its batch path only vectorizes extraction —
#: so it merely has to stay ahead of the scalar loop.  Anything unlisted
#: is a generic fallback: the scalar loop plus list bookkeeping, gated
#: only against pathological slowdown.
FLOORS = {
    "pgm-static": (5.0, 4.0),
    "alex": (5.0, 5.0),
    "btree": (1.0, 0.9),
}
FALLBACK_FLOOR = 0.75

#: Full-scale parameters (the committed BENCH_SCAN.json numbers).
FULL = {"n_keys": 1_000_000, "n_scans": 20_000, "n_ops": 30_000}
#: ``--quick`` parameters (CI perf-smoke job).
QUICK = {"n_keys": 50_000, "n_scans": 4_000, "n_ops": 6_000}


def _ops_per_sec(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def bench_index(alias: str, scale: dict, rng: random.Random) -> dict:
    spec = resolve(alias)
    keys = sorted(rng.sample(range(1, 2**50), scale["n_keys"]))
    items = [(k, k) for k in keys]
    starts = rng.choices(keys, k=scale["n_scans"])

    index = spec.build(PerfContext())
    index.bulk_load(items)
    # Drop the build-time pair list and collect before timing: a million
    # dead tuples on the heap slow every allocation in both timed loops.
    del items
    gc.collect()

    # Best-of-REPS on both sides: scan latency at this scale is dominated
    # by allocator and cache state, and the minimum is the standard
    # noise-robust estimator for a fixed-work micro-benchmark.
    t_scalar = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for start in starts:
            index.scan(start, SCAN_LENGTH)
        t_scalar = min(t_scalar, time.perf_counter() - t0)

    t_batch = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for lo in range(0, len(starts), BATCH):
            index.scan_many(starts[lo : lo + BATCH], SCAN_LENGTH)
        t_batch = min(t_batch, time.perf_counter() - t0)

    # Bit-identity spot check outside the timed loops.
    sample = starts[: min(200, len(starts))]
    identical = index.scan_many(sample, SCAN_LENGTH) == [
        index.scan(start, SCAN_LENGTH) for start in sample
    ]

    row = {
        "name": spec.name,
        "native_batch_scan": has_native_batch_scan(index),
        "identical": identical,
        "n_keys": scale["n_keys"],
        "scan_ops_s": _ops_per_sec(len(starts), t_scalar),
        "scan_many_ops_s": _ops_per_sec(len(starts), t_batch),
        "ycsbe_ops_s": None,
        "ycsbe_batched_ops_s": None,
        "ycsbe_batch_speedup": None,
    }
    row["scan_speedup"] = row["scan_many_ops_s"] / row["scan_ops_s"]

    if not index.capabilities().updatable:
        return row  # static index: the insert-bearing E mix cannot run

    load, insert_pool = split_load_and_inserts(keys, 0.9, seed=SEED)
    n_ops = min(scale["n_ops"], (len(insert_pool) - 1) * 10)
    ops = generate_operations(YCSB_E, n_ops, load, insert_pool, seed=SEED)
    load_items = [(k, k) for k in load]

    for batch_size, metric in ((1, "ycsbe_ops_s"), (2048, "ycsbe_batched_ops_s")):
        perf = PerfContext()
        fresh = spec.build(perf)
        fresh.bulk_load(load_items)
        t0 = time.perf_counter()
        execute_ops(IndexAdapter(fresh), ops, perf, batch_size=batch_size)
        row[metric] = _ops_per_sec(len(ops), time.perf_counter() - t0)
    row["ycsbe_batch_speedup"] = row["ycsbe_batched_ops_s"] / row["ycsbe_ops_s"]
    return row


def run(scale: dict) -> dict:
    results = {}
    for alias in INDEXES:
        # One RNG stream per index so adding an index never shifts the
        # keys/starts of the others between runs.
        rng = random.Random(f"{SEED}:{alias}")
        row = bench_index(alias, scale, rng)
        results[alias] = row
        mix_part = (
            f"  ycsbe_batched {row['ycsbe_batched_ops_s']:>10,.0f} op/s"
            f" ({row['ycsbe_batch_speedup']:.1f}x)"
            if row["ycsbe_batched_ops_s"]
            else "  ycsbe -"
        )
        print(
            f"{row['name']:10s} scan {row['scan_ops_s']:>10,.0f} op/s"
            f"  scan_many {row['scan_many_ops_s']:>11,.0f} op/s"
            f" ({row['scan_speedup']:.1f}x)" + mix_part,
            flush=True,
        )
    return {
        "schema": "bench-scan-v1",
        "seed": SEED,
        "scale": scale,
        "python": sys.version.split()[0],
        "indexes": results,
    }


def run_scan_micro():
    """Zero-arg entry point for ``run_all.py``: quick scale, one table."""
    from repro.bench import format_table

    report = run(QUICK)
    rows = [
        [
            row["name"],
            f"{row['scan_ops_s']:,.0f}",
            f"{row['scan_many_ops_s']:,.0f}",
            f"{row['scan_speedup']:.1f}x",
            f"{row['ycsbe_batch_speedup']:.1f}x"
            if row["ycsbe_batch_speedup"]
            else "-",
        ]
        for row in report["indexes"].values()
    ]
    return format_table(
        ["index", "scan op/s", "scan_many op/s", "speedup", "YCSB-E batched"],
        rows,
        title="Scan micro-bench — scalar vs vectorized (wall clock, quick scale)",
    )


def _check(report: dict, full_scale: bool) -> list:
    """Failures; empty when every gate holds."""
    bad = []
    for alias, row in report["indexes"].items():
        if not row["identical"]:
            bad.append(f"{row['name']} scan_many diverges from scalar scan")
        pair = FLOORS.get(alias)
        floor = pair[0 if full_scale else 1] if pair else FALLBACK_FLOOR
        if row["scan_speedup"] < floor:
            bad.append(
                f"{row['name']} scan_many {row['scan_speedup']:.2f}x "
                f"< {floor:.2f}x floor"
            )
        if (
            row["ycsbe_batch_speedup"] is not None
            and row["ycsbe_batch_speedup"] < FALLBACK_FLOOR
        ):
            bad.append(
                f"{row['name']} ycsbe batched "
                f"({row['ycsbe_batch_speedup']:.2f}x)"
            )
    return bad


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (50K keys)"
    )
    parser.add_argument("--out", default="", help="write JSON results here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on scalar/batch divergence or a speedup below floor",
    )
    args = parser.parse_args()

    report = run(QUICK if args.quick else FULL)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")

    if args.check:
        bad = _check(report, full_scale=not args.quick)
        if bad:
            print(f"FAIL: {'; '.join(bad)}", file=sys.stderr)
            return 1
        print("check ok: scan batch paths identical and above speed floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
