"""Concurrency smoke bench: simulator + sharded-store regression gate.

A deliberately small, fixed-scale run (independent of ``REPRO_SCALE``)
over one index per CC scheme, producing a ``repro.obs.regress``-
compatible report:

* per-index single-thread measured profile, projected to 4 threads by
  the discrete-event concurrency simulator (read and write), and
* a 2-shard :class:`~repro.concurrency.ShardedStore` run on the shared
  simulated clock.

Every number is deterministic simulated time, so CI can re-run this
quickly and diff it against the committed ``BENCH_CONCURRENCY.json``
baseline with a tight threshold — any drift means the simulator, the
cost model, or an index changed behaviour.

Usage::

    python benchmarks/bench_concurrency.py [--out BENCH_CONCURRENCY.json]
"""

import argparse
import json

from _common import dataset, loaded_store, run_once
from repro import PerfContext, ViperStore
from repro.bench import format_table, run_store_ops, thread_scaling, write_result
from repro.concurrency import ShardedStore
from repro.registry import resolve
from repro.workloads import READ_ONLY, WRITE_ONLY, generate_operations
from repro.workloads.ycsb import split_load_and_inserts

#: Fixed mini-scale: big enough for stable profiles, small enough for CI.
KEYS = 8_000
OPS = 3_000
THREADS = (1, 4)
SHARDS = 2
SEED = 21

#: One representative per CC scheme (plus both retrain-blocking learned
#: indexes), keyed by CLI name for the report.
CASES = ("alex", "xindex", "btree", "bwtree", "cceh", "finedex")


def _read_profile(spec):
    keys = dataset("ycsb", KEYS)
    ops = generate_operations(READ_ONLY, OPS, list(keys), seed=SEED)
    store, perf = loaded_store(spec.build, keys)
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    return recorder, bytes_per_op, len(ops)


def _write_profile(spec):
    keys = dataset("ycsb", KEYS)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=SEED)
    ops = generate_operations(
        WRITE_ONLY, len(inserts) - 1, load, inserts, seed=SEED
    )
    store, perf = loaded_store(spec.build, load)
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    stats = store.index.stats()
    if stats.retrain_count:
        retrain_every = max(1, len(ops) // stats.retrain_count)
        retrain_stall_ns = stats.retrain_keys / stats.retrain_count * 14.0
    else:
        retrain_every, retrain_stall_ns = 0, 0.0
    return recorder, bytes_per_op, len(ops), retrain_every, retrain_stall_ns


def _sharded_run(spec):
    """Read-only ops through a 2-shard store on one shared clock."""
    keys = dataset("ycsb", KEYS)
    ops = generate_operations(READ_ONLY, OPS, list(keys), seed=SEED)
    perf = PerfContext()
    store = ShardedStore(spec.build, SHARDS, perf=perf)
    store.bulk_load([(k, k) for k in keys])
    recorder, _ = run_store_ops(store, ops, perf)
    return recorder.throughput_mops() * 1e6


def measure_concurrency() -> dict:
    """The full report: ``{"scale": ..., "indexes": {cli_name: metrics}}``."""
    indexes = {}
    for cli_name in CASES:
        spec = resolve(cli_name)
        read_rec, read_bytes, _ = _read_profile(spec)
        write_rec, write_bytes, wops, r_every, r_stall = _write_profile(spec)
        read_curve = thread_scaling(
            read_rec.mean(), read_rec.p999(), read_bytes, THREADS,
            projection="sim", concurrency=spec.concurrency,
            write_fraction=0.0, seed=SEED,
        )
        write_curve = thread_scaling(
            write_rec.mean(), write_rec.p999(), write_bytes, THREADS,
            projection="sim", concurrency=spec.concurrency,
            write_fraction=1.0, retrain_every=r_every,
            retrain_stall_ns=r_stall, seed=SEED,
        )
        read1 = read_curve[0]["throughput_mops"] * 1e6
        read4 = read_curve[-1]["throughput_mops"] * 1e6
        write4 = write_curve[-1]["throughput_mops"] * 1e6
        indexes[cli_name] = {
            "name": spec.name,
            "concurrency": spec.concurrency.describe(),
            "sim_read_ops_s": read1,
            "sim_read4_ops_s": read4,
            "sim_write4_ops_s": write4,
            "sim_read_scale_speedup": read4 / read1,
            "shard2_read_ops_s": _sharded_run(spec),
        }
    return {
        "scale": {
            "keys": KEYS,
            "ops": OPS,
            "threads": THREADS[-1],
            "shards": SHARDS,
        },
        "indexes": indexes,
    }


def render(report: dict) -> str:
    rows = [
        [
            name,
            m["concurrency"],
            f"{m['sim_read_ops_s'] / 1e6:.2f}",
            f"{m['sim_read4_ops_s'] / 1e6:.2f}",
            f"{m['sim_write4_ops_s'] / 1e6:.2f}",
            f"{m['sim_read_scale_speedup']:.2f}",
            f"{m['shard2_read_ops_s'] / 1e6:.2f}",
        ]
        for name, m in report["indexes"].items()
    ]
    return format_table(
        ["index", "concurrency", "read x1", "read x4", "write x4",
         "read scale", "shard x2"],
        rows,
        title=f"Concurrency smoke — sim at {THREADS[-1]} threads, "
        f"{SHARDS}-shard store (Mops/s, simulated)",
    )


def run_concurrency():
    report = measure_concurrency()
    return render(report), report


def test_concurrency_smoke(benchmark):
    table, report = run_once(benchmark, run_concurrency)
    write_result("concurrency_smoke", table, data=report)
    by = report["indexes"]
    # CCEH's per-segment latching wins the 4-thread read aggregate.
    assert by["cceh"]["sim_read4_ops_s"] == max(
        m["sim_read4_ops_s"] for m in by.values()
    )
    # Global-locked ALEX scales reads worse than per-segment CCEH.
    assert (
        by["alex"]["sim_read_scale_speedup"]
        < by["cceh"]["sim_read_scale_speedup"]
    )
    # A 2-shard store on one shared clock serves the same ops — the
    # throughput stays within 2x of the unsharded single-thread rate
    # (routing adds no simulated cost; it is a partitioning, not a cache).
    for m in by.values():
        assert 0.5 <= m["shard2_read_ops_s"] / m["sim_read_ops_s"] <= 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--out", default="",
        help="also write the regress-compatible JSON report here",
    )
    args = parser.parse_args()
    table, report = run_concurrency()
    write_result("concurrency_smoke", table, data=report)
    if args.out:
        with open(args.out, "w") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"[saved report to {args.out}]")
