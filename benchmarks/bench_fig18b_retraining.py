"""Fig 18(b) — retraining strategies over a long insert stream.

Paper shape (summarised in §IV-E):

* ALEX has by far the fewest retrains, the longest average retrain, and
  the shortest total retraining time;
* PGM has the shortest average retrain time (small LSM merges) but many
  of them;
* FITing-tree retrains often and accumulates the longest total time.
"""

from _common import SMALL_N, dataset, run_once
from repro import ALEXIndex, DynamicPGMIndex, FITingTree, PerfContext
from repro.bench import format_table, write_result
from repro.workloads.ycsb import split_load_and_inserts

#: FITing-tree is configured at its intended node scale for the
#: retraining study: large error-bounded segments with a small per-node
#: buffer, so each buffer flush rebuilds a whole (big) node — the cost
#: structure behind the paper's "FITing-tree has the longest total time".
CANDIDATES = {
    "FITing-tree": lambda perf: FITingTree(
        strategy="buffer", eps=64, buffer_capacity=128, perf=perf
    ),
    "PGM": lambda perf: DynamicPGMIndex(perf=perf),
    "ALEX": lambda perf: ALEXIndex(perf=perf),
}


def _retrain_stats(index):
    if isinstance(index, DynamicPGMIndex):
        return index.retrain_stats
    return index.retraining.stats


def run_fig18b():
    keys = dataset("ycsb", SMALL_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=21)
    rows = []
    metrics = {}
    for name, factory in CANDIDATES.items():
        perf = PerfContext()
        index = factory(perf)
        index.bulk_load([(k, k) for k in load])
        for k in inserts:
            index.insert(k, k)
        stats = _retrain_stats(index)
        inserts_per_retrain = len(inserts) / max(1, stats.count)
        metrics[name] = {
            "count": stats.count,
            "avg_ns": stats.avg_time_ns(),
            "total_ns": stats.time_ns,
            "per_retrain": inserts_per_retrain,
        }
        rows.append(
            [
                name,
                stats.count,
                f"{inserts_per_retrain:.0f}",
                f"{stats.avg_time_ns() / 1000:.1f}",
                f"{stats.time_ns / 1e6:.2f}",
            ]
        )
    table = format_table(
        [
            "index",
            "retrains",
            "inserts/retrain",
            "avg retrain (sim us)",
            "total retrain (sim ms)",
        ],
        rows,
        title=f"Fig 18(b) — retraining over {SMALL_N // 2} inserts",
    )
    return table, metrics


def test_fig18b(benchmark):
    table, metrics = run_once(benchmark, run_fig18b)
    write_result("fig18b_retraining", table)
    # ALEX retrains the least often.
    assert metrics["ALEX"]["count"] < metrics["PGM"]["count"]
    assert metrics["ALEX"]["count"] < metrics["FITing-tree"]["count"]
    # PGM has the cheapest average retrain; ALEX the most expensive.
    assert metrics["PGM"]["avg_ns"] < metrics["FITing-tree"]["avg_ns"]
    assert metrics["ALEX"]["avg_ns"] > metrics["PGM"]["avg_ns"]
    # ALEX has the smallest total retraining time.
    assert metrics["ALEX"]["total_ns"] < metrics["PGM"]["total_ns"]
    assert metrics["ALEX"]["total_ns"] < metrics["FITing-tree"]["total_ns"]


if __name__ == "__main__":
    table, _ = run_fig18b()
    write_result("fig18b_retraining", table)
