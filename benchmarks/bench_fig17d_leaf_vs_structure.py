"""Fig 17(d) — per-index scatter: structure query cost vs. leaf query cost.

Each published learned index is decomposed into its structure dimension
(measured at the leaf count its approximator actually produces) and its
approximation dimension (measured on its leaves).  Paper shape: "the
closer the record is to the bottom left corner ... the better.  Obviously,
ALEX is the best" — its CDF-reshaping approximator yields so few leaves
that both coordinates are small simultaneously.
"""

import random

from _common import SMALL_N, dataset, run_once
from bench_fig17a_approximation import leaf_query_cost_ns
from repro.bench import format_table, write_result
from repro.core.approximation import (
    LSAApproximator,
    LSAGapApproximator,
    OptPLAApproximator,
    SplineApproximator,
)
from repro.core.structures import (
    ATSStructure,
    BTreeStructure,
    LRSStructure,
    RadixTableStructure,
    RMIStructure,
)
from repro.perf import PerfContext

N_PROBES = 2500

#: index -> (its approximator, its structure factory)
DECOMPOSITION = {
    "RMI": (
        lambda: LSAApproximator(segment_size=64),
        lambda perf: RMIStructure(branching=1024, perf=perf),
    ),
    "RS": (
        lambda: SplineApproximator(eps=8),
        lambda perf: RadixTableStructure(r_bits=8, perf=perf),
    ),
    "FITing-tree": (
        lambda: OptPLAApproximator(eps=16),
        lambda perf: BTreeStructure(fanout=16, perf=perf),
    ),
    "PGM": (
        lambda: OptPLAApproximator(eps=16),
        lambda perf: LRSStructure(eps=4, perf=perf),
    ),
    "ALEX": (
        lambda: LSAGapApproximator(segment_size=16384, density=0.7),
        lambda perf: ATSStructure(max_node_fences=32, perf=perf),
    ),
    "XIndex": (
        lambda: LSAApproximator(segment_size=256),
        lambda perf: RMIStructure(branching=1024, perf=perf),
    ),
}


def run_fig17d():
    keys = list(dataset("ycsb", SMALL_N))
    rng = random.Random(19)
    probes = rng.sample(keys, N_PROBES)
    rows = []
    points = {}
    for name, (make_approx, make_structure) in DECOMPOSITION.items():
        approx = make_approx().fit(keys)

        perf = PerfContext()
        structure = make_structure(perf)
        structure.build(approx.fences)
        mark = perf.begin()
        for key in probes:
            structure.lookup(key)
        structure_ns = perf.end(mark).time_ns / len(probes)

        leaf_perf = PerfContext()
        leaf_ns = leaf_query_cost_ns(approx, keys, probes, leaf_perf)

        points[name] = (structure_ns, leaf_ns)
        rows.append(
            [
                name,
                approx.leaf_count,
                f"{structure_ns:.0f}",
                f"{leaf_ns:.0f}",
                f"{structure_ns + leaf_ns:.0f}",
            ]
        )
    table = format_table(
        ["index", "leaves", "structure (ns)", "leaf (ns)", "total (ns)"],
        rows,
        title="Fig 17(d) — structure cost vs leaf cost per learned index",
    )
    return table, points


def test_fig17d(benchmark):
    table, points = run_once(benchmark, run_fig17d)
    write_result("fig17d_leaf_vs_structure", table)
    # ALEX has the lowest combined cost (bottom-left of the scatter).
    totals = {n: s + l for n, (s, l) in points.items()}
    assert totals["ALEX"] == min(totals.values())


if __name__ == "__main__":
    table, _ = run_fig17d()
    write_result("fig17d_leaf_vs_structure", table)
