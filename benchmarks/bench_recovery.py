#!/usr/bin/env python3
"""Fault-tolerance benchmark for the process-parallel sharded engine.

Measures what the supervision layer (:mod:`repro.concurrency.supervise`)
costs and what it buys, per index (PGM — learned, native batch paths;
BTree — the traditional baseline) at 2 workers:

* ``baseline_ops_s``        — batched lookups, no faults injected.
* ``recovered_ops_s``       — the same workload with a worker SIGKILLed
  mid-run; the supervisor respawns it, rebuilds its partition, and
  replays the in-flight batch.  Answers are verified bit-identical to
  the unfailed run before the number counts.
* ``recovered_speedup``     — recovered / baseline throughput ratio
  (how much of the run one crash-and-recover cycle eats).
* ``degraded_ops_s``        — ``degraded="partial"`` with the restart
  budget exhausted: throughput of the surviving shards.
* ``degraded_speedup``      — degraded / baseline ratio.
* ``recovery_latency_ms``   — wall time of the respawn + rebuild +
  replay cycle (the supervisor's own measurement).
* a :class:`~repro.concurrency.sim.FailureModel` projection: the
  measured recovery latency fed back into the discrete-event simulator
  as the rebuild cost, showing projected throughput loss at shrinking
  MTBFs.

Usage::

    python benchmarks/bench_recovery.py --quick
    python benchmarks/bench_recovery.py --out BENCH_RECOVERY.json
    python benchmarks/bench_recovery.py --quick --check --span-out rec.json

``--check`` exits non-zero if any recovered run diverges from the
unfailed answers, if recovery fails to happen (restart counters stay
zero), or if partial mode fails to keep the surviving shard serving.
``--span-out`` writes the recovery run's span forest as Chrome trace
JSON (the respawn/rebuild stages show up as a ``recovery`` lane).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.bench import format_table, write_result
from repro.concurrency.parallel import parallel_sharded_index
from repro.concurrency.sim import (
    FailureModel,
    OpProfile,
    make_streams,
    simulate,
)
from repro.concurrency.supervise import FaultPlan
from repro.errors import ShardUnavailableError
from repro.obs.export import write_chrome_trace
from repro.registry import resolve

SEED = 42

INDEXES = ("pgm", "btree")

WORKERS = 2

#: Full-scale parameters (the committed BENCH_RECOVERY.json numbers).
FULL = {"n_keys": 500_000, "n_batch": 100_000, "batches": 10}
#: ``--quick`` parameters (CI chaos-smoke job).
QUICK = {"n_keys": 30_000, "n_batch": 10_000, "batches": 6}

#: MTBF points for the sim projection, in operations between failures
#: (dimensionless in run length: 1_000 means one crash per thousand
#: ops served, however fast an op is).
SIM_MTBF_OPS = (100_000, 10_000, 1_000)


def _make_case(alias: str, scale: dict) -> dict:
    rng = random.Random(f"{SEED}:{alias}:recovery")
    keys = sorted(rng.sample(range(1, 2**50), scale["n_keys"]))
    batches = [
        rng.choices(keys, k=scale["n_batch"]) for _ in range(scale["batches"])
    ]
    return {
        "alias": alias,
        "items": [(k, k) for k in keys],
        "batches": batches,
    }


def _ops_per_sec(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def _run_batches(engine, batches):
    t0 = time.perf_counter()
    answers = [engine.get_many(b) for b in batches]
    return answers, time.perf_counter() - t0


def bench_recovery(case: dict, span_out: str = "") -> dict:
    """Baseline, crash-recover, and degraded runs for one index."""
    total_ops = sum(len(b) for b in case["batches"])

    # Unfailed reference: answers + throughput.
    engine = parallel_sharded_index(case["alias"], WORKERS)
    try:
        engine.bulk_load(case["items"])
        engine.get_many(case["batches"][0][:2048])  # warm the transport
        expected, t_base = _run_batches(engine, case["batches"])
    finally:
        engine.close()

    # Crash mid-run: kill worker 1 on the middle batch, recover, verify.
    # (Batch 1 of the run; the warm-up batch is get_many #1, so the kill
    # lands while real work is in flight.)
    kill_at = 2 + len(case["batches"]) // 2
    plan = FaultPlan().kill(1, op="get_many", nth=kill_at)
    engine = parallel_sharded_index(
        case["alias"],
        WORKERS,
        restart_budget=2,
        backoff_base_s=0.0,
        fault_plan=plan,
        span_rate=1.0 if span_out else 0.0,
    )
    try:
        engine.bulk_load(case["items"])
        engine.get_many(case["batches"][0][:2048])
        got, t_rec = _run_batches(engine, case["batches"])
        restarts = sum(engine.supervisor.restarts_used)
        latencies = [s for s in engine.supervisor.last_recovery_s if s]
        if span_out:
            n = write_chrome_trace(engine.spans.spans, span_out)
            print(f"[recovery trace: {n} events -> {span_out}]")
    finally:
        engine.close()
    mismatch = got != expected

    # Budget exhausted, partial mode: surviving shard keeps serving.
    engine = parallel_sharded_index(
        case["alias"],
        WORKERS,
        restart_budget=0,
        degraded="partial",
        fault_plan=FaultPlan().kill(1, op="get_many", nth=2),
    )
    try:
        engine.bulk_load(case["items"])
        engine.get_many(case["batches"][0][:2048])
        degraded, t_deg = _run_batches(engine, case["batches"])
        available = engine.availability()
        try:
            # Top-of-range keys route to worker 1 — the shard that is out
            # of service — so this write must be refused.
            engine.upsert_many(case["items"][-64:])
            write_raised = False
        except ShardUnavailableError:
            write_raised = True
    finally:
        engine.close()
    # Positions served by the surviving shards must still be exact.
    degraded_ok = all(
        g is None or g == e
        for got_b, exp_b in zip(degraded, expected)
        for g, e in zip(got_b, exp_b)
    )
    served = sum(
        1 for b in degraded for g in b if g is not None
    )

    baseline = _ops_per_sec(total_ops, t_base)
    recovered = _ops_per_sec(total_ops, t_rec)
    degraded_tp = _ops_per_sec(served, t_deg)
    return {
        "baseline_ops_s": baseline,
        "recovered_ops_s": recovered,
        "recovered_speedup": recovered / baseline if baseline else 0.0,
        "degraded_ops_s": degraded_tp,
        "degraded_speedup": degraded_tp / baseline if baseline else 0.0,
        "recovery_latency_ms": (
            1e3 * max(latencies) if latencies else 0.0
        ),
        "restarts": restarts,
        "mismatch": mismatch,
        "degraded_ok": degraded_ok,
        "degraded_available": available,
        "degraded_write_raised": write_raised,
        "degraded_served_ops": served,
    }


def sim_projection(row: dict, mean_ns: float) -> list:
    """Project the measured recovery cost onto shrinking MTBFs.

    The simulator treats each thread as a worker with the measured
    rebuild cost; rows show how throughput degrades as failures go from
    rare (one per minute) to pathological (one per second).
    """
    spec = resolve("btree")
    profile = OpProfile(
        mean_ns=mean_ns, p999_ns=4 * mean_ns, bytes_per_op=64.0
    )
    streams = make_streams(WORKERS, 4000, 0.0, seed=SEED)
    base = simulate(spec.concurrency, profile, streams, seed=SEED)
    rebuild_ns = max(row["recovery_latency_ms"], 0.001) * 1e6
    rows = []
    for mtbf_ops in SIM_MTBF_OPS:
        res = simulate(
            spec.concurrency,
            profile,
            streams,
            seed=SEED,
            failure=FailureModel(
                mtbf_ns=mtbf_ops * mean_ns, rebuild_ns=rebuild_ns
            ),
        )
        rows.append(
            {
                "mtbf_ops": mtbf_ops,
                "failures": res.failures,
                "recovery_stall_share": res.recovery_stall_share,
                "throughput_vs_failfree": (
                    res.throughput_mops / base.throughput_mops
                    if base.throughput_mops
                    else 0.0
                ),
            }
        )
    return rows


def run_recovery(scale=None, span_out: str = ""):
    scale = dict(QUICK if scale is None else scale)
    results = {}
    for alias in INDEXES:
        case = _make_case(alias, scale)
        spec = resolve(alias)
        row = bench_recovery(
            case, span_out=span_out if alias == INDEXES[0] else ""
        )
        row["name"] = spec.name
        row["n_keys"] = len(case["items"])
        results[alias] = row
        print(
            f"{spec.name:8s} baseline {row['baseline_ops_s']:>11,.0f} op/s  "
            f"recovered {row['recovered_ops_s']:>11,.0f} op/s "
            f"({row['recovered_speedup']:.2f}x)  "
            f"recovery {row['recovery_latency_ms']:.1f}ms  "
            f"degraded {row['degraded_ops_s']:>11,.0f} op/s"
            + ("  MISMATCH" if row["mismatch"] else ""),
            flush=True,
        )

    first = results[INDEXES[0]]
    sim_rows = sim_projection(
        first, mean_ns=1e9 / max(first["baseline_ops_s"], 1.0)
    )
    table = format_table(
        ["index", "baseline op/s", "recovered op/s", "ratio",
         "recovery ms", "degraded op/s"],
        [
            [
                r["name"],
                f"{r['baseline_ops_s']:,.0f}",
                f"{r['recovered_ops_s']:,.0f}",
                f"{r['recovered_speedup']:.2f}",
                f"{r['recovery_latency_ms']:.1f}",
                f"{r['degraded_ops_s']:,.0f}",
            ]
            for r in results.values()
        ],
        title=f"Recovery: crash-and-recover vs fail-free "
        f"({WORKERS} workers, {os.cpu_count()} cores)",
    )
    table += "\n\n" + format_table(
        ["MTBF ops", "failures", "stall share", "throughput vs fail-free"],
        [
            [
                f"{r['mtbf_ops']:,}",
                r["failures"],
                f"{r['recovery_stall_share']:.1%}",
                f"{r['throughput_vs_failfree']:.2f}x",
            ]
            for r in sim_rows
        ],
        title="Simulated failure projection (measured rebuild cost)",
    )
    report = {
        "schema": "bench-recovery-v1",
        "seed": SEED,
        "scale": scale,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "indexes": results,
        "sim_projection": sim_rows,
    }
    return table, report


def _check(report: dict) -> list:
    problems = []
    for row in report["indexes"].values():
        name = row["name"]
        if row["mismatch"]:
            problems.append(
                f"{name}: recovered answers diverged from the unfailed run"
            )
        if row["restarts"] < 1:
            problems.append(
                f"{name}: no restart happened (fault injection broken?)"
            )
        if not row["degraded_ok"]:
            problems.append(
                f"{name}: degraded run returned wrong values on "
                "surviving shards"
            )
        if row["degraded_available"] != [True, False]:
            problems.append(
                f"{name}: expected shard 1 down in partial mode, "
                f"got availability {row['degraded_available']}"
            )
        if not row["degraded_write_raised"]:
            problems.append(
                f"{name}: write into the lost range did not raise "
                "ShardUnavailableError"
            )
        if row["degraded_served_ops"] == 0:
            problems.append(f"{name}: partial mode served nothing")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (30K keys)"
    )
    parser.add_argument("--out", default="", help="write JSON results here")
    parser.add_argument(
        "--span-out",
        default="",
        help="write the recovery run's span forest as Chrome trace JSON",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless recovery happened, answers stayed "
        "bit-identical, and partial mode kept serving",
    )
    args = parser.parse_args()

    table, report = run_recovery(
        scale=QUICK if args.quick else FULL, span_out=args.span_out
    )
    write_result("bench_recovery", table, data=report)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")

    if args.check:
        problems = _check(report)
        if problems:
            print("FAIL: " + "; ".join(problems), file=sys.stderr)
            return 1
        print(
            "check ok: recovery exact, restart counted, partial mode served"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
