"""Fig 18(a) — insertion strategies vs. reserved-space size.

Paper shape: Inplace is the slowest and gets *worse* as the reserve
grows (longer shifts); Buffer also degrades with reserve size; ALEX-gap
is the fastest and its reserved space is "automatically generated".
"""

import random

from _common import SMALL_N, dataset, run_once
from repro.bench import format_table, write_result
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion import BufferedLeaf, GappedLeaf, InplaceLeaf, InsertResult
from repro.core.insertion.strategies import fit_dense_model
from repro.perf import PerfContext

RESERVES = (128, 256, 512, 1024)
BASE_KEYS = 4096


def _measure_inserts(leaf, perf, insert_keys):
    """Average simulated ns per insert until the leaf fills."""
    count = 0
    mark = perf.begin()
    for key in insert_keys:
        if leaf.insert(key, key) is InsertResult.FULL:
            break
        count += 1
    if count == 0:
        raise RuntimeError("leaf rejected the first insert")
    return perf.end(mark).time_ns / count, count


def run_fig18a():
    all_keys = list(dataset("ycsb", SMALL_N))
    rng = random.Random(20)
    base = sorted(rng.sample(all_keys, BASE_KEYS))
    base_set = set(base)
    pool = [k for k in all_keys if k not in base_set]
    rng.shuffle(pool)
    values = list(base)

    rows = []
    series = {"Inplace": [], "Buffer": []}
    for reserve in RESERVES:
        model, max_err = fit_dense_model(base)
        perf = PerfContext()
        leaf = InplaceLeaf(base, values, model, max_err, reserve, perf)
        cost, absorbed = _measure_inserts(leaf, perf, pool)
        series["Inplace"].append(cost)
        rows.append(["Inplace", reserve, f"{cost:.0f}", absorbed])

        perf = PerfContext()
        leaf = BufferedLeaf(base, values, model, max_err, reserve, perf)
        cost, absorbed = _measure_inserts(leaf, perf, pool)
        series["Buffer"].append(cost)
        rows.append(["Buffer", reserve, f"{cost:.0f}", absorbed])

    perf = PerfContext()
    segment = GappedSegment(base[0], 0, base, density=0.7)
    gap_leaf = GappedLeaf(segment, values, perf, upper_density=0.8)
    cost, absorbed = _measure_inserts(gap_leaf, perf, pool)
    series["ALEX-gap"] = [cost]
    rows.append(["ALEX-gap", "auto", f"{cost:.0f}", absorbed])

    table = format_table(
        ["strategy", "reserve", "insert (sim ns)", "inserts absorbed"],
        rows,
        title="Fig 18(a) — insertion strategy cost vs reserved space",
    )
    return table, series


def test_fig18a(benchmark):
    table, series = run_once(benchmark, run_fig18a)
    write_result("fig18a_insertion", table)
    gap = series["ALEX-gap"][0]
    # ALEX-gap beats both strategies at every reserve size.
    for name in ("Inplace", "Buffer"):
        for cost in series[name]:
            assert gap < cost, f"ALEX-gap not cheaper than {name}"
    # Inplace is the worst strategy at every reserve size.
    for inp, buf in zip(series["Inplace"], series["Buffer"]):
        assert inp > buf
    # Bigger reserve hurts the inplace strategy.
    assert series["Inplace"][-1] > series["Inplace"][0]


if __name__ == "__main__":
    table, _ = run_fig18a()
    write_result("fig18a_insertion", table)
