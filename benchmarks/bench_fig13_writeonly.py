"""Fig 13 — end-to-end write-only evaluation (two sizes).

Paper shape: ALEX clearly best among learned indexes (gapped inserts);
FITing-tree-inp worst with >100x tail blowups from key shifting; apart from ALEX,
learned indexes show no advantage over traditional trees; XIndex and
FITing-tree-buf degrade the most from the small to the large size
(offsite buffers force batches of retrains).

``--jobs N`` fans the per-(size, index) measurements out over worker
processes (each cell is independent: its own store, its own simulated
clock), like the multithread figures do.
"""

import argparse

from _common import (
    SIZE_LABELS,
    SMALL_N,
    LARGE_N,
    WRITE_CASE,
    dataset,
    loaded_store,
    pool_map,
    run_once,
)
from repro.bench import BenchResult, format_table, run_store_ops, write_result
from repro.workloads import WRITE_ONLY, generate_operations
from repro.workloads.ycsb import split_load_and_inserts


def _measure_cell(cell):
    """One (size, index) write-only measurement; top-level so it pickles."""
    n, name = cell
    keys = dataset("ycsb", n)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=13)
    n_ops = len(inserts) - 1
    ops = generate_operations(WRITE_ONLY, n_ops, load, inserts, seed=13)
    store, perf = loaded_store(WRITE_CASE[name], load)
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    result = BenchResult.from_recorder(
        name, f"write-{SIZE_LABELS[n]}", recorder, bytes_per_op
    )
    return n, name, result


def run_writeonly(jobs: int = 1):
    cells = [
        (n, name) for n in (SMALL_N, LARGE_N) for name in WRITE_CASE
    ]
    measured = pool_map(_measure_cell, cells, jobs)
    rows = []
    results = {}
    for n, name, result in measured:
        results[(n, name)] = result
        rows.append(
            [
                SIZE_LABELS[n],
                name,
                f"{result.throughput_mops:.3f}",
                f"{result.p50_ns / 1000:.2f}",
                f"{result.p999_ns / 1000:.2f}",
            ]
        )
    table = format_table(
        ["size", "index", "Mops/s", "p50 (us)", "p99.9 (us)"],
        rows,
        title="Fig 13 — write-only (simulated single-thread)",
    )
    return table, results


def test_fig13_writeonly(benchmark):
    table, results = run_once(benchmark, run_writeonly)
    write_result("fig13_writeonly", table)
    small = {k[1]: v for k, v in results.items() if k[0] == SMALL_N}
    large = {k[1]: v for k, v in results.items() if k[0] == LARGE_N}
    # ALEX best among the learned indexes.
    learned = ("FITing-tree-inp", "FITing-tree-buf", "PGM", "XIndex")
    for other in learned:
        assert small["ALEX"].throughput_mops > small[other].throughput_mops
    # FITing-tree-inp is the worst learned index.
    for other in ("FITing-tree-buf", "PGM", "ALEX", "XIndex"):
        assert (
            small["FITing-tree-inp"].throughput_mops
            <= small[other].throughput_mops
        )
    # Offsite-buffer designs degrade most from small to large.
    def degradation(name):
        return large[name].throughput_mops / small[name].throughput_mops

    assert degradation("XIndex") < degradation("ALEX")
    assert degradation("FITing-tree-buf") < degradation("ALEX")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-(size, index) measurements",
    )
    args = parser.parse_args()
    table, _ = run_writeonly(jobs=args.jobs)
    write_result("fig13_writeonly", table)
