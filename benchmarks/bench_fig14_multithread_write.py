"""Fig 14 — multi-threaded write-only: XIndex vs. traditional indexes.

Among the learned indexes only XIndex supports concurrent writes
(Table I), so the paper plots it against the traditional indexes.  Shape:
XIndex's scaling "is similar to that of Masstree — overall, XIndex's
performance is close to traditional indexes".

Like Fig 12, each thread count reports the process-based projection (the
paper's setting) next to the GIL-bound thread projection, and ``--jobs N``
fans the per-index single-thread measurements out over worker processes.
"""

import argparse
from concurrent.futures import ProcessPoolExecutor

from _common import (
    SMALL_N,
    TRADITIONAL,
    CCEH_FACTORY,
    dataset,
    loaded_store,
    run_once,
)
from repro import XIndexIndex
from repro.bench import format_table, run_store_ops, thread_scaling, write_result
from repro.workloads import WRITE_ONLY, generate_operations
from repro.workloads.ycsb import split_load_and_inserts

THREADS = (1, 2, 4, 8, 16, 24, 32)

CONCURRENT_WRITERS = {
    "XIndex": lambda perf: XIndexIndex(perf=perf),
    **TRADITIONAL,
    **CCEH_FACTORY,
}


def _measure_write(name):
    """Single-thread baseline for one index; top-level so it pickles."""
    keys = dataset("ycsb", SMALL_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=14)
    ops = generate_operations(
        WRITE_ONLY, len(inserts) - 1, load, inserts, seed=14
    )
    store, perf = loaded_store(CONCURRENT_WRITERS[name], load)
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    return name, recorder.mean(), recorder.p999(), bytes_per_op


def run_multithread_write(jobs: int = 1):
    names = list(CONCURRENT_WRITERS)
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            measured = list(pool.map(_measure_write, names))
    else:
        measured = [_measure_write(name) for name in names]
    rows = []
    curves = {}
    for name, mean_ns, p999_ns, bytes_per_op in measured:
        scaling = thread_scaling(mean_ns, p999_ns, bytes_per_op, THREADS)
        curves[name] = scaling
        for point in scaling:
            rows.append(
                [
                    name,
                    point["threads"],
                    f"{point['throughput_mops']:.2f}",
                    f"{point['gil_thread_mops']:.2f}",
                    f"{point['p999_ns'] / 1000:.2f}",
                ]
            )
    table = format_table(
        ["index", "threads", "Mops/s (proc)", "Mops/s (GIL thr)",
         "p99.9 (us)"],
        rows,
        title="Fig 14 — multi-threaded write-only (bandwidth-model projection; "
        "'proc' = one interpreter per core, 'GIL thr' = Python threads "
        "serialised by the GIL)",
    )
    return table, curves


def test_fig14_multithread_write(benchmark):
    table, curves = run_once(benchmark, run_multithread_write)
    write_result("fig14_multithread_write", table)
    # XIndex lands inside the traditional indexes' band at every count.
    for i, t in enumerate(THREADS):
        trad = [
            curves[n][i]["throughput_mops"]
            for n in ("BTree", "Skiplist", "Masstree", "Bwtree", "Wormhole")
        ]
        x = curves["XIndex"][i]["throughput_mops"]
        assert min(trad) * 0.5 <= x <= max(trad) * 1.5


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-index baseline measurements",
    )
    args = parser.parse_args()
    table, _ = run_multithread_write(jobs=args.jobs)
    write_result("fig14_multithread_write", table)
