"""Fig 14 — multi-threaded write-only: XIndex vs. traditional indexes.

Among the paper's learned indexes only XIndex supports concurrent writes
(Table I), so the paper plots it against the traditional indexes; we add
FINEdex as the second retrain-blocking learned competitor.  Shape:
XIndex's scaling "is similar to that of Masstree — overall, XIndex's
performance is close to traditional indexes" — but the *scaling ratio*
of the retrain-blocking learned indexes (XIndex, FINEdex) trails the
B-tree's and Bw-tree's, because every group/level retrain stalls the
writers behind it (the Amdahl serial fraction the latches can't hide).

Like Fig 12, the default ``--projection sim`` runs the discrete-event
concurrency simulator on each index's measured single-thread profile
(including its measured retrain cadence); ``--projection analytic``
keeps the closed-form bandwidth-only numbers.  ``--jobs N`` fans the
per-index measurements out over worker processes.
"""

import argparse

from _common import (
    CASE_CONCURRENCY,
    MEASURED_THREADS,
    comparison_rows,
    comparison_table,
    measure_baselines,
    measured_scaling_curves,
    run_once,
)
from repro.bench import format_table, thread_scaling, write_result

THREADS = (1, 2, 4, 8, 16, 24, 32)
SEED = 14


def project_write_curves(measured, projection: str):
    """Thread-scaling curves per index from measured write baselines."""
    return {
        m["name"]: thread_scaling(
            m["mean_ns"],
            m["p999_ns"],
            m["bytes_per_op"],
            THREADS,
            projection=projection,
            concurrency=CASE_CONCURRENCY["write"][m["name"]],
            write_fraction=1.0,
            retrain_every=m["retrain_every"],
            retrain_stall_ns=m["retrain_stall_ns"],
            seed=SEED,
        )
        for m in measured
    }


def _render(curves, projection: str):
    rows = []
    for name, scaling in curves.items():
        for point in scaling:
            row = [
                name,
                point["threads"],
                f"{point['throughput_mops']:.2f}",
                f"{point['gil_thread_mops']:.2f}",
                f"{point['p999_ns'] / 1000:.2f}",
            ]
            if projection == "sim":
                row.append(f"{100 * point['latch_wait_share']:.1f}%")
                row.append(f"{100 * point['retrain_stall_share']:.1f}%")
            rows.append(row)
    headers = ["index", "threads", "Mops/s (proc)", "Mops/s (GIL thr)",
               "p99.9 (us)"]
    if projection == "sim":
        headers += ["latch wait", "retrain stall"]
    title = (
        "Fig 14 — multi-threaded write-only ("
        + (
            "discrete-event concurrency simulation"
            if projection == "sim"
            else "bandwidth-model projection"
        )
        + "; 'proc' = one interpreter per core, 'GIL thr' = Python "
        "threads serialised by the GIL)"
    )
    return format_table(headers, rows, title=title)


def run_multithread_write(jobs: int = 1, projection: str = "sim"):
    measured = measure_baselines("write", SEED, jobs=jobs)
    if projection == "measured":
        # Same validation table as Fig 12's measured branch, over the
        # write-only workload: real engines (each worker really absorbs
        # its partition's inserts) against the sim/analytic projections.
        meas = measured_scaling_curves("write", measured, seed=SEED)
        rows = comparison_rows(
            meas,
            project_write_curves(measured, "sim"),
            project_write_curves(measured, "analytic"),
        )
        table = comparison_table(
            rows,
            "Fig 14 — measured vs sim vs analytic write scaling "
            f"(measured = real processes at {MEASURED_THREADS} workers, "
            "wall-clock on this host)",
        )
        return table, {"measured": meas, "comparison": rows}
    curves = project_write_curves(measured, projection)
    return _render(curves, projection), curves


TRADITIONAL_NAMES = ("BTree", "Skiplist", "Masstree", "Bwtree", "Wormhole")


def test_fig14_multithread_write(benchmark):
    measured = run_once(benchmark, lambda: measure_baselines("write", SEED))
    sim = project_write_curves(measured, "sim")
    analytic = project_write_curves(measured, "analytic")
    write_result(
        "fig14_multithread_write",
        _render(sim, "sim"),
        data={"threads": list(THREADS), "curves": sim},
    )

    # --- simulator projection: the paper's qualitative shape ----------
    # XIndex lands inside the traditional indexes' band at every count.
    for i, _t in enumerate(THREADS):
        trad = [sim[n][i]["throughput_mops"] for n in TRADITIONAL_NAMES]
        x = sim["XIndex"][i]["throughput_mops"]
        assert min(trad) * 0.5 <= x <= max(trad) * 1.5
    # Blocking retrains cap the scaling of the retrain-blocking learned
    # indexes below the non-blocking B-tree and Bw-tree.
    speedup = {
        n: c[-1]["throughput_mops"] / c[0]["throughput_mops"]
        for n, c in sim.items()
    }
    for learned in ("XIndex", "FINEdex"):
        for traditional in ("BTree", "Bwtree"):
            assert speedup[learned] < speedup[traditional], (
                f"{learned} ({speedup[learned]:.1f}x) should scale worse "
                f"than {traditional} ({speedup[traditional]:.1f}x)"
            )
    # ... and the stall time is visible in the breakdown.
    assert sim["XIndex"][-1]["retrain_stall_share"] > 0.0

    # --- analytic fallback: pre-simulator behaviour, unchanged --------
    for i, _t in enumerate(THREADS):
        trad = [analytic[n][i]["throughput_mops"] for n in TRADITIONAL_NAMES]
        x = analytic["XIndex"][i]["throughput_mops"]
        assert min(trad) * 0.5 <= x <= max(trad) * 1.5


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-index baseline measurements",
    )
    parser.add_argument(
        "--projection", choices=("sim", "analytic", "measured"),
        default="sim",
        help="concurrency simulator (sim), closed-form bandwidth curve "
        "(analytic), or real worker processes with a side-by-side "
        "sim/analytic comparison (measured)",
    )
    args = parser.parse_args()
    table, curves = run_multithread_write(
        jobs=args.jobs, projection=args.projection
    )
    write_result(
        "fig14_multithread_write",
        table,
        data={"threads": list(THREADS), "curves": curves},
    )
