"""Ablation — ALEX's density bounds: the space-for-performance dial.

§IV-G: ALEX "wisely adopts the idea of paying some additional space ...
for higher performance".  This ablation sweeps the gapped array's lower
density bound (the post-expansion density): lower density = more gaps =
more DRAM but fewer key moves and fewer retrains per insert.
"""

from _common import SMALL_N, dataset, run_once
from repro import ALEXIndex, PerfContext
from repro.bench import format_table, write_result
from repro.workloads.ycsb import split_load_and_inserts

LOWER_DENSITIES = (0.5, 0.6, 0.7)


def run_density_ablation():
    keys = dataset("ycsb", SMALL_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=34)
    rows = []
    metrics = []
    for lower in LOWER_DENSITIES:
        perf = PerfContext()
        index = ALEXIndex(lower_density=lower, upper_density=0.8, perf=perf)
        index.bulk_load([(k, k) for k in load])
        mark = perf.begin()
        for k in inserts:
            index.insert(k, k)
        insert_ns = perf.end(mark).time_ns / len(inserts)
        stats = index.stats()
        space = index.key_store_bytes()
        metrics.append(
            {
                "lower": lower,
                "insert_ns": insert_ns,
                "retrains": stats.retrain_count,
                "space": space,
            }
        )
        rows.append(
            [
                lower,
                f"{insert_ns:.0f}",
                stats.retrain_count,
                f"{space / (1 << 20):.2f}MB",
            ]
        )
    table = format_table(
        ["lower density", "insert (sim ns)", "retrains", "key store"],
        rows,
        title="Ablation — ALEX density bounds (space vs update performance)",
    )
    return table, metrics


def test_ablation_alex_density(benchmark):
    table, metrics = run_once(benchmark, run_density_ablation)
    write_result("ablation_alex_density", table)
    # More gaps (lower density) cost space...
    spaces = [m["space"] for m in metrics]
    assert spaces[0] > spaces[-1]
    # ...and buy fewer retrains per insert.
    assert metrics[0]["retrains"] <= metrics[-1]["retrains"]


if __name__ == "__main__":
    table, _ = run_density_ablation()
    write_result("ablation_alex_density", table)
