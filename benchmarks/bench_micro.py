#!/usr/bin/env python3
"""Wall-clock micro-benchmark for the vectorized hot paths (PR 2, PR 3).

Unlike every ``bench_fig*`` module — which reports *simulated* nanoseconds
from the cost model — this one measures real wall-clock throughput of the
Python implementation itself, tracking the perf trajectory of the
vectorized fast paths across PRs.  Fixed seed, fixed query sets, so two
runs on the same machine are comparable.

Measured per index (PGM, RS, BTree, ALEX — one LSM learned index, one
static learned index, one traditional baseline, one gapped learned
index):

* ``bulk_load``    — keys/s building the index from a sorted array.
* ``get``          — scalar point lookups per second.
* ``get_many``     — the same query set answered through the batch API.
* ``insert``       — fresh-key scalar inserts per second (static RS skips
  every write case).
* ``insert_many``  — fresh-key inserts through the batch API, on a fresh
  copy of the index.
* ``put``          — scalar ``ViperStore.put`` (index + simulated NVM).
* ``put_many``     — the same fresh keys through ``ViperStore.put_many``.

Usage::

    python benchmarks/bench_micro.py --quick            # CI smoke scale
    python benchmarks/bench_micro.py --out BENCH_PR3.json
    python benchmarks/bench_micro.py --quick --check    # fail on regression

``--check`` exits non-zero if a batch API is slower than its scalar
counterpart on an index with a native batch path — the batch APIs' whole
point is to beat the per-key loop there — or more than modestly slower on
a fallback index (a fallback batch *is* the per-key loop plus list
bookkeeping, so parity minus that overhead is its ceiling).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.perf.context import PerfContext
from repro.registry import has_native_batch, has_native_batch_insert, resolve
from repro.store.viper import ViperStore

SEED = 42

#: Registry aliases of the four representative indexes.
INDEXES = ("pgm", "rs", "btree", "alex")

#: Fallback indexes answer batches with the scalar loop plus a result
#: list; allow that bookkeeping overhead before calling it a regression.
FALLBACK_FLOOR = 0.75

#: Full-scale parameters (the committed BENCH_PR3.json numbers).
FULL = {
    "n_keys": 1_000_000,
    "n_scalar": 5_000,
    "n_batch": 200_000,
    "n_write": 50_000,
}
#: ``--quick`` parameters (CI perf-smoke job).
QUICK = {
    "n_keys": 50_000,
    "n_scalar": 2_000,
    "n_batch": 20_000,
    "n_write": 3_000,
}


def _make_keys(n: int, rng: random.Random):
    """Sorted unique uint64-range keys, deterministic in ``rng``."""
    return sorted(rng.sample(range(1, 2**50), n + n // 10))


def _ops_per_sec(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def bench_index(alias: str, scale: dict, rng: random.Random) -> dict:
    spec = resolve(alias)
    n_keys = scale["n_keys"]
    all_keys = _make_keys(n_keys, rng)
    # Hold out every 11th key (the n//10 surplus) as insert targets so
    # fresh writes interleave across the whole key range, as in the YCSB
    # insert workloads — a sorted-prefix split would aim every write at
    # the top leaf and measure retrain churn instead of the write path.
    load_keys = [k for i, k in enumerate(all_keys) if i % 11 != 5]
    extra_keys = [k for i, k in enumerate(all_keys) if i % 11 == 5]
    n_keys = len(load_keys)
    write_keys = rng.sample(extra_keys, min(scale["n_write"], len(extra_keys)))
    items = [(k, k) for k in load_keys]
    write_items = [(k, k) for k in write_keys]

    scalar_queries = [
        k + rng.choice((0, 1)) for k in rng.sample(load_keys, scale["n_scalar"])
    ]
    batch_queries = [
        k + rng.choice((0, 1))
        for k in rng.choices(load_keys, k=scale["n_batch"])
    ]

    index = spec.build(PerfContext())

    t0 = time.perf_counter()
    index.bulk_load(items)
    t_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    for q in scalar_queries:
        index.get(q)
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    index.get_many(batch_queries)
    t_batch = time.perf_counter() - t0

    row = {
        "name": spec.name,
        "native_batch": has_native_batch(index),
        "native_batch_insert": has_native_batch_insert(index),
        "n_keys": n_keys,
        "bulk_load_keys_s": _ops_per_sec(n_keys, t_build),
        "get_ops_s": _ops_per_sec(len(scalar_queries), t_scalar),
        "get_many_ops_s": _ops_per_sec(len(batch_queries), t_batch),
        "insert_ops_s": None,
        "insert_many_ops_s": None,
        "insert_batch_speedup": None,
        "put_ops_s": None,
        "put_many_ops_s": None,
        "put_batch_speedup": None,
    }
    row["batch_speedup"] = row["get_many_ops_s"] / row["get_ops_s"]

    if not index.capabilities().updatable:
        return row

    # Scalar inserts mutate the already-queried index (as before PR 3);
    # every batch case below starts from a fresh bulk-loaded copy so each
    # write path sees the identical pre-state.
    insert_keys = write_keys[: min(2_000, len(write_keys))]
    t0 = time.perf_counter()
    for k in insert_keys:
        index.insert(k, k)
    t_insert = time.perf_counter() - t0
    row["insert_ops_s"] = _ops_per_sec(len(insert_keys), t_insert)

    fresh = spec.build(PerfContext())
    fresh.bulk_load(items)
    t0 = time.perf_counter()
    fresh.insert_many(write_items)
    t_insert_many = time.perf_counter() - t0
    row["insert_many_ops_s"] = _ops_per_sec(len(write_items), t_insert_many)
    row["insert_batch_speedup"] = row["insert_many_ops_s"] / row["insert_ops_s"]

    put_keys = write_keys[: min(scale["n_scalar"], len(write_keys))]
    perf = PerfContext()
    store = ViperStore(spec.build(perf), perf)
    store.bulk_load(items)
    t0 = time.perf_counter()
    for k in put_keys:
        store.put(k, k)
    t_put = time.perf_counter() - t0
    row["put_ops_s"] = _ops_per_sec(len(put_keys), t_put)

    perf = PerfContext()
    store = ViperStore(spec.build(perf), perf)
    store.bulk_load(items)
    t0 = time.perf_counter()
    store.put_many(write_items)
    t_put_many = time.perf_counter() - t0
    row["put_many_ops_s"] = _ops_per_sec(len(write_items), t_put_many)
    row["put_batch_speedup"] = row["put_many_ops_s"] / row["put_ops_s"]
    return row


def run(scale: dict) -> dict:
    results = {}
    for alias in INDEXES:
        # One RNG stream per index so adding an index never shifts the
        # keys/queries of the others between runs.
        rng = random.Random(f"{SEED}:{alias}")
        row = bench_index(alias, scale, rng)
        results[alias] = row
        write_part = (
            f"  insert_many {row['insert_many_ops_s']:>11,.0f} op/s"
            f" ({row['insert_batch_speedup']:.1f}x)"
            f"  put_many {row['put_many_ops_s']:>11,.0f} op/s"
            f" ({row['put_batch_speedup']:.1f}x)"
            if row["insert_many_ops_s"]
            else "  writes -"
        )
        print(
            f"{row['name']:8s} bulk_load {row['bulk_load_keys_s']:>12,.0f} keys/s"
            f"  get_many {row['get_many_ops_s']:>13,.0f} op/s"
            f" ({row['batch_speedup']:.1f}x)" + write_part,
            flush=True,
        )
    return {
        "schema": "bench-micro-v2",
        "seed": SEED,
        "scale": scale,
        "python": sys.version.split()[0],
        "indexes": results,
    }


def _check(report: dict) -> list:
    """Batch-vs-scalar regressions; empty when every gate holds."""
    slow = []
    for row in report["indexes"].values():
        read_floor = 1.0 if row["native_batch"] else FALLBACK_FLOOR
        if row["batch_speedup"] < read_floor:
            slow.append(f"{row['name']} get_many ({row['batch_speedup']:.2f}x)")
        write_floor = 1.0 if row["native_batch_insert"] else FALLBACK_FLOOR
        if (
            row["insert_batch_speedup"] is not None
            and row["insert_batch_speedup"] < write_floor
        ):
            slow.append(
                f"{row['name']} insert_many "
                f"({row['insert_batch_speedup']:.2f}x)"
            )
        if (
            row["put_batch_speedup"] is not None
            and row["put_batch_speedup"] < write_floor
        ):
            slow.append(
                f"{row['name']} put_many ({row['put_batch_speedup']:.2f}x)"
            )
    return slow


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (50K keys)"
    )
    parser.add_argument("--out", default="", help="write JSON results here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if a batch API is slower than its scalar counterpart",
    )
    args = parser.parse_args()

    report = run(QUICK if args.quick else FULL)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")

    if args.check:
        slow = _check(report)
        if slow:
            print(
                f"FAIL: batch API regressed vs scalar for: {', '.join(slow)}",
                file=sys.stderr,
            )
            return 1
        print("check ok: no batch-vs-scalar regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
