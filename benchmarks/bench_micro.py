#!/usr/bin/env python3
"""Wall-clock micro-benchmark for the vectorized hot paths (PR 2).

Unlike every ``bench_fig*`` module — which reports *simulated* nanoseconds
from the cost model — this one measures real wall-clock throughput of the
Python implementation itself, tracking the perf trajectory of the
vectorized fast paths across PRs.  Fixed seed, fixed query sets, so two
runs on the same machine are comparable.

Measured per index (PGM, RS, BTree — one LSM learned index, one static
learned index, one traditional baseline):

* ``bulk_load``  — keys/s building the index from a sorted array.
* ``get``        — scalar point lookups per second.
* ``get_many``   — the same query set answered through the batch API.
* ``insert``     — fresh-key inserts per second (skipped for static RS).

Usage::

    python benchmarks/bench_micro.py --quick            # CI smoke scale
    python benchmarks/bench_micro.py --out BENCH_PR2.json
    python benchmarks/bench_micro.py --quick --check    # fail on regression

``--check`` exits non-zero if ``get_many`` is slower than scalar ``get``
on an index with a native batch path (PGM, RS) — the batch API's whole
point is to beat the per-key loop there — or more than modestly slower on
a fallback index (BTree's ``get_many`` *is* the per-key loop plus the
result list, so parity minus list-building overhead is its ceiling).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.perf.context import PerfContext
from repro.registry import has_native_batch, resolve

SEED = 42

#: Registry aliases of the three representative indexes.
INDEXES = ("pgm", "rs", "btree")

#: Fallback indexes answer batches with the scalar loop plus a result
#: list; allow that bookkeeping overhead before calling it a regression.
FALLBACK_FLOOR = 0.75

#: Full-scale parameters (the committed BENCH_PR2.json numbers).
FULL = {"n_keys": 1_000_000, "n_scalar": 5_000, "n_batch": 200_000}
#: ``--quick`` parameters (CI perf-smoke job).
QUICK = {"n_keys": 50_000, "n_scalar": 2_000, "n_batch": 20_000}


def _make_keys(n: int, rng: random.Random):
    """Sorted unique uint64-range keys, deterministic in ``rng``."""
    return sorted(rng.sample(range(1, 2**50), n + n // 10))


def _ops_per_sec(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def bench_index(alias: str, scale: dict, rng: random.Random) -> dict:
    spec = resolve(alias)
    n_keys = scale["n_keys"]
    all_keys = _make_keys(n_keys, rng)
    load_keys = all_keys[: n_keys]
    insert_keys = rng.sample(all_keys[n_keys:], min(2_000, len(all_keys) - n_keys))
    items = [(k, k) for k in load_keys]

    scalar_queries = [
        k + rng.choice((0, 1)) for k in rng.sample(load_keys, scale["n_scalar"])
    ]
    batch_queries = [
        k + rng.choice((0, 1))
        for k in rng.choices(load_keys, k=scale["n_batch"])
    ]

    index = spec.build(PerfContext())

    t0 = time.perf_counter()
    index.bulk_load(items)
    t_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    for q in scalar_queries:
        index.get(q)
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    index.get_many(batch_queries)
    t_batch = time.perf_counter() - t0

    row = {
        "name": spec.name,
        "native_batch": has_native_batch(index),
        "n_keys": n_keys,
        "bulk_load_keys_s": _ops_per_sec(n_keys, t_build),
        "get_ops_s": _ops_per_sec(len(scalar_queries), t_scalar),
        "get_many_ops_s": _ops_per_sec(len(batch_queries), t_batch),
    }
    row["batch_speedup"] = row["get_many_ops_s"] / row["get_ops_s"]

    if index.capabilities().updatable:
        t0 = time.perf_counter()
        for k in insert_keys:
            index.insert(k, k)
        t_insert = time.perf_counter() - t0
        row["insert_ops_s"] = _ops_per_sec(len(insert_keys), t_insert)
    else:
        row["insert_ops_s"] = None
    return row


def run(scale: dict) -> dict:
    results = {}
    for alias in INDEXES:
        # One RNG stream per index so adding an index never shifts the
        # keys/queries of the others between runs.
        rng = random.Random(f"{SEED}:{alias}")
        row = bench_index(alias, scale, rng)
        results[alias] = row
        print(
            f"{row['name']:8s} bulk_load {row['bulk_load_keys_s']:>12,.0f} keys/s"
            f"  get {row['get_ops_s']:>11,.0f} op/s"
            f"  get_many {row['get_many_ops_s']:>13,.0f} op/s"
            f"  ({row['batch_speedup']:.1f}x)"
            + (
                f"  insert {row['insert_ops_s']:>10,.0f} op/s"
                if row["insert_ops_s"]
                else "  insert -"
            ),
            flush=True,
        )
    return {
        "schema": "bench-micro-v1",
        "seed": SEED,
        "scale": scale,
        "python": sys.version.split()[0],
        "indexes": results,
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (50K keys)"
    )
    parser.add_argument("--out", default="", help="write JSON results here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if get_many is slower than scalar get anywhere",
    )
    args = parser.parse_args()

    report = run(QUICK if args.quick else FULL)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[saved to {args.out}]")

    if args.check:
        slow = [
            f"{row['name']} ({row['batch_speedup']:.2f}x)"
            for row in report["indexes"].values()
            if row["batch_speedup"]
            < (1.0 if row["native_batch"] else FALLBACK_FLOOR)
        ]
        if slow:
            print(
                f"FAIL: batch get_many regressed vs scalar get for: "
                f"{', '.join(slow)}",
                file=sys.stderr,
            )
            return 1
        print("check ok: no batch-vs-scalar regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
