"""Shared benchmark infrastructure: scales, index registry, dataset cache.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — 50K/200K keys, 20K ops: minutes of wall clock.
* ``paper``           — 200K/800K keys, 100K ops: the 1/1000-scaled
  equivalent of the paper's 200M/800M datasets.

All performance numbers are *simulated* nanoseconds from the cost model
(see DESIGN.md §2); wall-clock time only affects how long the bench takes
to run, never the reported values.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, Tuple

from repro import PerfContext, ViperStore
from repro.registry import factories, resolve
from repro.registry import specs as registry_specs
from repro.workloads import face_keys, osm_keys, uniform_keys, ycsb_keys

_SCALES = {
    "small": {"small_n": 50_000, "large_n": 200_000, "ops": 20_000},
    "paper": {"small_n": 200_000, "large_n": 800_000, "ops": 100_000},
}

SCALE_NAME = os.environ.get("REPRO_SCALE", "small")
SCALE = _SCALES.get(SCALE_NAME, _SCALES["small"])
SMALL_N = SCALE["small_n"]
LARGE_N = SCALE["large_n"]
N_OPS = SCALE["ops"]

#: Labels mirroring the paper's 200M / 800M dataset sizes.
SIZE_LABELS = {SMALL_N: "200M*", LARGE_N: "800M*"}


# ---------------------------------------------------------------- registry
#
# Every factory table is a filtered view over ``repro.registry`` — the
# single place an index is declared.  Registering an index there (with
# the right figure membership) makes it appear in every figure module.

IndexFactory = Callable[[PerfContext], object]

#: RS's prefix width is tuned once, for the small size, and then held
#: fixed — the paper's 18 bits for 200M keys, scaled to our key counts.
#: Keeping it fixed across sizes is what §III-B blames for RS's 800M drop.
RS_BITS = max(6, min(18, SMALL_N.bit_length() - 10))

#: Benchmark-local tuning, keyed by canonical registry name.
_TUNING = {"RS": {"eps": 8, "r_bits": RS_BITS}}

_LEARNED = ("learned-readonly", "learned-updatable")

LEARNED_READONLY = factories(
    figure="read", category=_LEARNED, overrides=_TUNING
)
LEARNED_UPDATABLE = factories(figure="write", category=_LEARNED)
TRADITIONAL = factories(category="traditional")
CCEH_FACTORY = factories(category="hash")
#: Beyond-the-paper indexes (LIPP, APEX, FINEdex) for ``bench_ext_*``.
EXTENSIONS = factories(category="extension")

READ_CASE = factories(figure="read", overrides=_TUNING)
WRITE_CASE = factories(figure="write")

#: Figs 12/14's concurrent-writer set: among the paper's learned indexes
#: only XIndex supports concurrent writes (Table I), compared against the
#: traditional indexes and CCEH; FINEdex joins as the second
#: retrain-blocking learned competitor from the extensions.
CONCURRENT_WRITE_CASE = {
    "XIndex": resolve("XIndex"),
    **TRADITIONAL,
    **CCEH_FACTORY,
    "FINEdex": resolve("FINEdex"),
}

#: The measurement tables ``measure_baseline`` can draw from, keyed by
#: the figure family.  Iteration order of each table is registry
#: (presentation) order — result files list indexes in this order no
#: matter which ``--jobs`` worker finished first.
BASELINE_CASES = {
    "read": READ_CASE,
    "write": CONCURRENT_WRITE_CASE,
}

#: Figure label -> the index's declared CC scheme, per figure family.
#: Resolved through the *figure labels*, not ``resolve(label)`` — the
#: read figure calls the static PGM just "PGM", which the registry would
#: resolve to the dynamic (global-locked) variant.
CASE_CONCURRENCY = {
    "read": {
        spec.label_in("read"): spec.concurrency
        for spec in registry_specs(figure="read")
    },
    "write": {
        name: resolve(name).concurrency for name in CONCURRENT_WRITE_CASE
    },
}

#: Figure label -> the registry spec behind it, per figure family — what
#: the measured-projection branches of Figs 12/14 hand to the
#: process-parallel engine (which builds from the spec *name* inside each
#: worker).  Same label convention as :data:`CASE_CONCURRENCY`.
CASE_SPECS = {
    "read": {
        spec.label_in("read"): spec for spec in registry_specs(figure="read")
    },
    "write": {name: resolve(name) for name in CONCURRENT_WRITE_CASE},
}


def case_overrides(name: str) -> dict:
    """Benchmark-local constructor overrides for one figure label."""
    return dict(_TUNING.get(name, {}))


#: Worker counts for the measured (real-process) scaling runs.  Shorter
#: than the projection's THREADS tuple on purpose: each point builds K
#: real indexes in K real processes, and past the machine's core count
#: the measurement only re-measures scheduler thrash.
MEASURED_THREADS = (1, 2, 4)


def baseline_workload(table_key: str, seed: int):
    """The ``(load_items, ops)`` the per-family baselines measure.

    Shared by :func:`measure_baseline` (in-process, simulated clock) and
    :func:`measured_scaling_curves` (real worker processes, wall clock)
    so the measured-vs-sim comparison runs the *same* operations.
    """
    from repro.workloads import READ_ONLY, WRITE_ONLY, generate_operations
    from repro.workloads.ycsb import split_load_and_inserts

    keys = dataset("ycsb", SMALL_N)
    if table_key == "read":
        load, insert_pool = list(keys), None
        ops = generate_operations(READ_ONLY, N_OPS, load, seed=seed)
    else:
        load, insert_pool = split_load_and_inserts(keys, 0.5, seed=seed)
        ops = generate_operations(
            WRITE_ONLY, len(insert_pool) - 1, load, insert_pool, seed=seed
        )
    return load, ops


def measured_scaling_curves(
    table_key: str, measured, threads=MEASURED_THREADS, seed: int = 0
) -> dict:
    """Measured wall-clock scaling per figure label: the real engine.

    For each index in ``measured`` (the :func:`measure_baselines` output)
    runs the process-parallel engine
    (:func:`repro.concurrency.parallel.measure_scaling`) over the same
    workload at each worker count.  These are wall-clock numbers on this
    machine — the ground truth the sim/analytic projections are validated
    against — so absolute values vary per host; the comparison tables
    focus on scaling shape.
    """
    from repro.concurrency.parallel import measure_scaling

    load, ops = baseline_workload(table_key, seed)
    items = [(k, k) for k in load]
    return {
        m["name"]: measure_scaling(
            CASE_SPECS[table_key][m["name"]],
            items,
            ops,
            threads,
            batch_size=2048,
            overrides=case_overrides(m["name"]),
        )
        for m in measured
    }


def comparison_rows(meas_curves, sim_curves, analytic_curves) -> list:
    """Aligned measured/sim/analytic rows, one per (index, worker count)."""
    rows = []
    for name, mrows in meas_curves.items():
        sim_by_t = {p["threads"]: p for p in sim_curves[name]}
        ana_by_t = {p["threads"]: p for p in analytic_curves[name]}
        for p in mrows:
            t = p["threads"]
            rows.append(
                {
                    "index": name,
                    "threads": t,
                    "measured_mops": p["throughput_mops"],
                    "sim_mops": sim_by_t[t]["throughput_mops"],
                    "analytic_mops": ana_by_t[t]["throughput_mops"],
                    "measured_vs_sim": (
                        p["throughput_mops"] / sim_by_t[t]["throughput_mops"]
                    ),
                    "measured_speedup": (
                        p["throughput_mops"]
                        / meas_curves[name][0]["throughput_mops"]
                    ),
                }
            )
    return rows


def comparison_table(rows, title: str) -> str:
    """Render :func:`comparison_rows` output as an aligned text table."""
    from repro.bench import format_table

    return format_table(
        [
            "index",
            "workers",
            "measured Mops/s",
            "sim Mops/s",
            "analytic Mops/s",
            "meas/sim",
            "meas speedup",
        ],
        [
            [
                r["index"],
                r["threads"],
                f"{r['measured_mops']:.3f}",
                f"{r['sim_mops']:.2f}",
                f"{r['analytic_mops']:.2f}",
                f"{r['measured_vs_sim']:.3f}",
                f"{r['measured_speedup']:.2f}x",
            ]
            for r in rows
        ],
        title=title,
    )


# ---------------------------------------------------------------- datasets

_DATASET_MAKERS = {
    "ycsb": ycsb_keys,
    "osm": osm_keys,
    "face": face_keys,
    "uniform": uniform_keys,
}


@lru_cache(maxsize=16)
def dataset(name: str, n: int, seed: int = 0) -> Tuple[int, ...]:
    """Cached key set (tuple so lru_cache can hold it safely)."""
    return tuple(_DATASET_MAKERS[name](n, seed=seed))


def loaded_store(
    factory: IndexFactory, keys, value_of=lambda k: k
) -> Tuple[ViperStore, PerfContext]:
    """A Viper store bulk-loaded with ``keys`` on a fresh perf context."""
    perf = PerfContext()
    store = ViperStore(factory(perf), perf)
    store.bulk_load([(k, value_of(k)) for k in keys])
    return store, perf


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The experiments are deterministic in simulated time, so repeated
    timing rounds would only re-measure CPython overhead.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def pool_workers(jobs: int) -> int:
    """Worker-process count for a ``--jobs`` request, capped at the
    machine's cores — oversubscribing processes only adds scheduler
    thrash to wall-clock time."""
    return max(1, min(jobs, os.cpu_count() or 1))


def pool_map(fn, items, jobs: int = 1) -> list:
    """``[fn(item) for item in items]``, fanned across ``jobs`` processes.

    The one process-pool fan-out every benchmark module shares (the Fig
    12/13/14 baselines and ``run_all`` all route through here): ``fn``
    must be a picklable top-level callable.  Results come back in
    ``items`` order regardless of which worker finished first, and with
    ``jobs == 1`` (or a single item) no pool is spawned at all — the
    degenerate case stays a plain comprehension for clean tracebacks.
    """
    from concurrent.futures import ProcessPoolExecutor

    items = list(items)
    workers = pool_workers(jobs)
    if workers > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    return [fn(item) for item in items]


def measure_baseline(case: Tuple[str, str], seed: int = 0) -> dict:
    """Single-thread profile of one index under one figure family.

    ``case`` is ``(table_key, name)`` into :data:`BASELINE_CASES` — a
    picklable top-level entry point shared by every multithread figure
    module, so ``ProcessPoolExecutor.map`` can fan the per-index
    measurements out.  Returns everything the thread-scaling projections
    need: the measured mean/p99.9/bytes-per-op profile plus the measured
    retrain cadence (``retrain_every`` writes between retrains,
    ``retrain_stall_ns`` per blocking retrain) for the simulator.
    """
    from repro.bench import run_store_ops
    from repro.perf import CostModel

    table_key, name = case
    factory = BASELINE_CASES[table_key][name]
    load, ops = baseline_workload(table_key, seed)
    store, perf = loaded_store(factory, load)
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    stats = store.index.stats()
    if stats.retrain_count:
        retrain_every = max(1, len(ops) // stats.retrain_count)
        retrain_stall_ns = (
            stats.retrain_keys / stats.retrain_count
        ) * CostModel().retrain_key_ns
    else:
        retrain_every, retrain_stall_ns = 0, 0.0
    return {
        "name": name,
        "mean_ns": recorder.mean(),
        "p999_ns": recorder.p999(),
        "bytes_per_op": bytes_per_op,
        "ops": len(ops),
        "retrain_every": retrain_every,
        "retrain_stall_ns": retrain_stall_ns,
    }


def measure_baselines(table_key: str, seed: int, jobs: int = 1) -> list:
    """Measure every index in one figure family, in registry order.

    ``--jobs`` only changes which process does the measuring; the result
    list order (and therefore every emitted curve and result file) is
    the registry presentation order.
    """
    from functools import partial

    cases = [(table_key, name) for name in BASELINE_CASES[table_key]]
    measured = pool_map(partial(measure_baseline, seed=seed), cases, jobs)
    order = {name: i for i, name in enumerate(BASELINE_CASES[table_key])}
    return sorted(measured, key=lambda m: order[m["name"]])
