"""Shared benchmark infrastructure: scales, index registry, dataset cache.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — 50K/200K keys, 20K ops: minutes of wall clock.
* ``paper``           — 200K/800K keys, 100K ops: the 1/1000-scaled
  equivalent of the paper's 200M/800M datasets.

All performance numbers are *simulated* nanoseconds from the cost model
(see DESIGN.md §2); wall-clock time only affects how long the bench takes
to run, never the reported values.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, Tuple

from repro import PerfContext, ViperStore
from repro.registry import factories
from repro.workloads import face_keys, osm_keys, uniform_keys, ycsb_keys

_SCALES = {
    "small": {"small_n": 50_000, "large_n": 200_000, "ops": 20_000},
    "paper": {"small_n": 200_000, "large_n": 800_000, "ops": 100_000},
}

SCALE_NAME = os.environ.get("REPRO_SCALE", "small")
SCALE = _SCALES.get(SCALE_NAME, _SCALES["small"])
SMALL_N = SCALE["small_n"]
LARGE_N = SCALE["large_n"]
N_OPS = SCALE["ops"]

#: Labels mirroring the paper's 200M / 800M dataset sizes.
SIZE_LABELS = {SMALL_N: "200M*", LARGE_N: "800M*"}


# ---------------------------------------------------------------- registry
#
# Every factory table is a filtered view over ``repro.registry`` — the
# single place an index is declared.  Registering an index there (with
# the right figure membership) makes it appear in every figure module.

IndexFactory = Callable[[PerfContext], object]

#: RS's prefix width is tuned once, for the small size, and then held
#: fixed — the paper's 18 bits for 200M keys, scaled to our key counts.
#: Keeping it fixed across sizes is what §III-B blames for RS's 800M drop.
RS_BITS = max(6, min(18, SMALL_N.bit_length() - 10))

#: Benchmark-local tuning, keyed by canonical registry name.
_TUNING = {"RS": {"eps": 8, "r_bits": RS_BITS}}

_LEARNED = ("learned-readonly", "learned-updatable")

LEARNED_READONLY = factories(
    figure="read", category=_LEARNED, overrides=_TUNING
)
LEARNED_UPDATABLE = factories(figure="write", category=_LEARNED)
TRADITIONAL = factories(category="traditional")
CCEH_FACTORY = factories(category="hash")
#: Beyond-the-paper indexes (LIPP, APEX, FINEdex) for ``bench_ext_*``.
EXTENSIONS = factories(category="extension")

READ_CASE = factories(figure="read", overrides=_TUNING)
WRITE_CASE = factories(figure="write")


# ---------------------------------------------------------------- datasets

_DATASET_MAKERS = {
    "ycsb": ycsb_keys,
    "osm": osm_keys,
    "face": face_keys,
    "uniform": uniform_keys,
}


@lru_cache(maxsize=16)
def dataset(name: str, n: int, seed: int = 0) -> Tuple[int, ...]:
    """Cached key set (tuple so lru_cache can hold it safely)."""
    return tuple(_DATASET_MAKERS[name](n, seed=seed))


def loaded_store(
    factory: IndexFactory, keys, value_of=lambda k: k
) -> Tuple[ViperStore, PerfContext]:
    """A Viper store bulk-loaded with ``keys`` on a fresh perf context."""
    perf = PerfContext()
    store = ViperStore(factory(perf), perf)
    store.bulk_load([(k, value_of(k)) for k in keys])
    return store, perf


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The experiments are deterministic in simulated time, so repeated
    timing rounds would only re-measure CPython overhead.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
