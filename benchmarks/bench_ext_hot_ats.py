"""Extension — hot-aware asymmetric tree (the paper's §V-B1 direction).

"The asymmetric tree structure can support the hot data to be placed
closer to the root node, which can shorten the total number of queries
and improve query performance, which is also our future research
direction."  This bench builds the same fence set twice — once with the
plain ATS rule, once weighting model errors by a zipfian access
distribution — and replays zipfian lookups against both.
"""

from _common import SMALL_N, dataset, run_once
from repro.bench import format_table, write_result
from repro.core.structures import ATSStructure, HotATSStructure
from repro.perf import PerfContext
from repro.workloads.distributions import ZipfianGenerator

N_FENCES = 20_000
N_TRAIN = 200_000
N_PROBES = 20_000


def run_hot_ats():
    keys = list(dataset("osm", SMALL_N))
    step = max(1, len(keys) // N_FENCES)
    fences = keys[::step]

    zipf = ZipfianGenerator(len(fences), seed=36)
    weights = [0.0] * len(fences)
    for _ in range(N_TRAIN):
        weights[zipf.next() % len(fences)] += 1.0

    probe_zipf = ZipfianGenerator(len(fences), seed=37)
    probes = [fences[probe_zipf.next() % len(fences)] for _ in range(N_PROBES)]

    rows = []
    costs = {}
    for label, structure, builder in (
        (
            "ATS (plain)",
            ATSStructure(max_node_fences=16, error_threshold=4,
                         perf=PerfContext()),
            lambda s: s.build(fences),
        ),
        (
            "ATS (hot-aware)",
            HotATSStructure(max_node_fences=16, error_threshold=4,
                            perf=PerfContext()),
            lambda s: s.build_weighted(fences, weights),
        ),
    ):
        builder(structure)
        perf = structure.perf
        mark = perf.begin()
        for key in probes:
            structure.lookup(key)
        cost = perf.end(mark).time_ns / len(probes)
        costs[label] = cost
        rows.append(
            [
                label,
                f"{cost:.0f}",
                f"{structure.avg_depth():.2f}",
                structure.max_depth(),
            ]
        )
    table = format_table(
        ["structure", "zipf lookup (sim ns)", "avg depth", "max depth"],
        rows,
        title="Extension — hot-aware ATS under zipfian access",
    )
    return table, costs


def test_ext_hot_ats(benchmark):
    table, costs = run_once(benchmark, run_hot_ats)
    write_result("ext_hot_ats", table)
    assert costs["ATS (hot-aware)"] < costs["ATS (plain)"]


if __name__ == "__main__":
    table, _ = run_hot_ats()
    write_result("ext_hot_ats", table)
