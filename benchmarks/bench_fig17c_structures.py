"""Fig 17(c) — internal structures: leaf count vs. root-to-leaf query time.

Paper shape: ATS has the minimum query time at every leaf count (variable
depth — hot paths are short); LRS ~ BTREE at few leaves but clearly
faster at many leaves (calculation beats comparison); fewer leaves is
cheaper for every structure.
"""

import random

from _common import SMALL_N, dataset, run_once
from repro.bench import format_table, write_result
from repro.core.structures import (
    ATSStructure,
    BTreeStructure,
    LRSStructure,
    RMIStructure,
)
from repro.perf import PerfContext

LEAF_COUNTS = (500, 2_000, 10_000, 40_000)
N_PROBES = 3000

STRUCTURES = [
    ("RMI", lambda perf: RMIStructure(branching=1024, perf=perf)),
    ("ATS", lambda perf: ATSStructure(max_node_fences=32, perf=perf)),
    ("BTREE", lambda perf: BTreeStructure(fanout=16, perf=perf)),
    ("LRS", lambda perf: LRSStructure(eps=4, perf=perf)),
]


def run_fig17c():
    keys = list(dataset("ycsb", SMALL_N))
    rng = random.Random(18)
    probes = rng.sample(keys, N_PROBES)
    rows = []
    series = {}
    for name, make in STRUCTURES:
        points = []
        for leaves in LEAF_COUNTS:
            step = max(1, len(keys) // leaves)
            fences = keys[::step][:leaves]
            perf = PerfContext()
            structure = make(perf)
            structure.build(fences)
            mark = perf.begin()
            for key in probes:
                structure.lookup(key)
            cost = perf.end(mark).time_ns / len(probes)
            points.append((len(fences), cost))
            rows.append([name, len(fences), f"{cost:.0f}"])
        series[name] = points
    table = format_table(
        ["structure", "leaves", "lookup (sim ns)"],
        rows,
        title="Fig 17(c) — internal structure query time vs leaf count",
    )
    return table, series


def test_fig17c(benchmark):
    table, series = run_once(benchmark, run_fig17c)
    write_result("fig17c_structures", table)
    # ATS is the cheapest structure at every leaf count.
    for i in range(len(LEAF_COUNTS)):
        ats = series["ATS"][i][1]
        for other in ("RMI", "BTREE", "LRS"):
            assert ats <= series[other][i][1] * 1.05, (
                f"ATS not fastest at {LEAF_COUNTS[i]} leaves vs {other}"
            )
    # LRS beats BTREE when there are many leaves.
    assert series["LRS"][-1][1] < series["BTREE"][-1][1]
    # Every structure is slower with more leaves.
    for name, points in series.items():
        assert points[0][1] < points[-1][1], f"{name} not monotonic"


if __name__ == "__main__":
    table, _ = run_fig17c()
    write_result("fig17c_structures", table)
