"""Extension — APEX: what changes when the index itself lives in PM?

The paper's evaluation keeps every index in DRAM (Viper's architecture)
and measures recovery as a full rebuild from an NVM scan (Fig 16).  APEX
— cited as [6] but not evaluated — inverts the design: data nodes are
persistent, so recovery only rebuilds DRAM fingerprints.  This bench
quantifies the trade on our simulated hardware: reads pay Optane latency
on the data-node probe; recovery collapses from a per-key rebuild to a
metadata pass.
"""

import random

from _common import N_OPS, SMALL_N, dataset, run_once
from repro import ALEXIndex, APEXIndex, PerfContext
from repro.bench import format_table, write_result
from repro.registry import resolve
from repro.workloads.ycsb import split_load_and_inserts


def run_apex():
    keys = dataset("ycsb", SMALL_N)
    load, inserts = split_load_and_inserts(keys, 0.5, seed=41)
    rng = random.Random(41)
    probes = rng.sample(load, min(N_OPS, len(load)))

    rows = []
    results = {}
    for name, factory in (
        ("ALEX (DRAM index)", resolve("alex")),
        ("APEX (PM index)", resolve("apex")),
    ):
        perf = PerfContext()
        index = factory(perf)
        index.bulk_load([(k, k) for k in load])

        mark = perf.begin()
        for k in probes:
            index.get(k)
        read_ns = perf.end(mark).time_ns / len(probes)

        mark = perf.begin()
        for k in inserts:
            index.insert(k, k)
        insert_ns = perf.end(mark).time_ns / len(inserts)

        # Recovery: APEX rebuilds metadata only; ALEX must be rebuilt
        # from scratch (as in Fig 16, minus the NVM record scan both
        # would share).
        if isinstance(index, APEXIndex):
            recover_ns = index.recover_metadata()
        else:
            mark = perf.begin()
            fresh = ALEXIndex(perf=perf)
            fresh.bulk_load(sorted(index.range(0, 2**64)))
            recover_ns = perf.end(mark).time_ns

        results[name] = {
            "read_ns": read_ns,
            "insert_ns": insert_ns,
            "recover_ns": recover_ns,
        }
        rows.append(
            [
                name,
                f"{read_ns:.0f}",
                f"{insert_ns:.0f}",
                f"{recover_ns / 1e6:.3f}",
            ]
        )
    table = format_table(
        ["index", "read (sim ns)", "insert (sim ns)", "recovery (sim ms)"],
        rows,
        title="Extension — DRAM-resident ALEX vs PM-resident APEX",
    )
    return table, results


def test_ext_apex(benchmark):
    table, results = run_once(benchmark, run_apex)
    write_result("ext_apex", table)
    alex = results["ALEX (DRAM index)"]
    apex = results["APEX (PM index)"]
    # The trade-off, both directions:
    assert apex["read_ns"] > alex["read_ns"]  # PM on the hot path costs
    assert apex["recover_ns"] < alex["recover_ns"] / 10  # ...but recovery
    # APEX stays a practical index (reads within ~3x of DRAM ALEX).
    assert apex["read_ns"] < alex["read_ns"] * 3


if __name__ == "__main__":
    table, _ = run_apex()
    write_result("ext_apex", table)
