"""Table I — technology comparison of learned indexes.

Regenerated directly from each implementation's ``capabilities()``, so the
matrix can never drift from the code.
"""

from _common import run_once
from repro import (
    ALEXIndex,
    DynamicPGMIndex,
    FITingTree,
    RMIIndex,
    RadixSplineIndex,
    XIndexIndex,
)
from repro.bench import format_table, write_result

ROW_ORDER = [
    ("RMI", RMIIndex),
    ("RS", RadixSplineIndex),
    ("FITing-tree", FITingTree),
    ("PGM-Index", DynamicPGMIndex),
    ("ALEX", ALEXIndex),
    ("XIndex", XIndexIndex),
]


def run_table1():
    rows = []
    caps = {}
    for name, cls in ROW_ORDER:
        c = cls.capabilities()
        caps[name] = c
        rows.append(
            [
                name,
                c.inner_node,
                c.leaf_node,
                "Maximum" if c.bounded_error else "Unfixed",
                c.approximation,
                c.insertion,
                c.retraining,
                "yes" if c.concurrent_write else "no",
            ]
        )
    table = format_table(
        [
            "index",
            "inner node",
            "leaf node",
            "error",
            "approximation",
            "insertion",
            "retraining",
            "conc. write",
        ],
        rows,
        title="Table I — technology comparison of learned indexes",
    )
    return table, caps


def test_table1(benchmark):
    table, caps = run_once(benchmark, run_table1)
    write_result("table1_capabilities", table)
    # The paper's Table I facts.
    assert not caps["RMI"].updatable and not caps["RS"].updatable
    assert caps["FITing-tree"].bounded_error
    assert caps["PGM-Index"].bounded_error
    assert not caps["ALEX"].bounded_error
    assert not caps["XIndex"].bounded_error
    only_concurrent = [n for n, c in caps.items() if c.concurrent_write]
    assert only_concurrent == ["XIndex"]


if __name__ == "__main__":
    table, _ = run_table1()
    write_result("table1_capabilities", table)
