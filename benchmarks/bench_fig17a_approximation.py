"""Fig 17(a) — approximation algorithms: average error vs. leaf query time.

Paper shape: "the lower the error, the higher the query performance, only
for the leaf node inside" — leaf query time grows with the model's average
error for every algorithm, and LSA-gap sits at the far low-error end.
"""

import random

from _common import SMALL_N, dataset, run_once
from repro.bench import format_table, write_result
from repro.core.approximation import (
    LSAApproximator,
    LSAGapApproximator,
    OptPLAApproximator,
)
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion.base import rank_search
from repro.core.insertion.gapped import GappedLeaf
from repro.perf import Event, PerfContext

CONFIGS = [
    ("LSA", lambda p: LSAApproximator(segment_size=p), (128, 512, 2048, 8192)),
    ("Opt-PLA", lambda p: OptPLAApproximator(eps=p), (4, 16, 64, 256)),
    (
        "LSA-gap",
        lambda p: LSAGapApproximator(segment_size=p, density=0.7),
        (128, 512, 2048, 8192),
    ),
]

N_PROBES = 3000


def leaf_query_cost_ns(approx, keys, probes, perf):
    """Average simulated cost of locating a key *within* its leaf."""
    gapped_leaves = {
        id(seg): GappedLeaf(seg, [None] * seg.n, perf)
        for seg in approx.segments
        if isinstance(seg, GappedSegment)
    }
    mark_all = perf.begin()
    for key in probes:
        seg = approx.segment_for(key)
        perf.charge(Event.DRAM_HOP)  # reach the leaf
        perf.charge(Event.MODEL_EVAL)
        if isinstance(seg, GappedSegment):
            gapped_leaves[id(seg)]._rank_slot(key)
        else:
            guess = seg.start + seg.predict(key)
            rank_search(keys, 0, len(keys) - 1, key, guess, perf)
    return perf.end(mark_all).time_ns / len(probes)


def run_fig17a():
    keys = list(dataset("ycsb", SMALL_N))
    rng = random.Random(17)
    probes = rng.sample(keys, N_PROBES)
    rows = []
    series = {}
    for name, make, params in CONFIGS:
        points = []
        for param in params:
            perf = PerfContext()
            approx = make(param).fit(keys)
            cost = leaf_query_cost_ns(approx, keys, probes, perf)
            points.append((approx.avg_error, cost, approx.leaf_count))
            rows.append(
                [
                    name,
                    param,
                    f"{approx.avg_error:.2f}",
                    f"{cost:.0f}",
                    approx.leaf_count,
                ]
            )
        series[name] = points
    table = format_table(
        ["algorithm", "param", "avg error", "leaf query (sim ns)", "leaves"],
        rows,
        title="Fig 17(a) — approximation algorithms: error vs leaf query time",
    )
    return table, series


def test_fig17a(benchmark):
    table, series = run_once(benchmark, run_fig17a)
    write_result("fig17a_approximation", table)
    # Within each algorithm, lower error => faster leaf query.
    for name, points in series.items():
        by_err = sorted(points)
        costs = [c for _, c, _ in by_err]
        assert costs[0] < costs[-1], f"{name}: cost not increasing with error"
    # LSA-gap achieves far lower error than plain LSA at equal leaf
    # counts — dramatically so once LSA's error is non-trivial.
    lsa = {leaves: err for err, _, leaves in series["LSA"]}
    gap = {leaves: err for err, _, leaves in series["LSA-gap"]}
    for leaves in set(lsa) & set(gap):
        if lsa[leaves] >= 4.0:
            assert gap[leaves] < lsa[leaves] / 3
        else:
            assert gap[leaves] <= lsa[leaves]


if __name__ == "__main__":
    table, _ = run_fig17a()
    write_result("fig17a_approximation", table)
