"""Appendix — range-query performance of the sorted indexes.

The paper: "We evaluated the performance of a range query for learned
indexes and included the results in the appendix."  Each operation is a
YCSB-E style scan: position at a random key, read the next 50 records
through the store.  Expected shape: scan cost = positioning cost (where
the indexes differ) + sequential record reads (where they do not), so the
read-only ranking compresses but survives; CCEH cannot serve scans.

Every index is measured twice — the scalar ``scan`` loop and the
vectorized ``scan_many`` batch path — and the two must agree exactly in
results *and* simulated time (the batch path's contract); the table adds
the batch path's wall-clock speedup.  ``--jobs N`` fans the per-index
measurements across worker processes via the shared ``pool_map`` (output
order stays registry order).
"""

import argparse
import random
import time

from _common import (
    READ_CASE,
    SMALL_N,
    dataset,
    loaded_store,
    pool_map,
    run_once,
)
from repro.bench import format_table, write_result
from repro.errors import UnsupportedOperationError

SCAN_LENGTH = 50
N_SCANS = 3000
BATCH = 512


def _scan_workload():
    keys = dataset("ycsb", SMALL_N)
    rng = random.Random(35)
    return keys, rng.sample(keys, N_SCANS)


def measure_range_case(name: str) -> dict:
    """Scalar + batched scan profile of one read-figure index.

    A picklable top-level entry point so ``pool_map`` can fan the
    per-index measurements out across ``--jobs`` processes.
    """
    keys, starts = _scan_workload()
    store, perf = loaded_store(READ_CASE[name], keys)
    try:
        mark = perf.begin()
        wall0 = time.perf_counter()
        scalar = [store.scan(start, SCAN_LENGTH) for start in starts]
        scalar_wall = time.perf_counter() - wall0
        scalar_sim = perf.end(mark)

        mark = perf.begin()
        wall0 = time.perf_counter()
        batched = []
        for lo in range(0, len(starts), BATCH):
            batched.extend(
                store.scan_many(starts[lo : lo + BATCH], SCAN_LENGTH)
            )
        batched_wall = time.perf_counter() - wall0
        batched_sim = perf.end(mark)
    except UnsupportedOperationError:
        return {"name": name, "supported": False}
    assert batched == scalar, f"{name}: scan_many diverges from scan"
    assert batched_sim.time_ns == scalar_sim.time_ns, (
        f"{name}: scan_many simulated time {batched_sim.time_ns} != "
        f"scalar {scalar_sim.time_ns}"
    )
    return {
        "name": name,
        "supported": True,
        "per_scan_ns": scalar_sim.time_ns / N_SCANS,
        "wall_speedup": scalar_wall / max(batched_wall, 1e-9),
    }


def run_range(jobs: int = 1):
    measured = pool_map(measure_range_case, list(READ_CASE), jobs)
    rows = []
    results = {}
    for m in measured:
        if not m["supported"]:
            rows.append([m["name"], "-", "-", "unsupported"])
            continue
        results[m["name"]] = m["per_scan_ns"]
        rows.append(
            [
                m["name"],
                f"{m['per_scan_ns'] / 1000:.2f}",
                f"{m['wall_speedup']:.1f}x",
                "ok",
            ]
        )
    table = format_table(
        [
            "index",
            f"scan of {SCAN_LENGTH} (sim us)",
            "scan_many wall speedup",
            "status",
        ],
        rows,
        title="Appendix — range scans through the store (scalar vs batched)",
    )
    return table, results


def test_appendix_range(benchmark):
    table, results = run_once(benchmark, run_range)
    write_result("appendix_range", table)
    # Hash indexes cannot scan; every sorted index can.
    assert "CCEH" not in results
    assert len(results) == len(READ_CASE) - 1
    # Learned indexes still lead, but by less than on point reads:
    # the 50 sequential record reads dominate.
    assert results["ALEX"] < results["BTree"]
    spread = max(results.values()) / min(results.values())
    assert spread < 4.0, "scan costs should compress toward the NVM floor"


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="measure indexes in up to N parallel worker processes",
    )
    args = parser.parse_args()
    table, _ = run_range(jobs=args.jobs)
    write_result("appendix_range", table)
