"""Appendix — range-query performance of the sorted indexes.

The paper: "We evaluated the performance of a range query for learned
indexes and included the results in the appendix."  Each operation is a
YCSB-E style scan: position at a random key, read the next 50 records
through the store.  Expected shape: scan cost = positioning cost (where
the indexes differ) + sequential record reads (where they do not), so the
read-only ranking compresses but survives; CCEH cannot serve scans.
"""

import random

from _common import SMALL_N, READ_CASE, dataset, loaded_store, run_once
from repro.bench import format_table, write_result
from repro.errors import UnsupportedOperationError

SCAN_LENGTH = 50
N_SCANS = 3000


def run_range():
    keys = dataset("ycsb", SMALL_N)
    rng = random.Random(35)
    starts = rng.sample(keys, N_SCANS)
    rows = []
    results = {}
    for name, factory in READ_CASE.items():
        store, perf = loaded_store(factory, keys)
        try:
            mark = perf.begin()
            for start in starts:
                store.scan(start, SCAN_LENGTH)
            measured = perf.end(mark)
        except UnsupportedOperationError:
            rows.append([name, "-", "unsupported"])
            continue
        per_scan = measured.time_ns / N_SCANS
        results[name] = per_scan
        rows.append([name, f"{per_scan / 1000:.2f}", "ok"])
    table = format_table(
        ["index", f"scan of {SCAN_LENGTH} (sim us)", "status"],
        rows,
        title="Appendix — range scans through the store",
    )
    return table, results


def test_appendix_range(benchmark):
    table, results = run_once(benchmark, run_range)
    write_result("appendix_range", table)
    # Hash indexes cannot scan; every sorted index can.
    assert "CCEH" not in results
    assert len(results) == len(READ_CASE) - 1
    # Learned indexes still lead, but by less than on point reads:
    # the 50 sequential record reads dominate.
    assert results["ALEX"] < results["BTree"]
    spread = max(results.values()) / min(results.values())
    assert spread < 4.0, "scan costs should compress toward the NVM floor"


if __name__ == "__main__":
    table, _ = run_range()
    write_result("appendix_range", table)
