"""Table II — average depth of the learned indexes (YCSB and OSM).

Paper values at 200M: RMI 2, FITing 3, PGM 3, ALEX 1.03, XIndex 2 on
YCSB; deeper on OSM (ALEX 1.89, PGM 6).  At our 1/1000 scale absolute
depths are about one level lower; the *ordering* — ALEX shallowest,
everything deeper on OSM — is the reproduced property.
"""

from _common import LEARNED_READONLY, SMALL_N, dataset, run_once
from repro.bench import format_table, write_result
from repro.perf import PerfContext


def run_table2():
    rows = []
    depths = {}
    for ds in ("ycsb", "osm"):
        keys = dataset(ds, SMALL_N)
        items = [(k, k) for k in keys]
        for name, factory in LEARNED_READONLY.items():
            index = factory(PerfContext())
            index.bulk_load(items)
            stats = index.stats()
            depths[(ds, name)] = stats.depth_avg
            rows.append(
                [ds, name, f"{stats.depth_avg:.2f}", stats.leaf_count]
            )
    table = format_table(
        ["dataset", "index", "avg depth", "leaves"],
        rows,
        title=f"Table II — average learned-index depth ({SMALL_N} keys)",
    )
    return table, depths


def test_table2(benchmark):
    table, depths = run_once(benchmark, run_table2)
    write_result("table2_depth", table)
    # ALEX is the shallowest learned index on YCSB (paper: 1.03 vs 2-3).
    for other in ("RMI", "FITing-tree", "PGM", "XIndex"):
        assert depths[("ycsb", "ALEX")] <= depths[("ycsb", other)]
    # OSM's complex CDF never *reduces* depth, and deepens PGM (paper:
    # PGM 3 -> 6 on OSM).
    for name in LEARNED_READONLY:
        assert depths[("osm", name)] >= depths[("ycsb", name)] - 1e-9
    assert depths[("osm", "PGM")] >= depths[("ycsb", "PGM")]


if __name__ == "__main__":
    table, _ = run_table2()
    write_result("table2_depth", table)
