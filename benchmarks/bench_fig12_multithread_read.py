"""Fig 12 — multi-threaded read-only scaling (throughput + p99.9).

Paper shape: CCEH achieves the highest aggregate throughput; ALEX's curve
flattens early — "ALEX has already saturated the memory bandwidth with 24
threads in one socket" — and the tails of the comparison-heavy indexes
inflate as threads contend.

Method: single-thread simulated cost + measured bytes/op per index are
projected through the shared-bandwidth model (DESIGN.md §2).  Two
projections are reported per thread count: process-based scaling (the
paper's real-hardware setting, contended only by memory bandwidth) and
GIL-bound thread scaling (what Python ``threading`` would actually
deliver — flat), so the table itself documents why the wall-clock harness
fans out with processes.  ``--jobs N`` measures the per-index
single-thread baselines in parallel worker processes.
"""

import argparse
from concurrent.futures import ProcessPoolExecutor

from _common import N_OPS, READ_CASE, SMALL_N, dataset, loaded_store, run_once
from repro.bench import format_table, run_store_ops, thread_scaling, write_result
from repro.workloads import READ_ONLY, generate_operations

THREADS = (1, 2, 4, 8, 16, 24, 32)


def _measure_read(name):
    """Single-thread baseline for one index; top-level so it pickles."""
    keys = dataset("ycsb", SMALL_N)
    ops = generate_operations(READ_ONLY, N_OPS, keys, seed=12)
    store, perf = loaded_store(READ_CASE[name], keys)
    recorder, bytes_per_op = run_store_ops(store, ops, perf)
    return name, recorder.mean(), recorder.p999(), bytes_per_op


def run_multithread_read(jobs: int = 1):
    names = list(READ_CASE)
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            measured = list(pool.map(_measure_read, names))
    else:
        measured = [_measure_read(name) for name in names]
    rows = []
    curves = {}
    for name, mean_ns, p999_ns, bytes_per_op in measured:
        scaling = thread_scaling(mean_ns, p999_ns, bytes_per_op, THREADS)
        curves[name] = scaling
        for point in scaling:
            rows.append(
                [
                    name,
                    point["threads"],
                    f"{point['throughput_mops']:.2f}",
                    f"{point['gil_thread_mops']:.2f}",
                    f"{point['p999_ns'] / 1000:.2f}",
                    f"{point['slowdown']:.2f}",
                ]
            )
    table = format_table(
        ["index", "threads", "Mops/s (proc)", "Mops/s (GIL thr)",
         "p99.9 (us)", "bw slowdown"],
        rows,
        title="Fig 12 — multi-threaded read-only (bandwidth-model projection; "
        "'proc' = one interpreter per core, 'GIL thr' = Python threads "
        "serialised by the GIL)",
    )
    return table, curves


def test_fig12_multithread_read(benchmark):
    table, curves = run_once(benchmark, run_multithread_read)
    write_result("fig12_multithread_read", table)
    # CCEH is the aggregate-throughput ceiling at full thread count.
    at32 = {n: c[-1]["throughput_mops"] for n, c in curves.items()}
    assert at32["CCEH"] == max(at32.values())
    # ALEX saturates the memory bandwidth around 24 threads (the paper's
    # profiling result): adding threads past that gains almost nothing.
    alex = {p["threads"]: p["throughput_mops"] for p in curves["ALEX"]}
    assert alex[32] < alex[24] * 1.1
    assert curves["ALEX"][-1]["slowdown"] > 1.0
    # GIL-bound threads never scale: the projection is flat, and from 2
    # threads up the process projection dominates it for every index.
    for scaling in curves.values():
        gil = [p["gil_thread_mops"] for p in scaling]
        assert max(gil) <= gil[0]
        for point in scaling[1:]:
            assert point["throughput_mops"] >= point["gil_thread_mops"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-index baseline measurements",
    )
    args = parser.parse_args()
    table, _ = run_multithread_read(jobs=args.jobs)
    write_result("fig12_multithread_read", table)
