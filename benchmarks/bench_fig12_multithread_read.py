"""Fig 12 — multi-threaded read-only scaling (throughput + p99.9).

Paper shape: CCEH achieves the highest aggregate throughput; ALEX's curve
flattens early — "ALEX has already saturated the memory bandwidth with 24
threads in one socket" — and the tails of the comparison-heavy indexes
inflate as threads contend.

Method: single-thread simulated cost + measured bytes/op per index
(``measure_baseline``), projected onto N threads two ways:

* ``--projection sim`` (default) — the discrete-event concurrency
  simulator (``repro.concurrency.sim``): per-thread op streams scheduled
  on the simulated clock, charging each index's declared CC scheme
  (latch waits, rwlock cacheline bounces, optimistic retries) on top of
  the shared-bandwidth pool.
* ``--projection analytic`` — the closed-form bandwidth curve, the
  pre-simulator numbers kept as a fallback and sanity baseline.

Both report the GIL-bound thread projection next to the process-based
one, so the table documents why the wall-clock harness fans out with
processes.  ``--jobs N`` measures the per-index single-thread baselines
in parallel worker processes (output order stays registry order).
"""

import argparse

from _common import (
    CASE_CONCURRENCY,
    MEASURED_THREADS,
    comparison_rows,
    comparison_table,
    measure_baselines,
    measured_scaling_curves,
    run_once,
)
from repro.bench import format_table, thread_scaling, write_result

THREADS = (1, 2, 4, 8, 16, 24, 32)
SEED = 12


def project_read_curves(measured, projection: str):
    """Thread-scaling curves per index from measured baselines."""
    return {
        m["name"]: thread_scaling(
            m["mean_ns"],
            m["p999_ns"],
            m["bytes_per_op"],
            THREADS,
            projection=projection,
            concurrency=CASE_CONCURRENCY["read"][m["name"]],
            write_fraction=0.0,
            seed=SEED,
        )
        for m in measured
    }


def _render(curves, projection: str):
    rows = []
    for name, scaling in curves.items():
        for point in scaling:
            row = [
                name,
                point["threads"],
                f"{point['throughput_mops']:.2f}",
                f"{point['gil_thread_mops']:.2f}",
                f"{point['p999_ns'] / 1000:.2f}",
            ]
            if projection == "sim":
                row.append(f"{100 * point['latch_wait_share']:.1f}%")
            else:
                row.append(f"{point['slowdown']:.2f}")
            rows.append(row)
    last = "latch wait" if projection == "sim" else "bw slowdown"
    title = (
        "Fig 12 — multi-threaded read-only ("
        + (
            "discrete-event concurrency simulation"
            if projection == "sim"
            else "bandwidth-model projection"
        )
        + "; 'proc' = one interpreter per core, 'GIL thr' = Python "
        "threads serialised by the GIL)"
    )
    return format_table(
        ["index", "threads", "Mops/s (proc)", "Mops/s (GIL thr)",
         "p99.9 (us)", last],
        rows,
        title=title,
    )


def run_multithread_read(jobs: int = 1, projection: str = "sim"):
    measured = measure_baselines("read", SEED, jobs=jobs)
    if projection == "measured":
        # Real worker processes, wall clock — then the sim and analytic
        # projections at the same worker counts, row-aligned, so the
        # table reads as one validation: does the projected scaling
        # shape match what the machine actually does?
        meas = measured_scaling_curves("read", measured, seed=SEED)
        rows = comparison_rows(
            meas,
            project_read_curves(measured, "sim"),
            project_read_curves(measured, "analytic"),
        )
        table = comparison_table(
            rows,
            "Fig 12 — measured vs sim vs analytic read scaling "
            f"(measured = real processes at {MEASURED_THREADS} workers, "
            "wall-clock on this host)",
        )
        return table, {"measured": meas, "comparison": rows}
    curves = project_read_curves(measured, projection)
    return _render(curves, projection), curves


def test_fig12_multithread_read(benchmark):
    measured = run_once(benchmark, lambda: measure_baselines("read", SEED))
    sim = project_read_curves(measured, "sim")
    analytic = project_read_curves(measured, "analytic")
    write_result(
        "fig12_multithread_read",
        _render(sim, "sim"),
        data={"threads": list(THREADS), "curves": sim},
    )

    # --- simulator projection: the paper's qualitative shape ----------
    # CCEH is the aggregate-throughput ceiling at full thread count.
    at32 = {n: c[-1]["throughput_mops"] for n, c in sim.items()}
    assert at32["CCEH"] == max(at32.values())
    # ALEX saturates around 24 threads (the paper's profiling result,
    # compounded here by its global rwlock's cacheline bounce): adding
    # threads past that gains almost nothing.
    alex = {p["threads"]: p["throughput_mops"] for p in sim["ALEX"]}
    assert alex[32] < alex[24] * 1.1
    # The global-lock indexes flatten while fine-grained/lock-free ones
    # keep scaling: ALEX's 32-thread speedup trails CCEH's.
    speedup = {
        n: c[-1]["throughput_mops"] / c[0]["throughput_mops"]
        for n, c in sim.items()
    }
    assert speedup["ALEX"] < speedup["CCEH"]

    # --- analytic fallback: pre-simulator behaviour, unchanged --------
    at32a = {n: c[-1]["throughput_mops"] for n, c in analytic.items()}
    assert at32a["CCEH"] == max(at32a.values())
    alexa = {p["threads"]: p["throughput_mops"] for p in analytic["ALEX"]}
    assert alexa[32] < alexa[24] * 1.1
    assert analytic["ALEX"][-1]["slowdown"] > 1.0

    # GIL-bound threads never scale: the projection is flat, and from 2
    # threads up the process projection dominates it for every index.
    for curves in (sim, analytic):
        for scaling in curves.values():
            gil = [p["gil_thread_mops"] for p in scaling]
            assert max(gil) <= gil[0]
            for point in scaling[1:]:
                assert point["throughput_mops"] >= point["gil_thread_mops"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-index baseline measurements",
    )
    parser.add_argument(
        "--projection", choices=("sim", "analytic", "measured"),
        default="sim",
        help="concurrency simulator (sim), closed-form bandwidth curve "
        "(analytic), or real worker processes with a side-by-side "
        "sim/analytic comparison (measured)",
    )
    args = parser.parse_args()
    table, curves = run_multithread_read(
        jobs=args.jobs, projection=args.projection
    )
    write_result(
        "fig12_multithread_read",
        table,
        data={"threads": list(THREADS), "curves": curves},
    )
