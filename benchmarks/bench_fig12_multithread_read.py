"""Fig 12 — multi-threaded read-only scaling (throughput + p99.9).

Paper shape: CCEH achieves the highest aggregate throughput; ALEX's curve
flattens early — "ALEX has already saturated the memory bandwidth with 24
threads in one socket" — and the tails of the comparison-heavy indexes
inflate as threads contend.

Method: single-thread simulated cost + measured bytes/op per index are
projected through the shared-bandwidth model (DESIGN.md §2).
"""

from _common import N_OPS, READ_CASE, SMALL_N, dataset, loaded_store, run_once
from repro.bench import format_table, run_store_ops, thread_scaling, write_result
from repro.workloads import READ_ONLY, generate_operations

THREADS = (1, 2, 4, 8, 16, 24, 32)


def run_multithread_read():
    keys = dataset("ycsb", SMALL_N)
    ops = generate_operations(READ_ONLY, N_OPS, keys, seed=12)
    rows = []
    curves = {}
    for name, factory in READ_CASE.items():
        store, perf = loaded_store(factory, keys)
        recorder, bytes_per_op = run_store_ops(store, ops, perf)
        scaling = thread_scaling(
            recorder.mean(), recorder.p999(), bytes_per_op, THREADS
        )
        curves[name] = scaling
        for point in scaling:
            rows.append(
                [
                    name,
                    point["threads"],
                    f"{point['throughput_mops']:.2f}",
                    f"{point['p999_ns'] / 1000:.2f}",
                    f"{point['slowdown']:.2f}",
                ]
            )
    table = format_table(
        ["index", "threads", "Mops/s", "p99.9 (us)", "bw slowdown"],
        rows,
        title="Fig 12 — multi-threaded read-only (bandwidth-model projection)",
    )
    return table, curves


def test_fig12_multithread_read(benchmark):
    table, curves = run_once(benchmark, run_multithread_read)
    write_result("fig12_multithread_read", table)
    # CCEH is the aggregate-throughput ceiling at full thread count.
    at32 = {n: c[-1]["throughput_mops"] for n, c in curves.items()}
    assert at32["CCEH"] == max(at32.values())
    # ALEX saturates the memory bandwidth around 24 threads (the paper's
    # profiling result): adding threads past that gains almost nothing.
    alex = {p["threads"]: p["throughput_mops"] for p in curves["ALEX"]}
    assert alex[32] < alex[24] * 1.1
    assert curves["ALEX"][-1]["slowdown"] > 1.0


if __name__ == "__main__":
    table, _ = run_multithread_read()
    write_result("fig12_multithread_read", table)
