"""Fig 16 — index build/recovery time after a crash (two sizes).

Recovery = scan every NVM record + rebuild the DRAM index.  Paper shape:
Stx-BTree and Wormhole recover fastest; RS is the fastest *learned* index
("it only needs Single-Pass to recover"); PGM is moderate; ALEX and
XIndex are the slowest (gap redistribution / group construction), and the
spread widens with the dataset.
"""

from _common import (
    LARGE_N,
    READ_CASE,
    SIZE_LABELS,
    SMALL_N,
    dataset,
    run_once,
)
from repro import BPlusTree, PerfContext, ViperStore
from repro.bench import format_table, write_result


def run_recovery():
    rows = []
    times = {}
    for n in (SMALL_N, LARGE_N):
        keys = dataset("ycsb", n)
        items = [(k, k) for k in keys]
        for name, factory in READ_CASE.items():
            # Stage the records once with a cheap index, then crash and
            # measure recovery with the index under test.
            perf = PerfContext()
            store = ViperStore(BPlusTree(perf=perf), perf)
            store.bulk_load(items)
            store.crash()
            elapsed_ns = store.recover(lambda: factory(perf))
            times[(n, name)] = elapsed_ns
            rows.append(
                [
                    SIZE_LABELS[n],
                    name,
                    f"{elapsed_ns / 1e6:.2f}",
                ]
            )
    table = format_table(
        ["size", "index", "recovery (sim ms)"],
        rows,
        title="Fig 16 — crash recovery: NVM scan + index rebuild",
    )
    return table, times


def test_fig16_recovery(benchmark):
    table, times = run_once(benchmark, run_recovery)
    write_result("fig16_recovery", table)
    large = {name: t for (n, name), t in times.items() if n == LARGE_N}
    # RS recovers fastest among the learned indexes.
    for other in ("RMI", "PGM", "ALEX", "XIndex", "FITing-tree"):
        assert large["RS"] < large[other]
    # ALEX and XIndex are the slowest learned indexes.
    for fast in ("RS", "PGM", "FITing-tree"):
        assert large["ALEX"] > large[fast]
        assert large["XIndex"] > large[fast]
    # Traditional BTree beats every learned index.
    for learned in ("RMI", "RS", "PGM", "ALEX", "XIndex", "FITing-tree"):
        assert large["BTree"] < large[learned]


if __name__ == "__main__":
    table, _ = run_recovery()
    write_result("fig16_recovery", table)
