"""Table III — space overhead in three DRAM-budget scenarios.

Paper shape: learned index *structures* are orders of magnitude smaller
than a B+tree (ALEX 129KB vs BTree 155MB at 200M), but once the sorted
keys (index+key) or full records (index+KV) must also live in DRAM the
totals converge — "the space advantage of learned indexes is not
significant in many practical environments".
"""

from _common import READ_CASE, SMALL_N, dataset, loaded_store, run_once
from repro.bench import format_table, write_result


def _fmt(n_bytes):
    if n_bytes >= 1 << 20:
        return f"{n_bytes / (1 << 20):.2f}MB"
    return f"{n_bytes / 1024:.2f}KB"


def run_table3():
    keys = dataset("ycsb", SMALL_N)
    rows = []
    overheads = {}
    for name, factory in READ_CASE.items():
        store, _ = loaded_store(factory, keys)
        o = store.space_overhead()
        overheads[name] = o
        rows.append(
            [name, _fmt(o["index"]), _fmt(o["index+key"]), _fmt(o["index+kv"])]
        )
    table = format_table(
        ["index", "index size", "index+key size", "index+KV size"],
        rows,
        title=f"Table III — space overhead ({SMALL_N} records of 208B)",
    )
    return table, overheads


def test_table3(benchmark):
    table, overheads = run_once(benchmark, run_table3)
    write_result("table3_space", table)
    # ALEX has the smallest index structure of all (paper: 129KB).
    smallest = min(overheads, key=lambda n: overheads[n]["index"])
    assert smallest == "ALEX"
    # PLA-based learned structures are far below the B+tree's inner nodes.
    btree = overheads["BTree"]["index"]
    for learned in ("PGM", "RS", "FITing-tree"):
        assert overheads[learned]["index"] < btree / 4
    # ALEX's gaps and XIndex's buffers inflate the index+key scenario
    # (paper: 4.6GB / 4.8GB against 3.2-3.4GB for the rest).
    for padded in ("ALEX", "XIndex"):
        assert (
            overheads[padded]["index+key"]
            > overheads["PGM"]["index+key"] * 1.2
        )
    # In the in-memory-database scenario the sizes are basically the same.
    kv_sizes = [o["index+kv"] for o in overheads.values()]
    assert max(kv_sizes) < min(kv_sizes) * 1.3


if __name__ == "__main__":
    table, _ = run_table3()
    write_result("table3_space", table)
