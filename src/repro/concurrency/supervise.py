"""Worker supervision for the parallel engine: fail-stop → fail-recover.

The engine in :mod:`repro.concurrency.parallel` detects worker death
(broken pipe / dead process while a reply is pending) but, on its own,
can only latch itself permanently broken.  This module adds the
recovery path: a :class:`WorkerSupervisor` owned by the engine that, on
worker death or per-command timeout,

1. **respawns** the worker process (same registry spec recipe workers
   already build from — nothing large is ever pickled),
2. **rebuilds** its range partition from the engine's retained bulk
   partition plus an ordered per-worker journal of every mutation batch
   acknowledged since (state reconstruction, not process migration),
3. **replays** the journal and re-issues the one in-flight command,
   exactly once — the rebuild discards whatever the dead worker had
   partially applied, so a command that was applied-but-unacknowledged
   cannot be applied twice,
4. applies **bounded exponential backoff** between attempts and stops
   at a configurable **restart budget**, after which the engine
   degrades: ``degraded="fail"`` raises
   :class:`~repro.errors.WorkerDiedError` (the pre-supervision
   behaviour, and the default), ``degraded="partial"`` takes the shard
   out of service and keeps answering from the survivors
   (:class:`~repro.errors.ShardUnavailableError` for writes, ``None``
   holes + ``repro_shard_unavailable_total`` for reads).

Exactly-once, precisely
-----------------------
Replay tokens (monotone per-worker integers wrapped around every
mutation command as ``("tok", t, cmd)``) make the protocol idempotent
at the transport layer: a worker remembers the highest token it has
applied and acknowledges — without re-applying — any token at or below
it.  The *load-bearing* guarantee, however, is structural: a respawned
worker starts from zero state and reconstructs exclusively from the
journal of **acknowledged** batches plus a single re-issue of the
unacknowledged in-flight command.  Both legs of the classic two
generals' ambiguity (did the dead worker apply the batch before dying
or not?) converge to the same rebuilt state.

Deterministic fault injection
-----------------------------
:class:`FaultPlan` ships picklable directives to workers inside their
build config: *kill yourself before/after serving the Nth command of
op X*, *drop reply N* (serve but stay silent — exercises the parent's
deadline path), *delay reply N by D seconds*.  Directives target a
specific worker **incarnation** (0 = original process, 1 = first
respawn, ...), so tests can script repeated failures and assert the
backoff/budget ladder deterministically.  Used by
``tests/test_parallel_engine.py`` and ``benchmarks/bench_recovery.py``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError, ShardUnavailableError, WorkerDiedError
from repro.obs.health import format_flight
from repro.obs.trace import EventType

if TYPE_CHECKING:  # pragma: no cover
    from repro.concurrency.parallel import _ParallelEngine, _WorkerHandle

#: Default first-attempt backoff; attempt k sleeps ``base * 2**k``.
DEFAULT_BACKOFF_BASE_S = 0.05
#: Ceiling on any single backoff sleep.
DEFAULT_BACKOFF_CAP_S = 2.0

_ACTIONS = ("kill", "drop", "delay")
_PHASES = ("before", "after")


@dataclass(frozen=True)
class FaultDirective:
    """One scripted fault, matched worker-side against served commands.

    ``op`` names the logical command (``"get_many"``, ``"write_many"``,
    ``"scan_many"``, ``"call"``, ``"bulk_chunk"``, ... — pipe variants
    match their shm name) or ``None`` for any command; ``nth`` is the
    1-based match ordinal *per op name*; ``when`` selects whether a
    ``kill`` fires before or **after** the command was applied (the
    applied-but-unacknowledged case that exactly-once replay must
    survive); ``incarnation`` pins the directive to one process
    generation of the worker.
    """

    worker: int
    action: str  # "kill" | "drop" | "delay"
    op: Optional[str] = None
    nth: int = 1
    when: str = "before"
    delay_s: float = 0.0
    incarnation: int = 0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ReproError(
                f"fault action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.when not in _PHASES:
            raise ReproError(
                f"fault 'when' must be one of {_PHASES}, got {self.when!r}"
            )
        if self.nth < 1:
            raise ReproError(f"fault nth is 1-based, got {self.nth}")

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "action": self.action,
            "op": self.op,
            "nth": self.nth,
            "when": self.when,
            "delay_s": self.delay_s,
            "incarnation": self.incarnation,
        }


class FaultPlan:
    """A deterministic fault-injection script for the parallel engine.

    Build one, pass it as ``fault_plan=`` to the engine (or via the
    parallel factories); each worker receives the directives aimed at it
    inside its build config and enforces them while serving.

    >>> plan = (FaultPlan()
    ...         .kill(worker=1, op="get_many", nth=3)
    ...         .drop_reply(worker=0, op="write_many")
    ...         .delay(worker=1, seconds=0.2, op="scan_many", incarnation=1))
    """

    def __init__(self):
        self.directives: List[FaultDirective] = []

    def add(self, directive: FaultDirective) -> "FaultPlan":
        self.directives.append(directive)
        return self

    def kill(
        self,
        worker: int,
        op: Optional[str] = None,
        nth: int = 1,
        when: str = "before",
        incarnation: int = 0,
    ) -> "FaultPlan":
        """SIGKILL the worker around the matched command."""
        return self.add(
            FaultDirective(worker, "kill", op, nth, when, 0.0, incarnation)
        )

    def drop_reply(
        self,
        worker: int,
        op: Optional[str] = None,
        nth: int = 1,
        incarnation: int = 0,
    ) -> "FaultPlan":
        """Serve the matched command but never reply (simulated hang)."""
        return self.add(
            FaultDirective(worker, "drop", op, nth, "after", 0.0, incarnation)
        )

    def delay(
        self,
        worker: int,
        seconds: float,
        op: Optional[str] = None,
        nth: int = 1,
        incarnation: int = 0,
    ) -> "FaultPlan":
        """Sleep ``seconds`` before replying to the matched command."""
        return self.add(
            FaultDirective(worker, "delay", op, nth, "after", seconds,
                           incarnation)
        )

    def for_worker(self, worker: int) -> List[dict]:
        """Picklable directives for one worker (all incarnations — the
        worker filters by the incarnation in its own config)."""
        return [d.to_dict() for d in self.directives if d.worker == worker]


def base_op(op: str) -> str:
    """Transport-independent command name (``get_many_pipe``→``get_many``)."""
    return op[:-5] if op.endswith("_pipe") else op


def match_faults(
    directives: List[dict], incarnation: int, op: str, ordinal: int,
    phase: str,
) -> List[dict]:
    """Directives firing for the ``ordinal``-th command named ``op`` at
    ``phase`` ("before"/"after") in process generation ``incarnation``.

    ``drop`` directives match at the "after" phase (the command is
    served, the reply is withheld).
    """
    out = []
    for d in directives:
        if d.get("incarnation", 0) != incarnation:
            continue
        if d["op"] is not None and d["op"] != op:
            continue
        if d["nth"] != ordinal:
            continue
        d_phase = d["when"] if d["action"] == "kill" else "after"
        if d_phase != phase:
            continue
        out.append(d)
    return out


class _RecoveryFailed(Exception):
    """Internal: a respawn/rebuild step itself died (retry if budget)."""

    def __init__(self, step: str):
        super().__init__(step)
        self.step = step


class WorkerSupervisor:
    """Per-engine recovery policy: respawn, rebuild, replay, degrade.

    Owned by :class:`~repro.concurrency.parallel._ParallelEngine`; the
    engine routes every detected worker failure (death or deadline
    overrun) through :meth:`handle_failure`, which either returns the
    reply of the transparently re-issued in-flight command or raises
    the degradation error.  ``restart_budget`` counts recovery attempts
    **per worker** over the engine's lifetime; 0 (the default) keeps
    the original fail-stop behaviour exactly.
    """

    def __init__(
        self,
        engine: "_ParallelEngine",
        restart_budget: int = 0,
        degraded: str = "fail",
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if degraded not in ("fail", "partial"):
            raise ReproError(
                f"degraded must be 'fail' or 'partial', got {degraded!r}"
            )
        if restart_budget < 0:
            raise ReproError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        self.engine = engine
        self.restart_budget = restart_budget
        self.degraded = degraded
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep
        #: Recovery attempts spent, per worker.
        self.restarts_used: List[int] = [0] * engine.workers
        #: Wall seconds of the last successful recovery, per worker.
        self.last_recovery_s: List[Optional[float]] = [None] * engine.workers

    # -- failure entry point ------------------------------------------

    def handle_failure(self, h: "_WorkerHandle", cmd_name: str, reason: str):
        """Recover worker ``h.worker_id`` or degrade the engine.

        Returns the reply meta of the re-issued in-flight command when
        recovery succeeds (the engine's ``_recv`` returns it to the
        original call site, which never learns a failure happened).
        Raises :class:`WorkerDiedError` (``degraded="fail"``) or
        :class:`ShardUnavailableError` (``degraded="partial"``) once
        the restart budget is exhausted.
        """
        eng = self.engine
        w = h.worker_id
        eng.health.died(w)
        pending = h.pending  # (cmd_name, replay_factory) | None
        try:
            h.conn.close()
        except OSError:
            pass
        h.proc.join(timeout=1)

        while self.restarts_used[w] < self.restart_budget:
            attempt = self.restarts_used[w]
            self.restarts_used[w] += 1
            delay = min(
                self.backoff_base_s * (2 ** attempt), self.backoff_cap_s
            )
            if delay > 0:
                self._sleep(delay)
            eng.metrics.counter(
                "repro_worker_restarts_total", worker=str(w)
            ).inc()
            eng.perf.trace(
                EventType.WORKER_RESTART,
                index=getattr(eng, "name", ""),
                leaf=w,
                reason=reason,
                count=self.restarts_used[w],
            )
            rspan = None
            if eng.spans is not None:
                rspan = eng.spans.start(
                    f"recovery:{w}", "recovery", worker=w, reason=reason,
                    attempt=self.restarts_used[w],
                )
            t0 = time.perf_counter()
            nh = None
            try:
                nh = self._step(eng.spans, rspan, "respawn",
                                lambda: eng._respawn(w, h.seg))
                self._step(eng.spans, rspan, "rebuild",
                           lambda: eng._rebuild_worker(nh))
            except _RecoveryFailed as fail:
                if nh is not None:  # reap the half-recovered process
                    if nh.proc.is_alive():
                        nh.proc.kill()
                    nh.proc.join(timeout=1)
                    try:
                        nh.conn.close()
                    except OSError:
                        pass
                if eng.spans is not None and rspan is not None:
                    eng.spans.finish(rspan, outcome=f"failed:{fail.step}")
                print(
                    f"[repro] worker {w} recovery attempt "
                    f"{self.restarts_used[w]}/{self.restart_budget} failed "
                    f"during {fail.step}",
                    file=sys.stderr,
                )
                continue
            recovery_s = time.perf_counter() - t0
            self.last_recovery_s[w] = recovery_s
            eng._handles[w] = nh
            eng.metrics.histogram(
                "repro_worker_recovery_ns", worker=str(w)
            ).record(recovery_s * 1e9)
            eng.perf.trace(
                EventType.WORKER_RECOVERED,
                index=getattr(eng, "name", ""),
                leaf=w,
                reason=reason,
                count=self.restarts_used[w],
                cost_ns=recovery_s * 1e9,
            )
            if eng.spans is not None and rspan is not None:
                eng.spans.finish(rspan, outcome="recovered")
            if pending is None:
                return ("obj", None)
            pend_name, replay_cmd = pending
            # Mid-bulk-load death: the rebuild already shipped the full
            # partition (base_items holds the whole part) and built it,
            # so mark this worker done and synthesize the pending reply;
            # the bulk loop skips done workers from here on.
            if eng._bulk_done is not None and pend_name.startswith("bulk"):
                eng._bulk_done.add(w)
                return ("obj", None)
            eng._send(nh, replay_cmd, replay=replay_cmd)
            return eng._recv(nh, pend_name)

        return self._degrade(h, cmd_name, reason)

    def _step(self, spans, parent, name: str, fn):
        """Run one recovery stage under a child span; normalize failures."""
        span = None
        if spans is not None and parent is not None:
            span = spans.start(
                f"recovery:{name}", "recovery", parent=parent.span_id,
                worker=parent.worker,
            )
        try:
            result = fn()
        except _RecoveryFailed:
            if span is not None:
                spans.finish(span, outcome="failed")
            raise
        except (BrokenPipeError, EOFError, OSError):
            if span is not None:
                spans.finish(span, outcome="failed")
            raise _RecoveryFailed(name)
        if span is not None:
            spans.finish(span, outcome="ok")
        return result

    # -- degradation ---------------------------------------------------

    def _degrade(self, h: "_WorkerHandle", cmd_name: str, reason: str):
        eng = self.engine
        w = h.worker_id
        flight = eng.health.flight(w)
        detail = (
            f"timed out after {eng._worker_timeout_s:.1f}s"
            if reason == "timeout" and eng._worker_timeout_s is not None
            else f"died with exit code {h.proc.exitcode}"
        )
        used, budget = self.restarts_used[w], self.restart_budget
        if self.degraded == "partial":
            msg = (
                f"shard worker {w} (pid {h.proc.pid}) {detail} while serving "
                f"{cmd_name!r}; restart budget exhausted "
                f"({used}/{budget}), serving degraded without shard {w}"
            )
            eng._down[w] = True
            eng.metrics.counter(
                "repro_worker_down_total", worker=str(w)
            ).inc()
            eng.perf.trace(
                EventType.WORKER_DOWN,
                index=getattr(eng, "name", ""),
                leaf=w,
                reason=reason,
                count=used,
            )
            if flight:
                msg += (
                    "\nflight recorder (most recent last):\n"
                    + format_flight(flight)
                )
            raise ShardUnavailableError(msg, worker_id=w)
        msg = (
            f"shard worker {w} (pid {h.proc.pid}) {detail} while serving "
            f"{cmd_name!r}; the engine cannot answer further operations"
        )
        if used:
            msg += f"\nrestart budget exhausted ({used}/{budget})"
        if flight:
            msg += (
                "\nflight recorder (most recent last):\n"
                + format_flight(flight)
            )
        eng._broken = msg
        eng._broken_err = WorkerDiedError(
            msg,
            worker_id=w,
            pid=h.proc.pid,
            exitcode=h.proc.exitcode,
            flight=[e.to_dict() for e in flight],
            restarts=used,
            restart_budget=budget,
        )
        raise eng._broken_err
