"""Concurrency modeling: CC declarations, a discrete-event simulator,
and range-partitioned sharding.

* :mod:`repro.concurrency.spec` — :class:`ConcurrencySpec`, the per-index
  concurrency-control declaration (scheme, latch domains, blocking
  retrains) carried on every registry entry.
* :mod:`repro.concurrency.sim` — the deterministic discrete-event
  simulator that schedules N per-thread op streams on the simulated
  clock, charging latch waits, optimistic retries, and retrain stalls on
  top of the shared memory-bandwidth pool.  Figs 12/14 are produced by
  driving it with each index's measured single-thread profile.
* :mod:`repro.concurrency.sharding` — :class:`ShardRouter`,
  :class:`ShardedIndex`, and :class:`ShardedStore`: run any registry
  spec across K range-partitioned shards with per-shard perf contexts,
  bit-identically to the unsharded instance.
* :mod:`repro.concurrency.parallel` — :class:`ParallelShardedIndex` and
  :class:`ParallelShardedStore`: the same partition executed across
  worker *processes* with shared-memory op transport, turning the
  simulated scaling projections into measured wall-clock numbers.
* :mod:`repro.concurrency.supervise` — :class:`WorkerSupervisor` and
  :class:`FaultPlan`: fail-recover supervision for the parallel engine
  (respawn, rebuild, exactly-once replay, bounded backoff, degraded
  modes) plus the deterministic fault-injection harness.
"""

from repro.concurrency.spec import (
    CC_SCHEMES,
    ConcurrencySpec,
    GLOBAL_LOCK,
    LOCK_FREE,
)
from repro.concurrency.sim import (
    FailureModel,
    OpProfile,
    RWLOCK_BOUNCE_NS,
    SimResult,
    make_streams,
    simulate,
    simulate_scaling,
)
from repro.concurrency.supervise import (
    FaultDirective,
    FaultPlan,
    WorkerSupervisor,
)
from repro.concurrency.sharding import (
    ShardRouter,
    ShardedIndex,
    ShardedStore,
    SortedShardedIndex,
    sharded_index,
)
from repro.concurrency.parallel import (
    ParallelShardedIndex,
    ParallelShardedStore,
    ParallelSortedShardedIndex,
    measure_scaling,
    parallel_sharded_index,
    parallel_sharded_store,
)

__all__ = [
    "CC_SCHEMES",
    "ConcurrencySpec",
    "FailureModel",
    "FaultDirective",
    "FaultPlan",
    "GLOBAL_LOCK",
    "LOCK_FREE",
    "OpProfile",
    "WorkerSupervisor",
    "RWLOCK_BOUNCE_NS",
    "SimResult",
    "make_streams",
    "simulate",
    "simulate_scaling",
    "ShardRouter",
    "ShardedIndex",
    "ShardedStore",
    "SortedShardedIndex",
    "sharded_index",
    "ParallelShardedIndex",
    "ParallelShardedStore",
    "ParallelSortedShardedIndex",
    "measure_scaling",
    "parallel_sharded_index",
    "parallel_sharded_store",
]
