"""Deterministic discrete-event simulator for multi-threaded execution.

The paper's Figs 12/14 plot aggregate throughput of N threads hammering
one index.  The shape of those curves is set by three interacting
effects, and this module models all three on one simulated clock:

1. **Service time** — how long one operation takes alone, taken from the
   measured single-thread baseline (mean + p99.9 of the cost-model run).
2. **Bandwidth contention** — every thread draws on one socket's memory
   bandwidth pool (:class:`~repro.perf.bandwidth.BandwidthModel`); past
   saturation every access slows by the oversubscription ratio.
3. **Concurrency control** — per the index's
   :class:`~repro.concurrency.spec.ConcurrencySpec`: writers serialise on
   a global lock or contend for fine-grained latch domains, optimistic
   readers retry when writers invalidate them, and blocking retrains
   stall every thread (XIndex/FINEdex).

The simulation is a classic event-heap design: each thread is an event
source replaying its own op stream; the heap orders op start times; each
pop resolves one operation — wait for its latch domain (and any blocking
retrain), charge the scheme's overhead events, hold the domain, schedule
the thread's next op at the finish time.  Everything is derived from the
seed and the op streams, so two runs with the same inputs produce the
same event schedule, the same latch-wait totals, and the same final
clock — the determinism contract ``tests/test_determinism.py`` pins.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import EventType
from repro.perf.bandwidth import BandwidthModel
from repro.perf.cost_model import CostModel
from repro.perf.events import Counters, Event
from repro.perf.latency import LatencyRecorder

from repro.concurrency.spec import ConcurrencySpec

#: Per-contender cacheline-bounce cost of sharing one global reader-writer
#: lock: every reader increments the same lock word, so each acquisition
#: ships the cacheline from whichever core touched it last.  This is what
#: keeps a globally locked index (ALEX) from scaling its *reads* — the
#: lock word itself saturates even when the workload is read-only.
RWLOCK_BOUNCE_NS = 12.0

#: One simulated operation: ``(key, is_write)``.
SimOp = Tuple[int, bool]

#: Golden-ratio multiplier spreading keys over latch domains (splitmix64's
#: first step); plain ``key % domains`` would alias with strided keys.
_DOMAIN_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def make_streams(
    threads: int,
    ops_per_thread: int,
    write_fraction: float,
    seed: int = 0,
) -> List[List[SimOp]]:
    """Deterministic per-thread op streams for the projection runs.

    Each thread gets an independent seeded RNG, so stream ``i`` is the
    same no matter how many threads run beside it — adding a thread adds
    load without reshuffling anyone else's keys.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    streams: List[List[SimOp]] = []
    for t in range(threads):
        rng = random.Random(seed * 1_000_003 + t)
        streams.append(
            [
                (rng.getrandbits(64), rng.random() < write_fraction)
                for _ in range(ops_per_thread)
            ]
        )
    return streams


@dataclass(frozen=True)
class OpProfile:
    """Single-thread measurement the simulator projects from."""

    #: Mean simulated latency of one operation, measured at 1 thread.
    mean_ns: float
    #: p99.9 simulated latency at 1 thread (drives the service-time tail).
    p999_ns: float
    #: Memory traffic per operation (drives bandwidth contention).
    bytes_per_op: float
    #: Writes between whole-structure retrain stalls (0 = never), as
    #: measured: ``ops / stats().retrain_count``.
    retrain_every: int = 0
    #: Simulated duration of one blocking retrain:
    #: ``stats().retrain_time_ns / retrain_count``.
    retrain_stall_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_ns <= 0:
            raise ValueError(f"mean_ns must be positive, got {self.mean_ns}")
        if self.retrain_every < 0:
            raise ValueError(
                f"retrain_every must be >= 0, got {self.retrain_every}"
            )


@dataclass(frozen=True)
class FailureModel:
    """Worker-failure model for fail-recover projection runs.

    Mirrors the parallel engine's supervision loop on the simulated
    clock: each simulated thread (= worker) fails with exponentially
    distributed inter-failure times of mean ``mtbf_ns``, then spends
    ``rebuild_ns`` respawning and rebuilding its partition before it can
    serve again.  Operations that land during a rebuild wait it out —
    the same stall a real client sees while the supervisor replays the
    in-flight command.  Failure draws come from their own per-thread
    RNGs, so attaching a model never perturbs the baseline event
    schedule (the determinism contract the simulator pins).
    """

    #: Mean time between failures of one worker, simulated ns.
    mtbf_ns: float
    #: Respawn + partition-rebuild + replay cost per failure, simulated ns.
    rebuild_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf_ns <= 0:
            raise ValueError(f"mtbf_ns must be positive, got {self.mtbf_ns}")
        if self.rebuild_ns < 0:
            raise ValueError(
                f"rebuild_ns must be >= 0, got {self.rebuild_ns}"
            )


@dataclass
class SimResult:
    """Everything one simulation run produces."""

    threads: int
    ops: int
    #: Simulated time at which the last thread finished.
    makespan_ns: float
    #: Aggregate throughput over the makespan.
    throughput_mops: float
    #: Per-op latency distribution (waits included).
    recorder: LatencyRecorder
    #: Total time threads spent waiting for latches held by others.
    latch_wait_ns: float = 0.0
    #: Total time threads spent stalled behind blocking retrains.
    retrain_stall_ns: float = 0.0
    #: Number of blocking retrains that fired.
    retrain_stalls: int = 0
    #: Number of optimistic-read retries.
    retries: int = 0
    #: Contention events charged (LATCH_ACQUIRE / OPT_RETRY).
    counters: Counters = field(default_factory=Counters)
    #: Bandwidth slowdown factor applied to every service time.
    bandwidth_slowdown: float = 1.0
    #: Worker failures fired by the :class:`FailureModel` (0 without one).
    failures: int = 0
    #: Total time operations spent waiting out worker rebuilds.
    recovery_stall_ns: float = 0.0
    #: Per-op schedule ``(thread, start_ns, end_ns)`` in completion
    #: order, kept when ``simulate(..., keep_schedule=True)``.
    schedule: Optional[List[Tuple[int, float, float]]] = None

    @property
    def p999_ns(self) -> float:
        return self.recorder.p999()

    @property
    def mean_ns(self) -> float:
        return self.recorder.mean()

    @property
    def latch_wait_share(self) -> float:
        """Fraction of total thread-time lost to latch waits."""
        busy = self.makespan_ns * self.threads
        return self.latch_wait_ns / busy if busy > 0 else 0.0

    @property
    def retrain_stall_share(self) -> float:
        busy = self.makespan_ns * self.threads
        return self.retrain_stall_ns / busy if busy > 0 else 0.0

    @property
    def recovery_stall_share(self) -> float:
        """Fraction of total thread-time lost to worker rebuilds."""
        busy = self.makespan_ns * self.threads
        return self.recovery_stall_ns / busy if busy > 0 else 0.0


def _service_times(profile: OpProfile) -> Tuple[float, float]:
    """Two-point service distribution matching the measured mean + tail.

    One op in a thousand costs the measured p99.9; the rest cost a base
    adjusted so the distribution's mean stays the measured mean.  The
    base is floored at 5% of the mean so a pathological tail (p99.9 over
    1000x the mean) cannot drive it non-positive.
    """
    base = (1000.0 * profile.mean_ns - profile.p999_ns) / 999.0
    return max(base, 0.05 * profile.mean_ns), max(
        profile.p999_ns, profile.mean_ns
    )


def simulate(
    spec: ConcurrencySpec,
    profile: OpProfile,
    streams: Sequence[Sequence[SimOp]],
    bandwidth: BandwidthModel = BandwidthModel(),
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    tracer=None,
    index_name: str = "",
    keep_schedule: bool = False,
    spans: Optional[SpanRecorder] = None,
    failure: Optional[FailureModel] = None,
) -> SimResult:
    """Run ``streams`` (one list of ops per thread) to completion.

    Scheme semantics per operation:

    * writes under ``global_lock`` / ``fine_grained_latch`` /
      ``optimistic_read`` (and ``lock_free``'s CAS, which occupies its
      domain the same way) wait for their latch domain to free, charge
      one ``LATCH_ACQUIRE``, then hold the domain for the service time;
    * reads under ``global_lock`` wait for any writer holding the lock
      and pay ``RWLOCK_BOUNCE_NS`` per concurrent thread for the shared
      lock word's cacheline; under ``fine_grained_latch`` they wait for
      their domain's writer and charge one shared ``LATCH_ACQUIRE``;
      under ``optimistic_read`` / ``lock_free`` they never wait, but
      optimistic reads retry (re-execute) with probability
      ``retry_base * write_fraction * (threads-1)/threads``, charging
      one ``OPT_RETRY`` per retry;
    * when ``spec.retrain_blocking`` and the profile measured retrains,
      every ``retrain_every``-th write extends its hold by the retrain
      stall and blocks the *whole structure*; ops that arrive during the
      stall wait it out (``RETRAIN_STALL`` wait accounting).

    A ``failure`` model (:class:`FailureModel`) treats each thread as a
    parallel-engine worker with the given MTBF: when a thread's next
    failure time passes, its current operation waits out the remaining
    rebuild window (``WORKER_RESTART`` emitted on the sim clock with the
    rebuild cost), modeling the supervisor's respawn-rebuild-replay
    cycle.  Failure draws use dedicated per-thread RNGs, so the baseline
    schedule with ``failure=None`` is untouched.

    A ``tracer`` (an :class:`repro.obs.trace.Tracer`) receives
    ``LATCH_WAIT`` / ``RETRAIN_STALL`` lifecycle events timestamped on
    the simulated clock; sampling applies as usual.

    A ``spans`` recorder (:class:`repro.obs.spans.SpanRecorder`) gets one
    ``clock="sim"`` request span per sampled op — the thread as its
    worker, latch-wait/retrain-stall child events under it — so a
    simulated trace is diffable against a measured one with the same
    exporters and attribution tooling.  The span recorder's RNG is its
    own; attaching it never perturbs the event schedule.
    """
    cm = cost_model or CostModel()
    threads = len(streams)
    if threads == 0:
        raise ValueError("need at least one op stream")
    total_ops = sum(len(s) for s in streams)
    writes = sum(1 for s in streams for _, w in s if w)
    write_fraction = writes / total_ops if total_ops else 0.0

    slowdown = bandwidth.slowdown(
        threads, profile.bytes_per_op, profile.mean_ns
    )
    base_ns, tail_ns = _service_times(profile)
    base_ns *= slowdown
    tail_ns *= slowdown

    domains = spec.effective_domains
    domain_free_at = [0.0] * domains
    blocked_until = 0.0  # whole-structure retrain block
    writes_since_retrain = 0

    latch_ns = cm.latch_acquire_ns
    retry_ns = cm.opt_retry_ns
    retry_p = (
        spec.retry_base * write_fraction * (threads - 1) / threads
        if spec.scheme == "optimistic_read" and threads > 1
        else 0.0
    )
    bounce_ns = (
        RWLOCK_BOUNCE_NS * (threads - 1)
        if spec.scheme == "global_lock"
        else 0.0
    )
    stall_ns = (
        profile.retrain_stall_ns * slowdown
        if spec.retrain_blocking and profile.retrain_every > 0
        else 0.0
    )

    counters = Counters()
    recorder = LatencyRecorder()
    latch_wait = 0.0
    stall_wait = 0.0
    stalls = 0
    retries = 0
    schedule: Optional[List[Tuple[int, float, float]]] = (
        [] if keep_schedule else None
    )

    rngs = [random.Random(seed * 9_176_923 + t) for t in range(threads)]
    # Failure state lives in its own RNG stream: the baseline draws
    # above are byte-identical with or without a model attached.
    failures = 0
    recovery_stall = 0.0
    next_fail: List[float] = []
    if failure is not None:
        frngs = [
            random.Random(seed * 7_919_113 + 31 * t) for t in range(threads)
        ]
        next_fail = [
            frngs[t].expovariate(1.0 / failure.mtbf_ns)
            for t in range(threads)
        ]
    # (ready_ns, tie, thread, op_index); the tie counter makes heap order
    # total, so equal-time events pop in a deterministic sequence.
    tie = 0
    heap: List[Tuple[float, int, int, int]] = []
    for t, stream in enumerate(streams):
        if stream:
            heapq.heappush(heap, (0.0, tie, t, 0))
            tie += 1
    finish = [0.0] * threads

    while heap:
        start, _, t, i = heapq.heappop(heap)
        key, is_write = streams[t][i]
        now = start
        rspan: Optional[str] = None
        op_events: List[tuple] = []
        if spans is not None and spans.sample():
            rspan = spans.next_id()

        # Worker failure(s) due before this op: each costs a rebuild
        # window; the op waits out whatever part of it is still ahead.
        if failure is not None:
            while now >= next_fail[t]:
                recover_at = next_fail[t] + failure.rebuild_ns
                failures += 1
                if recover_at > now:
                    waited = recover_at - now
                    recovery_stall += waited
                    now = recover_at
                    if rspan is not None:
                        op_events.append(
                            (
                                "event:worker_restart",
                                now,
                                waited,
                                {"reason": "rebuild"},
                            )
                        )
                if tracer is not None:
                    tracer.emit(
                        EventType.WORKER_RESTART,
                        recover_at,
                        index=index_name,
                        leaf=t,
                        reason="mtbf",
                        cost_ns=failure.rebuild_ns,
                    )
                next_fail[t] = recover_at + frngs[t].expovariate(
                    1.0 / failure.mtbf_ns
                )

        # Blocking retrain in progress: everyone waits it out.
        if now < blocked_until:
            waited = blocked_until - now
            stall_wait += waited
            now = blocked_until
            if tracer is not None:
                tracer.emit(
                    EventType.RETRAIN_STALL,
                    now,
                    index=index_name,
                    reason="wait",
                    cost_ns=waited,
                )
            if rspan is not None:
                op_events.append(
                    ("event:retrain_stall", now, waited, {"reason": "wait"})
                )

        rng = rngs[t]
        service = tail_ns if rng.random() < 0.001 else base_ns
        domain = ((key * _DOMAIN_MIX) & _MASK64) % domains

        if is_write or spec.scheme in ("global_lock", "fine_grained_latch"):
            # Writers always contend for their domain; readers of the
            # latching schemes wait for a writer currently holding it.
            free_at = domain_free_at[domain]
            if free_at > now:
                waited = free_at - now
                latch_wait += waited
                now = free_at
                if tracer is not None:
                    tracer.emit(
                        EventType.LATCH_WAIT,
                        now,
                        index=index_name,
                        leaf=domain,
                        reason="write" if is_write else "read",
                        cost_ns=waited,
                    )
                if rspan is not None:
                    op_events.append(
                        (
                            "event:latch_wait",
                            now,
                            waited,
                            {
                                "leaf": domain,
                                "reason": "write" if is_write else "read",
                            },
                        )
                    )
            counters.latch_acquire += 1
            now += latch_ns

        if not is_write:
            now += bounce_ns
            if retry_p > 0.0 and rng.random() < retry_p:
                counters.opt_retry += 1
                retries += 1
                now += retry_ns + service  # re-execute the read
        end = now + service

        if is_write:
            if (
                stall_ns > 0.0
                and profile.retrain_every > 0
            ):
                writes_since_retrain += 1
                if writes_since_retrain >= profile.retrain_every:
                    writes_since_retrain = 0
                    end += stall_ns
                    blocked_until = max(blocked_until, end)
                    stall_wait += stall_ns
                    stalls += 1
                    if tracer is not None:
                        tracer.emit(
                            EventType.RETRAIN_STALL,
                            end,
                            index=index_name,
                            reason="retrain",
                            cost_ns=stall_ns,
                        )
                    if rspan is not None:
                        op_events.append(
                            (
                                "event:retrain_stall",
                                end,
                                stall_ns,
                                {"reason": "retrain"},
                            )
                        )
            domain_free_at[domain] = end

        if rspan is not None:
            spans.add(
                Span(
                    span_id=rspan,
                    parent_id=None,
                    name=f"op:{'write' if is_write else 'read'}",
                    kind="request",
                    start_ns=start,
                    dur_ns=end - start,
                    clock="sim",
                    worker=t,
                    attrs={"key": key, "thread": t, "op_index": i},
                )
            )
            for ev_name, ev_ts, ev_cost, ev_attrs in op_events:
                spans.add(
                    Span(
                        span_id=spans.next_id(),
                        parent_id=rspan,
                        name=ev_name,
                        kind="event",
                        start_ns=ev_ts,
                        dur_ns=0.0,
                        clock="sim",
                        worker=t,
                        attrs=dict(ev_attrs, cost_ns=ev_cost),
                    )
                )

        recorder.record(end - start)
        if schedule is not None:
            schedule.append((t, start, end))
        finish[t] = end
        if i + 1 < len(streams[t]):
            heapq.heappush(heap, (end, tie, t, i + 1))
            tie += 1

    makespan = max(finish) if total_ops else 0.0
    throughput = total_ops / makespan * 1e3 if makespan > 0 else 0.0
    return SimResult(
        threads=threads,
        ops=total_ops,
        makespan_ns=makespan,
        throughput_mops=throughput,
        recorder=recorder,
        latch_wait_ns=latch_wait,
        retrain_stall_ns=stall_wait,
        retrain_stalls=stalls,
        retries=retries,
        counters=counters,
        bandwidth_slowdown=slowdown,
        failures=failures,
        recovery_stall_ns=recovery_stall,
        schedule=schedule,
    )


def simulate_scaling(
    spec: ConcurrencySpec,
    profile: OpProfile,
    threads: Sequence[int],
    write_fraction: float = 0.0,
    ops_per_thread: int = 800,
    bandwidth: BandwidthModel = BandwidthModel(),
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
    tracer=None,
    index_name: str = "",
    spans: Optional[SpanRecorder] = None,
    failure: Optional[FailureModel] = None,
) -> List[SimResult]:
    """One :func:`simulate` run per thread count, shared streams prefix.

    Thread ``i``'s stream is identical at every thread count (see
    :func:`make_streams`), so the curves isolate the effect of *adding*
    threads rather than reshuffling the workload.
    """
    top = max(threads)
    streams = make_streams(top, ops_per_thread, write_fraction, seed=seed)
    return [
        simulate(
            spec,
            profile,
            streams[:t],
            bandwidth=bandwidth,
            cost_model=cost_model,
            seed=seed,
            tracer=tracer,
            index_name=index_name,
            spans=spans,
            failure=failure,
        )
        for t in threads
    ]
