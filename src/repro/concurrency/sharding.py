"""Range-partitioned sharding: run any registry index across K shards.

The scaling path the ROADMAP names: instead of one index instance
serving every key, a :class:`ShardRouter` splits the u64 key space into
K contiguous ranges, and a :class:`ShardedIndex` / :class:`ShardedStore`
runs one independent index (or Viper store) per range behind the
original single-instance API.  Because the partition is by key *range*,
ordered scans stay ordered: a scan drains the start shard and continues
into its right-hand neighbours.

Shard transparency is a hard contract (``tests/test_sharding.py``): for
any registry spec and any K, the sharded wrapper returns bit-identical
get/put/scan results — sharding changes *where* work runs, never what it
answers.

Each shard can carry its own :class:`~repro.perf.context.PerfContext`
(the default), modelling one worker core per shard; the helpers
:func:`~repro.perf.context.merged_counters` and
:func:`~repro.perf.context.merged_elapsed_ns` combine the per-shard
ledgers into one experiment view.  Passing an explicit ``perf`` makes
every shard share that clock instead — what ``repro bench --shards``
does so the measurement loop keeps working unchanged.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.interfaces import Index, IndexStats, SortedIndex
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext, merged_counters, merged_elapsed_ns
from repro.store.viper import ViperStore

_KEY_SPACE = 1 << 64


class ShardRouter:
    """Maps keys to shard ids through K-1 ascending range boundaries.

    Shard ``i`` owns keys in ``[boundaries[i-1], boundaries[i])`` (the
    first shard is unbounded below, the last unbounded above), so every
    u64 key — including keys never loaded — routes to exactly one shard.
    """

    def __init__(self, shards: int, boundaries: Optional[Sequence[int]] = None):
        if shards < 1:
            raise InvalidConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        if boundaries is None:
            # Uniform split of the key space until data arrives.
            boundaries = [
                (_KEY_SPACE * i) // shards for i in range(1, shards)
            ]
        boundaries = list(boundaries)
        if len(boundaries) != shards - 1:
            raise InvalidConfigurationError(
                f"{shards} shards need {shards - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        if any(b <= a for a, b in zip(boundaries, boundaries[1:])):
            raise InvalidConfigurationError(
                "shard boundaries must be ascending"
            )
        self.shards = shards
        self.boundaries = boundaries

    @classmethod
    def from_keys(cls, keys: Sequence[int], shards: int) -> "ShardRouter":
        """Equal-population boundaries from a sorted key sample.

        Splitting at the ``i*n/k``-th loaded key guarantees every shard
        starts non-empty (required: most indexes are built by
        ``bulk_load`` and then grown), so ``shards`` cannot exceed the
        number of loaded keys.  Duplicate-heavy samples can make two
        split points land on the same key value; the boundary then
        advances to the next strictly greater key so the boundary list
        stays ascending and every shard still starts non-empty.
        """
        n = len(keys)
        if shards > n:
            raise InvalidConfigurationError(
                f"cannot split {n} keys into {shards} non-empty shards"
            )
        boundaries: List[int] = []
        # Every boundary must exceed the previous one AND the first key,
        # otherwise the shard to its left would start empty.
        prev = keys[0] if n else 0
        for i in range(1, shards):
            candidate = keys[(n * i) // shards]
            if candidate <= prev:
                # Duplicate run: advance to the next distinct key.
                nxt = bisect_right(keys, prev)
                if nxt >= n:
                    distinct = len(set(keys))
                    raise InvalidConfigurationError(
                        f"cannot split keys into {shards} non-empty "
                        f"shards: only {distinct} distinct key(s) in the "
                        f"{n}-key sample"
                    )
                candidate = keys[nxt]
            boundaries.append(candidate)
            prev = candidate
        return cls(shards, boundaries)

    def shard_of(self, key: int) -> int:
        return bisect_right(self.boundaries, key)

    def partition(
        self, items: Sequence[Tuple[int, Any]]
    ) -> List[List[Tuple[int, Any]]]:
        """Split ``(key, value)`` pairs per shard, preserving input order
        inside each shard (so in-batch duplicate semantics survive)."""
        parts: List[List[Tuple[int, Any]]] = [[] for _ in range(self.shards)]
        for key, value in items:
            parts[self.shard_of(key)].append((key, value))
        return parts


def merge_index_stats(
    parts: Sequence[IndexStats], weights: Sequence[int]
) -> IndexStats:
    """Merge per-shard :class:`IndexStats`: counts sum, depths aggregate.

    ``weights`` carries each shard's live key count so the per-key
    averages (depth, error) combine population-weighted.  Shared by the
    in-process :class:`ShardedIndex` and the process-parallel engine
    (:mod:`repro.concurrency.parallel`), whose workers ship their stats
    across the pipe for the same merge.
    """
    live = list(zip(parts, weights))
    total = sum(n for _, n in live)
    out = IndexStats(
        depth_avg=(
            sum(s.depth_avg * n for s, n in live) / total if total else 0.0
        ),
        depth_max=max((s.depth_max for s in parts), default=0),
        leaf_count=sum(s.leaf_count for s in parts),
        avg_error=(
            sum(s.avg_error * n for s, n in live) / total if total else 0.0
        ),
        max_error=max((s.max_error for s in parts), default=0),
        retrain_count=sum(s.retrain_count for s in parts),
        retrain_keys=sum(s.retrain_keys for s in parts),
        retrain_time_ns=sum(s.retrain_time_ns for s in parts),
    )
    for s in parts:
        for k, v in s.extra.items():
            if isinstance(v, (int, float)):
                out.extra[k] = out.extra.get(k, 0) + v
            else:
                out.extra[k] = v
    return out


def _scatter_get_many(
    children: Sequence, router: ShardRouter, keys: Sequence[int]
) -> List[Optional[Any]]:
    """Batch lookup through per-shard ``get_many``, answers in key order."""
    by_shard: List[List[int]] = [[] for _ in range(router.shards)]
    positions: List[List[int]] = [[] for _ in range(router.shards)]
    for pos, key in enumerate(keys):
        s = router.shard_of(key)
        by_shard[s].append(key)
        positions[s].append(pos)
    out: List[Optional[Any]] = [None] * len(keys)
    for s, shard_keys in enumerate(by_shard):
        if not shard_keys:
            continue
        for pos, value in zip(positions[s], children[s].get_many(shard_keys)):
            out[pos] = value
    return out


class ShardedIndex(Index):
    """K independent index instances behind the one-index API.

    Build with :func:`sharded_index` (which picks the sorted variant when
    the child index supports ordered scans).  Until ``bulk_load`` the
    router splits the key space uniformly; ``bulk_load`` re-routes on
    equal-population boundaries of the loaded keys.
    """

    def __init__(
        self,
        factory: Callable[[PerfContext], Index],
        shards: int,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if shards < 1:
            raise InvalidConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        #: One context per shard, or the shared one K times over.
        self.perfs: List[PerfContext] = [
            perf if perf is not None else PerfContext() for _ in range(shards)
        ]
        self.children: List[Index] = [
            factory(ctx) for ctx in self.perfs
        ]
        self.router = ShardRouter(shards)
        self.name = f"sharded[{self.children[0].name}]x{shards}"
        self.insert_is_upsert = self.children[0].insert_is_upsert

    # -- construction -------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[int, Any]]) -> None:
        self.router = ShardRouter.from_keys(
            [k for k, _ in items], len(self.children)
        )
        for child, part in zip(
            self.children, self.router.partition(items)
        ):
            child.bulk_load(part)

    # -- routing ------------------------------------------------------

    def _child(self, key: int) -> Index:
        return self.children[self.router.shard_of(key)]

    def get(self, key: int) -> Optional[Any]:
        return self._child(key).get(key)

    def get_many(self, keys: Sequence[int]) -> List[Optional[Any]]:
        return _scatter_get_many(self.children, self.router, keys)

    def insert(self, key: int, value: Any) -> None:
        self._child(key).insert(key, value)

    def insert_many(self, items: Sequence[Tuple[int, Any]]) -> None:
        for child, part in zip(
            self.children, self.router.partition(items)
        ):
            if part:
                child.insert_many(part)

    def upsert(self, key: int, value: Any) -> Optional[Any]:
        return self._child(key).upsert(key, value)

    def upsert_many(
        self, items: Sequence[Tuple[int, Any]]
    ) -> List[Optional[Any]]:
        by_shard = self.router.partition(items)
        positions: List[List[int]] = [[] for _ in range(self.router.shards)]
        for pos, (key, _) in enumerate(items):
            positions[self.router.shard_of(key)].append(pos)
        out: List[Optional[Any]] = [None] * len(items)
        for child, part, pos_list in zip(
            self.children, by_shard, positions
        ):
            if part:
                for pos, old in zip(pos_list, child.upsert_many(part)):
                    out[pos] = old
        return out

    def update(self, key: int, value: Any) -> bool:
        return self._child(key).update(key, value)

    def delete(self, key: int) -> bool:
        return self._child(key).delete(key)

    # -- metadata -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(child) for child in self.children)

    def size_bytes(self) -> int:
        return sum(child.size_bytes() for child in self.children)

    def key_store_bytes(self) -> int:
        return sum(child.key_store_bytes() for child in self.children)

    def stats(self) -> IndexStats:
        """Per-shard stats merged: counts sum, depths aggregate."""
        return merge_index_stats(
            [child.stats() for child in self.children],
            [len(child) for child in self.children],
        )

    # -- shard-level accounting ---------------------------------------

    def merged_counters(self):
        return merged_counters(self.perfs)

    def elapsed_ns(self, parallel: bool = True) -> float:
        return merged_elapsed_ns(self.perfs, parallel=parallel)


class SortedShardedIndex(ShardedIndex, SortedIndex):
    """Sharded wrapper over a sorted child: range/scan stay ordered."""

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        first = self.router.shard_of(lo)
        for child in self.children[first:]:
            yield from child.range(lo, hi)

    def scan(self, start: int, count: int) -> List[Tuple[int, Any]]:
        out: List[Tuple[int, Any]] = []
        first = self.router.shard_of(start)
        for child in self.children[first:]:
            out.extend(child.scan(start, count - len(out)))
            if len(out) >= count:
                break
        return out

    def scan_many(
        self, starts: Sequence[int], count: int
    ) -> List[List[Tuple[int, Any]]]:
        """Batch scan: per-shard vectorized scans merged in shard order.

        Starts are grouped by their first shard and served with one
        ``scan_many`` per shard; because shards partition the key space
        by range, concatenating each start's per-shard runs left to right
        *is* the k-way merge.  Scans that drain their shard spill right
        exactly like scalar :meth:`scan` — grouped by ``(shard,
        remaining)`` so each spill is one batched child call — and every
        child sees the same ``(start, remaining)`` requests sequential
        scans would issue, so per-shard charge totals stay bit-identical.
        """
        results: List[List[Tuple[int, Any]]] = [[] for _ in starts]
        pending = [
            (i, self.router.shard_of(start), count)
            for i, start in enumerate(starts)
        ]
        last = len(self.children) - 1
        while pending:
            groups: dict = {}
            for i, shard, rem in pending:
                groups.setdefault((shard, rem), []).append(i)
            pending = []
            for (shard, rem), members in sorted(groups.items()):
                runs = self.children[shard].scan_many(
                    [starts[i] for i in members], rem
                )
                for i, run in zip(members, runs):
                    results[i].extend(run)
                    if len(results[i]) < count and shard < last:
                        pending.append(
                            (i, shard + 1, count - len(results[i]))
                        )
        return results


def sharded_index(
    factory: Callable[[PerfContext], Index],
    shards: int,
    perf: Optional[PerfContext] = None,
) -> ShardedIndex:
    """A :class:`ShardedIndex` over ``factory``, sorted-aware.

    Probes one child instance: when the child is a
    :class:`~repro.core.interfaces.SortedIndex`, the returned wrapper is
    a :class:`SortedShardedIndex`, so ``isinstance(x, SortedIndex)``
    gates scans exactly as for the unsharded index.
    """
    probe_ctx = PerfContext()
    cls = (
        SortedShardedIndex
        if isinstance(factory(probe_ctx), SortedIndex)
        else ShardedIndex
    )
    return cls(factory, shards, perf=perf)


class ShardedStore:
    """K Viper stores behind the one-store API, range-routed.

    The store analogue of :class:`ShardedIndex`: each shard owns one
    :class:`~repro.store.viper.ViperStore` (its own index instance *and*
    its own simulated NVM device) on its own perf context — K workers
    with private hardware — unless a shared ``perf`` is supplied for
    single-clock measurement.
    """

    def __init__(
        self,
        factory: Callable[[PerfContext], Index],
        shards: int,
        perf: Optional[PerfContext] = None,
        record_bytes: int = 208,
        slots_per_page: int = 16,
    ):
        if shards < 1:
            raise InvalidConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        self.perfs: List[PerfContext] = [
            perf if perf is not None else PerfContext() for _ in range(shards)
        ]
        self.stores: List[ViperStore] = [
            ViperStore(
                factory(ctx),
                ctx,
                record_bytes=record_bytes,
                slots_per_page=slots_per_page,
            )
            for ctx in self.perfs
        ]
        self.router = ShardRouter(shards)
        #: Ops routed per shard (router load balance observability).
        self.shard_ops: List[int] = [0] * shards
        self.index = self.stores[0].index  # representative, for naming
        self.name = f"sharded[{self.index.name}]x{shards}"

    @property
    def shards(self) -> int:
        return len(self.stores)

    def _store(self, key: int) -> ViperStore:
        s = self.router.shard_of(key)
        self.shard_ops[s] += 1
        return self.stores[s]

    # -- operations ---------------------------------------------------

    def bulk_load(self, items: List[Tuple[int, Any]]) -> None:
        self.router = ShardRouter.from_keys(
            [k for k, _ in items], self.shards
        )
        for store, part in zip(self.stores, self.router.partition(items)):
            store.bulk_load(part)

    def put(self, key: int, value: Any) -> None:
        self._store(key).put(key, value)

    def put_many(self, items: List[Tuple[int, Any]]) -> None:
        for s, part in enumerate(self.router.partition(items)):
            if part:
                self.shard_ops[s] += len(part)
                self.stores[s].put_many(part)

    def get(self, key: int) -> Optional[Any]:
        return self._store(key).get(key)

    def get_many(self, keys: List[int]) -> List[Optional[Any]]:
        for key in keys:
            self.shard_ops[self.router.shard_of(key)] += 1
        return _scatter_get_many(self.stores, self.router, keys)

    def update(self, key: int, value: Any) -> bool:
        return self._store(key).update(key, value)

    def delete(self, key: int) -> bool:
        return self._store(key).delete(key)

    def scan(self, start_key: int, count: int) -> List[Tuple[int, Any]]:
        """Cross-shard ordered scan: drain the start shard, spill right."""
        out: List[Tuple[int, Any]] = []
        first = self.router.shard_of(start_key)
        for s in range(first, self.shards):
            self.shard_ops[s] += 1
            out.extend(self.stores[s].scan(start_key, count - len(out)))
            if len(out) >= count:
                break
        return out

    def scan_many(
        self, starts: List[int], count: int
    ) -> List[List[Tuple[int, Any]]]:
        """Batch cross-shard scan; see ``SortedShardedIndex.scan_many``.

        ``shard_ops`` counts one op per (scan, shard visited), exactly as
        sequential :meth:`scan` calls would."""
        results: List[List[Tuple[int, Any]]] = [[] for _ in starts]
        pending = [
            (i, self.router.shard_of(start), count)
            for i, start in enumerate(starts)
        ]
        last = self.shards - 1
        while pending:
            groups: dict = {}
            for i, shard, rem in pending:
                groups.setdefault((shard, rem), []).append(i)
            pending = []
            for (shard, rem), members in sorted(groups.items()):
                self.shard_ops[shard] += len(members)
                runs = self.stores[shard].scan_many(
                    [starts[i] for i in members], rem
                )
                for i, run in zip(members, runs):
                    results[i].extend(run)
                    if len(results[i]) < count and shard < last:
                        pending.append(
                            (i, shard + 1, count - len(results[i]))
                        )
        return results

    def gc(self) -> int:
        return sum(store.gc() for store in self.stores)

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

    def __contains__(self, key: int) -> bool:
        return key in self._store(key)

    def space_overhead(self) -> dict:
        out: dict = {}
        for store in self.stores:
            for k, v in store.space_overhead().items():
                out[k] = out.get(k, 0) + v
        return out

    # -- shard-level accounting ---------------------------------------

    def merged_counters(self):
        return merged_counters(self.perfs)

    def elapsed_ns(self, parallel: bool = True) -> float:
        """Merged shard clocks (max when shards run in parallel)."""
        return merged_elapsed_ns(self.perfs, parallel=parallel)
