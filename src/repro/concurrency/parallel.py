"""Process-parallel sharded serving engine: one worker process per shard.

The in-process :class:`~repro.concurrency.sharding.ShardedIndex` proves
the range-partitioning semantics but runs every shard on one interpreter
— the GIL means K shards never buy wall-clock throughput.  This module
executes the same partition across CPU cores: a persistent pool of
worker processes, each owning one range partition of the key space,
built **inside** the worker from a registry spec name (nothing large is
ever pickled), serving batched op vectors shipped through
``multiprocessing.shared_memory``-backed numpy uint64 arrays.

Transport
---------
Per worker, one shared-memory segment holds three views: a uint64 key
vector, a uint64 value vector, and a uint8 found-mask.  A ``get_many``
scatters keys by shard (one vectorized ``searchsorted`` + stable argsort,
so in-shard order — and therefore duplicate semantics and simulated
charges — match the in-process scatter exactly), writes each worker's
slice into its segment, and gathers values back in key order.  Values
that are not uint64-encodable (strings, tuples) fall back to the pipe
for that reply; hosts without ``shared_memory`` fall back to pipe
transport entirely (``transport="pipe"``).

Two clocks
----------
The engine keeps the repo's simulated-hardware accounting intact: every
worker brackets each command with ``perf.begin()/end()`` and ships the
:class:`~repro.perf.events.Counters` delta back with the reply; the
parent folds it into its own :class:`~repro.perf.context.PerfContext`
**before** the caller's ``perf.end``.  ``execute_ops``, ``repro bench``,
and ``repro report`` therefore report the same simulated numbers as the
shared-perf in-process sharding — while :attr:`wall_recorder` and
:func:`measure_scaling` measure real wall-clock, which is the number
that improves as workers are added on a multi-core host.

Observability
-------------
Each worker runs its own :class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.metrics.MetricsRegistry`, and
:class:`~repro.perf.breakdown.Profiler`; :meth:`drain_obs` ships them
back and merges into parent-side instances (``Tracer.absorb``,
``MetricsRegistry.merge_from``, ``Profiler.absorb``) so ``repro report
--workers K`` shows one unified lifecycle/metrics view.

With ``span_rate > 0`` the engine additionally records a **causal span
tree** per sampled request (:mod:`repro.obs.spans`): the request span
fans into batch and shard spans parent-side, the shard's span id rides
the command tuple as ``("traced", span_id, cmd)``, and the worker opens
a worker-kind child span around ``serve`` so tracer lifecycle events
(RETRAIN, LATCH_WAIT, ...) attach to the originating request after
:meth:`drain_obs`.  Tracing off (``span_rate=0.0``, the default) takes
a single ``is None`` branch per request — the shipment hot loops are
untouched.  Independently, a :class:`~repro.obs.health.HealthMonitor`
keeps per-worker heartbeats (piggybacked on every reply), flags stalls
past a threshold, and feeds each worker's flight-recorder ring into
:class:`~repro.errors.WorkerDiedError` postmortems.

Fault tolerance
---------------
With ``restart_budget > 0`` the engine is fail-*recover* instead of
fail-stop: a worker that dies (or overruns ``worker_timeout_s``) is
respawned, its partition rebuilt from the retained bulk part plus an
ordered journal of acknowledged mutation batches, and the in-flight
command re-issued exactly once — callers never observe the failure.
Mutations ship inside idempotent token envelopes ``("tok", t, cmd)``;
once the budget is spent the engine degrades per ``degraded``:
``"fail"`` latches broken (the pre-supervision default), ``"partial"``
serves the surviving shards with ``None`` holes for reads and
:class:`~repro.errors.ShardUnavailableError` for writes.  See
:mod:`repro.concurrency.supervise` for the policy and the
deterministic :class:`~repro.concurrency.supervise.FaultPlan`
injection harness.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
import traceback
import weakref
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

from repro.concurrency.sharding import (
    ShardRouter,
    ShardedStore,
    merge_index_stats,
    sharded_index,
)
from repro.concurrency.supervise import (
    DEFAULT_BACKOFF_BASE_S,
    DEFAULT_BACKOFF_CAP_S,
    FaultPlan,
    WorkerSupervisor,
    _RecoveryFailed,
    base_op,
    match_faults,
)
from repro.core.interfaces import Index, IndexStats, SortedIndex
from repro.errors import ReproError, ShardUnavailableError, WorkerDiedError
from repro.obs.health import (
    DEFAULT_FLIGHT_CAPACITY,
    DEFAULT_STALL_THRESHOLD_S,
    HealthMonitor,
    format_flight,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import Tracer
from repro.perf.breakdown import Profiler
from repro.perf.context import PerfContext
from repro.perf.latency import LatencyRecorder

#: Max keys per worker per shipment; larger batches are macro-chunked.
#: 2^16 entries keep a segment at ~1.1 MB (8+8+1 bytes per slot).
DEFAULT_CAPACITY = 1 << 16

_U64_MAX = 1 << 64


# ------------------------------------------------------------ shm layout


class _Segment:
    """Numpy views over one worker's shared-memory op buffers."""

    def __init__(self, shm, capacity: int):
        self.shm = shm
        self.capacity = capacity
        buf = shm.buf
        self.keys = np.frombuffer(buf, dtype=np.uint64, count=capacity)
        self.vals = np.frombuffer(
            buf, dtype=np.uint64, count=capacity, offset=8 * capacity
        )
        self.mask = np.frombuffer(
            buf, dtype=np.uint8, count=capacity, offset=16 * capacity
        )

    def release(self) -> None:
        """Drop the numpy views so the mapping can be closed."""
        self.keys = self.vals = self.mask = None

    @staticmethod
    def nbytes(capacity: int) -> int:
        return 17 * capacity


def _encode_values(values: Sequence[Any], seg: _Segment) -> bool:
    """Write ``values`` into ``seg.vals``/``seg.mask``; False if any value
    is not uint64-encodable (caller falls back to the pipe)."""
    vals, mask = seg.vals, seg.mask
    for i, v in enumerate(values):
        if v is None:
            vals[i] = 0
            mask[i] = 0
        elif type(v) is int and 0 <= v < _U64_MAX:
            vals[i] = v
            mask[i] = 1
        else:
            return False
    return True


def _items_encodable(values: Sequence[Any]) -> bool:
    return all(type(v) is int and 0 <= v < _U64_MAX for v in values)


# ------------------------------------------------------------ worker side


class _WorkerState:
    """Everything one worker process owns: its shard, perf, obs."""

    def __init__(self, cfg: dict):
        from repro.registry import resolve  # deferred: avoids import cycle

        self.worker_id = cfg["worker"]
        # Process generation: 0 for the original worker, +1 per respawn.
        # Seeds and span-id prefixes are offset by it so a recovered
        # worker's ids never collide with its dead predecessor's.
        self.incarnation = cfg.get("incarnation", 0)
        self.perf = PerfContext()
        self.tracer: Optional[Tracer] = None
        if cfg["trace_rate"] > 0.0:
            self.tracer = Tracer(
                rate=cfg["trace_rate"],
                seed=cfg["seed"] + self.worker_id + 7919 * self.incarnation,
            )
            self.perf.tracer = self.tracer
        self.metrics = MetricsRegistry()
        self.profiler = Profiler(self.perf)
        # Span recorder: rate 1.0 worker-side — the head-based sampling
        # decision was already made by the parent; a command only
        # arrives traced when its request was sampled.  The seed offset
        # keeps recorders distinct; the prefix keeps ids globally unique.
        self.spans: Optional[SpanRecorder] = None
        if cfg.get("spans"):
            prefix = f"w{self.worker_id}"
            if self.incarnation:
                prefix = f"w{self.worker_id}r{self.incarnation}"
            self.spans = SpanRecorder(
                rate=1.0,
                seed=cfg["seed"]
                + 101 * (self.worker_id + 1)
                + 7919 * self.incarnation,
                prefix=prefix,
                worker=self.worker_id,
            )
            if self.tracer is not None:
                self.spans.bind_tracer(self.tracer)

        spec = resolve(cfg["spec"])
        overrides = cfg["overrides"]

        def factory(ctx: PerfContext) -> Index:
            return spec.build(ctx, **overrides)

        sub_shards = cfg["sub_shards"]
        if cfg["store"]:
            if sub_shards > 1:
                self.target: Any = ShardedStore(
                    factory,
                    sub_shards,
                    perf=self.perf,
                    record_bytes=cfg["record_bytes"],
                    slots_per_page=cfg["slots_per_page"],
                )
            else:
                from repro.store.viper import ViperStore

                self.target = ViperStore(
                    factory(self.perf),
                    self.perf,
                    record_bytes=cfg["record_bytes"],
                    slots_per_page=cfg["slots_per_page"],
                )
        else:
            if sub_shards > 1:
                self.target = sharded_index(factory, sub_shards, perf=self.perf)
            else:
                self.target = factory(self.perf)

        self.seg: Optional[_Segment] = None
        if cfg["shm_name"] is not None and _shm is not None:
            shm = _shm.SharedMemory(name=cfg["shm_name"])
            # Under spawn, attaching registers the segment with the
            # worker's own resource tracker, which would unlink it when
            # the worker exits; unregister — the parent owns the unlink.
            # Under fork the tracker process is shared with the parent,
            # so the attach-side registration is a no-op and unregistering
            # would strip the parent's entry instead.
            if cfg["start_method"] != "fork":
                try:  # pragma: no cover - tracker internals vary
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
            self.seg = _Segment(shm, cfg["capacity"])

        self.pending_items: List[Tuple[int, Any]] = []

    # -- command handlers ---------------------------------------------

    def _shm_items(self, n: int) -> List[Tuple[int, int]]:
        keys = self.seg.keys[:n].tolist()
        vals = self.seg.vals[:n].tolist()
        return list(zip(keys, vals))

    def _reply_values(self, values: List[Any], n: int):
        """Prefer the shm vector for uint64 replies; else pickle them."""
        if self.seg is not None and n <= self.seg.capacity:
            if _encode_values(values, self.seg):
                return ("shm", n)
        return ("obj", values)

    def _stats(self) -> IndexStats:
        target = self.target
        if isinstance(target, ShardedStore):
            return merge_index_stats(
                [s.index.stats() for s in target.stores],
                [len(s) for s in target.stores],
            )
        if hasattr(target, "index"):  # plain ViperStore
            return target.index.stats()
        return target.stats()

    def serve(self, cmd: tuple):
        """Dispatch one command tuple; returns the reply meta."""
        op = cmd[0]
        if op == "get_many":
            keys = self.seg.keys[: cmd[1]].tolist()
            return self._reply_values(self.target.get_many(keys), len(keys))
        if op == "get_many_pipe":
            return ("obj", self.target.get_many(cmd[1]))
        if op == "write_many":
            _, n, mode = cmd
            return self._write(self._shm_items(n), mode)
        if op == "write_many_pipe":
            _, items, mode = cmd
            return self._write(items, mode)
        if op == "bulk_chunk":
            self.pending_items.extend(self._shm_items(cmd[1]))
            return ("obj", None)
        if op == "bulk_chunk_pipe":
            self.pending_items.extend(cmd[1])
            return ("obj", None)
        if op == "bulk_end":
            items, self.pending_items = self.pending_items, []
            self.target.bulk_load(items)
            return ("obj", len(items))
        if op == "scan_many":
            _, n, count = cmd
            starts = self.seg.keys[:n].tolist()
            return ("obj", self.target.scan_many(starts, count))
        if op == "scan_many_pipe":
            _, starts, count = cmd
            return ("obj", self.target.scan_many(starts, count))
        if op == "call":
            _, method, args = cmd
            if method == "len":
                return ("obj", len(self.target))
            if method == "contains":
                return ("obj", args[0] in self.target)
            if method == "range":
                return ("obj", list(self.target.range(*args)))
            if method == "stats":
                return ("obj", self._stats())
            return ("obj", getattr(self.target, method)(*args))
        if op == "obs":
            return ("obj", self._obs_payload())
        raise ReproError(f"unknown worker command {op!r}")

    def _write(self, items: List[Tuple[int, Any]], mode: str):
        if mode == "insert":
            self.target.insert_many(items)
            return ("obj", None)
        if mode == "upsert":
            return self._reply_values(
                self.target.upsert_many(items), len(items)
            )
        if mode == "put":
            self.target.put_many(items)
            return ("obj", None)
        raise ReproError(f"unknown write mode {mode!r}")

    def _obs_payload(self) -> dict:
        return {
            "worker": self.worker_id,
            "trace_counts": dict(self.tracer.counts) if self.tracer else {},
            "trace_records": list(self.tracer.records) if self.tracer else [],
            "metrics": self.metrics,
            "profiler_counters": self.profiler.total,
            "profiler_ops": self.profiler.op_count,
            "spans": list(self.spans.spans) if self.spans else [],
        }

    def close(self) -> None:
        if self.seg is not None:
            shm = self.seg.shm
            self.seg.release()
            shm.close()
            self.seg = None


#: Reply meta for a mutation whose replay token was already applied
#: (idempotent-envelope dedup; the parent treats it as a no-op ack).
DUP_MARKER = "__repro_dup__"


def _worker_main(conn, cfg: dict) -> None:
    """Worker process entry: build the shard, then serve until ``close``."""
    try:
        state = _WorkerState(cfg)
    except BaseException as exc:  # surface build failures to the parent
        try:
            conn.send(("err", _pickle_safe(exc), traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ok", ("obj", "ready"), None, 0.0, None))
    ops_total = state.metrics.counter(
        "repro_worker_cmds_total", worker=str(state.worker_id)
    )
    wall_hist = state.metrics.histogram(
        "repro_worker_cmd_wall_ns", worker=str(state.worker_id)
    )
    served = 0
    busy_ns = 0.0
    # Fault injection (tests / bench_recovery): scripted directives for
    # this worker, matched per op name against 1-based serve ordinals.
    faults = list(cfg.get("fault") or ())
    incarnation = cfg.get("incarnation", 0)
    fault_counts: Dict[str, int] = {}
    # Idempotent replay: highest mutation token applied so far.  Tokens
    # at or below it are acknowledged without re-applying, so a journal
    # replay that races a late duplicate can never double-apply.
    last_token = 0

    def fired(op: str, phase: str) -> list:
        if not faults:
            return []
        return match_faults(faults, incarnation, op, fault_counts[op], phase)

    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break
        if cmd[0] == "close":
            fault_counts["close"] = fault_counts.get("close", 0) + 1
            if any(d["action"] == "drop" for d in fired("close", "after")):
                continue  # scripted shutdown-refusal: parent must escalate
            conn.send(("ok", ("obj", None), None, 0.0, (served, busy_ns)))
            break
        token = None
        if cmd[0] == "tok":
            _, token, cmd = cmd
        # Span-context propagation: a traced envelope carries the
        # parent-side shard span id; the worker span nests under it.
        span_ctx = None
        if cmd[0] == "traced":
            _, span_ctx, cmd = cmd
        op = base_op(cmd[0])
        fault_counts[op] = fault_counts.get(op, 0) + 1
        for d in fired(op, "before"):
            if d["action"] == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
        if token is not None and token <= last_token:
            served += 1
            conn.send(
                ("ok", ("obj", DUP_MARKER), None, 0.0, (served, busy_ns))
            )
            continue
        wspan = None
        if state.spans is not None and span_ctx is not None:
            wspan = state.spans.start(
                f"cmd:{cmd[0]}", "worker", parent=span_ctx
            )
            state.spans.current = wspan
        t0 = time.perf_counter()
        mark = state.perf.begin()
        try:
            meta = state.serve(cmd)
        except BaseException as exc:
            if state.spans is not None:
                state.spans.current = None
            conn.send(("err", _pickle_safe(exc), traceback.format_exc()))
            continue
        if token is not None:
            last_token = token
        after = fired(op, "after")
        for d in after:
            if d["action"] == "kill":
                # Applied but unacknowledged: the exactly-once case the
                # supervisor's rebuild-then-replay must get right.
                os.kill(os.getpid(), signal.SIGKILL)
        measured = state.perf.end(mark)
        wall_ns = (time.perf_counter() - t0) * 1e9
        if wspan is not None:
            state.spans.current = None
            state.spans.finish(
                wspan, ops=_cmd_ops(cmd), sim_ns=measured.time_ns
            )
        ops_total.inc()
        wall_hist.record(wall_ns)
        state.profiler.record_measured(
            cmd[0], measured, ops=_cmd_ops(cmd) or 1
        )
        delta = {k: v for k, v in measured.counters.as_dict().items() if v}
        served += 1
        busy_ns += wall_ns
        for d in after:
            if d["action"] == "delay" and d["delay_s"] > 0:
                time.sleep(d["delay_s"])
        if any(d["action"] == "drop" for d in after):
            continue  # served silently: exercises the parent deadline path
        conn.send(("ok", meta, delta, wall_ns, (served, busy_ns)))
    state.close()
    conn.close()


def _cmd_ops(cmd: tuple) -> int:
    """How many logical operations a command covers (profiler split)."""
    op = cmd[0]
    if op in ("get_many", "write_many", "bulk_chunk", "scan_many"):
        return cmd[1]
    if op in ("get_many_pipe", "bulk_chunk_pipe", "write_many_pipe",
              "scan_many_pipe"):
        return len(cmd[1])
    return 1


def _pickle_safe(exc: BaseException) -> Optional[BaseException]:
    """The exception itself when it survives pickling, else ``None``."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return None


# ------------------------------------------------------------ parent side


class _WorkerHandle:
    __slots__ = ("worker_id", "proc", "conn", "seg", "pending", "sent_t")

    def __init__(self, worker_id, proc, conn, seg):
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.seg = seg
        #: ``(cmd_name, replayable_cmd)`` of the one in-flight command
        #: (at most one per worker at any time), for supervised re-issue.
        self.pending: Optional[Tuple[str, tuple]] = None
        #: ``time.monotonic()`` of the in-flight send (deadline base).
        self.sent_t: Optional[float] = None


def _finalize_pool(handles: List[_WorkerHandle]) -> None:
    """Idempotent hard cleanup: kill workers, unlink shared memory.

    Registered with ``weakref.finalize`` so segments never leak even if
    the engine is dropped without ``close()``; ``close()`` invokes it
    after the graceful shutdown handshake.  Escalates ``terminate`` →
    ``kill`` and reports any pid that survives both.
    """
    for h in handles:
        if h.proc.is_alive():
            h.proc.terminate()
    for h in handles:
        if h.proc.is_alive():
            h.proc.join(timeout=5)
        if h.proc.is_alive():
            h.proc.kill()
            h.proc.join(timeout=5)
        if h.proc.is_alive():  # pragma: no cover - kill-resistant process
            print(
                f"[repro] leaked worker process: pid {h.proc.pid} "
                f"(worker {h.worker_id}) survived terminate+kill",
                file=sys.stderr,
            )
        try:
            h.conn.close()
        except OSError:
            pass
        if h.seg is not None:
            shm = h.seg.shm
            h.seg.release()
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            h.seg = None


class _ParallelEngine:
    """Shared machinery: worker pool, transport, scatter/gather, obs.

    Not used directly — see :class:`ParallelShardedIndex` /
    :class:`ParallelShardedStore`.
    """

    def __init__(
        self,
        spec,
        workers: int,
        shards: Optional[int] = None,
        perf: Optional[PerfContext] = None,
        overrides: Optional[dict] = None,
        capacity: int = DEFAULT_CAPACITY,
        transport: str = "auto",
        trace_rate: float = 0.0,
        span_rate: float = 0.0,
        stall_threshold_s: float = DEFAULT_STALL_THRESHOLD_S,
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
        seed: int = 0,
        store: bool = False,
        record_bytes: int = 208,
        slots_per_page: int = 16,
        restart_budget: int = 0,
        worker_timeout_s: Optional[float] = None,
        degraded: str = "fail",
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        fault_plan: Optional[FaultPlan] = None,
        close_timeout_s: float = 5.0,
    ):
        from repro.registry import resolve  # deferred: avoids import cycle

        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if transport not in ("auto", "shm", "pipe"):
            raise ReproError(
                f"transport must be auto/shm/pipe, got {transport!r}"
            )
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ReproError(
                f"worker_timeout_s must be > 0, got {worker_timeout_s}"
            )
        spec = resolve(spec) if isinstance(spec, str) else spec
        shards = workers if shards is None else max(shards, workers)
        overrides = dict(overrides or {})

        self.spec = spec
        self.workers = workers
        self.shards = shards
        self.perf = perf if perf is not None else PerfContext()
        #: A cheap local instance for name/sortedness/capability probing.
        self.probe = spec.build(PerfContext(), **overrides)
        self.router = ShardRouter(workers)
        self._boundaries = np.asarray(self.router.boundaries, dtype=np.uint64)
        self._capacity = capacity
        self._store_mode = store
        self._closed = False
        self._broken: Optional[str] = None
        #: Wall nanoseconds per op for every batched shipment (parent side).
        self.wall_recorder = LatencyRecorder()
        #: Ops routed per worker (balance observability).
        self.worker_ops = [0] * workers
        #: Worker-reported wall ns spent serving commands.
        self.busy_ns = [0.0] * workers
        #: Causal span recorder (None = tracing off: no per-request cost
        #: beyond one ``is None`` check).
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(rate=span_rate, seed=seed, prefix="p")
            if span_rate > 0.0
            else None
        )
        #: Heartbeats, stall detection, flight recorders (always on —
        #: it only touches the per-command send/reply path).
        self.health = HealthMonitor(
            workers,
            stall_threshold_s=stall_threshold_s,
            flight_capacity=flight_capacity,
        )
        self._broken_err: Optional[WorkerDiedError] = None
        #: Engine-side recovery telemetry (restart counters, recovery
        #: latency histogram, shard-unavailable counters); merged into
        #: the caller's registry by :meth:`drain_obs`.
        self.metrics = MetricsRegistry()
        self._worker_timeout_s = worker_timeout_s
        self._close_timeout_s = close_timeout_s
        self._fault_plan = fault_plan
        #: Per-shard out-of-service mask (``degraded="partial"`` only).
        self._down = [False] * workers
        #: Monotone per-worker mutation tokens (idempotent replay).
        self._tokens = [0] * workers
        self._incarnations = [0] * workers
        #: Retained bulk partition per worker — the rebuild recipe.
        self._base_items: List[Optional[List[Tuple[int, Any]]]] = (
            [None] * workers
        )
        #: Ordered acknowledged mutation batches per worker, as
        #: ``(token, pipe_cmd)`` — replayed verbatim after a rebuild.
        self._journal: List[List[Tuple[int, tuple]]] = [
            [] for _ in range(workers)
        ]
        #: Non-None only while a bulk load is in flight: workers whose
        #: partition a mid-load recovery already rebuilt end-to-end.
        self._bulk_done: Optional[set] = None
        self.supervisor = WorkerSupervisor(
            self,
            restart_budget=restart_budget,
            degraded=degraded,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
        )

        methods = multiprocessing.get_all_start_methods()
        self._start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(self._start_method)
        use_shm = transport in ("auto", "shm") and _shm is not None
        # Sub-shard split: worker w owns shards[w] in-process sub-shards
        # so --shards K > --workers N still builds K range partitions.
        base, extra = divmod(shards, workers)
        self._sub_shards = [
            base + (1 if w < extra else 0) for w in range(workers)
        ]
        self._overrides = overrides
        self._record_bytes = record_bytes
        self._slots_per_page = slots_per_page
        self._trace_rate = trace_rate
        self._span_on = span_rate > 0.0
        self._seed = seed
        self._handles: List[_WorkerHandle] = []
        try:
            for w in range(workers):
                seg = None
                if use_shm:
                    try:
                        shm = _shm.SharedMemory(
                            create=True, size=_Segment.nbytes(capacity)
                        )
                        seg = _Segment(shm, capacity)
                    except OSError:
                        if transport == "shm":
                            raise
                        use_shm = False  # fall back to pipe for the rest
                self._handles.append(self._spawn_handle(w, seg))
            self._finalizer = weakref.finalize(
                self, _finalize_pool, self._handles
            )
            for h in self._handles:  # wait for builds; surfaces errors
                self._recv(h, "build", recover=False)
        except BaseException:
            _finalize_pool(self._handles)
            raise
        self._shm_on = all(h.seg is not None for h in self._handles)

    # -- worker lifecycle ----------------------------------------------

    def _spawn_handle(self, w: int, seg: Optional[_Segment]) -> _WorkerHandle:
        """Start one worker process over ``seg`` (shared across respawns)."""
        cfg = {
            "worker": w,
            "spec": self.spec.cli_name,
            "overrides": self._overrides,
            "sub_shards": self._sub_shards[w],
            "store": self._store_mode,
            "record_bytes": self._record_bytes,
            "slots_per_page": self._slots_per_page,
            "shm_name": seg.shm.name if seg is not None else None,
            "capacity": self._capacity,
            "start_method": self._start_method,
            "trace_rate": self._trace_rate,
            "spans": self._span_on,
            "seed": self._seed,
            "incarnation": self._incarnations[w],
            "fault": (
                self._fault_plan.for_worker(w) if self._fault_plan else []
            ),
        }
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, cfg),
            daemon=True,
            name=f"repro-shard-{w}",
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(w, proc, parent_conn, seg)

    def _respawn(self, w: int, seg: Optional[_Segment]) -> _WorkerHandle:
        """Spawn the next incarnation of worker ``w`` and await its build.

        The shared-memory segment is reused: the parent owns it, it
        survives the worker's death, and any in-flight request payload
        it holds stays valid for the re-issue.
        """
        self._incarnations[w] += 1
        h = self._spawn_handle(w, seg)
        self._recv_direct(h)  # ready handshake
        return h

    def _rebuild_worker(self, h: _WorkerHandle) -> None:
        """Reconstruct a respawned worker's state: bulk part + journal.

        Uses pipe-form commands only (the shm segment may hold the
        pending request's payload) and drops the replies' perf deltas —
        replayed work was already charged when first acknowledged, so
        recovery leaves the parent's simulated totals bit-identical to
        an unfailed run.
        """
        w = h.worker_id
        part = self._base_items[w]
        if part is not None:
            step = max(1, self._capacity)
            for lo in range(0, len(part), step):
                self._send_direct(h, ("bulk_chunk_pipe", part[lo : lo + step]))
                self._recv_direct(h)
            self._send_direct(h, ("bulk_end",))
            self._recv_direct(h)
        for tok, cmd in self._journal[w]:
            self._send_direct(h, ("tok", tok, cmd))
            self._recv_direct(h)

    @staticmethod
    def _send_direct(h: _WorkerHandle, cmd: tuple) -> None:
        try:
            h.conn.send(cmd)
        except (BrokenPipeError, OSError):
            raise _RecoveryFailed("send")

    def _recv_direct(self, h: _WorkerHandle):
        """One reply outside health/perf accounting (recovery path)."""
        while not h.conn.poll(0.05):
            if not h.proc.is_alive():
                raise _RecoveryFailed("recv")
        try:
            reply = h.conn.recv()
        except (EOFError, OSError):
            raise _RecoveryFailed("recv")
        if reply[0] == "err":
            _, exc, tb = reply
            if exc is not None:
                raise exc
            raise ReproError(
                f"shard worker {h.worker_id} failed during recovery:\n{tb}"
            )
        return reply[1]

    # -- low-level transport ------------------------------------------

    def _ensure_live(self) -> None:
        if self._closed:
            raise ReproError("parallel engine is closed")
        if self._broken:
            if self._broken_err is not None:
                raise self._broken_err
            raise WorkerDiedError(self._broken)

    def _send(
        self, h: _WorkerHandle, cmd: tuple, replay: Optional[tuple] = None
    ) -> None:
        """Ship one command; record what a supervised re-issue would send.

        ``replay`` overrides the re-issue form when re-sending ``cmd``
        verbatim would be wrong (shm ``write_many``: a journal replay
        during rebuild may clobber the segment's value lane with its
        reply, so writes record their pipe form).  Send errors are
        swallowed — every command has exactly one matching ``_recv``,
        which is where death is detected and recovery decided.
        """
        inner = cmd
        span_id = None
        if inner[0] == "tok":
            inner = inner[2]
        if inner[0] == "traced":
            span_id = inner[1]
            inner = inner[2]
        self.health.sent(h.worker_id, inner[0], span_id=span_id)
        h.pending = (inner[0], cmd if replay is None else replay)
        h.sent_t = time.monotonic()
        try:
            h.conn.send(cmd)
        except (BrokenPipeError, OSError):
            pass

    def _died(self, h: _WorkerHandle, cmd_name: str):
        """Unsupervised fail-stop (worker build phase): latch broken."""
        h.proc.join(timeout=1)
        self.health.died(h.worker_id)
        flight = self.health.flight(h.worker_id)
        msg = (
            f"shard worker {h.worker_id} (pid {h.proc.pid}) died with exit "
            f"code {h.proc.exitcode} while serving {cmd_name!r}; the "
            f"engine cannot answer further operations"
        )
        if flight:
            msg += "\nflight recorder (most recent last):\n" + format_flight(
                flight
            )
        self._broken = msg
        self._broken_err = WorkerDiedError(
            msg,
            worker_id=h.worker_id,
            pid=h.proc.pid,
            exitcode=h.proc.exitcode,
            flight=[e.to_dict() for e in flight],
        )
        raise self._broken_err

    def _recv(self, h: _WorkerHandle, cmd_name: str, recover: bool = True):
        """One reply; surfaces worker death instead of hanging forever.

        With ``recover`` (every post-build command), a death or
        deadline overrun routes through the supervisor, which either
        returns the re-issued command's reply — the caller never learns
        a failure happened — or raises the degradation error.
        """
        deadline = None
        if (
            recover
            and self._worker_timeout_s is not None
            and h.sent_t is not None
        ):
            deadline = h.sent_t + self._worker_timeout_s
        while not h.conn.poll(0.05):
            if not h.proc.is_alive():
                if not recover:
                    self._died(h, cmd_name)
                return self.supervisor.handle_failure(h, cmd_name, "died")
            if deadline is not None and time.monotonic() > deadline:
                h.proc.kill()
                h.proc.join(timeout=5)
                self.health.timeout(h.worker_id)
                return self.supervisor.handle_failure(h, cmd_name, "timeout")
            if self.health.waiting(h.worker_id):
                print(
                    f"[repro] shard worker {h.worker_id} stalled: no reply "
                    f"for {self.health.stall_threshold_s:.1f}s while serving "
                    f"{cmd_name!r}",
                    file=sys.stderr,
                )
        try:
            reply = h.conn.recv()
        except (EOFError, OSError):
            if not recover:
                self._died(h, cmd_name)
            return self.supervisor.handle_failure(h, cmd_name, "died")
        h.pending = None
        h.sent_t = None
        if reply[0] == "err":
            _, exc, tb = reply
            self.health.reply(h.worker_id, 0.0, None)
            if exc is not None:
                raise exc
            raise ReproError(
                f"shard worker {h.worker_id} failed serving {cmd_name!r}:\n{tb}"
            )
        _, meta, delta, wall_ns, heartbeat = reply
        self.health.reply(h.worker_id, wall_ns, heartbeat)
        if delta:
            counters = self.perf.counters
            for name, v in delta.items():
                setattr(counters, name, getattr(counters, name) + v)
        self.busy_ns[h.worker_id] += wall_ns
        return meta

    # -- degraded-mode accounting --------------------------------------

    def _count_unavailable(self, w: int, n: int) -> None:
        self.metrics.counter(
            "repro_shard_unavailable_total", worker=str(w)
        ).inc(n)

    def availability(self) -> List[bool]:
        """Per-shard serving mask; ``False`` = degraded out of service."""
        return [not d for d in self._down]

    # -- span plumbing -------------------------------------------------

    def _req_span(self, name: str, **attrs) -> Optional[Span]:
        """Open a request-root span, or None (tracing off / not sampled)."""
        if self.spans is None or not self.spans.sample():
            return None
        return self.spans.start(f"request:{name}", "request", **attrs)

    @staticmethod
    def _wrap(cmd: tuple, shard_span: Optional[Span]) -> tuple:
        """Envelope ``cmd`` with the shard span id when the request is
        sampled; untraced commands ship unwrapped (no-op fast path)."""
        if shard_span is None:
            return cmd
        return ("traced", shard_span.span_id, cmd)

    @staticmethod
    def _degraded_read_default(method: str):
        if method in ("scan", "range"):
            return []
        if method == "contains":
            return False
        return None

    def _call(self, w: int, cmd: tuple, mutate: bool = False):
        self._ensure_live()
        name = cmd[1] if cmd[0] == "call" else cmd[0]
        if self._down[w]:
            self._count_unavailable(w, 1)
            if mutate:
                raise ShardUnavailableError(
                    f"shard {w} is out of service; cannot apply {name!r}",
                    worker_id=w,
                    lost_ops=1,
                )
            return self._degraded_read_default(name)
        req = self._req_span(name, worker=w)
        h = self._handles[w]
        sspan = None
        if req is not None:
            sspan = self.spans.start(
                f"shard:{w}", "shard", parent=req.span_id, worker=w
            )
        wrapped = self._wrap(cmd, sspan)
        tok = None
        if mutate:
            self._tokens[w] += 1
            tok = self._tokens[w]
            wrapped = ("tok", tok, wrapped)
        self._send(h, wrapped)
        try:
            meta = self._recv(h, cmd[0])
        except ShardUnavailableError:
            self._count_unavailable(w, 1)
            if req is not None:
                self.spans.finish(sspan)
                self.spans.finish(req)
            if mutate:
                raise
            return self._degraded_read_default(name)
        if mutate:
            self._journal[w].append((tok, cmd))
        if req is not None:
            self.spans.finish(sspan)
            self.spans.finish(req)
        return meta[1] if meta[0] == "obj" else meta

    def _broadcast(self, cmd: tuple) -> List[Any]:
        self._ensure_live()
        live = [h for h in self._handles if not self._down[h.worker_id]]
        for h in live:
            self._send(h, cmd)
        out: List[Any] = []
        for h in live:
            try:
                out.append(self._recv(h, cmd[0])[1])
            except ShardUnavailableError:
                continue  # went down mid-broadcast: merge the survivors
        return out

    def _decode_values(self, h: _WorkerHandle, meta, n: int) -> List[Any]:
        if meta[0] == "shm":
            vals = h.seg.vals[:n].tolist()
            mask = h.seg.mask[:n].tolist()
            return [v if m else None for v, m in zip(vals, mask)]
        return meta[1]

    # -- scatter/gather ------------------------------------------------

    def _scatter(self, keys_arr: np.ndarray):
        """(order, sorted_keys, counts) grouping ``keys_arr`` by worker.

        Stable sort by shard id: in-shard order equals input order, so
        duplicate-key semantics and per-shard ``get_many`` charge streams
        match the in-process scatter bit-for-bit.
        """
        if self.workers == 1:
            return None, keys_arr, [len(keys_arr)]
        sid = np.searchsorted(self._boundaries, keys_arr, side="right")
        order = np.argsort(sid, kind="stable")
        counts = np.bincount(sid, minlength=self.workers).tolist()
        return order, keys_arr[order], counts

    def _chunk_step(self, n: int) -> int:
        return self._capacity if self._shm_on else max(n, 1)

    def _get_many(self, keys: Sequence[int]) -> List[Optional[Any]]:
        self._ensure_live()
        keys = list(keys)
        req = self._req_span("get_many", ops=len(keys))
        out: List[Optional[Any]] = [None] * len(keys)
        step = self._chunk_step(len(keys))
        for lo in range(0, len(keys), step):
            self._get_chunk(keys[lo : lo + step], out, lo, req)
        if req is not None:
            self.spans.finish(req)
        return out

    def _get_chunk(self, chunk, out, base, req: Optional[Span] = None) -> None:
        t0 = time.perf_counter()
        batch = None
        if req is not None:
            batch = self.spans.start(
                "batch:get", "batch", parent=req.span_id, base=base,
                ops=len(chunk),
            )
        order, sorted_keys, counts = self._scatter(
            np.asarray(chunk, dtype=np.uint64)
        )
        active: List[Tuple[Optional[_WorkerHandle], int, int, Optional[Span]]] = []
        off = 0
        for w, n in enumerate(counts):
            if not n:
                continue
            piece = sorted_keys[off : off + n]
            off += n
            if self._down[w]:
                self._count_unavailable(w, n)
                active.append((None, w, n, None))
                continue
            h = self._handles[w]
            self.worker_ops[w] += n
            sspan = None
            if batch is not None:
                sspan = self.spans.start(
                    f"shard:{w}", "shard", parent=batch.span_id, worker=w,
                    ops=n,
                )
            if self._shm_on:
                h.seg.keys[:n] = piece
                self._send(h, self._wrap(("get_many", n), sspan))
            else:
                self._send(
                    h, self._wrap(("get_many_pipe", piece.tolist()), sspan)
                )
            active.append((h, w, n, sspan))
        gathered: List[Any] = []
        for h, w, n, sspan in active:
            if h is None:  # down shard: degraded None holes
                gathered.extend([None] * n)
                continue
            try:
                meta = self._recv(h, "get_many")
            except ShardUnavailableError:
                self._count_unavailable(w, n)
                meta = None
            if sspan is not None:
                self.spans.finish(sspan)
            if meta is None:
                gathered.extend([None] * n)
            else:
                gathered.extend(self._decode_values(h, meta, n))
        if order is None:
            out[base : base + len(gathered)] = gathered
        else:
            for pos, v in zip(order.tolist(), gathered):
                out[base + pos] = v
        if batch is not None:
            self.spans.finish(batch)
        if chunk:
            self.wall_recorder.record(
                (time.perf_counter() - t0) * 1e9 / len(chunk)
            )

    def _scan_many(
        self, starts: Sequence[int], count: int, count_ops: bool = False
    ) -> List[List[Tuple[int, Any]]]:
        """Batched cross-worker scans via grouped spill rounds.

        Starts open on their home worker; scans still short of ``count``
        after draining it spill to the next worker, regrouped by
        ``(worker, remaining)`` so every round ships one command per
        group.  The per-worker call multiset equals sequential scalar
        ``scan`` calls, so simulated charges match bit-for-bit.  Start
        keys ride the shared-memory segment; runs hold ``(key, value)``
        tuples, so replies always come back over the pipe.
        """
        self._ensure_live()
        starts = list(starts)
        req = self._req_span("scan_many", ops=len(starts), count=count)
        results: List[List[Tuple[int, Any]]] = [[] for _ in starts]
        pending = [
            (i, self.router.shard_of(start), count)
            for i, start in enumerate(starts)
        ]
        spill_round = 0
        while pending:
            batch = None
            if req is not None:
                batch = self.spans.start(
                    f"batch:scan-round{spill_round}", "batch",
                    parent=req.span_id, ops=len(pending),
                )
            spill_round += 1
            groups: dict = {}
            for i, w, rem in pending:
                groups.setdefault((w, rem), []).append(i)
            pending = []
            for (w, rem), members in sorted(groups.items()):
                t0 = time.perf_counter()
                if self._down[w]:
                    # Down shard contributes nothing; scans spill past it
                    # (a gap in the results, counted per skipped op).
                    self._count_unavailable(w, len(members))
                    for i in members:
                        if w + 1 < self.workers:
                            pending.append((i, w + 1, rem))
                    continue
                if count_ops:
                    self.worker_ops[w] += len(members)
                runs: List[List[Tuple[int, Any]]] = []
                step = self._chunk_step(len(members))
                for lo in range(0, len(members), step):
                    piece = [starts[i] for i in members[lo : lo + step]]
                    if self._down[w]:  # went down earlier in this group
                        self._count_unavailable(w, len(piece))
                        runs.extend([[] for _ in piece])
                        continue
                    h = self._handles[w]
                    sspan = None
                    if batch is not None:
                        sspan = self.spans.start(
                            f"shard:{w}", "shard", parent=batch.span_id,
                            worker=w, ops=len(piece),
                        )
                    if self._shm_on:
                        h.seg.keys[: len(piece)] = np.asarray(
                            piece, dtype=np.uint64
                        )
                        self._send(
                            h,
                            self._wrap(("scan_many", len(piece), rem), sspan),
                        )
                    else:
                        self._send(
                            h, self._wrap(("scan_many_pipe", piece, rem), sspan)
                        )
                    try:
                        runs.extend(self._recv(h, "scan_many")[1])
                    except ShardUnavailableError:
                        self._count_unavailable(w, len(piece))
                        runs.extend([[] for _ in piece])
                    if sspan is not None:
                        self.spans.finish(sspan)
                for i, run in zip(members, runs):
                    results[i].extend(run)
                    if len(results[i]) < count and w + 1 < self.workers:
                        pending.append((i, w + 1, count - len(results[i])))
                self.wall_recorder.record(
                    (time.perf_counter() - t0) * 1e9 / len(members)
                )
            if batch is not None:
                self.spans.finish(batch)
        if req is not None:
            self.spans.finish(req)
        return results

    def _write_many(
        self, items: Sequence[Tuple[int, Any]], mode: str, want_old: bool
    ) -> Optional[List[Optional[Any]]]:
        self._ensure_live()
        items = list(items)
        req = self._req_span(f"write_many:{mode}", ops=len(items))
        out: Optional[List[Optional[Any]]] = (
            [None] * len(items) if want_old else None
        )
        step = self._chunk_step(len(items))
        for lo in range(0, len(items), step):
            self._write_chunk(items[lo : lo + step], mode, out, lo, req)
        if req is not None:
            self.spans.finish(req)
        return out

    def _write_chunk(
        self, chunk, mode, out, base, req: Optional[Span] = None
    ) -> None:
        t0 = time.perf_counter()
        batch = None
        if req is not None:
            batch = self.spans.start(
                f"batch:{mode}", "batch", parent=req.span_id, base=base,
                ops=len(chunk),
            )
        keys_arr = np.fromiter(
            (k for k, _ in chunk), dtype=np.uint64, count=len(chunk)
        )
        order, _, counts = self._scatter(keys_arr)
        ordered = (
            chunk if order is None else [chunk[i] for i in order.tolist()]
        )
        shm_ok = self._shm_on and _items_encodable([v for _, v in ordered])
        active: List[tuple] = []  # (h|None, w, n, sspan, piece, tok)
        lost: List[Tuple[int, int]] = []
        off = 0
        for w, n in enumerate(counts):
            if not n:
                continue
            piece = ordered[off : off + n]
            off += n
            if self._down[w]:
                self._count_unavailable(w, n)
                lost.append((w, n))
                active.append((None, w, n, None, piece, None))
                continue
            h = self._handles[w]
            self.worker_ops[w] += n
            sspan = None
            if batch is not None:
                sspan = self.spans.start(
                    f"shard:{w}", "shard", parent=batch.span_id, worker=w,
                    ops=n,
                )
            self._tokens[w] += 1
            tok = self._tokens[w]
            pipe_cmd = ("write_many_pipe", piece, mode)
            if shm_ok:
                h.seg.keys[:n] = np.fromiter(
                    (k for k, _ in piece), dtype=np.uint64, count=n
                )
                h.seg.vals[:n] = np.fromiter(
                    (v for _, v in piece), dtype=np.uint64, count=n
                )
                self._send(
                    h,
                    ("tok", tok, self._wrap(("write_many", n, mode), sspan)),
                    replay=("tok", tok, pipe_cmd),
                )
            else:
                self._send(h, ("tok", tok, self._wrap(pipe_cmd, sspan)))
            active.append((h, w, n, sspan, piece, tok))
        gathered: List[Any] = []
        for h, w, n, sspan, piece, tok in active:
            if h is None:  # down shard: the batch loses these ops
                if out is not None:
                    gathered.extend([None] * n)
                continue
            try:
                meta = self._recv(h, "write_many")
            except ShardUnavailableError:
                self._count_unavailable(w, n)
                lost.append((w, n))
                meta = None
            if sspan is not None:
                self.spans.finish(sspan)
            if meta is not None:
                self._journal[w].append(
                    (tok, ("write_many_pipe", piece, mode))
                )
            if out is not None:
                if meta is None:
                    gathered.extend([None] * n)
                else:
                    gathered.extend(self._decode_values(h, meta, n))
        if out is not None:
            if order is None:
                out[base : base + len(gathered)] = gathered
            else:
                for pos, v in zip(order.tolist(), gathered):
                    out[base + pos] = v
        if batch is not None:
            self.spans.finish(batch)
        if chunk:
            self.wall_recorder.record(
                (time.perf_counter() - t0) * 1e9 / len(chunk)
            )
        if lost:
            total = sum(n for _, n in lost)
            shards = sorted({w for w, _ in lost})
            raise ShardUnavailableError(
                f"write batch lost {total} op(s) on out-of-service "
                f"shard(s) {shards}; surviving shards were applied",
                worker_id=shards[0],
                lost_ops=total,
            )

    # -- construction --------------------------------------------------

    def _bulk_load(self, items: Sequence[Tuple[int, Any]]) -> None:
        """Ship each worker its range partition, then build in parallel.

        ``items`` arrive sorted ascending by unique key (the ``bulk_load``
        contract), so partitioning is a boundary cut, not a scatter.
        """
        self._ensure_live()
        if any(self._down):
            down = [w for w, d in enumerate(self._down) if d]
            raise ShardUnavailableError(
                f"cannot bulk load while shard(s) {down} are out of service",
                worker_id=down[0],
            )
        items = list(items)
        req = self._req_span("bulk_load", ops=len(items))
        self.router = ShardRouter.from_keys(
            [k for k, _ in items], self.workers
        )
        self._boundaries = np.asarray(self.router.boundaries, dtype=np.uint64)
        keys = [k for k, _ in items]
        cuts = [0]
        from bisect import bisect_left

        for b in self.router.boundaries:
            cuts.append(bisect_left(keys, b))
        cuts.append(len(items))
        parts = [items[cuts[w] : cuts[w + 1]] for w in range(self.workers)]
        # Retain the rebuild recipe: a recovery rebuilds worker w from
        # parts[w] + its (now reset) mutation journal.  A death while
        # shipping rebuilds the *whole* part and marks w done below.
        self._base_items = parts
        self._journal = [[] for _ in range(self.workers)]
        self._bulk_done = set()
        try:
            # Ship chunks round-robin (one in flight per worker), then
            # issue bulk_end to all workers at once so builds overlap.
            step = self._capacity if self._shm_on else max(len(items), 1)
            offsets = [0] * self.workers
            while True:
                active = []
                for w, part in enumerate(parts):
                    if w in self._bulk_done or offsets[w] >= len(part):
                        continue
                    piece = part[offsets[w] : offsets[w] + step]
                    offsets[w] += len(piece)
                    h = self._handles[w]
                    sspan = None
                    if req is not None:
                        sspan = self.spans.start(
                            f"shard:{w}", "shard", parent=req.span_id,
                            worker=w, ops=len(piece),
                        )
                    if self._shm_on and _items_encodable(
                        [v for _, v in piece]
                    ):
                        n = len(piece)
                        h.seg.keys[:n] = np.fromiter(
                            (k for k, _ in piece), dtype=np.uint64, count=n
                        )
                        h.seg.vals[:n] = np.fromiter(
                            (v for _, v in piece), dtype=np.uint64, count=n
                        )
                        self._send(h, self._wrap(("bulk_chunk", n), sspan))
                    else:
                        self._send(
                            h, self._wrap(("bulk_chunk_pipe", piece), sspan)
                        )
                    active.append((h, sspan))
                if not active:
                    break
                for h, sspan in active:
                    self._recv(h, "bulk_chunk")
                    if sspan is not None:
                        self.spans.finish(sspan)
            enders = []
            for w in range(self.workers):
                if w in self._bulk_done:
                    continue
                h = self._handles[w]
                sspan = None
                if req is not None:
                    sspan = self.spans.start(
                        f"shard:{w}", "shard", parent=req.span_id, worker=w,
                        build=True,
                    )
                self._send(h, self._wrap(("bulk_end",), sspan))
                enders.append((h, sspan))
            for h, sspan in enders:
                self._recv(h, "bulk_end")
                if sspan is not None:
                    self.spans.finish(sspan)
        finally:
            self._bulk_done = None
        if req is not None:
            self.spans.finish(req)

    # -- lifecycle -----------------------------------------------------

    def drain_obs(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> List[dict]:
        """Pull every worker's tracer/metrics/profiler/span state and merge
        it into the given parent-side instances.  Returns the raw payloads.

        Pass ``spans=engine.spans`` (or any recorder) to fold worker-side
        worker/event spans into the parent's request trees — their ids are
        globally unique by prefix, so parent links resolve after the merge.
        """
        payloads = self._broadcast(("obs",))
        for p in payloads:
            if tracer is not None:
                tracer.absorb(p["trace_counts"], p["trace_records"])
            if metrics is not None:
                metrics.merge_from(p["metrics"])
            if profiler is not None:
                profiler.absorb(p["profiler_counters"], p["profiler_ops"])
            if spans is not None:
                spans.absorb(p.get("spans", ()))
        # Engine-side recovery telemetry (restarts, recovery latency,
        # shard-unavailable counts) lives in the parent, not a worker.
        if metrics is not None:
            metrics.merge_from(self.metrics)
        return payloads

    def worker_utilization(self) -> List[float]:
        """Per-worker share of total worker-side serving time (balance)."""
        total = sum(self.busy_ns)
        if total <= 0:
            return [0.0] * self.workers
        return [b / total for b in self.busy_ns]

    def close(self) -> None:
        """Shut the pool down; workers detach and the parent unlinks every
        shared-memory segment (no leaked ``/dev/shm`` entries).

        A worker that ignores the handshake past ``close_timeout_s`` is
        escalated ``terminate`` → ``kill``; pids that survive both are
        reported to stderr instead of silently leaking.
        """
        if self._closed:
            return
        self._closed = True
        for h in self._handles:
            if h.proc.is_alive():
                try:
                    h.conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + self._close_timeout_s
        for h in self._handles:
            h.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        laggards = [h for h in self._handles if h.proc.is_alive()]
        for h in laggards:
            h.proc.terminate()
        for h in laggards:
            h.proc.join(timeout=1)
        stubborn = [h for h in laggards if h.proc.is_alive()]
        for h in stubborn:
            h.proc.kill()
        for h in stubborn:
            h.proc.join(timeout=1)
        leaked = [h.proc.pid for h in stubborn if h.proc.is_alive()]
        if leaked:  # pragma: no cover - kill-resistant process
            print(
                f"[repro] worker process(es) survived close escalation "
                f"(terminate+kill): pids {leaked}",
                file=sys.stderr,
            )
        self._finalizer()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- shared read-side API ------------------------------------------

    def stats(self) -> IndexStats:
        parts = self._broadcast(("call", "stats", ()))
        lens = self._broadcast(("call", "len", ()))
        return merge_index_stats(parts, lens)

    def __len__(self) -> int:
        return sum(self._broadcast(("call", "len", ())))


class ParallelShardedIndex(_ParallelEngine, Index):
    """A registry index executed across worker processes, one per shard.

    Same contract as the in-process
    :class:`~repro.concurrency.sharding.ShardedIndex` — bit-identical
    answers for any worker count (``tests/test_parallel_engine.py``) —
    but each shard runs on its own core.  Build via
    :func:`parallel_sharded_index`, which picks the sorted variant.
    """

    def __init__(self, spec, workers: int, **kwargs):
        kwargs.pop("store", None)
        _ParallelEngine.__init__(self, spec, workers, store=False, **kwargs)
        Index.__init__(self, self.perf)
        self.name = f"parallel[{self.probe.name}]x{self.workers}"
        self.insert_is_upsert = self.probe.insert_is_upsert

    # construction / reads
    def bulk_load(self, items: Sequence[Tuple[int, Any]]) -> None:
        self._bulk_load(items)

    def get(self, key: int) -> Optional[Any]:
        return self._call(self.router.shard_of(key), ("call", "get", (key,)))

    def get_many(self, keys: Sequence[int]) -> List[Optional[Any]]:
        return self._get_many(keys)

    # writes
    def insert(self, key: int, value: Any) -> None:
        self._call(
            self.router.shard_of(key),
            ("call", "insert", (key, value)),
            mutate=True,
        )

    def insert_many(self, items: Sequence[Tuple[int, Any]]) -> None:
        self._write_many(items, "insert", want_old=False)

    def upsert(self, key: int, value: Any) -> Optional[Any]:
        return self._call(
            self.router.shard_of(key),
            ("call", "upsert", (key, value)),
            mutate=True,
        )

    def upsert_many(
        self, items: Sequence[Tuple[int, Any]]
    ) -> List[Optional[Any]]:
        return self._write_many(items, "upsert", want_old=True)

    def update(self, key: int, value: Any) -> bool:
        return self._call(
            self.router.shard_of(key),
            ("call", "update", (key, value)),
            mutate=True,
        )

    def delete(self, key: int) -> bool:
        return self._call(
            self.router.shard_of(key), ("call", "delete", (key,)), mutate=True
        )

    # metadata
    def size_bytes(self) -> int:
        return sum(self._broadcast(("call", "size_bytes", ())))

    def key_store_bytes(self) -> int:
        return sum(self._broadcast(("call", "key_store_bytes", ())))

    def capabilities(self):
        return self.probe.capabilities()


class ParallelSortedShardedIndex(ParallelShardedIndex, SortedIndex):
    """Sorted variant: cross-worker scans drain left-to-right in order."""

    def scan(self, start: int, count: int) -> List[Tuple[int, Any]]:
        out: List[Tuple[int, Any]] = []
        for w in range(self.router.shard_of(start), self.workers):
            out.extend(
                self._call(w, ("call", "scan", (start, count - len(out))))
            )
            if len(out) >= count:
                break
        return out

    def scan_many(
        self, starts: Sequence[int], count: int
    ) -> List[List[Tuple[int, Any]]]:
        return self._scan_many(starts, count)

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        for w in range(self.router.shard_of(lo), self.workers):
            yield from self._call(w, ("call", "range", (lo, hi)))


def parallel_sharded_index(
    spec, workers: int, **kwargs
) -> ParallelShardedIndex:
    """A :class:`ParallelShardedIndex` over ``spec``, sorted-aware.

    Mirrors :func:`~repro.concurrency.sharding.sharded_index`: probes a
    local instance and returns the sorted variant when the child supports
    ordered scans, so ``isinstance(x, SortedIndex)`` gates scans exactly
    as for the in-process wrapper.
    """
    from repro.registry import resolve

    spec = resolve(spec) if isinstance(spec, str) else spec
    probe = spec.build(PerfContext(), **dict(kwargs.get("overrides") or {}))
    cls = (
        ParallelSortedShardedIndex
        if isinstance(probe, SortedIndex)
        else ParallelShardedIndex
    )
    return cls(spec, workers, **kwargs)


class ParallelShardedStore(_ParallelEngine):
    """K Viper stores behind the one-store API, one worker process each.

    The store analogue of :class:`ParallelShardedIndex` and the
    process-parallel analogue of
    :class:`~repro.concurrency.sharding.ShardedStore`: each worker owns a
    :class:`~repro.store.viper.ViperStore` (its own index *and* its own
    simulated NVM device) over its range partition.  ``.index`` exposes a
    local representative instance so
    :class:`~repro.bench.runner.StoreAdapter` and the CLI name/sortedness
    probes keep working unchanged.
    """

    def __init__(self, spec, workers: int, **kwargs):
        kwargs.pop("store", None)
        _ParallelEngine.__init__(self, spec, workers, store=True, **kwargs)
        self.index = self.probe  # representative, for naming/capabilities
        self.name = f"parallel[{self.probe.name}]x{self.workers}"

    # -- operations ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[int, Any]]) -> None:
        self._bulk_load(items)

    def get(self, key: int) -> Optional[Any]:
        w = self.router.shard_of(key)
        self.worker_ops[w] += 1
        return self._call(w, ("call", "get", (key,)))

    def get_many(self, keys: Sequence[int]) -> List[Optional[Any]]:
        return self._get_many(keys)

    def put(self, key: int, value: Any) -> None:
        w = self.router.shard_of(key)
        self.worker_ops[w] += 1
        self._call(w, ("call", "put", (key, value)), mutate=True)

    def put_many(self, items: Sequence[Tuple[int, Any]]) -> None:
        self._write_many(items, "put", want_old=False)

    def update(self, key: int, value: Any) -> bool:
        w = self.router.shard_of(key)
        self.worker_ops[w] += 1
        return self._call(w, ("call", "update", (key, value)), mutate=True)

    def delete(self, key: int) -> bool:
        w = self.router.shard_of(key)
        self.worker_ops[w] += 1
        return self._call(w, ("call", "delete", (key,)), mutate=True)

    def scan(self, start_key: int, count: int) -> List[Tuple[int, Any]]:
        out: List[Tuple[int, Any]] = []
        for w in range(self.router.shard_of(start_key), self.workers):
            self.worker_ops[w] += 1
            out.extend(
                self._call(w, ("call", "scan", (start_key, count - len(out))))
            )
            if len(out) >= count:
                break
        return out

    def scan_many(
        self, starts: Sequence[int], count: int
    ) -> List[List[Tuple[int, Any]]]:
        return self._scan_many(starts, count, count_ops=True)

    def gc(self) -> int:
        # Per-worker mutating calls (not a broadcast): gc changes store
        # state, so it must be journaled for post-recovery replay and
        # must skip out-of-service shards.
        total = 0
        for w in range(self.workers):
            if self._down[w]:
                continue
            reclaimed = self._call(w, ("call", "gc", ()), mutate=True)
            if reclaimed:
                total += reclaimed
        return total

    def __contains__(self, key: int) -> bool:
        return self._call(
            self.router.shard_of(key), ("call", "contains", (key,))
        )

    def space_overhead(self) -> dict:
        out: dict = {}
        for part in self._broadcast(("call", "space_overhead", ())):
            for k, v in part.items():
                out[k] = out.get(k, 0) + v
        return out


def parallel_sharded_store(
    spec, workers: int, **kwargs
) -> ParallelShardedStore:
    """A :class:`ParallelShardedStore` over ``spec`` (name or IndexSpec)."""
    return ParallelShardedStore(spec, workers, **kwargs)


# ------------------------------------------------------------ measurement


def measure_scaling(
    spec,
    items: Sequence[Tuple[int, int]],
    ops,
    worker_counts: Sequence[int],
    batch_size: int = 2048,
    store: bool = True,
    shards: Optional[int] = None,
    transport: str = "auto",
    overrides: Optional[dict] = None,
) -> List[dict]:
    """Measured wall-clock scaling: run ``ops`` through a real engine at
    each worker count and report throughput rows.

    This is what ``thread_scaling(projection="measured")`` and the Fig
    12/14 ``--projection measured`` branches delegate to — the
    closed-loop validation of the analytic/simulated projections.  Rows
    carry ``throughput_mops`` (wall), ``wall_s``, ``mean_ns`` and
    ``p999_ns`` (per-op wall, from the engine's shipment recorder), and
    ``utilization`` (per-worker busy share, min..max).
    """
    from repro.bench.runner import IndexAdapter, StoreAdapter, execute_ops

    ops = list(ops)
    rows: List[dict] = []
    for w in worker_counts:
        maker = parallel_sharded_store if store else parallel_sharded_index
        engine = maker(
            spec,
            workers=w,
            shards=shards,
            transport=transport,
            overrides=overrides,
        )
        try:
            engine.bulk_load(list(items))
            target = (
                StoreAdapter(engine) if store else IndexAdapter(engine)
            )
            t0 = time.perf_counter()
            execute_ops(target, ops, PerfContext(), batch_size=batch_size)
            wall_s = time.perf_counter() - t0
            recorder = engine.wall_recorder
            util = engine.worker_utilization()
            rows.append(
                {
                    "threads": w,
                    "wall_s": wall_s,
                    "throughput_mops": len(ops) / wall_s / 1e6,
                    "mean_ns": wall_s * 1e9 / max(1, len(ops)),
                    "p999_ns": (
                        recorder.p999()
                        if len(recorder)
                        else wall_s * 1e9 / max(1, len(ops))
                    ),
                    "utilization": util,
                }
            )
        finally:
            engine.close()
    return rows
