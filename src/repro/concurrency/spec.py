"""Per-index concurrency-control declarations (the paper's Table I, CC column).

The paper's multithread results (§III, Figs 12/14) are explained by
*concurrency control*, not just bandwidth: XIndex and FINEdex take
fine-grained latches and stall while a group retrains, Masstree and the
Bw-tree read optimistically and only latch to write, ALEX ships no CC at
all and must be wrapped in one global lock, CCEH contends per segment.
"Are Updatable Learned Indexes Ready?" (Wongkham et al., VLDB 2022) makes
the same point: the CC scheme is a first-order effect for updatable
learned indexes under concurrency.

A :class:`ConcurrencySpec` captures that declaration per index.  It is
carried on every :class:`~repro.registry.IndexSpec` and consumed by the
discrete-event simulator (:mod:`repro.concurrency.sim`) that projects
single-thread measurements onto N threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigurationError

#: The four concurrency-control schemes the simulator distinguishes:
#:
#: * ``lock_free`` — reads and writes proceed without latches (CAS-based
#:   structures: skip lists, static read-only indexes).
#: * ``global_lock`` — one reader-writer lock guards the whole structure
#:   (indexes that ship no CC scheme: ALEX, LIPP, the dynamic PGM,
#:   FITing-tree).  Writers serialise; readers share the lock but bounce
#:   its cacheline.
#: * ``fine_grained_latch`` — writers latch one of ``latch_domains``
#:   independent domains (B-tree nodes, XIndex groups, CCEH segments);
#:   readers take a shared latch on the same domain.
#: * ``optimistic_read`` — readers proceed without latches and validate a
#:   version stamp, retrying when a concurrent writer invalidated the
#:   read (Masstree, Bw-tree); writers latch like ``fine_grained_latch``.
CC_SCHEMES = (
    "lock_free",
    "global_lock",
    "fine_grained_latch",
    "optimistic_read",
)


@dataclass(frozen=True)
class ConcurrencySpec:
    """How one index behaves under concurrent threads.

    The defaults describe an index that ships no concurrency control —
    the conservative assumption for anything not declared otherwise
    (wrap it in a global lock, block everyone while it retrains).
    """

    #: One of :data:`CC_SCHEMES`.
    scheme: str = "global_lock"
    #: Whether a model retrain blocks concurrent operations on the whole
    #: structure (XIndex group merge-retrain, FINEdex level retraining,
    #: ALEX subtree rebuilds under its global lock).  Indexes that
    #: retrain off the critical path (LSM merges into fresh levels)
    #: leave this False.
    retrain_blocking: bool = False
    #: Number of independently latchable domains for the fine-grained
    #: schemes (B-tree leaf latches, XIndex groups, CCEH segments).
    #: ``global_lock`` always behaves as one domain.
    latch_domains: int = 1
    #: Probability scale of an optimistic read retry: the per-read retry
    #: probability is ``retry_base * write_fraction * (threads-1)/threads``.
    retry_base: float = 0.0
    #: One-line provenance note shown in docs and ``repro info``.
    notes: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in CC_SCHEMES:
            raise InvalidConfigurationError(
                f"unknown concurrency scheme {self.scheme!r}; "
                f"one of {CC_SCHEMES}"
            )
        if self.latch_domains < 1:
            raise InvalidConfigurationError(
                f"latch_domains must be >= 1, got {self.latch_domains}"
            )
        if not 0.0 <= self.retry_base <= 1.0:
            raise InvalidConfigurationError(
                f"retry_base must be in [0, 1], got {self.retry_base}"
            )

    @property
    def effective_domains(self) -> int:
        """Latch domains the simulator actually uses for this scheme.

        ``global_lock`` is always one domain.  ``lock_free`` writes
        contend per *key word* (a CAS conflicts only with a concurrent
        CAS on the same location), which the simulator approximates with
        a wide domain space — at least 1024 — rather than the declared
        latch count.
        """
        if self.scheme == "global_lock":
            return 1
        if self.scheme == "lock_free":
            return max(self.latch_domains, 1024)
        return self.latch_domains

    def describe(self) -> str:
        """Compact one-token summary for capability tables."""
        out = self.scheme
        if self.scheme in ("fine_grained_latch", "optimistic_read"):
            out += f"[{self.latch_domains}]"
        if self.retrain_blocking:
            out += "+retrain-block"
        return out


#: Convenience instances for the common declarations.
LOCK_FREE = ConcurrencySpec(scheme="lock_free")
GLOBAL_LOCK = ConcurrencySpec(scheme="global_lock")
