"""repro — reproduction of "Cutting Learned Index into Pieces" (ICDE 2023).

Quickstart::

    from repro import ALEXIndex, PerfContext, ViperStore, ycsb_keys

    perf = PerfContext()
    store = ViperStore(ALEXIndex(perf=perf), perf)
    keys = ycsb_keys(100_000)
    store.bulk_load([(k, f"value-{k}") for k in keys])
    store.get(keys[0])
    print(f"simulated time so far: {perf.elapsed_ns() / 1e6:.2f} ms")

Subpackages:

* :mod:`repro.core` — the four design dimensions, recombinable.
* :mod:`repro.registry` — the index registry: every index, one table,
  consumed by the CLI, the benchmarks, and the contract tests.
* :mod:`repro.learned` — RMI, RadixSpline, FITing-tree, PGM, ALEX, XIndex.
* :mod:`repro.traditional` — B+tree, Skiplist, Masstree, Bw-tree,
  Wormhole, CCEH.
* :mod:`repro.store` — the Viper-like NVM key-value store.
* :mod:`repro.workloads` — datasets and YCSB workloads.
* :mod:`repro.perf` — the deterministic cost-model simulator.
* :mod:`repro.concurrency` — CC declarations, the discrete-event
  multithread simulator, and range-partitioned sharding.
* :mod:`repro.bench` — measurement harness.
"""

from repro.concurrency import (
    ConcurrencySpec,
    ShardedIndex,
    ShardedStore,
    sharded_index,
    simulate_scaling,
)
from repro.core import ComposedIndex
from repro.perf import BandwidthModel, CostModel, PerfContext
from repro.registry import IndexSpec, UnknownIndexError, resolve, specs
from repro.store import PMemDevice, ViperStore
from repro.workloads import (
    face_keys,
    osm_keys,
    sequential_keys,
    uniform_keys,
    ycsb_keys,
)

__version__ = "1.0.0"

# Index classes are exported from the registry — registering an index is
# what makes it importable as ``from repro import <Class>``.  One spec per
# variant may share a class (FITing-tree inp/buf), hence the dedup.
_INDEX_CLASSES = {spec.factory.__name__: spec.factory for spec in specs()}
globals().update(_INDEX_CLASSES)

__all__ = [
    "ComposedIndex",
    "ConcurrencySpec",
    "ShardedIndex",
    "ShardedStore",
    "sharded_index",
    "simulate_scaling",
    "IndexSpec",
    "UnknownIndexError",
    "resolve",
    "specs",
    "BandwidthModel",
    "CostModel",
    "PerfContext",
    "PMemDevice",
    "ViperStore",
    "face_keys",
    "osm_keys",
    "sequential_keys",
    "uniform_keys",
    "ycsb_keys",
    "__version__",
    *sorted(_INDEX_CLASSES),
]
