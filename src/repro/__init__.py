"""repro — reproduction of "Cutting Learned Index into Pieces" (ICDE 2023).

Quickstart::

    from repro import ALEXIndex, PerfContext, ViperStore, ycsb_keys

    perf = PerfContext()
    store = ViperStore(ALEXIndex(perf=perf), perf)
    keys = ycsb_keys(100_000)
    store.bulk_load([(k, f"value-{k}") for k in keys])
    store.get(keys[0])
    print(f"simulated time so far: {perf.elapsed_ns() / 1e6:.2f} ms")

Subpackages:

* :mod:`repro.core` — the four design dimensions, recombinable.
* :mod:`repro.learned` — RMI, RadixSpline, FITing-tree, PGM, ALEX, XIndex.
* :mod:`repro.traditional` — B+tree, Skiplist, Masstree, Bw-tree,
  Wormhole, CCEH.
* :mod:`repro.store` — the Viper-like NVM key-value store.
* :mod:`repro.workloads` — datasets and YCSB workloads.
* :mod:`repro.perf` — the deterministic cost-model simulator.
* :mod:`repro.bench` — measurement harness.
"""

from repro.core import ComposedIndex
from repro.learned import (
    ALEXIndex,
    APEXIndex,
    DynamicPGMIndex,
    FINEdexIndex,
    FITingTree,
    LIPPIndex,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
    XIndexIndex,
)
from repro.perf import BandwidthModel, CostModel, PerfContext
from repro.store import PMemDevice, ViperStore
from repro.traditional import CCEH, BPlusTree, BwTree, Masstree, SkipList, Wormhole
from repro.workloads import (
    face_keys,
    osm_keys,
    sequential_keys,
    uniform_keys,
    ycsb_keys,
)

__version__ = "1.0.0"

__all__ = [
    "ComposedIndex",
    "ALEXIndex",
    "APEXIndex",
    "DynamicPGMIndex",
    "FITingTree",
    "FINEdexIndex",
    "PGMIndex",
    "RadixSplineIndex",
    "RMIIndex",
    "XIndexIndex",
    "LIPPIndex",
    "BandwidthModel",
    "CostModel",
    "PerfContext",
    "PMemDevice",
    "ViperStore",
    "CCEH",
    "BPlusTree",
    "BwTree",
    "Masstree",
    "SkipList",
    "Wormhole",
    "face_keys",
    "osm_keys",
    "sequential_keys",
    "uniform_keys",
    "ycsb_keys",
    "__version__",
]
