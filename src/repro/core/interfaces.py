"""Abstract index interfaces shared by learned and traditional indexes.

Keys are unsigned 64-bit integers (the paper uses 8-byte keys throughout);
values are arbitrary Python objects — in the Viper store they are
``(page_id, slot)`` offsets into simulated persistent memory.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import repro.core.approximation.vectorized as _vec
from repro.errors import UnsupportedOperationError
from repro.perf.context import DEFAULT_CONTEXT, PerfContext

Key = int
Value = Any


@dataclass(frozen=True)
class Capabilities:
    """What an index supports — the reproduction of the paper's Table I."""

    sorted_order: bool = True
    updatable: bool = True
    bounded_error: bool = False
    concurrent_read: bool = True
    concurrent_write: bool = False
    inner_node: str = ""
    leaf_node: str = ""
    approximation: str = ""
    insertion: str = ""
    retraining: str = ""


@dataclass
class IndexStats:
    """Structural statistics reported alongside performance numbers."""

    depth_avg: float = 0.0
    depth_max: int = 0
    leaf_count: int = 0
    avg_error: float = 0.0
    max_error: int = 0
    retrain_count: int = 0
    retrain_keys: int = 0
    retrain_time_ns: float = 0.0
    extra: dict = field(default_factory=dict)


class Index(ABC):
    """Point-lookup index over uint64 keys."""

    #: Human-readable index name used in benchmark tables.
    name: str = "index"

    #: Whether :meth:`insert` of an existing key overwrites it in place.
    #: True for every index here except the LSM-style DynamicPGMIndex,
    #: whose insert would stack a shadowing duplicate; callers that know
    #: the key exists should use :meth:`update` when this is False.
    insert_is_upsert: bool = True

    def __init__(self, perf: Optional[PerfContext] = None):
        self.perf = perf if perf is not None else DEFAULT_CONTEXT

    # -- construction ---------------------------------------------------

    @abstractmethod
    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Build the index from ``items`` sorted ascending by unique key."""

    # -- queries ----------------------------------------------------------

    @abstractmethod
    def get(self, key: Key) -> Optional[Value]:
        """Return the value stored under ``key`` or ``None``."""

    def __contains__(self, key: Key) -> bool:
        return self.get(key) is not None

    def get_many(self, keys: Sequence[Key]) -> List[Optional[Value]]:
        """Batch point lookup; position ``i`` answers ``keys[i]``.

        The default is the per-key loop, so every index satisfies the
        same contract; indexes with a contiguous key array override this
        with a vectorized fast path (one ``searchsorted`` for the whole
        batch instead of one model descent per key).
        """
        return [self.get(key) for key in keys]

    def contains_many(self, keys: Sequence[Key]) -> List[bool]:
        """Batch membership test; equivalent to ``[k in self for k in keys]``."""
        return [value is not None for value in self.get_many(keys)]

    @abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""

    # -- mutation (optional) ----------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        """Insert a new key (or overwrite an existing one)."""
        raise UnsupportedOperationError(f"{self.name} is read-only")

    def insert_many(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Batch insert; observably equivalent to inserting ``items`` in
        order (so on duplicate keys within the batch the last value wins).

        The default is the per-key loop, so every updatable index
        satisfies the same contract; indexes whose structure admits it
        override with a native path (one LSM merge, sorted leaf routing,
        leaf-chain reuse) — see ``registry.has_native_batch_insert``.
        Read-only indexes raise ``UnsupportedOperationError``.
        """
        for key, value in items:
            self.insert(key, value)

    def upsert(self, key: Key, value: Value) -> Optional[Value]:
        """Insert-or-overwrite; returns the previous value, or ``None`` if
        the key was fresh.

        This is the store's put primitive: one call resolves the old
        record location *and* repoints the index.  The default costs a
        probe plus a write (two traversals); indexes with a single-descent
        path override it so a put charges one lookup and one write, as in
        the paper's cost model.
        """
        old = self.get(key)
        if old is None or self.insert_is_upsert:
            self.insert(key, value)
        else:
            self.update(key, value)
        return old

    def upsert_many(
        self, items: Sequence[Tuple[Key, Value]]
    ) -> List[Optional[Value]]:
        """Batch :meth:`upsert`; observably equivalent to upserting the
        items in order, returning each item's previous value (so on
        duplicate keys within the batch the second occurrence sees the
        first occurrence's value as its "old").

        This is the store's bulk-put primitive.  The default is the
        per-key loop; indexes whose batch insert path can also resolve
        old values in the same descent override it so a bulk put costs
        one traversal per key, not a probe pass plus a write pass — see
        ``registry.has_native_batch_upsert``.
        """
        return [self.upsert(key, value) for key, value in items]

    def update(self, key: Key, value: Value) -> bool:
        """Overwrite an existing key's value; return False if absent."""
        raise UnsupportedOperationError(f"{self.name} is read-only")

    def delete(self, key: Key) -> bool:
        """Remove ``key``; return False if absent."""
        raise UnsupportedOperationError(f"{self.name} does not support delete")

    # -- metadata -----------------------------------------------------------

    @abstractmethod
    def size_bytes(self) -> int:
        """Approximate DRAM footprint of the index *structure* only
        (models, inner nodes, directories) — Table III's first column."""

    def key_store_bytes(self) -> int:
        """DRAM needed to keep the key/pointer array resident, including
        any reserved slots, gaps, or per-node buffers — the increment
        Table III's "Index+key" column adds.  16 bytes per slot (8-byte
        key + 8-byte record pointer)."""
        return 16 * len(self)

    def stats(self) -> IndexStats:
        return IndexStats()

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={len(self)})"


class SortedIndex(Index):
    """Index that maintains keys in sorted order and supports range scans."""

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        """Yield ``(key, value)`` for lo <= key <= hi in ascending order."""
        raise UnsupportedOperationError(f"{self.name} does not support range")

    def scan(self, start: Key, count: int) -> List[Tuple[Key, Value]]:
        """Return up to ``count`` pairs with key >= start, ascending."""
        out: List[Tuple[Key, Value]] = []
        for pair in self.range(start, 2**64 - 1):
            out.append(pair)
            if len(out) >= count:
                break
        return out

    def scan_many(
        self, starts: Sequence[Key], count: int
    ) -> List[List[Tuple[Key, Value]]]:
        """Batch scan; position ``i`` answers ``scan(starts[i], count)``.

        The default is the per-start loop, so every sorted index
        satisfies the same contract: the result lists, their order, and
        the simulated event charges are bit-identical to sequential
        :meth:`scan` calls.  Indexes whose leaves are contiguous (or
        gapped-but-compactable) arrays override this with a vectorized
        path that keeps per-start positioning but extracts each run as a
        slice copy with one aggregate charge — see
        ``registry.has_native_batch_scan``.
        """
        return [self.scan(start, count) for start in starts]


class UpdatableIndex(SortedIndex):
    """Sorted index supporting inserts — the paper's focus class."""

    @abstractmethod
    def insert(self, key: Key, value: Value) -> None: ...

    def update(self, key: Key, value: Value) -> bool:
        if self.get(key) is None:
            return False
        self.insert(key, value)
        return True


def check_sorted_unique(items: Sequence[Tuple[Key, Value]]) -> None:
    """Validate a bulk-load input; raises ``ValueError`` on violation."""
    n = len(items)
    if n >= _vec.MIN_VECTOR_KEYS:
        arr = _vec.as_u64([k for k, _ in items])
        if arr is not None:
            ascending = arr[1:] > arr[:-1]
            if bool(ascending.all()):
                return
            i = int(_vec.np.argmin(ascending)) + 1
            raise ValueError(
                f"bulk_load requires strictly ascending keys; items[{i - 1}]="
                f"{items[i - 1][0]} >= items[{i}]={items[i][0]}"
            )
    for i in range(1, n):
        if items[i - 1][0] >= items[i][0]:
            raise ValueError(
                f"bulk_load requires strictly ascending keys; items[{i - 1}]="
                f"{items[i - 1][0]} >= items[{i}]={items[i][0]}"
            )
