"""Least squares + gapped placement (ALEX's LSA-gap algorithm).

The defining trick (§II-B3, §IV-A): after fitting a least-squares model,
the key array is *expanded with gaps* and every key is re-placed at the
slot the (rescaled) model predicts for it.  This actively changes the
stored data's CDF to match the model, so the prediction error collapses to
collision-induced shifts — LSA-gap achieves both a small error and few
segments simultaneously, which passive approximators cannot.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.core.approximation.lsa import fit_least_squares
from repro.errors import InvalidConfigurationError


class GappedSegment(Segment):
    """A segment whose keys live in a gapped slot array.

    ``slot_keys[i]`` is the key in slot ``i`` or ``None`` for a gap.
    Prediction error is measured in *slot* space: the distance between the
    model's predicted slot and the slot the key actually occupies.
    """

    __slots__ = ("slots", "slot_keys", "occupied", "slot_pos", "keys_u64")

    def __init__(
        self,
        first_key: int,
        start: int,
        keys: Sequence[int],
        density: float,
        vectorized: bool = True,
    ):
        n = len(keys)
        slots = max(n, math.ceil(n / density))
        base = int(keys[0])
        arr = (
            _vec.as_u64(keys)
            if vectorized and n >= _vec.MIN_VECTOR_KEYS
            else None
        )
        if arr is not None:
            slope, intercept = _vec.fit_least_squares_np(arr, base)
        else:
            slope, intercept = fit_least_squares(keys, base)
        scale = slots / n
        model = LinearModel(slope * scale, intercept * scale, base)

        placed = self._place_np(arr, model, slots) if arr is not None else None
        if placed is None:
            slot_keys: List[Optional[int]] = [None] * slots
            max_err = 0
            sum_err = 0
            last = -1
            for key in keys:
                predicted = model.predict_clamped(key, slots)
                slot = predicted if predicted > last else last + 1
                if slot >= slots:
                    slot_keys.extend([None] * (slot - slots + 1))
                    slots = slot + 1
                slot_keys[slot] = key
                last = slot
                err = abs(slot - predicted)
                sum_err += err
                if err > max_err:
                    max_err = err
            slot_pos = keys_u64 = None
        else:
            slot_keys, slots, max_err, sum_err, slot_pos, keys_u64 = placed

        self.first_key = first_key
        self.start = start
        self.n = n
        self.model = model
        self.max_error = max_err
        self.avg_error = sum_err / n if n else 0.0
        self.slots = slots
        self.slot_keys = slot_keys
        self.occupied = n
        # Retained by the vectorized placement so GappedLeaf can build its
        # numpy slot storage by fancy indexing instead of re-scanning the
        # slot list; None when placement ran scalar.
        self.slot_pos = slot_pos
        self.keys_u64 = keys_u64

    @staticmethod
    def _place_np(arr, model, slots):
        """Vectorized model-guided placement; ``None`` -> scalar fallback.

        The scalar recurrence ``slot_i = max(pred_i, slot_{i-1} + 1)``
        unrolls to ``slot_i = i + cummax(pred_i - i)`` — exact in integer
        space.  The rare overflow case (a slot landing at/after the end,
        which the scalar loop handles by growing the array *and* widening
        the model clamp for later keys) is left to the scalar loop so the
        two paths never diverge.
        """
        np = _vec.np
        pred = _vec.predict_clamped_many(model, arr, slots)
        if pred is None:
            return None
        idx = np.arange(arr.size, dtype=np.int64)
        slot = idx + np.maximum.accumulate(pred - idx)
        if int(slot[-1]) >= slots:
            return None  # scalar loop would have extended the slot array
        err = slot - pred  # placement only ever pushes keys rightward
        slot_keys: List[Optional[int]] = [None] * slots
        for s, k in zip(slot.tolist(), arr.tolist()):
            slot_keys[s] = k
        return slot_keys, slots, int(err.max()), int(err.sum()), slot, arr

    def predict(self, key: int) -> int:
        return self.model.predict_clamped(key, self.slots)

    def search_window(self, key: int) -> tuple:
        pos = self.predict(key)
        lo = max(0, pos - self.max_error)
        hi = min(self.slots - 1, pos + self.max_error)
        return lo, hi

    def gap_fraction(self) -> float:
        return 1.0 - self.occupied / self.slots if self.slots else 0.0

    def __repr__(self) -> str:
        return (
            f"GappedSegment(first_key={self.first_key}, n={self.n}, "
            f"slots={self.slots}, max_error={self.max_error}, "
            f"avg_error={self.avg_error:.2f})"
        )


class LSAGapApproximator(Approximator):
    """Fixed-size segments, least-squares models, gapped key placement."""

    name = "LSA-gap"
    bounded_error = False

    def __init__(
        self,
        segment_size: int = 4096,
        density: float = 0.7,
        vectorized: bool = True,
    ):
        if segment_size < 1:
            raise InvalidConfigurationError(
                f"segment_size must be >= 1, got {segment_size}"
            )
        if not 0.0 < density <= 1.0:
            raise InvalidConfigurationError(
                f"density must be in (0, 1], got {density}"
            )
        self.segment_size = segment_size
        self.density = density
        self.vectorized = vectorized and _vec.HAVE_NUMPY

    def fit(self, keys: Sequence[int]) -> Approximation:
        if not len(keys):
            raise InvalidConfigurationError("cannot approximate an empty key set")
        segments: List[Segment] = []
        for start in range(0, len(keys), self.segment_size):
            chunk = keys[start : start + self.segment_size]
            segments.append(
                GappedSegment(
                    int(chunk[0]),
                    start,
                    chunk,
                    self.density,
                    vectorized=self.vectorized,
                )
            )
        return Approximation(segments, len(keys))

    def __repr__(self) -> str:
        return (
            f"LSAGapApproximator(segment_size={self.segment_size}, "
            f"density={self.density})"
        )
