"""Least squares + gapped placement (ALEX's LSA-gap algorithm).

The defining trick (§II-B3, §IV-A): after fitting a least-squares model,
the key array is *expanded with gaps* and every key is re-placed at the
slot the (rescaled) model predicts for it.  This actively changes the
stored data's CDF to match the model, so the prediction error collapses to
collision-induced shifts — LSA-gap achieves both a small error and few
segments simultaneously, which passive approximators cannot.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.core.approximation.lsa import fit_least_squares
from repro.errors import InvalidConfigurationError


class GappedSegment(Segment):
    """A segment whose keys live in a gapped slot array.

    ``slot_keys[i]`` is the key in slot ``i`` or ``None`` for a gap.
    Prediction error is measured in *slot* space: the distance between the
    model's predicted slot and the slot the key actually occupies.
    """

    __slots__ = ("slots", "slot_keys", "occupied")

    def __init__(
        self,
        first_key: int,
        start: int,
        keys: Sequence[int],
        density: float,
    ):
        n = len(keys)
        slots = max(n, math.ceil(n / density))
        slope, intercept = fit_least_squares(keys, keys[0])
        scale = slots / n
        model = LinearModel(slope * scale, intercept * scale, keys[0])

        slot_keys: List[Optional[int]] = [None] * slots
        max_err = 0
        sum_err = 0
        last = -1
        for key in keys:
            predicted = model.predict_clamped(key, slots)
            slot = predicted if predicted > last else last + 1
            if slot >= slots:
                slot_keys.extend([None] * (slot - slots + 1))
                slots = slot + 1
            slot_keys[slot] = key
            last = slot
            err = abs(slot - predicted)
            sum_err += err
            if err > max_err:
                max_err = err

        self.first_key = first_key
        self.start = start
        self.n = n
        self.model = model
        self.max_error = max_err
        self.avg_error = sum_err / n if n else 0.0
        self.slots = slots
        self.slot_keys = slot_keys
        self.occupied = n

    def predict(self, key: int) -> int:
        return self.model.predict_clamped(key, self.slots)

    def search_window(self, key: int) -> tuple:
        pos = self.predict(key)
        lo = max(0, pos - self.max_error)
        hi = min(self.slots - 1, pos + self.max_error)
        return lo, hi

    def gap_fraction(self) -> float:
        return 1.0 - self.occupied / self.slots if self.slots else 0.0

    def __repr__(self) -> str:
        return (
            f"GappedSegment(first_key={self.first_key}, n={self.n}, "
            f"slots={self.slots}, max_error={self.max_error}, "
            f"avg_error={self.avg_error:.2f})"
        )


class LSAGapApproximator(Approximator):
    """Fixed-size segments, least-squares models, gapped key placement."""

    name = "LSA-gap"
    bounded_error = False

    def __init__(self, segment_size: int = 4096, density: float = 0.7):
        if segment_size < 1:
            raise InvalidConfigurationError(
                f"segment_size must be >= 1, got {segment_size}"
            )
        if not 0.0 < density <= 1.0:
            raise InvalidConfigurationError(
                f"density must be in (0, 1], got {density}"
            )
        self.segment_size = segment_size
        self.density = density

    def fit(self, keys: Sequence[int]) -> Approximation:
        if not keys:
            raise InvalidConfigurationError("cannot approximate an empty key set")
        segments: List[Segment] = []
        for start in range(0, len(keys), self.segment_size):
            chunk = keys[start : start + self.segment_size]
            segments.append(GappedSegment(chunk[0], start, chunk, self.density))
        return Approximation(segments, len(keys))

    def __repr__(self) -> str:
        return (
            f"LSAGapApproximator(segment_size={self.segment_size}, "
            f"density={self.density})"
        )
