"""Shared numpy fast-path helpers for the approximation algorithms.

Every vectorized path here mirrors a scalar loop elsewhere in this
package *operation for operation*: the same IEEE-754 double arithmetic in
the same order, the same round-half-even integer rounding, the same
clamping.  That is what lets the fits guarantee **bit-identical segment
boundaries** between the scalar and vectorized implementations (pinned by
``tests/test_batch_api.py``).

numpy is an optional dependency of this module: everything degrades to
``None``/scalar behaviour when it is absent, and the approximators fall
back to their original pure-Python loops.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import InvalidKeysError

try:  # pragma: no cover - exercised implicitly by every vectorized test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Below this many keys the numpy conversion overhead outweighs the win.
MIN_VECTOR_KEYS = 64


def as_u64(keys: Sequence[int]):
    """``keys`` as an exact ``uint64`` ndarray, or ``None`` if impossible.

    Exactness is the point: converting a Python list through a float dtype
    (numpy's default for mixed-magnitude ints) silently collapses adjacent
    64-bit keys, so only unsigned/non-negative integer inputs qualify.
    """
    if not HAVE_NUMPY:
        return None
    if isinstance(keys, np.ndarray):
        kind = keys.dtype.kind
        if kind == "u":
            return keys.astype(np.uint64, copy=False)
        if kind == "i":
            if keys.size and int(keys.min()) < 0:
                return None
            return keys.astype(np.uint64)
        return None
    # A list/tuple: only take the fast path when every element is a true
    # Python int (bool excluded); floats must keep the scalar semantics.
    if not all(type(k) is int for k in keys):
        return None
    try:
        return np.array(keys, dtype=np.uint64)
    except (OverflowError, TypeError, ValueError):
        return None


def validate_fit_keys(keys: Sequence[int], algo: str):
    """Reject NaN or non-strictly-ascending fit input with a clear error.

    Returns the exact ``uint64`` array when one could be built (so callers
    can reuse it for their vectorized path) or ``None`` otherwise.
    Raises :class:`~repro.errors.InvalidKeysError` — a ``ReproError`` —
    instead of letting the segmentation loops silently produce broken
    segments (division by a zero/negative key delta).
    """
    arr = as_u64(keys)
    if arr is not None:
        if arr.size > 1 and not bool((arr[1:] > arr[:-1]).all()):
            raise InvalidKeysError(
                f"{algo}: fit keys must be strictly ascending and unique"
            )
        return arr
    # Scalar path: mixed/float/object input (or numpy unavailable).
    prev = None
    for k in keys:
        if k != k:  # NaN is the only value unequal to itself
            raise InvalidKeysError(f"{algo}: fit keys contain NaN")
        if prev is not None and not (k > prev):
            raise InvalidKeysError(
                f"{algo}: fit keys must be strictly ascending and unique"
            )
        prev = k
    return None


def predict_clamped_many(model, keys_u64, n: int):
    """Vectorized :meth:`LinearModel.predict_clamped` over a uint64 array.

    Replicates ``int(round(slope * (key - base_key) + intercept))`` clamped
    to ``[0, n - 1]``: uint64 subtraction is exact, the float64 conversion
    and arithmetic match Python's scalar promotion, and ``np.rint`` is the
    same round-half-even as builtin ``round``.  Returns ``None`` when the
    computation cannot be reproduced exactly (key below the model base, or
    a non-finite prediction).
    """
    if keys_u64.size and int(keys_u64[0]) < model.base_key:
        return None  # uint64 subtraction would wrap
    lx = (keys_u64 - np.uint64(model.base_key)).astype(np.float64)
    pos = model.slope * lx + model.intercept
    if not np.isfinite(pos).all():
        return None
    pred = np.rint(pos)
    np.clip(pred, 0.0, float(n - 1), out=pred)
    return pred.astype(np.int64)


def segment_guesses(params, seg_idx, qs_i64):
    """``seg.start + seg.predict(q)`` over parallel (query, segment) arrays.

    ``params`` is ``Approximation.param_arrays()``; ``seg_idx`` selects
    one segment per query.  Mirrors ``LinearModel.predict_clamped``
    element for element: the int64 key delta is exact (|delta| < 2^63),
    float64 arithmetic matches Python's scalar promotion, ``np.rint`` is
    the same round-half-even as builtin ``round``, and the clamp is the
    per-segment ``[0, n - 1]``.
    """
    slope, intercept, base_key, seg_n, seg_start = params
    pred = np.rint(
        slope[seg_idx] * (qs_i64 - base_key[seg_idx]).astype(np.float64)
        + intercept[seg_idx]
    ).astype(np.int64)
    np.clip(pred, 0, seg_n[seg_idx] - 1, out=pred)
    return seg_start[seg_idx] + pred


def measure_errors(model, keys_u64, n: int) -> Optional[Tuple[int, int]]:
    """``(max_error, sum_error)`` of ``model`` over its own segment keys.

    The vectorized twin of the measurement loop in ``Segment.__init__``;
    bit-identical because every intermediate matches the scalar code.
    """
    pred = predict_clamped_many(model, keys_u64, n)
    if pred is None:
        return None
    err = np.abs(pred - np.arange(n, dtype=np.int64))
    return int(err.max()), int(err.sum())


def fit_least_squares_np(keys_u64, base_key: int) -> Tuple[float, float]:
    """Closed-form simple linear regression, numpy edition.

    Same normal equations as :func:`repro.core.approximation.lsa.
    fit_least_squares`; the sums use numpy's pairwise summation, so the
    slope/intercept can differ from the scalar loop in the last ulp (the
    fixed-size chunking means segment boundaries are unaffected).
    """
    n = int(keys_u64.size)
    if n == 1:
        return 0.0, 0.0
    x = (keys_u64 - np.uint64(base_key)).astype(np.float64)
    y = np.arange(n, dtype=np.float64)
    sum_x = float(x.sum())
    sum_xx = float((x * x).sum())
    sum_y = float(y.sum())
    sum_xy = float((x * y).sum())
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0.0:
        return 0.0, (n - 1) / 2.0
    slope = (n * sum_xy - sum_x * sum_y) / denom
    intercept = (sum_y - slope * sum_x) / n
    return slope, intercept
