"""Greedy feasible-space-window PLA (FITing-tree's algorithm).

The greedy algorithm anchors each segment's line at the segment's first
point and shrinks a feasible slope window as points arrive (Liu et al.'s
FSW); when the window empties, a new segment starts.  It shares Opt-PLA's
maximum-error guarantee but, because the line is forced through the first
point, it can need more segments — which is why the paper swaps it for
Opt-PLA when benchmarking FITing-tree's *other* dimensions (§III-A1).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.errors import InvalidConfigurationError


class GreedyPLAApproximator(Approximator):
    """One-pass greedy PLA with ``max_error <= eps``, anchored segments."""

    name = "Greedy-PLA"
    bounded_error = True

    def __init__(self, eps: int = 32):
        if eps < 0:
            raise InvalidConfigurationError(f"eps must be >= 0, got {eps}")
        self.eps = eps

    def fit(self, keys: Sequence[int]) -> Approximation:
        if not keys:
            raise InvalidConfigurationError("cannot approximate an empty key set")
        segments: List[Segment] = []
        n = len(keys)
        start = 0
        slope_lo = float("-inf")
        slope_hi = float("inf")
        i = 1
        while i < n:
            dx = float(keys[i] - keys[start])
            dy = float(i - start)
            lo = (dy - self.eps) / dx
            hi = (dy + self.eps) / dx
            new_lo = max(slope_lo, lo)
            new_hi = min(slope_hi, hi)
            if new_lo > new_hi:
                segments.append(self._close(keys, start, i, slope_lo, slope_hi))
                start = i
                slope_lo = float("-inf")
                slope_hi = float("inf")
            else:
                slope_lo, slope_hi = new_lo, new_hi
            i += 1
        segments.append(self._close(keys, start, n, slope_lo, slope_hi))
        return Approximation(segments, n)

    def _close(
        self,
        keys: Sequence[int],
        start: int,
        end: int,
        slope_lo: float,
        slope_hi: float,
    ) -> Segment:
        if slope_lo == float("-inf"):
            slope = 0.0  # single-point segment
        else:
            slope = (slope_lo + slope_hi) / 2.0
        model = LinearModel(slope, 0.0, keys[start])
        return Segment(keys[start], start, keys[start:end], model)

    def __repr__(self) -> str:
        return f"GreedyPLAApproximator(eps={self.eps})"
