"""Greedy feasible-space-window PLA (FITing-tree's algorithm).

The greedy algorithm anchors each segment's line at the segment's first
point and shrinks a feasible slope window as points arrive (Liu et al.'s
FSW); when the window empties, a new segment starts.  It shares Opt-PLA's
maximum-error guarantee but, because the line is forced through the first
point, it can need more segments — which is why the paper swaps it for
Opt-PLA when benchmarking FITing-tree's *other* dimensions (§III-A1).

The vectorized fast path evaluates the error-bound window with numpy:
per-point slope bounds ``(dy ± eps) / dx`` become array expressions, the
running window is ``maximum.accumulate`` / ``minimum.accumulate``, and a
segment break is the first index where the accumulated bounds cross.
Every float operation matches the scalar loop bit for bit, so the two
paths produce identical segment boundaries *and* identical models.
"""

from __future__ import annotations

from typing import List, Sequence

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.errors import InvalidConfigurationError

#: Initial block size for the doubling scan of one segment's tail.
_BLOCK = 1024


class GreedyPLAApproximator(Approximator):
    """One-pass greedy PLA with ``max_error <= eps``, anchored segments."""

    name = "Greedy-PLA"
    bounded_error = True

    def __init__(self, eps: int = 32, vectorized: bool = True):
        if eps < 0:
            raise InvalidConfigurationError(f"eps must be >= 0, got {eps}")
        self.eps = eps
        self.vectorized = vectorized and _vec.HAVE_NUMPY

    def fit(self, keys: Sequence[int]) -> Approximation:
        if not len(keys):
            raise InvalidConfigurationError("cannot approximate an empty key set")
        arr = _vec.validate_fit_keys(keys, self.name)
        if self.vectorized and arr is not None:
            return self._fit_np(keys, arr)
        return self._fit_scalar(keys)

    # -- scalar path ----------------------------------------------------

    def _fit_scalar(self, keys: Sequence[int]) -> Approximation:
        segments: List[Segment] = []
        n = len(keys)
        start = 0
        slope_lo = float("-inf")
        slope_hi = float("inf")
        i = 1
        while i < n:
            dx = float(keys[i] - keys[start])
            dy = float(i - start)
            lo = (dy - self.eps) / dx
            hi = (dy + self.eps) / dx
            new_lo = max(slope_lo, lo)
            new_hi = min(slope_hi, hi)
            if new_lo > new_hi:
                segments.append(self._close(keys, start, i, slope_lo, slope_hi))
                start = i
                slope_lo = float("-inf")
                slope_hi = float("inf")
            else:
                slope_lo, slope_hi = new_lo, new_hi
            i += 1
        segments.append(self._close(keys, start, n, slope_lo, slope_hi))
        return Approximation(segments, n)

    # -- vectorized path ------------------------------------------------

    def _fit_np(self, keys: Sequence[int], arr) -> Approximation:
        """Same decisions as :meth:`_fit_scalar`, evaluated blockwise.

        For the segment anchored at ``start`` the scalar loop's window
        after absorbing point ``i`` is exactly
        ``(cummax(lo)[i], cummin(hi)[i])``, and the break happens at the
        first ``i`` whose accumulated bounds cross.  Blocks double so one
        segment's tail is scanned O(len) total even when recomputed.
        """
        np = _vec.np
        segments: List[Segment] = []
        n = len(keys)
        eps = float(self.eps)
        start = 0
        while start < n:
            if start == n - 1:
                segments.append(
                    self._close(arr, start, n, float("-inf"), float("inf"))
                )
                break
            block = _BLOCK
            while True:
                end = min(n, start + 1 + block)
                dx = (arr[start + 1 : end] - arr[start]).astype(np.float64)
                dy = np.arange(1, end - start, dtype=np.float64)
                lo = (dy - eps) / dx
                hi = (dy + eps) / dx
                np.maximum.accumulate(lo, out=lo)
                np.minimum.accumulate(hi, out=hi)
                crossed = lo > hi
                if crossed.any():
                    brk = int(crossed.argmax())  # first True; never 0
                    i = start + 1 + brk
                    segments.append(
                        self._close(
                            arr, start, i, float(lo[brk - 1]), float(hi[brk - 1])
                        )
                    )
                    start = i
                    break
                if end == n:
                    segments.append(
                        self._close(arr, start, n, float(lo[-1]), float(hi[-1]))
                    )
                    start = n
                    break
                block *= 2
        return Approximation(segments, n)

    def _close(
        self,
        keys: Sequence[int],
        start: int,
        end: int,
        slope_lo: float,
        slope_hi: float,
    ) -> Segment:
        if slope_lo == float("-inf"):
            slope = 0.0  # single-point segment
        else:
            slope = (slope_lo + slope_hi) / 2.0
        first = int(keys[start])
        model = LinearModel(slope, 0.0, first)
        return Segment(first, start, keys[start:end], model)

    def __repr__(self) -> str:
        return f"GreedyPLAApproximator(eps={self.eps})"
