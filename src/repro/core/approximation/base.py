"""Shared types for approximation-CDF algorithms.

A :class:`Segment` models the *local* CDF of a contiguous key run: it maps a
key to a predicted offset inside the segment.  Working in local coordinates
(key relative to the segment's first key, position relative to the segment's
start) keeps double-precision arithmetic exact enough for 64-bit keys.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence

import repro.core.approximation.vectorized as _vec


@dataclass(frozen=True)
class LinearModel:
    """``position = slope * (key - base_key) + intercept``."""

    slope: float
    intercept: float
    base_key: int = 0

    def predict(self, key: int) -> float:
        return self.slope * (key - self.base_key) + self.intercept

    def predict_clamped(self, key: int, n: int) -> int:
        """Predicted integer position clamped into ``[0, n - 1]``."""
        pos = int(round(self.predict(key)))
        if pos < 0:
            return 0
        if pos >= n:
            return n - 1
        return pos


class Segment:
    """One piecewise-linear segment covering ``keys[start : start + n]``.

    ``max_error`` / ``avg_error`` are *measured* on the build keys, so
    error-bounded algorithms can be verified and unbounded ones (LSA)
    report what they actually achieved.
    """

    __slots__ = ("first_key", "start", "n", "model", "max_error", "avg_error")

    def __init__(
        self,
        first_key: int,
        start: int,
        keys: Sequence[int],
        model: LinearModel,
    ):
        self.first_key = first_key
        self.start = start
        self.n = len(keys)
        self.model = model
        measured = None
        if self.n >= _vec.MIN_VECTOR_KEYS or not isinstance(keys, list):
            arr = _vec.as_u64(keys)
            if arr is not None:
                measured = _vec.measure_errors(model, arr, self.n)
        if measured is None:
            max_err = 0
            sum_err = 0
            for local_pos, key in enumerate(keys):
                err = abs(model.predict_clamped(key, self.n) - local_pos)
                sum_err += err
                if err > max_err:
                    max_err = err
            measured = (max_err, sum_err)
        self.max_error = measured[0]
        self.avg_error = measured[1] / self.n if self.n else 0.0

    def predict(self, key: int) -> int:
        """Predicted local offset of ``key`` within this segment."""
        return self.model.predict_clamped(key, self.n)

    def search_window(self, key: int) -> tuple:
        """``(lo, hi)`` local bounds that are guaranteed to contain ``key``."""
        pos = self.predict(key)
        lo = max(0, pos - self.max_error)
        hi = min(self.n - 1, pos + self.max_error)
        return lo, hi

    def __repr__(self) -> str:
        return (
            f"Segment(first_key={self.first_key}, n={self.n}, "
            f"max_error={self.max_error}, avg_error={self.avg_error:.2f})"
        )


class Approximation:
    """Result of approximating one sorted key array: a list of segments."""

    def __init__(self, segments: List[Segment], n_keys: int):
        if not segments:
            raise ValueError("an approximation needs at least one segment")
        self.segments = segments
        self.n_keys = n_keys
        self.fences = [s.first_key for s in segments]

    @property
    def leaf_count(self) -> int:
        return len(self.segments)

    @property
    def avg_error(self) -> float:
        total = sum(s.avg_error * s.n for s in self.segments)
        return total / self.n_keys if self.n_keys else 0.0

    @property
    def max_error(self) -> int:
        return max(s.max_error for s in self.segments)

    def param_arrays(self):
        """Per-segment model parameters as parallel numpy arrays.

        ``(slope, intercept, base_key, n, start)`` — what a batch path
        needs to evaluate ``seg.start + seg.predict(key)`` for many
        (query, segment) pairs in one vectorized pass.  Cached on the
        instance (segments never change after fit); ``None`` without
        numpy.
        """
        cached = getattr(self, "_param_arrays", None)
        if cached is not None:
            return cached if cached != "unavailable" else None
        if not _vec.HAVE_NUMPY:
            return None
        np = _vec.np
        segs = self.segments
        try:
            # int64 so batch paths can form signed key deltas; keys in the
            # upper half of the u64 range fall back to the scalar loops.
            self._param_arrays = (
                np.array([s.model.slope for s in segs], dtype=np.float64),
                np.array([s.model.intercept for s in segs], dtype=np.float64),
                np.array([s.model.base_key for s in segs], dtype=np.int64),
                np.array([s.n for s in segs], dtype=np.int64),
                np.array([s.start for s in segs], dtype=np.int64),
            )
        except OverflowError:
            self._param_arrays = "unavailable"
            return None
        return self._param_arrays

    def segment_for(self, key: int) -> Segment:
        """The segment whose key range covers ``key``."""
        idx = bisect_right(self.fences, key) - 1
        if idx < 0:
            idx = 0
        return self.segments[idx]

    def segment_index_for(self, key: int) -> int:
        idx = bisect_right(self.fences, key) - 1
        return 0 if idx < 0 else idx

    def __repr__(self) -> str:
        return (
            f"Approximation(leaves={self.leaf_count}, "
            f"avg_error={self.avg_error:.2f}, max_error={self.max_error})"
        )


class Approximator(ABC):
    """An approximation-CDF algorithm: sorted keys -> :class:`Approximation`."""

    #: Short name used in benchmark tables ("LSA", "Opt-PLA", "LSA-gap", ...).
    name: str = "approximator"

    #: Whether the algorithm guarantees a maximum prediction error.
    bounded_error: bool = False

    @abstractmethod
    def fit(self, keys: Sequence[int]) -> Approximation:
        """Approximate the CDF of strictly-ascending ``keys``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
