"""Least-squares approximation over fixed-size segments (XIndex's algorithm).

The paper (§IV-A): "After dividing the stored data into fixed segments, LSA
is used to generate a linear model for each segment."  LSA provides no
maximum-error guarantee, which is the root of both its tail-latency problem
and its segments-vs-error conflict.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.errors import InvalidConfigurationError


def fit_least_squares(keys: Sequence[int], base_key: int) -> Tuple[float, float]:
    """Closed-form simple linear regression of local position on key.

    Returns ``(slope, intercept)`` for ``pos ~ slope * (key - base_key) +
    intercept`` where ``pos`` is the 0-based offset within ``keys``.
    """
    n = len(keys)
    if n == 1:
        return 0.0, 0.0
    # Work in local key coordinates to keep the normal equations accurate
    # for 64-bit keys.
    sum_x = 0.0
    sum_xx = 0.0
    sum_y = 0.0
    sum_xy = 0.0
    for pos, key in enumerate(keys):
        x = float(key - base_key)
        sum_x += x
        sum_xx += x * x
        sum_y += pos
        sum_xy += x * pos
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0.0:
        # All keys identical in float space; fall back to a flat model.
        return 0.0, (n - 1) / 2.0
    slope = (n * sum_xy - sum_x * sum_y) / denom
    intercept = (sum_y - slope * sum_x) / n
    return slope, intercept


class LSAApproximator(Approximator):
    """Split keys into fixed chunks of ``segment_size`` and fit each by LSA.

    ``vectorized=True`` (the default) uses numpy's closed-form least
    squares per chunk when the keys convert exactly to uint64.  The fixed
    chunking means segment boundaries are identical either way; the model
    coefficients can differ from the scalar loop only in the last ulp
    (pairwise vs. sequential summation).
    """

    name = "LSA"
    bounded_error = False

    def __init__(self, segment_size: int = 256, vectorized: bool = True):
        if segment_size < 1:
            raise InvalidConfigurationError(
                f"segment_size must be >= 1, got {segment_size}"
            )
        self.segment_size = segment_size
        self.vectorized = vectorized and _vec.HAVE_NUMPY

    def fit(self, keys: Sequence[int]) -> Approximation:
        if not keys:
            raise InvalidConfigurationError("cannot approximate an empty key set")
        arr = _vec.as_u64(keys) if self.vectorized else None
        segments = []
        for start in range(0, len(keys), self.segment_size):
            if arr is not None:
                chunk = arr[start : start + self.segment_size]
                base = int(chunk[0])
                slope, intercept = _vec.fit_least_squares_np(chunk, base)
            else:
                chunk = keys[start : start + self.segment_size]
                base = chunk[0]
                slope, intercept = fit_least_squares(chunk, base)
            model = LinearModel(slope, intercept, base)
            segments.append(Segment(base, start, chunk, model))
        return Approximation(segments, len(keys))

    def __repr__(self) -> str:
        return f"LSAApproximator(segment_size={self.segment_size})"
