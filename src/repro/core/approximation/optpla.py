"""Optimal streaming piecewise-linear approximation (PGM-Index's Opt-PLA).

Given a maximum error ``eps``, a segment can absorb a new point while there
still exists *some* line within ``eps`` of every point seen so far
(O'Rourke, CACM 1981).  Extending each segment maximally in one pass yields
the minimum possible number of segments — the property the paper credits to
PGM-Index ("less than or equal to the number of segments in FITing-tree").

The feasible set of lines is tracked by its two extreme members:

* the **max-slope line**, pinned by a lower constraint point
  ``(x, y - eps)`` on the left and an upper constraint point
  ``(x, y + eps)`` on the right, and
* the **min-slope line**, pinned by an upper point on the left and a lower
  point on the right.

When a new point tightens one of the extremes, the new extreme line passes
through the new constraint point and is tangent to the convex hull of the
opposite constraint set; tangents are found by a unimodal walk whose start
pointer only moves forward (amortised O(1) per point).

All geometry runs in coordinates local to the segment's first point so that
double precision remains exact for 64-bit keys.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.errors import InvalidConfigurationError

_TOL = 1e-9


def _slope(p: Tuple[float, float], q: Tuple[float, float]) -> float:
    return (q[1] - p[1]) / (q[0] - p[0])


def _cross(
    o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]
) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


class OptimalPLA:
    """Incremental feasibility tracker for one segment.

    Feed strictly-increasing ``x``; :meth:`add` returns ``False`` when the
    point cannot be absorbed, at which point the caller reads
    :meth:`current_line` and starts a new instance.
    """

    def __init__(self, eps: float):
        if eps < 0:
            raise InvalidConfigurationError(f"eps must be >= 0, got {eps}")
        self.eps = float(eps)
        self._n = 0
        self._x0 = 0.0
        self._y0 = 0.0
        # Convex hulls of constraint points (local coordinates).
        self._lower_hull: List[Tuple[float, float]] = []  # upper hull of (x, y-eps)
        self._upper_hull: List[Tuple[float, float]] = []  # lower hull of (x, y+eps)
        self._lo_ptr = 0
        self._up_ptr = 0
        # Extreme feasible lines: slope + a point each passes through.
        self._smax = 0.0
        self._smin = 0.0
        self._last_lx = 0.0
        self._pmax: Tuple[float, float] = (0.0, 0.0)  # on the max-slope line
        self._pmin: Tuple[float, float] = (0.0, 0.0)  # on the min-slope line

    @property
    def n_points(self) -> int:
        return self._n

    def add(self, x: float, y: float) -> bool:
        """Try to absorb point ``(x, y)``; False means the segment is full."""
        if self._n == 0:
            self._x0, self._y0 = float(x), float(y)
            self._lower_hull = [(0.0, -self.eps)]
            self._upper_hull = [(0.0, self.eps)]
            self._lo_ptr = 0
            self._up_ptr = 0
            self._last_lx = 0.0
            self._n = 1
            return True

        lx = float(x) - self._x0
        ly = float(y) - self._y0
        if lx <= self._last_lx:
            # Distinct integer keys can collapse to the same double once
            # the segment spans more than 2^53; refuse the point so the
            # caller starts a new segment, whose rebasing restores exact
            # local coordinates.
            return False
        self._last_lx = lx
        lower = (lx, ly - self.eps)
        upper = (lx, ly + self.eps)

        if self._n == 1:
            self._smax = _slope(self._lower_hull[0], upper)
            self._smin = _slope(self._upper_hull[0], lower)
            self._pmax = self._lower_hull[0]
            self._pmin = self._upper_hull[0]
            self._append_lower(lower)
            self._append_upper(upper)
            self._n = 2
            return True

        # Feasibility: even the steepest line must reach the new lower
        # point, and the shallowest must stay under the new upper point.
        max_at_x = self._pmax[1] + self._smax * (lx - self._pmax[0])
        min_at_x = self._pmin[1] + self._smin * (lx - self._pmin[0])
        guard = _TOL * max(1.0, abs(ly))
        if lower[1] > max_at_x + guard or upper[1] < min_at_x - guard:
            return False

        # Tighten the max-slope line if the new upper point binds it.
        if upper[1] < max_at_x:
            ptr = min(self._lo_ptr, len(self._lower_hull) - 1)
            best = _slope(self._lower_hull[ptr], upper)
            while ptr + 1 < len(self._lower_hull):
                cand = _slope(self._lower_hull[ptr + 1], upper)
                if cand > best:
                    break
                best = cand
                ptr += 1
            self._lo_ptr = ptr
            self._pmax = self._lower_hull[ptr]
            self._smax = best

        # Tighten the min-slope line if the new lower point binds it.
        if lower[1] > min_at_x:
            ptr = min(self._up_ptr, len(self._upper_hull) - 1)
            best = _slope(self._upper_hull[ptr], lower)
            while ptr + 1 < len(self._upper_hull):
                cand = _slope(self._upper_hull[ptr + 1], lower)
                if cand < best:
                    break
                best = cand
                ptr += 1
            self._up_ptr = ptr
            self._pmin = self._upper_hull[ptr]
            self._smin = best

        self._append_lower(lower)
        self._append_upper(upper)
        self._n += 1
        return True

    def _append_lower(self, p: Tuple[float, float]) -> None:
        """Maintain the upper convex hull of lower constraint points."""
        hull = self._lower_hull
        while (
            len(hull) - 1 > self._lo_ptr
            and _cross(hull[-2], hull[-1], p) >= 0
        ):
            hull.pop()
        hull.append(p)

    def _append_upper(self, p: Tuple[float, float]) -> None:
        """Maintain the lower convex hull of upper constraint points."""
        hull = self._upper_hull
        while (
            len(hull) - 1 > self._up_ptr
            and _cross(hull[-2], hull[-1], p) <= 0
        ):
            hull.pop()
        hull.append(p)

    def current_line(self) -> Tuple[float, float]:
        """``(slope, intercept)`` of a feasible line in local coordinates."""
        if self._n == 0:
            raise ValueError("no points added")
        if self._n == 1:
            return 0.0, 0.0
        slope = (self._smax + self._smin) / 2.0
        if self._smax == self._smin:
            # Degenerate feasible set: pin through the midpoint of the
            # first point's constraint interval (which is the point itself).
            return slope, 0.0
        # Both extreme lines pass through the interior of the feasible
        # strip; their intersection is a point every feasible line can
        # pivot around.
        xi = (
            self._pmin[1]
            - self._smin * self._pmin[0]
            - self._pmax[1]
            + self._smax * self._pmax[0]
        ) / (self._smax - self._smin)
        yi = self._pmax[1] + self._smax * (xi - self._pmax[0])
        return slope, yi - slope * xi

    def origin(self) -> Tuple[float, float]:
        """The global ``(x0, y0)`` this segment's local frame is based on."""
        return self._x0, self._y0


class OptPLAApproximator(Approximator):
    """One-pass minimal-segment PLA with guaranteed ``max_error <= eps``."""

    name = "Opt-PLA"
    bounded_error = True

    def __init__(self, eps: int = 32):
        if eps < 0:
            raise InvalidConfigurationError(f"eps must be >= 0, got {eps}")
        self.eps = eps

    def fit(self, keys: Sequence[int]) -> Approximation:
        if not len(keys):
            raise InvalidConfigurationError("cannot approximate an empty key set")
        arr = _vec.validate_fit_keys(keys, self.name)
        # The hull maintenance stays scalar (each point's tangent walk
        # depends on every previous point), but closing a segment through
        # the exact uint64 array vectorizes its error-bound measurement.
        measure_keys = arr if arr is not None else keys
        segments: List[Segment] = []
        start = 0
        pla = OptimalPLA(self.eps)
        i = 0
        n = len(keys)
        while i < n:
            # y is the local position so the fitted line predicts offsets
            # within the segment directly.
            if pla.add(float(keys[i] - keys[start]), float(i - start)):
                i += 1
                continue
            segments.append(self._close(keys, measure_keys, start, i, pla))
            start = i
            pla = OptimalPLA(self.eps)
        segments.append(self._close(keys, measure_keys, start, n, pla))
        return Approximation(segments, n)

    def _close(
        self,
        keys: Sequence[int],
        measure_keys: Sequence[int],
        start: int,
        end: int,
        pla: OptimalPLA,
    ) -> Segment:
        slope, intercept = pla.current_line()
        model = LinearModel(slope, intercept, keys[start])
        return Segment(keys[start], start, measure_keys[start:end], model)

    def __repr__(self) -> str:
        return f"OptPLAApproximator(eps={self.eps})"
