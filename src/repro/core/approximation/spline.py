"""One-pass error-bounded spline approximation (RadixSpline's algorithm).

Unlike PLA, consecutive spline pieces share knots: each piece interpolates
*exactly* between two spline points, so the curve is continuous.  A greedy
error corridor (slopes from the current knot) decides when a new knot must
be placed (Kipf et al., aiDM'20).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.errors import InvalidConfigurationError


class SplineModel:
    """A full spline: knots ``(key, position)`` + interpolation lookup."""

    def __init__(self, knots: List[Tuple[int, int]], n_keys: int):
        if len(knots) < 1:
            raise ValueError("spline needs at least one knot")
        self.knots = knots
        self.knot_keys = [k for k, _ in knots]
        self.n_keys = n_keys

    def predict(self, key: int) -> int:
        """Interpolated position of ``key``; clamped to [0, n_keys - 1]."""
        idx = bisect_right(self.knot_keys, key) - 1
        if idx < 0:
            return 0
        if idx >= len(self.knots) - 1:
            return self.knots[-1][1]
        k0, p0 = self.knots[idx]
        k1, p1 = self.knots[idx + 1]
        if k1 == k0:
            return p0
        pos = p0 + (p1 - p0) * (key - k0) / (k1 - k0)
        pos_i = int(round(pos))
        if pos_i < 0:
            return 0
        if pos_i >= self.n_keys:
            return self.n_keys - 1
        return pos_i

    def segment_index_for(self, key: int) -> int:
        idx = bisect_right(self.knot_keys, key) - 1
        if idx < 0:
            return 0
        return min(idx, len(self.knots) - 2) if len(self.knots) > 1 else 0

    def __len__(self) -> int:
        return len(self.knots)


def build_spline(keys: Sequence[int], eps: int) -> SplineModel:
    """Greedy one-pass corridor spline over strictly-ascending keys."""
    n = len(keys)
    if n == 0:
        raise InvalidConfigurationError("cannot build a spline over no keys")
    if n == 1:
        return SplineModel([(keys[0], 0)], 1)
    knots: List[Tuple[int, int]] = [(keys[0], 0)]
    slope_lo = float("-inf")
    slope_hi = float("inf")
    base_key, base_pos = keys[0], 0
    for i in range(1, n):
        dx = float(keys[i] - base_key)
        dy = float(i - base_pos)
        # A point is accepted only if the chord from the base knot to the
        # point itself stays inside the corridor; this is what guarantees
        # that linear interpolation between knots is within eps of every
        # intermediate point (Neumann & Michel's greedy spline corridor).
        if slope_lo <= dy / dx <= slope_hi:
            slope_lo = max(slope_lo, (dy - eps) / dx)
            slope_hi = min(slope_hi, (dy + eps) / dx)
            continue
        # Corridor violated: fix a knot at the previous point and restart
        # the corridor from there, constrained by the current point.
        prev = i - 1
        knots.append((keys[prev], prev))
        base_key, base_pos = keys[prev], prev
        dx = float(keys[i] - base_key)
        dy = float(i - base_pos)
        slope_lo = (dy - eps) / dx
        slope_hi = (dy + eps) / dx
    if knots[-1][0] != keys[-1]:
        knots.append((keys[-1], n - 1))
    return SplineModel(knots, n)


class SplineApproximator(Approximator):
    """Expose the spline through the common segment-list interface.

    Each inter-knot interval becomes a :class:`Segment` whose model is the
    chord between the knots, so the spline is directly comparable with the
    PLA algorithms in Fig 17-style sweeps.
    """

    name = "Spline"
    bounded_error = True

    def __init__(self, eps: int = 32):
        if eps < 0:
            raise InvalidConfigurationError(f"eps must be >= 0, got {eps}")
        self.eps = eps

    def fit(self, keys: Sequence[int]) -> Approximation:
        spline = build_spline(keys, self.eps)
        knots = spline.knots
        segments: List[Segment] = []
        if len(knots) == 1:
            model = LinearModel(0.0, 0.0, keys[0])
            segments.append(Segment(keys[0], 0, keys, model))
            return Approximation(segments, len(keys))
        for j in range(len(knots) - 1):
            k0, p0 = knots[j]
            k1, p1 = knots[j + 1]
            end = p1 if j < len(knots) - 2 else len(keys)
            chunk = keys[p0:end]
            slope = (p1 - p0) / (k1 - k0) if k1 != k0 else 0.0
            model = LinearModel(slope, 0.0, k0)
            segments.append(Segment(k0, p0, chunk, model))
        return Approximation(segments, len(keys))

    def __repr__(self) -> str:
        return f"SplineApproximator(eps={self.eps})"
