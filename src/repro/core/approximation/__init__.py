"""Approximation-CDF algorithms (the paper's dimension #1, §IV-A).

Implemented algorithms and their paper counterparts:

* :class:`LSAApproximator` — least squares over fixed-size segments
  (XIndex; no error guarantee).
* :class:`OptPLAApproximator` — optimal streaming piecewise linear
  approximation with a maximum-error guarantee (PGM-Index; O'Rourke 1981).
* :class:`GreedyPLAApproximator` — greedy feasible-space-window PLA
  (FITing-tree; error-bounded but >= Opt-PLA segments).
* :class:`LSAGapApproximator` — least squares followed by model-guided
  gapped placement that *changes the stored CDF* (ALEX's LSA+gap).
* :class:`SplineApproximator` — one-pass error-bounded spline
  (RadixSpline).
"""

from repro.core.approximation.base import (
    Approximation,
    Approximator,
    LinearModel,
    Segment,
)
from repro.core.approximation.lsa import LSAApproximator, fit_least_squares
from repro.core.approximation.optpla import OptPLAApproximator, OptimalPLA
from repro.core.approximation.greedy import GreedyPLAApproximator
from repro.core.approximation.lsa_gap import GappedSegment, LSAGapApproximator
from repro.core.approximation.spline import SplineApproximator, SplineModel

__all__ = [
    "Approximation",
    "Approximator",
    "LinearModel",
    "Segment",
    "LSAApproximator",
    "fit_least_squares",
    "OptPLAApproximator",
    "OptimalPLA",
    "GreedyPLAApproximator",
    "GappedSegment",
    "LSAGapApproximator",
    "SplineApproximator",
    "SplineModel",
]
