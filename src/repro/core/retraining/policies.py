"""Concrete retraining policies: retrain-one-node and expand-or-split."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.insertion.base import Leaf
from repro.core.insertion.gapped import GappedLeaf
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.retraining.base import RetrainPolicy
from repro.errors import InvalidConfigurationError
from repro.obs.trace import EventType
from repro.perf.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.composer import ComposedIndex


class SplitRetrainPolicy(RetrainPolicy):
    """Retrain one node (FITing-tree / XIndex style).

    The full leaf's live data (main run + buffer) is refit with the
    index's approximator; if the merged data no longer fits one segment
    within the approximator's tolerance, the leaf splits into several.
    ``max_leaf_keys`` additionally forces a split when a leaf outgrows the
    configured node capacity.
    """

    name = "retrain-one-node"

    def __init__(self, max_leaf_keys: int = 1 << 16):
        super().__init__()
        if max_leaf_keys < 2:
            raise InvalidConfigurationError("max_leaf_keys must be >= 2")
        self.max_leaf_keys = max_leaf_keys

    def retrain_leaf(self, index: "ComposedIndex", leaf_pos: int) -> List[Leaf]:
        leaf = index.leaves[leaf_pos]
        items = leaf.items()
        keys = [k for k, _ in items]
        values = [v for _, v in items]
        perf = index.perf
        perf.charge(Event.RETRAIN_KEY, len(keys))

        approx = index.approximator.fit(keys)
        if approx.leaf_count > 1:
            # The merged data no longer fits one segment within the
            # approximator's tolerance: the refit model is rejected and
            # the leaf splits along the new segment boundaries.
            perf.trace(
                EventType.FIT_REJECT,
                index=index.name,
                leaf=leaf_pos,
                key_lo=keys[0],
                key_hi=keys[-1],
                keys=len(keys),
                count=approx.leaf_count,
                reason="eps_overflow",
            )
        new_leaves: List[Leaf] = []
        for segment in approx.segments:
            seg_keys = keys[segment.start : segment.start + segment.n]
            seg_values = values[segment.start : segment.start + segment.n]
            # Enforce the node-capacity cap with an even split.
            if segment.n > self.max_leaf_keys:
                pieces = -(-segment.n // self.max_leaf_keys)
                step = -(-segment.n // pieces)
                for off in range(0, segment.n, step):
                    sub_keys = seg_keys[off : off + step]
                    sub_values = seg_values[off : off + step]
                    perf.charge(Event.ALLOC)
                    new_leaves.append(
                        index.insertion.make_leaf(sub_keys, sub_values, None, perf)
                    )
            else:
                perf.charge(Event.ALLOC)
                new_leaves.append(
                    index.insertion.make_leaf(seg_keys, seg_values, segment, perf)
                )
        return new_leaves


class ExpandOrSplitPolicy(RetrainPolicy):
    """ALEX's strategy: expand the gapped array if the model still fits,
    split into two data nodes otherwise (§II-B3).

    The decision mirrors ALEX's cost model in spirit: after refitting the
    merged keys, a low average slot error means the linear model still
    describes the data, so growing the array (same leaf, lower density)
    keeps queries fast; a high error means the CDF changed shape and the
    leaf must split.
    """

    name = "expand-or-split"

    def __init__(
        self,
        density: float = 0.6,
        split_error_threshold: float = 4.0,
        max_leaf_keys: int = 1 << 16,
    ):
        super().__init__()
        if not 0.0 < density <= 1.0:
            raise InvalidConfigurationError("density must be in (0, 1]")
        if split_error_threshold <= 0:
            raise InvalidConfigurationError("split_error_threshold must be > 0")
        if max_leaf_keys < 4:
            raise InvalidConfigurationError("max_leaf_keys must be >= 4")
        # ``density`` is the *lower* density bound: an expansion rebuilds
        # the gapped array at this density, so the headroom regained per
        # retrain is (upper_density - density) of the node — the reason
        # ALEX retrains rarely but each retrain is large (Fig 18b).
        self.density = density
        self.split_error_threshold = split_error_threshold
        self.max_leaf_keys = max_leaf_keys

    def _make_gapped(self, keys, values, perf) -> GappedLeaf:
        segment = GappedSegment(keys[0], 0, keys, self.density)
        return GappedLeaf(segment, list(values), perf)

    def retrain_leaf(self, index: "ComposedIndex", leaf_pos: int) -> List[Leaf]:
        leaf = index.leaves[leaf_pos]
        items = leaf.items()
        keys = [k for k, _ in items]
        values = [v for _, v in items]
        perf = index.perf
        perf.charge(Event.RETRAIN_KEY, len(keys))
        # A retrain triggered by insert pressure (sustained key shifting)
        # rather than density is ALEX's "catastrophic cost" signal: the
        # node is too hot for its model, so it must shrink, not expand.
        pressure_split = (
            isinstance(leaf, GappedLeaf)
            and leaf._move_ema > GappedLeaf.MOVE_EMA_LIMIT
            and len(keys) >= 64
        )
        return self._expand_or_split(
            keys,
            values,
            perf,
            depth=0,
            force_split=pressure_split,
            index_name=index.name,
            leaf_pos=leaf_pos,
        )

    def _expand_or_split(
        self,
        keys,
        values,
        perf,
        depth: int,
        force_split: bool = False,
        index_name: str = "",
        leaf_pos: int = -1,
    ) -> List[Leaf]:
        """Expand if the refit model describes the data; otherwise split
        recursively until each piece's model does (ALEX converges the same
        way: nodes shrink where the CDF has curvature)."""
        trial = GappedSegment(keys[0], 0, keys, self.density)
        fits = (
            not force_split
            and trial.avg_error <= self.split_error_threshold
            and len(keys) <= self.max_leaf_keys
        )
        if fits or len(keys) < 4 or depth >= 12:
            perf.charge(Event.ALLOC)
            return [GappedLeaf(trial, list(values), perf)]
        perf.trace(
            EventType.FIT_REJECT,
            index=index_name,
            leaf=leaf_pos,
            key_lo=keys[0],
            key_hi=keys[-1],
            keys=len(keys),
            reason="pressure" if force_split else "error_above_threshold",
        )
        mid = len(keys) // 2
        return self._expand_or_split(
            keys[:mid], values[:mid], perf, depth + 1,
            index_name=index_name, leaf_pos=leaf_pos,
        ) + self._expand_or_split(
            keys[mid:], values[mid:], perf, depth + 1,
            index_name=index_name, leaf_pos=leaf_pos,
        )
