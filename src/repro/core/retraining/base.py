"""Retraining policy interface and bookkeeping."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.core.insertion.base import Leaf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.composer import ComposedIndex


@dataclass
class RetrainStats:
    """What Fig 18(b)-(d) reports: how often, how big, how long."""

    count: int = 0
    keys_retrained: int = 0
    time_ns: float = 0.0
    per_retrain_ns: List[float] = field(default_factory=list)

    def record(self, keys: int, time_ns: float) -> None:
        self.count += 1
        self.keys_retrained += keys
        self.time_ns += time_ns
        self.per_retrain_ns.append(time_ns)

    def avg_time_ns(self) -> float:
        return self.time_ns / self.count if self.count else 0.0


class RetrainPolicy(ABC):
    """Decides what happens when a leaf reports FULL."""

    name: str = "retrain"

    def __init__(self) -> None:
        self.stats = RetrainStats()

    @abstractmethod
    def retrain_leaf(self, index: "ComposedIndex", leaf_pos: int) -> List[Leaf]:
        """Produce replacement leaves for ``index.leaves[leaf_pos]``.

        Implementations must charge their work (``Event.RETRAIN_KEY`` per
        key refit, ``Event.ALLOC`` per new leaf) to ``index.perf``; the
        composer measures the elapsed simulated time and records it into
        :attr:`stats`.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(retrains={self.stats.count})"
