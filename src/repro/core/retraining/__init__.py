"""Retraining strategies (the paper's dimension #4, §IV-E).

* :class:`SplitRetrainPolicy` — retrain-one-node (FITing-tree, XIndex):
  merge the leaf's data and refit it with the index's approximator,
  splitting into several leaves when the data demands it.
* :class:`ExpandOrSplitPolicy` — ALEX: if the leaf's model still fits the
  merged data well, *expand* the gapped array (same leaf, more slots);
  otherwise split into two gapped leaves.
* PGM-Index's LSM-style retraining operates across whole index levels,
  not single leaves; it lives in :class:`repro.learned.pgm.DynamicPGMIndex`
  and reports through the same :class:`RetrainStats`.
"""

from repro.core.retraining.base import RetrainPolicy, RetrainStats
from repro.core.retraining.policies import ExpandOrSplitPolicy, SplitRetrainPolicy

__all__ = [
    "RetrainPolicy",
    "RetrainStats",
    "SplitRetrainPolicy",
    "ExpandOrSplitPolicy",
]
