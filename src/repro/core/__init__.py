"""The paper's primary contribution: learned-index design, cut into pieces.

Section IV of the paper deconstructs updatable learned indexes into four
orthogonal dimensions and evaluates each independently:

* **approximation algorithm** (:mod:`repro.core.approximation`) —
  LSA, Opt-PLA, LSA-gap, greedy-PLA, one-pass spline;
* **internal structure** (:mod:`repro.core.structures`) —
  RMI, B+tree, Linear Recursive Structure, Asymmetric Tree, radix table;
* **insertion strategy** (:mod:`repro.core.insertion`) —
  inplace, offsite buffer, model-guided gapped array;
* **retraining strategy** (:mod:`repro.core.retraining`) —
  retrain-one-node, LSM merge, expand-or-split.

:class:`repro.core.composer.ComposedIndex` recombines any choice along each
dimension into a working index, realising the paper's observation that the
dimensions are orthogonal and "can be combined to form brand new indexes".
"""

from repro.core.interfaces import (
    Capabilities,
    Index,
    IndexStats,
    SortedIndex,
    UpdatableIndex,
)
from repro.core.composer import ComposedIndex

__all__ = [
    "Capabilities",
    "Index",
    "IndexStats",
    "SortedIndex",
    "UpdatableIndex",
    "ComposedIndex",
]
