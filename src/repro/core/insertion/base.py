"""Leaf container interface shared by the three insertion strategies."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Iterator, List, Optional, Tuple

from repro.perf.context import PROBE_LOCALITY_KEYS, PerfContext, charge_probe
from repro.perf.events import Event


def rank_search(
    keys: Any, lo: int, hi: int, key: int, guess: int, perf: PerfContext
) -> int:
    """Rightmost index in ``[lo, hi]`` with ``keys[i] <= key``; ``lo - 1`` if none.

    ``keys[lo..hi]`` must be sorted and gap-free.  Exponential search from
    ``guess``: the probe count scales with the prediction error, and each
    probe that jumps beyond cache-line locality is charged as a cache
    miss (see :func:`repro.perf.context.charge_probe`) — the mechanism
    through which model quality reaches the simulated clock.
    """
    charge = perf.charge
    if guess < lo:
        guess = lo
    elif guess > hi:
        guess = hi
    prev = guess
    charge(Event.COMPARE)
    if keys[guess] <= key:
        a = guess
        bound = 1
        while guess + bound <= hi:
            charge(Event.COMPARE)
            charge_probe(perf, guess + bound - prev)
            prev = guess + bound
            if keys[guess + bound] <= key:
                a = guess + bound
                bound *= 2
            else:
                break
        b = min(hi, guess + bound)
        while a < b:
            mid = (a + b + 1) // 2
            charge(Event.COMPARE)
            charge_probe(perf, mid - prev)
            prev = mid
            if keys[mid] <= key:
                a = mid
            else:
                b = mid - 1
        return a
    b = guess
    bound = 1
    while guess - bound >= lo:
        charge(Event.COMPARE)
        charge_probe(perf, guess - bound - prev)
        prev = guess - bound
        if keys[guess - bound] > key:
            b = guess - bound
            bound *= 2
        else:
            break
    a = guess - bound
    if a < lo:
        a = lo
        charge(Event.COMPARE)
        charge_probe(perf, a - prev)
        prev = a
        if keys[a] > key:
            return lo - 1
    # Invariant: keys[a] <= key < keys[b]; rightmost <= key is in [a, b-1].
    hi2 = b - 1
    while a < hi2:
        mid = (a + hi2 + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if keys[mid] <= key:
            a = mid
        else:
            hi2 = mid - 1
    return a


def replay_rank_search(
    lo: int, hi: int, guess: int, astar: int
) -> Tuple[int, int, int, int]:
    """``(compare, hop, seq, pos)`` that :func:`rank_search` would produce.

    Every probe of :func:`rank_search` compares ``keys[x] <= key``, which
    for a sorted gap-free ``keys[lo..hi]`` equals ``x <= astar`` where
    ``astar`` is the true answer (the rightmost index with
    ``keys[i] <= key``, ``lo - 1`` if none).  The whole probe trajectory
    — and with it the event ledger — is therefore a pure function of
    ``(lo, hi, guess, astar)``: batch paths obtain ``astar`` for every
    query with one vectorized ``searchsorted`` and replay the charges
    here without touching the key array.  Mirrors :func:`rank_search`
    branch for branch; ``pos`` always equals the scalar return value.
    """
    compare = hop = seq = 0
    if guess < lo:
        guess = lo
    elif guess > hi:
        guess = hi
    prev = guess
    compare += 1
    if guess <= astar:
        a = guess
        bound = 1
        while guess + bound <= hi:
            compare += 1
            d = guess + bound - prev
            if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
                hop += 1
            else:
                seq += 1
            prev = guess + bound
            if guess + bound <= astar:
                a = guess + bound
                bound *= 2
            else:
                break
        b = min(hi, guess + bound)
        while a < b:
            mid = (a + b + 1) // 2
            compare += 1
            d = mid - prev
            if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
                hop += 1
            else:
                seq += 1
            prev = mid
            if mid <= astar:
                a = mid
            else:
                b = mid - 1
        return compare, hop, seq, a
    b = guess
    bound = 1
    while guess - bound >= lo:
        compare += 1
        d = guess - bound - prev
        if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
            hop += 1
        else:
            seq += 1
        prev = guess - bound
        if guess - bound > astar:
            b = guess - bound
            bound *= 2
        else:
            break
    a = guess - bound
    if a < lo:
        a = lo
        compare += 1
        d = a - prev
        if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
            hop += 1
        else:
            seq += 1
        prev = a
        if a > astar:
            return compare, hop, seq, lo - 1
    hi2 = b - 1
    while a < hi2:
        mid = (a + hi2 + 1) // 2
        compare += 1
        d = mid - prev
        if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
            hop += 1
        else:
            seq += 1
        prev = mid
        if mid <= astar:
            a = mid
        else:
            hi2 = mid - 1
    return compare, hop, seq, a


#: d -> (compare, hop, seq) of an interior rank search (see
#: :func:`rank_replay_charges`).
_RANK_REPLAY_MEMO: dict = {}


def rank_replay_charges(d: int) -> Tuple[int, int, int]:
    """``(compare, hop, seq)`` of a rank search with error ``d``.

    Valid when ``guess - (2|d| + 2) >= lo`` and
    ``guess + (2|d| + 2) <= hi``: the gallop never exceeds a bound of
    ``2|d|``, so no probe can leave ``[lo, hi]`` and no clamp branch can
    fire — the trajectory, and with it the ledger, is then a pure
    function of ``d = astar - guess``, shared across positions and
    across indexes.
    """
    hit = _RANK_REPLAY_MEMO.get(d)
    if hit is None:
        span = 2 * abs(d) + 4
        c, h, s, _ = replay_rank_search(0, 2 * span, span, span + d)
        hit = _RANK_REPLAY_MEMO[d] = (c, h, s)
    return hit


#: (hi, guess, astar) -> charges for rank searches too close to a border
#: for the translation-invariant memo (lo is always 0 at the call sites).
_RANK_BORDER_MEMO: dict = {}


def rank_border_charges(hi: int, guess: int, astar: int):
    """Memoized :func:`replay_rank_search` charges over ``[0, hi]``."""
    key = (hi, guess, astar)
    hit = _RANK_BORDER_MEMO.get(key)
    if hit is None:
        if len(_RANK_BORDER_MEMO) > 65536:
            _RANK_BORDER_MEMO.clear()
        c, h, s, _ = replay_rank_search(0, hi, guess, astar)
        hit = _RANK_BORDER_MEMO[key] = (c, h, s)
    return hit


class InsertResult(enum.Enum):
    """Outcome of a leaf insert."""

    INSERTED = "inserted"
    UPDATED = "updated"  # key existed; value overwritten
    FULL = "full"  # no space: the retraining policy must act first


class Leaf(ABC):
    """A leaf node holding sorted key/value pairs behind a linear model."""

    def __init__(self, perf: PerfContext):
        self.perf = perf

    @property
    @abstractmethod
    def first_key(self) -> int:
        """Smallest key covered (the leaf's fence)."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of live keys (including any buffered ones)."""

    @abstractmethod
    def get(self, key: int) -> Optional[Any]: ...

    def get_many(self, keys: Any) -> List[Optional[Any]]:
        """Batch :meth:`get`; strategies may override with a fast path."""
        return [self.get(key) for key in keys]

    @abstractmethod
    def insert(self, key: int, value: Any) -> InsertResult: ...

    def upsert(self, key: int, value: Any) -> Tuple[InsertResult, Optional[Any]]:
        """Insert-or-overwrite in one call; returns ``(result, old_value)``.

        ``old_value`` is the payload that was overwritten when the result
        is UPDATED, ``None`` otherwise.  The default probes then inserts
        (two rank searches); the concrete leaves override this with a
        single-search path and implement :meth:`insert` on top of it, so
        a store-level put costs one leaf search, not two.
        """
        old = self.get(key)
        result = self.insert(key, value)
        return result, (old if result is InsertResult.UPDATED else None)

    def insert_batch(self, items: List[Tuple[int, Any]]) -> Optional[int]:
        """Bulk upsert of a sorted run of pairs (last duplicate wins).

        Returns the number of *new* keys absorbed, or ``None`` when the
        leaf wants the caller to fall back to per-key :meth:`insert`
        (which is always correct) — the default, since only leaves with a
        vectorized storage backend can do better.
        """
        return None

    def delete(self, key: int) -> bool:
        """Remove ``key``; return False if absent.  Strategies override."""
        raise NotImplementedError

    @abstractmethod
    def items(self) -> List[Tuple[int, Any]]:
        """All live pairs in ascending key order (used by retraining)."""

    @abstractmethod
    def size_bytes(self) -> int: ...

    @property
    def capacity_slots(self) -> int:
        """Key/pointer slots this leaf keeps resident (incl. reserve)."""
        return self.n

    def iter_range(
        self, lo: int, hi: int
    ) -> Iterator[Tuple[int, Any]]:
        """Pairs with lo <= key <= hi, ascending (default: filter items)."""
        for key, value in self.items():
            if key > hi:
                return
            if key >= lo:
                yield key, value

    def scan_from(self, lo: int, limit: int) -> List[Tuple[int, Any]]:
        """Up to ``limit`` pairs with key >= ``lo``, ascending.

        The range-extraction primitive behind ``ComposedIndex.scan_many``:
        one call hands back a whole run from this leaf instead of
        ``limit`` iterator steps.  Like :meth:`iter_range` it charges
        nothing (the composed index bills positioning at the structure
        level); strategies with an indexable storage backend override the
        default bounded iteration with a slice/merge fast path.
        """
        out: List[Tuple[int, Any]] = []
        for pair in self.iter_range(lo, 2**64 - 1):
            out.append(pair)
            if len(out) >= limit:
                break
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(first_key={self.first_key}, n={self.n})"
