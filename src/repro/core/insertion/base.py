"""Leaf container interface shared by the three insertion strategies."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Iterator, List, Optional, Tuple

from repro.perf.context import PerfContext, charge_probe
from repro.perf.events import Event


def rank_search(
    keys: Any, lo: int, hi: int, key: int, guess: int, perf: PerfContext
) -> int:
    """Rightmost index in ``[lo, hi]`` with ``keys[i] <= key``; ``lo - 1`` if none.

    ``keys[lo..hi]`` must be sorted and gap-free.  Exponential search from
    ``guess``: the probe count scales with the prediction error, and each
    probe that jumps beyond cache-line locality is charged as a cache
    miss (see :func:`repro.perf.context.charge_probe`) — the mechanism
    through which model quality reaches the simulated clock.
    """
    charge = perf.charge
    if guess < lo:
        guess = lo
    elif guess > hi:
        guess = hi
    prev = guess
    charge(Event.COMPARE)
    if keys[guess] <= key:
        a = guess
        bound = 1
        while guess + bound <= hi:
            charge(Event.COMPARE)
            charge_probe(perf, guess + bound - prev)
            prev = guess + bound
            if keys[guess + bound] <= key:
                a = guess + bound
                bound *= 2
            else:
                break
        b = min(hi, guess + bound)
        while a < b:
            mid = (a + b + 1) // 2
            charge(Event.COMPARE)
            charge_probe(perf, mid - prev)
            prev = mid
            if keys[mid] <= key:
                a = mid
            else:
                b = mid - 1
        return a
    b = guess
    bound = 1
    while guess - bound >= lo:
        charge(Event.COMPARE)
        charge_probe(perf, guess - bound - prev)
        prev = guess - bound
        if keys[guess - bound] > key:
            b = guess - bound
            bound *= 2
        else:
            break
    a = guess - bound
    if a < lo:
        a = lo
        charge(Event.COMPARE)
        charge_probe(perf, a - prev)
        prev = a
        if keys[a] > key:
            return lo - 1
    # Invariant: keys[a] <= key < keys[b]; rightmost <= key is in [a, b-1].
    hi2 = b - 1
    while a < hi2:
        mid = (a + hi2 + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if keys[mid] <= key:
            a = mid
        else:
            hi2 = mid - 1
    return a


class InsertResult(enum.Enum):
    """Outcome of a leaf insert."""

    INSERTED = "inserted"
    UPDATED = "updated"  # key existed; value overwritten
    FULL = "full"  # no space: the retraining policy must act first


class Leaf(ABC):
    """A leaf node holding sorted key/value pairs behind a linear model."""

    def __init__(self, perf: PerfContext):
        self.perf = perf

    @property
    @abstractmethod
    def first_key(self) -> int:
        """Smallest key covered (the leaf's fence)."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of live keys (including any buffered ones)."""

    @abstractmethod
    def get(self, key: int) -> Optional[Any]: ...

    def get_many(self, keys: Any) -> List[Optional[Any]]:
        """Batch :meth:`get`; strategies may override with a fast path."""
        return [self.get(key) for key in keys]

    @abstractmethod
    def insert(self, key: int, value: Any) -> InsertResult: ...

    def upsert(self, key: int, value: Any) -> Tuple[InsertResult, Optional[Any]]:
        """Insert-or-overwrite in one call; returns ``(result, old_value)``.

        ``old_value`` is the payload that was overwritten when the result
        is UPDATED, ``None`` otherwise.  The default probes then inserts
        (two rank searches); the concrete leaves override this with a
        single-search path and implement :meth:`insert` on top of it, so
        a store-level put costs one leaf search, not two.
        """
        old = self.get(key)
        result = self.insert(key, value)
        return result, (old if result is InsertResult.UPDATED else None)

    def insert_batch(self, items: List[Tuple[int, Any]]) -> Optional[int]:
        """Bulk upsert of a sorted run of pairs (last duplicate wins).

        Returns the number of *new* keys absorbed, or ``None`` when the
        leaf wants the caller to fall back to per-key :meth:`insert`
        (which is always correct) — the default, since only leaves with a
        vectorized storage backend can do better.
        """
        return None

    def delete(self, key: int) -> bool:
        """Remove ``key``; return False if absent.  Strategies override."""
        raise NotImplementedError

    @abstractmethod
    def items(self) -> List[Tuple[int, Any]]:
        """All live pairs in ascending key order (used by retraining)."""

    @abstractmethod
    def size_bytes(self) -> int: ...

    @property
    def capacity_slots(self) -> int:
        """Key/pointer slots this leaf keeps resident (incl. reserve)."""
        return self.n

    def iter_range(
        self, lo: int, hi: int
    ) -> Iterator[Tuple[int, Any]]:
        """Pairs with lo <= key <= hi, ascending (default: filter items)."""
        for key, value in self.items():
            if key > hi:
                return
            if key >= lo:
                yield key, value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(first_key={self.first_key}, n={self.n})"
