"""Insertion strategies (the paper's dimension #3, §IV-D).

Three leaf-container designs, each charging the key movements its strategy
actually causes:

* :class:`InplaceLeaf` — FITing-tree's *inplace* strategy: reserved space
  at both ends of the sorted run; an insert shifts every key between the
  insertion point and the nearer end.
* :class:`BufferedLeaf` — the *offsite buffer* strategy (FITing-tree-buf,
  XIndex, PGM's staging): new keys go to a per-leaf sorted buffer; lookups
  must check both places; a full buffer triggers a merge-retrain.
* :class:`GappedLeaf` — ALEX's *gapped array*: the model predicts a slot,
  and gaps left by LSA-gap placement absorb inserts with little or no key
  movement.
* :class:`repro.core.insertion.fine_bins.FineBinLeaf` — FINEdex's
  per-position *level bins* (an extension beyond the paper's three).
"""

from repro.core.insertion.base import InsertResult, Leaf
from repro.core.insertion.inplace import InplaceLeaf
from repro.core.insertion.buffered import BufferedLeaf
from repro.core.insertion.gapped import GappedLeaf

__all__ = [
    "InsertResult",
    "Leaf",
    "InplaceLeaf",
    "BufferedLeaf",
    "GappedLeaf",
]
