"""Inplace insertion: reserved space at both ends of the sorted run.

FITing-tree's inplace strategy (§II-B1): the leaf keeps its keys densely
sorted with ``reserve`` empty slots split between the two ends.  An insert
shifts every key between the insertion point and the nearer end by one
slot — the key-movement cost that makes this strategy the slowest in
Fig 18(a), and the reason a larger reserve makes it *worse* (more keys fit
in the node, so the average shift distance grows).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.insertion.base import InsertResult, Leaf, rank_search
from repro.perf.context import PerfContext
from repro.perf.events import Event

_PAIR_BYTES = 16  # 8-byte key + 8-byte value pointer


class InplaceLeaf(Leaf):
    """Dense sorted array with end reserves; model-guided search."""

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[Any],
        model: LinearModel,
        max_error: int,
        reserve: int,
        perf: PerfContext,
    ):
        super().__init__(perf)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if not keys:
            raise ValueError("an inplace leaf needs at least one key")
        left_reserve = reserve // 2
        capacity = len(keys) + reserve
        self._keys: List[Optional[int]] = (
            [None] * left_reserve
            + list(keys)
            + [None] * (reserve - left_reserve)
        )
        self._values: List[Any] = (
            [None] * left_reserve
            + list(values)
            + [None] * (reserve - left_reserve)
        )
        self._left = left_reserve
        self._right = left_reserve + len(keys)
        self._capacity = capacity
        self.model = model
        self.max_error = max_error
        # Every insert can shift positions by one relative to the stale
        # model, so the search window widens as the leaf dirties.
        self._dirty = 0

    # -- Leaf interface -------------------------------------------------

    @property
    def first_key(self) -> int:
        return self._keys[self._left]  # type: ignore[return-value]

    @property
    def n(self) -> int:
        return self._right - self._left

    def free_space(self) -> int:
        return self._capacity - self.n

    def _predict_index(self, key: int) -> int:
        self.perf.charge(Event.MODEL_EVAL)
        local = self.model.predict_clamped(key, max(1, self.n))
        return self._left + local

    def _rank(self, key: int) -> int:
        """Index of the rightmost live slot with key <= ``key``.

        Returns ``self._left - 1`` when every key is greater.
        """
        guess = self._predict_index(key)
        return rank_search(
            self._keys, self._left, self._right - 1, key, guess, self.perf
        )

    def get(self, key: int) -> Optional[Any]:
        self.perf.charge(Event.DRAM_HOP)
        if self.n == 0:
            return None
        idx = self._rank(key)
        if idx >= self._left and self._keys[idx] == key:
            return self._values[idx]
        return None

    def insert(self, key: int, value: Any) -> InsertResult:
        return self.upsert(key, value)[0]

    def upsert(self, key: int, value: Any) -> Tuple[InsertResult, Optional[Any]]:
        self.perf.charge(Event.DRAM_HOP)
        idx = self._rank(key)
        if idx >= self._left and self._keys[idx] == key:
            old = self._values[idx]
            self._values[idx] = value
            return InsertResult.UPDATED, old
        target = idx + 1  # the slot the new key must occupy

        charge = self.perf.charge
        left_space = self._left > 0
        right_space = self._right < self._capacity
        if not left_space and not right_space:
            return InsertResult.FULL, None

        shift_left = target - self._left  # keys to move if shifting left
        shift_right = self._right - target  # keys to move if shifting right
        use_left = left_space and (not right_space or shift_left <= shift_right)
        if use_left:
            for i in range(self._left, target):
                self._keys[i - 1] = self._keys[i]
                self._values[i - 1] = self._values[i]
                charge(Event.KEY_MOVE)
            self._left -= 1
            target -= 1
        else:
            for i in range(self._right - 1, target - 1, -1):
                self._keys[i + 1] = self._keys[i]
                self._values[i + 1] = self._values[i]
                charge(Event.KEY_MOVE)
            self._right += 1
        self._keys[target] = key
        self._values[target] = value
        self._dirty += 1
        return InsertResult.INSERTED, None

    @property
    def capacity_slots(self) -> int:
        return self._capacity

    def delete(self, key: int) -> bool:
        """Remove ``key``; shifts the shorter side inward."""
        self.perf.charge(Event.DRAM_HOP)
        idx = self._rank(key)
        if idx < self._left or self._keys[idx] != key:
            return False
        left_span = idx - self._left
        right_span = self._right - idx - 1
        charge = self.perf.charge
        if left_span <= right_span:
            for i in range(idx, self._left, -1):
                self._keys[i] = self._keys[i - 1]
                self._values[i] = self._values[i - 1]
                charge(Event.KEY_MOVE)
            self._keys[self._left] = None
            self._values[self._left] = None
            self._left += 1
        else:
            for i in range(idx, self._right - 1):
                self._keys[i] = self._keys[i + 1]
                self._values[i] = self._values[i + 1]
                charge(Event.KEY_MOVE)
            self._right -= 1
            self._keys[self._right] = None
            self._values[self._right] = None
        self._dirty += 1
        return True

    def items(self) -> List[Tuple[int, Any]]:
        return [
            (self._keys[i], self._values[i])  # type: ignore[misc]
            for i in range(self._left, self._right)
        ]

    def size_bytes(self) -> int:
        return self._capacity * _PAIR_BYTES + 24  # slots + model
