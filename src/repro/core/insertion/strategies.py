"""Insertion-strategy factories: how a segment becomes a leaf node.

These adapt the three leaf containers to the composer: given a key/value
run (and, when available, the approximator's fitted segment), produce the
leaf the strategy calls for.  When the segment's model does not speak the
container's language (e.g. a gapped slot model handed to a dense leaf, or
a retrain with no segment at all), the strategy refits a least-squares
model locally.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel, Segment
from repro.core.approximation.lsa import fit_least_squares
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion.base import Leaf
from repro.core.insertion.buffered import BufferedLeaf
from repro.core.insertion.gapped import GappedLeaf
from repro.core.insertion.inplace import InplaceLeaf
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext


def fit_dense_model(keys: Sequence[int]) -> Tuple[LinearModel, int]:
    """LSA model over a dense sorted run + its measured max error."""
    slope, intercept = fit_least_squares(keys, keys[0])
    model = LinearModel(slope, intercept, keys[0])
    n = len(keys)
    max_err = 0
    for i, key in enumerate(keys):
        err = abs(model.predict_clamped(key, n) - i)
        if err > max_err:
            max_err = err
    return model, max_err


def _dense_model_from(
    segment: Optional[Segment], keys: Sequence[int]
) -> Tuple[LinearModel, int]:
    if segment is not None and not isinstance(segment, GappedSegment):
        return segment.model, segment.max_error
    return fit_dense_model(keys)


class InsertionStrategy(ABC):
    """Factory turning a (keys, values, segment) triple into a leaf."""

    name: str = "strategy"

    @abstractmethod
    def make_leaf(
        self,
        keys: Sequence[int],
        values: Sequence[Any],
        segment: Optional[Segment],
        perf: PerfContext,
    ) -> Leaf: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InplaceStrategy(InsertionStrategy):
    """FITing-tree-inp: reserved slots at both ends of each leaf."""

    name = "inplace"

    def __init__(self, reserve: int = 128):
        if reserve < 1:
            raise InvalidConfigurationError(f"reserve must be >= 1, got {reserve}")
        self.reserve = reserve

    def make_leaf(self, keys, values, segment, perf) -> Leaf:
        model, max_error = _dense_model_from(segment, keys)
        return InplaceLeaf(keys, values, model, max_error, self.reserve, perf)


class BufferStrategy(InsertionStrategy):
    """FITing-tree-buf / XIndex: a per-leaf offsite sorted buffer."""

    name = "buffer"

    def __init__(self, buffer_capacity: int = 256):
        if buffer_capacity < 1:
            raise InvalidConfigurationError(
                f"buffer_capacity must be >= 1, got {buffer_capacity}"
            )
        self.buffer_capacity = buffer_capacity

    def make_leaf(self, keys, values, segment, perf) -> Leaf:
        model, max_error = _dense_model_from(segment, keys)
        return BufferedLeaf(
            keys, values, model, max_error, self.buffer_capacity, perf
        )


class GappedStrategy(InsertionStrategy):
    """ALEX-gap: model-addressed gapped arrays."""

    name = "gapped"

    def __init__(
        self,
        density: float = 0.7,
        upper_density: float = 0.8,
        vectorized: bool = True,
    ):
        if not 0.0 < density <= upper_density <= 1.0:
            raise InvalidConfigurationError(
                "need 0 < density <= upper_density <= 1, got "
                f"density={density}, upper_density={upper_density}"
            )
        self.density = density
        self.upper_density = upper_density
        self.vectorized = vectorized

    def make_leaf(self, keys, values, segment, perf) -> Leaf:
        if isinstance(segment, GappedSegment) and segment.n == len(keys):
            gapped = segment
        else:
            gapped = GappedSegment(
                keys[0], 0, keys, self.density, vectorized=self.vectorized
            )
        return GappedLeaf(
            gapped,
            list(values),
            perf,
            self.upper_density,
            vectorized=self.vectorized,
        )
