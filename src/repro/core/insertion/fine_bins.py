"""Fine-grained level bins — FINEdex's insertion strategy.

FINEdex (Li et al., VLDB 2021; the paper's reference [7]) attaches a
small *level bin* to each insertion position of the trained array instead
of one buffer per node: an insert lands in the bin at its predecessor's
position, so (a) a lookup checks exactly one bin rather than searching a
node-wide buffer, and (b) a full bin retrains only the data around one
model — fine-grained, which is what makes the scheme concurrency-friendly.

This module adds that design to the insertion dimension, alongside
inplace, buffer and gapped; :class:`repro.learned.finedex.FINEdexIndex`
composes it into the full index.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.insertion.base import InsertResult, Leaf, rank_search
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

_PAIR_BYTES = 16


class FineBinLeaf(Leaf):
    """Immutable sorted run + per-position level bins."""

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[Any],
        model: LinearModel,
        max_error: int,
        bin_capacity: int,
        max_bin_fraction: float,
        perf: PerfContext,
    ):
        super().__init__(perf)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if not keys:
            raise ValueError("a fine-bin leaf needs at least one key")
        if bin_capacity < 1:
            raise InvalidConfigurationError("bin_capacity must be >= 1")
        if not 0.0 < max_bin_fraction <= 4.0:
            raise InvalidConfigurationError(
                "max_bin_fraction must be in (0, 4]"
            )
        self._keys = list(keys)
        self._values = list(values)
        self.model = model
        self.max_error = max_error
        self.bin_capacity = bin_capacity
        self.max_bin_fraction = max_bin_fraction
        # bin i holds keys between main[i-1] and main[i] (i == insertion
        # position; i ranges over 0..len(main)).
        self._bins: Dict[int, Tuple[List[int], List[Any]]] = {}
        self._bin_keys_total = 0

    # -- helpers ------------------------------------------------------------

    @property
    def first_key(self) -> int:
        first_bin = self._bins.get(0)
        if first_bin and (not self._keys or first_bin[0][0] < self._keys[0]):
            return first_bin[0][0]
        if not self._keys:
            # Main emptied; fall back to the smallest binned key.
            return min(entry[0][0] for entry in self._bins.values())
        return self._keys[0]

    @property
    def n(self) -> int:
        return len(self._keys) + self._bin_keys_total

    @property
    def capacity_slots(self) -> int:
        return len(self._keys) + len(self._bins) * self.bin_capacity

    def _main_rank(self, key: int) -> int:
        if not self._keys:
            return -1  # main run emptied by deletes; bins may still hold keys
        self.perf.charge(Event.MODEL_EVAL)
        guess = self.model.predict_clamped(key, len(self._keys))
        return rank_search(
            self._keys, 0, len(self._keys) - 1, key, guess, self.perf
        )

    def _bin_rank(self, bin_keys: List[int], key: int) -> int:
        """Rightmost bin index with key <= ``key``; -1 if none."""
        self.perf.charge(Event.DRAM_HOP)  # the bin is its own allocation
        if not bin_keys:
            return -1
        return rank_search(
            bin_keys, 0, len(bin_keys) - 1, key, len(bin_keys) // 2, self.perf
        )

    # -- Leaf interface -------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        self.perf.charge(Event.DRAM_HOP)
        rank = self._main_rank(key)
        if rank >= 0 and self._keys[rank] == key:
            return self._values[rank]
        entry = self._bins.get(rank + 1)
        if entry is None:
            return None
        bin_keys, bin_values = entry
        idx = self._bin_rank(bin_keys, key)
        if idx >= 0 and bin_keys[idx] == key:
            return bin_values[idx]
        return None

    def insert(self, key: int, value: Any) -> InsertResult:
        self.perf.charge(Event.DRAM_HOP)
        rank = self._main_rank(key)
        if rank >= 0 and self._keys[rank] == key:
            self._values[rank] = value
            return InsertResult.UPDATED
        position = rank + 1
        entry = self._bins.get(position)
        if entry is None:
            if self._bin_keys_total >= max(
                1, len(self._keys)
            ) * self.max_bin_fraction:
                return InsertResult.FULL
            self.perf.charge(Event.ALLOC)
            entry = ([], [])
            self._bins[position] = entry
        bin_keys, bin_values = entry
        idx = self._bin_rank(bin_keys, key)
        if idx >= 0 and bin_keys[idx] == key:
            bin_values[idx] = value
            return InsertResult.UPDATED
        if len(bin_keys) >= self.bin_capacity:
            return InsertResult.FULL
        insert_at = idx + 1
        self.perf.charge(Event.KEY_MOVE, len(bin_keys) - insert_at)
        bin_keys.insert(insert_at, key)
        bin_values.insert(insert_at, value)
        self._bin_keys_total += 1
        return InsertResult.INSERTED

    def delete(self, key: int) -> bool:
        self.perf.charge(Event.DRAM_HOP)
        rank = self._main_rank(key)
        if rank >= 0 and self._keys[rank] == key:
            self.perf.charge(Event.KEY_MOVE, len(self._keys) - rank - 1)
            del self._keys[rank]
            del self._values[rank]
            # Bin positions after the removed slot shift left by one; the
            # bins flanking the removed key now share a position and merge.
            shifted: Dict[int, Tuple[List[int], List[Any]]] = {}
            for pos in sorted(self._bins):
                entry = self._bins[pos]
                new_pos = pos if pos <= rank else pos - 1
                existing = shifted.get(new_pos)
                if existing is None:
                    shifted[new_pos] = entry
                else:
                    merged = sorted(
                        zip(existing[0] + entry[0], existing[1] + entry[1])
                    )
                    shifted[new_pos] = (
                        [k for k, _ in merged],
                        [v for _, v in merged],
                    )
            self._bins = shifted
            return True
        entry = self._bins.get(rank + 1)
        if entry is None:
            return False
        bin_keys, bin_values = entry
        idx = self._bin_rank(bin_keys, key)
        if idx < 0 or bin_keys[idx] != key:
            return False
        self.perf.charge(Event.KEY_MOVE, len(bin_keys) - idx - 1)
        del bin_keys[idx]
        del bin_values[idx]
        self._bin_keys_total -= 1
        if not bin_keys:
            del self._bins[rank + 1]
        return True

    def scan_from(self, lo: int, limit: int) -> List[Tuple[int, Any]]:
        """Bisect into the main run, then interleave bins positionally.

        Starts at the insertion position of ``lo`` (so only that
        position's bin needs key filtering) instead of walking every
        earlier position the way the ``items()``-based default does.
        Charges nothing, like the default it replaces.
        """
        out: List[Tuple[int, Any]] = []
        start = bisect_left(self._keys, lo)
        for position in range(start, len(self._keys) + 1):
            entry = self._bins.get(position)
            if entry is not None:
                if position == start:
                    pairs = [
                        (k, v)
                        for k, v in zip(entry[0], entry[1])
                        if k >= lo
                    ]
                else:
                    pairs = list(zip(entry[0], entry[1]))
                out.extend(pairs)
            if position < len(self._keys):
                out.append((self._keys[position], self._values[position]))
            if len(out) >= limit:
                return out[:limit]
        return out

    def items(self) -> List[Tuple[int, Any]]:
        out: List[Tuple[int, Any]] = []
        for position in range(len(self._keys) + 1):
            entry = self._bins.get(position)
            if entry is not None:
                out.extend(zip(entry[0], entry[1]))
            if position < len(self._keys):
                out.append((self._keys[position], self._values[position]))
        return out

    def size_bytes(self) -> int:
        return (
            len(self._keys) * _PAIR_BYTES
            + len(self._bins) * (self.bin_capacity * _PAIR_BYTES + 16)
            + 24
        )

    def bin_stats(self) -> Tuple[int, int]:
        """``(bins allocated, keys currently binned)``."""
        return len(self._bins), self._bin_keys_total
