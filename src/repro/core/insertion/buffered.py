"""Offsite buffer insertion: a per-leaf sorted staging area.

FITing-tree-buf and XIndex reserve "an extra fixed-size buffer for each
leaf node to store the newly inserted data temporarily and to keep them in
order" (§II-B1).  Inserts shift only within the (small) buffer, but every
lookup must search both the main run and the buffer, and a full buffer
forces a merge-retrain — the coupling behind Fig 18(c)'s reserve-size
trade-off.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.insertion.base import InsertResult, Leaf, rank_search
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

_PAIR_BYTES = 16


class BufferedLeaf(Leaf):
    """Immutable sorted main run + bounded sorted insert buffer."""

    def __init__(
        self,
        keys: Sequence[int],
        values: Sequence[Any],
        model: LinearModel,
        max_error: int,
        buffer_capacity: int,
        perf: PerfContext,
    ):
        super().__init__(perf)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if not keys:
            raise ValueError("a buffered leaf needs at least one key")
        if buffer_capacity < 1:
            raise InvalidConfigurationError(
                f"buffer_capacity must be >= 1, got {buffer_capacity}"
            )
        self._keys = list(keys)
        self._values = list(values)
        self.model = model
        self.max_error = max_error
        self.buffer_capacity = buffer_capacity
        self._buf_keys: List[int] = []
        self._buf_values: List[Any] = []

    @property
    def first_key(self) -> int:
        if self._buf_keys and self._buf_keys[0] < self._keys[0]:
            return self._buf_keys[0]
        return self._keys[0]

    @property
    def n(self) -> int:
        return len(self._keys) + len(self._buf_keys)

    def buffer_fill(self) -> int:
        return len(self._buf_keys)

    def _main_rank(self, key: int) -> int:
        self.perf.charge(Event.MODEL_EVAL)
        guess = self.model.predict_clamped(key, len(self._keys))
        return rank_search(
            self._keys, 0, len(self._keys) - 1, key, guess, self.perf
        )

    def _buffer_rank(self, key: int) -> int:
        """Rightmost buffer index with key <= ``key``; -1 if none."""
        if not self._buf_keys:
            return -1
        self.perf.charge(Event.DRAM_HOP)  # the buffer is a separate node
        mid_guess = len(self._buf_keys) // 2
        return rank_search(
            self._buf_keys, 0, len(self._buf_keys) - 1, key, mid_guess, self.perf
        )

    def get(self, key: int) -> Optional[Any]:
        self.perf.charge(Event.DRAM_HOP)
        idx = self._main_rank(key)
        if idx >= 0 and self._keys[idx] == key:
            return self._values[idx]
        bidx = self._buffer_rank(key)
        if bidx >= 0 and self._buf_keys[bidx] == key:
            return self._buf_values[bidx]
        return None

    def insert(self, key: int, value: Any) -> InsertResult:
        return self.upsert(key, value)[0]

    def upsert(self, key: int, value: Any) -> Tuple[InsertResult, Optional[Any]]:
        self.perf.charge(Event.DRAM_HOP)
        idx = self._main_rank(key)
        if idx >= 0 and self._keys[idx] == key:
            old = self._values[idx]
            self._values[idx] = value
            return InsertResult.UPDATED, old
        bidx = self._buffer_rank(key)
        if bidx >= 0 and self._buf_keys[bidx] == key:
            old = self._buf_values[bidx]
            self._buf_values[bidx] = value
            return InsertResult.UPDATED, old
        if len(self._buf_keys) >= self.buffer_capacity:
            return InsertResult.FULL, None
        # Insert into the buffer, keeping it sorted: everything to the
        # right of the insertion point moves one slot.
        pos = bidx + 1
        moves = len(self._buf_keys) - pos
        self.perf.charge(Event.KEY_MOVE, moves)
        self._buf_keys.insert(pos, key)
        self._buf_values.insert(pos, value)
        return InsertResult.INSERTED, None

    def scan_from(self, lo: int, limit: int) -> List[Tuple[int, Any]]:
        """Bounded two-way merge of the main run and the insert buffer.

        Both sides are bisected to their first key >= ``lo`` and merged
        only until ``limit`` pairs are out — the ``items()``-based
        default would materialise and merge the whole leaf first.
        Charges nothing, like the default it replaces.
        """
        out: List[Tuple[int, Any]] = []
        i = bisect_left(self._keys, lo)
        j = bisect_left(self._buf_keys, lo)
        nk, nb = len(self._keys), len(self._buf_keys)
        while len(out) < limit and i < nk and j < nb:
            if self._keys[i] <= self._buf_keys[j]:
                out.append((self._keys[i], self._values[i]))
                i += 1
            else:
                out.append((self._buf_keys[j], self._buf_values[j]))
                j += 1
        if len(out) < limit:
            if i < nk:
                take = limit - len(out)
                out.extend(zip(self._keys[i : i + take],
                               self._values[i : i + take]))
            elif j < nb:
                take = limit - len(out)
                out.extend(zip(self._buf_keys[j : j + take],
                               self._buf_values[j : j + take]))
        return out

    def items(self) -> List[Tuple[int, Any]]:
        # Two-way merge of main run and buffer.
        out: List[Tuple[int, Any]] = []
        i = j = 0
        nk, nb = len(self._keys), len(self._buf_keys)
        while i < nk and j < nb:
            if self._keys[i] <= self._buf_keys[j]:
                out.append((self._keys[i], self._values[i]))
                i += 1
            else:
                out.append((self._buf_keys[j], self._buf_values[j]))
                j += 1
        while i < nk:
            out.append((self._keys[i], self._values[i]))
            i += 1
        while j < nb:
            out.append((self._buf_keys[j], self._buf_values[j]))
            j += 1
        return out

    @property
    def capacity_slots(self) -> int:
        return len(self._keys) + self.buffer_capacity

    def delete(self, key: int) -> bool:
        """Remove ``key`` from the buffer or (with shifting) the main run."""
        self.perf.charge(Event.DRAM_HOP)
        bidx = self._buffer_rank(key)
        if bidx >= 0 and self._buf_keys[bidx] == key:
            self.perf.charge(Event.KEY_MOVE, len(self._buf_keys) - bidx - 1)
            del self._buf_keys[bidx]
            del self._buf_values[bidx]
            return True
        idx = self._main_rank(key)
        if idx >= 0 and self._keys[idx] == key:
            self.perf.charge(Event.KEY_MOVE, len(self._keys) - idx - 1)
            del self._keys[idx]
            del self._values[idx]
            return True
        return False

    def size_bytes(self) -> int:
        return (len(self._keys) + self.buffer_capacity) * _PAIR_BYTES + 24
