"""Gapped-array insertion (ALEX's strategy).

Keys live in a slot array larger than the key count; the leaf's linear
model predicts a slot directly, and inserts land in a nearby gap with
little or no key movement — "this strategy reserves some gaps near the
target insertion position.  There is little or no key movement when
inserting a new key" (§IV-D).  When occupancy crosses the density limit
the leaf reports FULL and the retraining policy expands or splits it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion.base import InsertResult, Leaf
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

_PAIR_BYTES = 16
#: Slots covered per charged sequential access while scanning for gaps /
#: occupied slots (a 64-bit occupancy-bitmap word covers 64 slots; we are
#: conservative).
_SCAN_STRIDE = 16


class GappedLeaf(Leaf):
    """Model-addressed gapped slot array with density-triggered retrain."""

    #: Retrain when the exponential moving average of key moves per
    #: insert exceeds this (ALEX's cost-model check: observed insert cost
    #: deviating from the model's expectation triggers node maintenance,
    #: even below the density limit).
    MOVE_EMA_LIMIT = 48.0
    _EMA_ALPHA = 0.05

    def __init__(
        self,
        segment: GappedSegment,
        values: List[Any],
        perf: PerfContext,
        upper_density: float = 0.8,
    ):
        super().__init__(perf)
        if not 0.0 < upper_density <= 1.0:
            raise InvalidConfigurationError(
                f"upper_density must be in (0, 1], got {upper_density}"
            )
        self._move_ema = 0.0
        if len(values) != segment.n:
            raise ValueError("values must match the segment's key count")
        self.model: LinearModel = segment.model
        self._slot_keys: List[Optional[int]] = list(segment.slot_keys)
        self._slot_values: List[Any] = [None] * len(self._slot_keys)
        vi = 0
        for i, k in enumerate(self._slot_keys):
            if k is not None:
                self._slot_values[i] = values[vi]
                vi += 1
        self._occupied = segment.n
        self._first = segment.first_key
        self.upper_density = upper_density

    # -- slot scanning helpers (each charges per stride scanned) ----------

    def _charge_scan(self, distance: int) -> None:
        self.perf.charge(Event.DRAM_SEQ, 1 + distance // _SCAN_STRIDE)

    def _occupied_le(self, i: int) -> int:
        """Nearest occupied slot index <= i, or -1."""
        j = min(i, len(self._slot_keys) - 1)
        start = j
        while j >= 0 and self._slot_keys[j] is None:
            j -= 1
        self._charge_scan(start - j)
        return j

    def _occupied_ge(self, i: int) -> int:
        """Nearest occupied slot index >= i, or -1."""
        n = len(self._slot_keys)
        j = max(i, 0)
        start = j
        while j < n and self._slot_keys[j] is None:
            j += 1
        self._charge_scan(j - start)
        return j if j < n else -1

    def _gap_le(self, i: int) -> int:
        j = min(i, len(self._slot_keys) - 1)
        start = j
        while j >= 0 and self._slot_keys[j] is not None:
            j -= 1
        self._charge_scan(start - j)
        return j

    def _gap_ge(self, i: int) -> int:
        n = len(self._slot_keys)
        j = max(i, 0)
        start = j
        while j < n and self._slot_keys[j] is not None:
            j += 1
        self._charge_scan(j - start)
        return j if j < n else -1

    # -- gap-aware rank search ---------------------------------------------

    def _rank_slot(self, key: int) -> int:
        """Rightmost *occupied* slot whose key is <= ``key``; -1 if none."""
        charge = self.perf.charge
        slots = len(self._slot_keys)
        charge(Event.MODEL_EVAL)
        p = self.model.predict_clamped(key, slots)
        j = self._occupied_le(p)
        if j == -1:
            j = self._occupied_ge(p + 1)
            if j == -1:
                return -1  # empty leaf
            charge(Event.COMPARE)
            if self._slot_keys[j] > key:
                return -1
        else:
            charge(Event.COMPARE)
        if self._slot_keys[j] <= key:
            return self._gallop_right(j, key)
        return self._gallop_left(j, key)

    def _gallop_right(self, j: int, key: int) -> int:
        """``slot_keys[j] <= key``: find the rightmost occupied <= key."""
        charge = self.perf.charge
        slots = len(self._slot_keys)
        step = 1
        while True:
            q = j + step
            if q >= slots:
                q = slots - 1
            c = self._occupied_le(q)
            if c > j:
                charge(Event.COMPARE)
                if self._slot_keys[c] <= key:
                    j = c
                    if q == slots - 1:
                        return j
                    step *= 2
                    continue
                return self._binary_between(j, c, key)
            if q == slots - 1:
                return j  # no occupied slot right of j
            step *= 2

    def _gallop_left(self, b: int, key: int) -> int:
        """``slot_keys[b] > key``: find the rightmost occupied <= key."""
        charge = self.perf.charge
        step = 1
        while True:
            q = b - step
            if q < 0:
                q = 0
            c = self._occupied_le(q)
            if c == -1:
                c = self._occupied_ge(q + 1)
                if c == b:
                    return -1  # nothing occupied left of b
                charge(Event.COMPARE)
                if self._slot_keys[c] > key:
                    return -1
                return self._binary_between(c, b, key)
            charge(Event.COMPARE)
            if self._slot_keys[c] <= key:
                return self._binary_between(c, b, key)
            b = c
            if q == 0:
                return -1
            step *= 2

    def _binary_between(self, lo: int, hi: int, key: int) -> int:
        """Rightmost occupied <= key, given occupied bounds
        ``slot_keys[lo] <= key < slot_keys[hi]``."""
        charge = self.perf.charge
        while True:
            mid = (lo + hi) // 2
            c = self._occupied_le(mid)
            if c <= lo:
                c = self._occupied_ge(mid + 1)
                if c >= hi:
                    return lo
            charge(Event.COMPARE)
            if self._slot_keys[c] <= key:
                lo = c
            else:
                hi = c

    # -- Leaf interface -------------------------------------------------

    @property
    def first_key(self) -> int:
        return self._first

    @property
    def n(self) -> int:
        return self._occupied

    @property
    def slots(self) -> int:
        return len(self._slot_keys)

    def density(self) -> float:
        return self._occupied / len(self._slot_keys)

    def get(self, key: int) -> Optional[Any]:
        self.perf.charge(Event.DRAM_HOP)
        r = self._rank_slot(key)
        if r != -1 and self._slot_keys[r] == key:
            return self._slot_values[r]
        return None

    def insert(self, key: int, value: Any) -> InsertResult:
        self.perf.charge(Event.DRAM_HOP)
        r = self._rank_slot(key)
        if r != -1 and self._slot_keys[r] == key:
            self._slot_values[r] = value
            return InsertResult.UPDATED
        if self.density() >= self.upper_density:
            return InsertResult.FULL
        if self._move_ema > self.MOVE_EMA_LIMIT:
            # Locally saturated even though global density is fine:
            # retraining re-spreads the gaps.
            return InsertResult.FULL

        slots = len(self._slot_keys)
        nr = self._occupied_ge(r + 1)  # next occupied after rank
        if nr == -1:
            nr = slots
        if nr - r > 1:
            # A gap exists exactly where the key belongs: free insert.
            self.perf.charge(Event.MODEL_EVAL)
            p = self.model.predict_clamped(key, slots)
            slot = min(max(p, r + 1), nr - 1)
            self._place(slot, key, value)
            self._move_ema *= 1.0 - self._EMA_ALPHA
            return InsertResult.INSERTED

        # No gap at the insertion point: shift toward the nearest gap.
        gap_left = self._gap_le(r) if r >= 0 else -1
        gap_right = self._gap_ge(nr)
        charge = self.perf.charge
        use_left = gap_left != -1 and (
            gap_right == -1 or (r - gap_left) <= (gap_right - nr)
        )
        if use_left:
            # Shift occupied slots (gap_left, r] one slot left; insert at r.
            moves = r - gap_left
            for i in range(gap_left, r):
                self._slot_keys[i] = self._slot_keys[i + 1]
                self._slot_values[i] = self._slot_values[i + 1]
                charge(Event.KEY_MOVE)
            self._place(r, key, value)
        else:
            if gap_right == -1:
                return InsertResult.FULL  # no gap anywhere (degenerate)
            # Shift occupied slots [r+1, gap_right) one slot right;
            # insert at r + 1.
            moves = gap_right - (r + 1)
            for i in range(gap_right, r + 1, -1):
                self._slot_keys[i] = self._slot_keys[i - 1]
                self._slot_values[i] = self._slot_values[i - 1]
                charge(Event.KEY_MOVE)
            self._place(r + 1, key, value)
        self._move_ema = (
            (1.0 - self._EMA_ALPHA) * self._move_ema + self._EMA_ALPHA * moves
        )
        return InsertResult.INSERTED

    def _place(self, slot: int, key: int, value: Any) -> None:
        self._slot_keys[slot] = key
        self._slot_values[slot] = value
        self._occupied += 1
        if key < self._first:
            self._first = key

    def items(self) -> List[Tuple[int, Any]]:
        return [
            (k, self._slot_values[i])
            for i, k in enumerate(self._slot_keys)
            if k is not None
        ]

    @property
    def capacity_slots(self) -> int:
        return len(self._slot_keys)

    def delete(self, key: int) -> bool:
        """Remove ``key``: the slot simply becomes a gap."""
        self.perf.charge(Event.DRAM_HOP)
        r = self._rank_slot(key)
        if r == -1 or self._slot_keys[r] != key:
            return False
        self._slot_keys[r] = None
        self._slot_values[r] = None
        self._occupied -= 1
        if key == self._first and self._occupied:
            nxt = self._occupied_ge(r + 1)
            self._first = self._slot_keys[nxt]
        return True

    def size_bytes(self) -> int:
        # Slot array + occupancy bitmap + model.
        return len(self._slot_keys) * _PAIR_BYTES + len(self._slot_keys) // 8 + 24
