"""Gapped-array insertion (ALEX's strategy).

Keys live in a slot array larger than the key count; the leaf's linear
model predicts a slot directly, and inserts land in a nearby gap with
little or no key movement — "this strategy reserves some gaps near the
target insertion position.  There is little or no key movement when
inserting a new key" (§IV-D).  When occupancy crosses the density limit
the leaf reports FULL and the retraining policy expands or splits it.

Two storage backends share every algorithm above the slot level:

* scalar (``vectorized=False``) — a ``List[Optional[int]]`` slot array
  scanned with Python while-loops, the original implementation.
* vectorized (default) — a numpy ``uint64`` key array plus a boolean
  occupancy array; gap/occupied scans become ``argmax``/``argmin`` on
  bool slices (numpy short-circuits these) and shifts become slice
  copies.  The charge formulas are written to be **bit-identical** to the
  scalar loops — same ``DRAM_SEQ`` stride counts, same ``KEY_MOVE``
  totals, same ``_move_ema`` float arithmetic — so retrain triggers fire
  at exactly the same inserts (pinned by
  ``tests/test_batch_insert.py::TestGappedLeafEquivalence``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa_gap import GappedSegment
from repro.core.insertion.base import InsertResult, Leaf
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

_PAIR_BYTES = 16
#: Slots covered per charged sequential access while scanning for gaps /
#: occupied slots (a 64-bit occupancy-bitmap word covers 64 slots; we are
#: conservative).
_SCAN_STRIDE = 16

#: Below this batch size ``get_many``'s occupied-array extraction costs
#: more than the per-key loop it replaces.
_MIN_BATCH = 8


class GappedLeaf(Leaf):
    """Model-addressed gapped slot array with density-triggered retrain."""

    #: Retrain when the exponential moving average of key moves per
    #: insert exceeds this (ALEX's cost-model check: observed insert cost
    #: deviating from the model's expectation triggers node maintenance,
    #: even below the density limit).
    MOVE_EMA_LIMIT = 48.0
    _EMA_ALPHA = 0.05

    def __init__(
        self,
        segment: GappedSegment,
        values: List[Any],
        perf: PerfContext,
        upper_density: float = 0.8,
        vectorized: bool = True,
    ):
        super().__init__(perf)
        if not 0.0 < upper_density <= 1.0:
            raise InvalidConfigurationError(
                f"upper_density must be in (0, 1], got {upper_density}"
            )
        if len(values) != segment.n:
            raise ValueError("values must match the segment's key count")
        if segment.slots and segment.n / segment.slots > upper_density:
            raise InvalidConfigurationError(
                f"segment occupancy {segment.n / segment.slots:.3f} already "
                f"exceeds upper_density={upper_density}; the leaf would be "
                "born over-density and every insert would bounce straight "
                "to retrain"
            )
        self._move_ema = 0.0
        self.model: LinearModel = segment.model
        self._slots = segment.slots
        self._occupied = segment.n
        self._first = segment.first_key
        self.upper_density = upper_density

        self._slot_keys: Optional[List[Optional[int]]] = None
        self._np_keys = None
        self._np_occ = None
        if vectorized and _vec.HAVE_NUMPY:
            self._init_vectorized(segment, values)
        if self._np_keys is None:
            # Scalar storage (requested, numpy missing, or inexact keys).
            self._slot_keys = list(segment.slot_keys)
            self._slot_values: List[Any] = [None] * self._slots
            vi = 0
            for i, k in enumerate(self._slot_keys):
                if k is not None:
                    self._slot_values[i] = values[vi]
                    vi += 1

    def _init_vectorized(self, segment: GappedSegment, values: List[Any]) -> None:
        """Build numpy key/occupancy arrays, touching only occupied slots.

        Reuses the slot positions the segment's vectorized placement
        already computed when available; otherwise derives them from the
        slot list with one ``flatnonzero`` instead of a per-slot loop.
        """
        np = _vec.np
        pos = getattr(segment, "slot_pos", None)
        compact = getattr(segment, "keys_u64", None)
        if pos is None or compact is None:
            compact = _vec.as_u64(
                [k for k in segment.slot_keys if k is not None]
            )
            if compact is None:
                return  # inexact keys: keep scalar storage
            occ = np.fromiter(
                (k is not None for k in segment.slot_keys),
                dtype=bool,
                count=self._slots,
            )
            pos = np.flatnonzero(occ)
        else:
            occ = np.zeros(self._slots, dtype=bool)
            occ[pos] = True
        keys_np = np.zeros(self._slots, dtype=np.uint64)
        keys_np[pos] = compact
        self._np_keys = keys_np
        self._np_occ = occ
        self._slot_values = [None] * self._slots
        for p, v in zip(pos.tolist(), values):
            self._slot_values[p] = v

    # -- storage accessors ------------------------------------------------

    def _key_at(self, i: int) -> int:
        if self._np_keys is not None:
            return int(self._np_keys[i])
        return self._slot_keys[i]  # type: ignore[return-value]

    def slot_layout(self) -> List[Optional[int]]:
        """The slot array as ``key-or-None`` per slot (both backends)."""
        if self._np_keys is not None:
            return [
                int(k) if o else None
                for k, o in zip(self._np_keys.tolist(), self._np_occ.tolist())
            ]
        return list(self._slot_keys)  # type: ignore[arg-type]

    # -- slot scanning helpers (each charges per stride scanned) ----------

    def _charge_scan(self, distance: int) -> None:
        self.perf.charge(Event.DRAM_SEQ, 1 + distance // _SCAN_STRIDE)

    def _occupied_le(self, i: int) -> int:
        """Nearest occupied slot index <= i, or -1."""
        j = min(i, self._slots - 1)
        if self._np_occ is not None:
            if j < 0:
                self._charge_scan(0)
                return -1
            seg = self._np_occ[j::-1]
            off = int(_vec.np.argmax(seg))
            if seg[off]:
                self._charge_scan(off)
                return j - off
            self._charge_scan(j + 1)
            return -1
        start = j
        while j >= 0 and self._slot_keys[j] is None:
            j -= 1
        self._charge_scan(start - j)
        return j

    def _occupied_ge(self, i: int) -> int:
        """Nearest occupied slot index >= i, or -1."""
        n = self._slots
        j = max(i, 0)
        if self._np_occ is not None:
            if j >= n:
                self._charge_scan(0)
                return -1
            seg = self._np_occ[j:]
            off = int(_vec.np.argmax(seg))
            if seg[off]:
                self._charge_scan(off)
                return j + off
            self._charge_scan(n - j)
            return -1
        start = j
        while j < n and self._slot_keys[j] is None:
            j += 1
        self._charge_scan(j - start)
        return j if j < n else -1

    def _gap_le(self, i: int) -> int:
        j = min(i, self._slots - 1)
        if self._np_occ is not None:
            if j < 0:
                self._charge_scan(0)
                return -1
            seg = self._np_occ[j::-1]
            off = int(_vec.np.argmin(seg))
            if not seg[off]:
                self._charge_scan(off)
                return j - off
            self._charge_scan(j + 1)
            return -1
        start = j
        while j >= 0 and self._slot_keys[j] is not None:
            j -= 1
        self._charge_scan(start - j)
        return j

    def _gap_ge(self, i: int) -> int:
        n = self._slots
        j = max(i, 0)
        if self._np_occ is not None:
            if j >= n:
                self._charge_scan(0)
                return -1
            seg = self._np_occ[j:]
            off = int(_vec.np.argmin(seg))
            if not seg[off]:
                self._charge_scan(off)
                return j + off
            self._charge_scan(n - j)
            return -1
        start = j
        while j < n and self._slot_keys[j] is not None:
            j += 1
        self._charge_scan(j - start)
        return j if j < n else -1

    # -- gap-aware rank search ---------------------------------------------

    def _rank_slot(self, key: int) -> int:
        """Rightmost *occupied* slot whose key is <= ``key``; -1 if none."""
        charge = self.perf.charge
        slots = self._slots
        charge(Event.MODEL_EVAL)
        p = self.model.predict_clamped(key, slots)
        j = self._occupied_le(p)
        if j == -1:
            j = self._occupied_ge(p + 1)
            if j == -1:
                return -1  # empty leaf
            charge(Event.COMPARE)
            if self._key_at(j) > key:
                return -1
        else:
            charge(Event.COMPARE)
        if self._key_at(j) <= key:
            return self._gallop_right(j, key)
        return self._gallop_left(j, key)

    def _gallop_right(self, j: int, key: int) -> int:
        """``slot_keys[j] <= key``: find the rightmost occupied <= key."""
        charge = self.perf.charge
        slots = self._slots
        step = 1
        while True:
            q = j + step
            if q >= slots:
                q = slots - 1
            c = self._occupied_le(q)
            if c > j:
                charge(Event.COMPARE)
                if self._key_at(c) <= key:
                    j = c
                    if q == slots - 1:
                        return j
                    step *= 2
                    continue
                return self._binary_between(j, c, key)
            if q == slots - 1:
                return j  # no occupied slot right of j
            step *= 2

    def _gallop_left(self, b: int, key: int) -> int:
        """``slot_keys[b] > key``: find the rightmost occupied <= key."""
        charge = self.perf.charge
        step = 1
        while True:
            q = b - step
            if q < 0:
                q = 0
            c = self._occupied_le(q)
            if c == -1:
                c = self._occupied_ge(q + 1)
                if c == b:
                    return -1  # nothing occupied left of b
                charge(Event.COMPARE)
                if self._key_at(c) > key:
                    return -1
                return self._binary_between(c, b, key)
            charge(Event.COMPARE)
            if self._key_at(c) <= key:
                return self._binary_between(c, b, key)
            b = c
            if q == 0:
                return -1
            step *= 2

    def _binary_between(self, lo: int, hi: int, key: int) -> int:
        """Rightmost occupied <= key, given occupied bounds
        ``slot_keys[lo] <= key < slot_keys[hi]``."""
        charge = self.perf.charge
        while True:
            mid = (lo + hi) // 2
            c = self._occupied_le(mid)
            if c <= lo:
                c = self._occupied_ge(mid + 1)
                if c >= hi:
                    return lo
            charge(Event.COMPARE)
            if self._key_at(c) <= key:
                lo = c
            else:
                hi = c

    # -- Leaf interface -------------------------------------------------

    @property
    def first_key(self) -> int:
        return self._first

    @property
    def n(self) -> int:
        return self._occupied

    @property
    def slots(self) -> int:
        return self._slots

    def density(self) -> float:
        return self._occupied / self._slots

    def get(self, key: int) -> Optional[Any]:
        self.perf.charge(Event.DRAM_HOP)
        r = self._rank_slot(key)
        if r != -1 and self._key_at(r) == key:
            return self._slot_values[r]
        return None

    def get_many(self, keys: Any) -> List[Optional[Any]]:
        """Batch get: one ``searchsorted`` over the occupied keys.

        Like every batch fast path (see ``docs/performance.md``), results
        are exactly the per-key loop's; the event bill is a coarse
        aggregate (one hop + model eval per query, one comparison per
        halving of the slot array) rather than the scalar per-probe
        ledger.
        """
        if self._np_keys is None or len(keys) < _MIN_BATCH:
            return [self.get(k) for k in keys]
        qs = _vec.as_u64(keys)
        if qs is None:
            return [self.get(k) for k in keys]
        n = len(keys)
        if self._occupied == 0:
            self.perf.charge(Event.DRAM_HOP, n)
            return [None] * n
        np = _vec.np
        pos = np.flatnonzero(self._np_occ)
        compact = self._np_keys[pos]
        idx = np.searchsorted(compact, qs, side="right").astype(np.int64) - 1
        hit = (idx >= 0) & (compact[np.maximum(idx, 0)] == qs)
        self.perf.charge(Event.DRAM_HOP, n)
        self.perf.charge(Event.MODEL_EVAL, n)
        self.perf.charge(Event.COMPARE, n * max(1, self._slots.bit_length()))
        values = self._slot_values
        src = pos[np.maximum(idx, 0)].tolist()
        return [
            values[s] if h else None for h, s in zip(hit.tolist(), src)
        ]

    def insert(self, key: int, value: Any) -> InsertResult:
        return self.upsert(key, value)[0]

    def insert_batch(self, items: List[Tuple[int, Any]]) -> Optional[int]:
        """Bulk upsert of a sorted run, re-spreading the whole slot array.

        ``items`` must be sorted ascending (in-run duplicates adjacent;
        the last occurrence wins).  The stored keys and the fresh keys
        are merged and re-placed through the leaf's model in one
        vectorized pass — the same ``cummax`` placement bulk load uses —
        so the per-key gap hunt disappears.  Returns the number of new
        keys, or ``None`` when the batch should take the per-key path
        instead (scalar backend, tiny run, inexact keys, or the batch
        would cross the density limit, where per-key FULL semantics must
        decide the retrain point).

        Like every batch fast path the event bill is a coarse aggregate;
        the re-spread also restores gap locality, so ``_move_ema`` decays
        as a run of free inserts would (see ``docs/performance.md`` on
        batch-vs-scalar cost parity).
        """
        if self._np_keys is None or len(items) < _MIN_BATCH:
            return None
        if self._move_ema > self.MOVE_EMA_LIMIT:
            return None  # per-key path reports FULL -> retrain
        np = _vec.np
        ks = _vec.as_u64([k for k, _ in items])
        if ks is None:
            return None
        keep = np.concatenate([ks[1:] != ks[:-1], np.ones(1, dtype=bool)])
        kidx = np.flatnonzero(keep)
        ks = ks[kidx]
        vs = [items[i][1] for i in kidx.tolist()]

        pos = np.flatnonzero(self._np_occ)
        existing = self._np_keys[pos]
        m = int(existing.size)
        if m:
            loc = np.searchsorted(existing, ks)
            hit = (loc < m) & (existing[np.minimum(loc, m - 1)] == ks)
        else:
            loc = np.zeros(ks.size, dtype=np.int64)
            hit = np.zeros(ks.size, dtype=bool)
        n_fresh = int(ks.size - int(hit.sum()))
        if self._occupied + n_fresh > int(self.upper_density * self._slots):
            return None

        ex_vals = [self._slot_values[p] for p in pos.tolist()]
        for j, i in zip(loc[hit].tolist(), np.flatnonzero(hit).tolist()):
            ex_vals[j] = vs[i]
        if n_fresh:
            fresh_sel = ~hit
            merged = np.concatenate([existing, ks[fresh_sel]])
            order = np.argsort(merged, kind="stable")
            merged = merged[order]
            all_vals = ex_vals + [
                vs[i] for i in np.flatnonzero(fresh_sel).tolist()
            ]
            merged_vals = [all_vals[i] for i in order.tolist()]
        else:
            merged = existing
            merged_vals = ex_vals

        pred = _vec.predict_clamped_many(self.model, merged, self._slots)
        if pred is None:
            return None
        idx = np.arange(merged.size, dtype=np.int64)
        slot = idx + np.maximum.accumulate(pred - idx)
        if int(slot[-1]) >= self._slots:
            # The model packs the tail past the end (typical when the run
            # clusters at the leaf's upper edge).  Rank search only needs
            # a strictly increasing layout, so compress the tail instead
            # of declining: cap slot_i at the highest position that still
            # leaves room for the i..k-1 suffix.  Both the capped bound
            # and the cummax placement rise by >= 1 per step, so their
            # minimum stays strictly increasing, and the density guard
            # above ensures merged.size < slots so slot[0] >= 0.
            slot = np.minimum(slot, self._slots - (merged.size - idx))

        keys_np = np.zeros(self._slots, dtype=np.uint64)
        occ = np.zeros(self._slots, dtype=bool)
        keys_np[slot] = merged
        occ[slot] = True
        values: List[Any] = [None] * self._slots
        for s, v in zip(slot.tolist(), merged_vals):
            values[s] = v
        self._np_keys, self._np_occ, self._slot_values = keys_np, occ, values
        self._occupied += n_fresh
        if merged.size:
            first = int(merged[0])
            if first < self._first:
                self._first = first

        b = int(ks.size)
        charge = self.perf.charge
        charge(Event.DRAM_HOP, b)
        charge(Event.MODEL_EVAL, b)
        charge(Event.COMPARE, b * max(1, self._slots.bit_length()))
        charge(Event.KEY_MOVE, m)  # the re-spread may move every stored key
        self._move_ema *= (1.0 - self._EMA_ALPHA) ** n_fresh
        return n_fresh

    def upsert(self, key: int, value: Any) -> Tuple[InsertResult, Optional[Any]]:
        """One rank search serving both insert and update (see Leaf.upsert)."""
        self.perf.charge(Event.DRAM_HOP)
        r = self._rank_slot(key)
        if r != -1 and self._key_at(r) == key:
            old = self._slot_values[r]
            self._slot_values[r] = value
            return InsertResult.UPDATED, old
        if self.density() >= self.upper_density:
            return InsertResult.FULL, None
        if self._move_ema > self.MOVE_EMA_LIMIT:
            # Locally saturated even though global density is fine:
            # retraining re-spreads the gaps.
            return InsertResult.FULL, None

        slots = self._slots
        nr = self._occupied_ge(r + 1)  # next occupied after rank
        if nr == -1:
            nr = slots
        if nr - r > 1:
            # A gap exists exactly where the key belongs: free insert.
            self.perf.charge(Event.MODEL_EVAL)
            p = self.model.predict_clamped(key, slots)
            slot = min(max(p, r + 1), nr - 1)
            self._place(slot, key, value)
            self._move_ema *= 1.0 - self._EMA_ALPHA
            return InsertResult.INSERTED, None

        # No gap at the insertion point: shift toward the nearest gap.
        gap_left = self._gap_le(r) if r >= 0 else -1
        gap_right = self._gap_ge(nr)
        use_left = gap_left != -1 and (
            gap_right == -1 or (r - gap_left) <= (gap_right - nr)
        )
        if use_left:
            # Shift occupied slots (gap_left, r] one slot left; insert at r.
            moves = r - gap_left
            self._shift(gap_left, r, left=True)
            self._place(r, key, value)
        else:
            if gap_right == -1:
                return InsertResult.FULL, None  # no gap anywhere (degenerate)
            # Shift occupied slots [r+1, gap_right) one slot right;
            # insert at r + 1.
            moves = gap_right - (r + 1)
            self._shift(r + 1, gap_right, left=False)
            self._place(r + 1, key, value)
        self._move_ema = (
            (1.0 - self._EMA_ALPHA) * self._move_ema + self._EMA_ALPHA * moves
        )
        return InsertResult.INSERTED, None

    def _shift(self, lo: int, hi: int, left: bool) -> None:
        """Move ``hi - lo`` slots one position toward ``lo`` (left) or
        ``hi`` (right); one ``KEY_MOVE`` per slot either way."""
        if left:
            if self._np_keys is not None:
                self._np_keys[lo:hi] = self._np_keys[lo + 1 : hi + 1].copy()
                self._np_occ[lo:hi] = self._np_occ[lo + 1 : hi + 1].copy()
                self._slot_values[lo:hi] = self._slot_values[lo + 1 : hi + 1]
                self.perf.charge(Event.KEY_MOVE, hi - lo)
            else:
                charge = self.perf.charge
                for i in range(lo, hi):
                    self._slot_keys[i] = self._slot_keys[i + 1]
                    self._slot_values[i] = self._slot_values[i + 1]
                    charge(Event.KEY_MOVE)
        else:
            if self._np_keys is not None:
                self._np_keys[lo + 1 : hi + 1] = self._np_keys[lo:hi].copy()
                self._np_occ[lo + 1 : hi + 1] = self._np_occ[lo:hi].copy()
                self._slot_values[lo + 1 : hi + 1] = self._slot_values[lo:hi]
                self.perf.charge(Event.KEY_MOVE, hi - lo)
            else:
                charge = self.perf.charge
                for i in range(hi, lo, -1):
                    self._slot_keys[i] = self._slot_keys[i - 1]
                    self._slot_values[i] = self._slot_values[i - 1]
                    charge(Event.KEY_MOVE)

    def _place(self, slot: int, key: int, value: Any) -> None:
        if self._np_keys is not None:
            self._np_keys[slot] = key
            self._np_occ[slot] = True
        else:
            self._slot_keys[slot] = key
        self._slot_values[slot] = value
        self._occupied += 1
        if key < self._first:
            self._first = key

    def scan_from(self, lo: int, limit: int) -> List[Tuple[int, Any]]:
        """Range extraction in one occupancy-mask/compaction pass.

        ``flatnonzero`` compacts the gapped slot array, ``searchsorted``
        finds the first live key >= ``lo``, and the run comes out as one
        slice — no per-slot gap skipping.  Charges nothing, exactly like
        the ``items()``-based default it replaces.
        """
        if self._np_keys is None or self._occupied == 0:
            return super().scan_from(lo, limit)
        np = _vec.np
        pos = np.flatnonzero(self._np_occ)
        compact = self._np_keys[pos]
        i = int(np.searchsorted(compact, lo, side="left"))
        take = pos[i : i + limit].tolist()
        values = self._slot_values
        return [
            (k, values[p])
            for p, k in zip(take, compact[i : i + limit].tolist())
        ]

    def items(self) -> List[Tuple[int, Any]]:
        if self._np_keys is not None:
            np = _vec.np
            pos = np.flatnonzero(self._np_occ)
            values = self._slot_values
            return [
                (k, values[p])
                for p, k in zip(pos.tolist(), self._np_keys[pos].tolist())
            ]
        return [
            (k, self._slot_values[i])
            for i, k in enumerate(self._slot_keys)
            if k is not None
        ]

    @property
    def capacity_slots(self) -> int:
        return self._slots

    def delete(self, key: int) -> bool:
        """Remove ``key``: the slot simply becomes a gap."""
        self.perf.charge(Event.DRAM_HOP)
        r = self._rank_slot(key)
        if r == -1 or self._key_at(r) != key:
            return False
        if self._np_keys is not None:
            self._np_occ[r] = False
        else:
            self._slot_keys[r] = None
        self._slot_values[r] = None
        self._occupied -= 1
        if key == self._first and self._occupied:
            nxt = self._occupied_ge(r + 1)
            self._first = self._key_at(nxt)
        return True

    def size_bytes(self) -> int:
        # Slot array + occupancy bitmap + model.
        return self._slots * _PAIR_BYTES + self._slots // 8 + 24
