"""Internal index structures (the paper's dimension #2, §IV-B).

An internal structure routes a key to the leaf segment that covers it.
Every structure here answers exactly the query "index of the rightmost
fence key <= key", but charges different event mixes:

* :class:`RMIStructure` — two-layer recursive model index (XIndex root):
  2 model evaluations + local correction search.
* :class:`BTreeStructure` — B+tree over fences (FITing-tree): one
  cache-missing hop plus ~log2(fanout) comparisons per level.
* :class:`LRSStructure` — Linear Recursive Structure (PGM-Index): one
  model evaluation + an eps-bounded search per level.
* :class:`ATSStructure` — Asymmetric Tree Structure (ALEX): variable-depth
  model tree; dense regions sit deeper, so the *average* depth is low.
* :class:`RadixTableStructure` — radix prefix table (RadixSpline): one
  table probe + a binary search within the prefix bucket.
"""

from repro.core.structures.base import InternalStructure, exponential_search
from repro.core.structures.rmi_structure import RMIStructure
from repro.core.structures.btree_structure import BTreeStructure
from repro.core.structures.lrs_structure import LRSStructure
from repro.core.structures.ats_structure import ATSStructure
from repro.core.structures.radix_table import RadixTableStructure
from repro.core.structures.hot_ats import HotATSStructure

__all__ = [
    "InternalStructure",
    "exponential_search",
    "RMIStructure",
    "BTreeStructure",
    "LRSStructure",
    "ATSStructure",
    "HotATSStructure",
    "RadixTableStructure",
]
