"""Radix prefix table (RadixSpline's internal structure).

A flat array of ``2^r`` entries maps the ``r`` most significant bits of
the (range-normalised) key to the first fence with that prefix; a binary
search within the bucket finishes the job.  The structure is a single hop
— which is why RadixSpline recovers fastest (Fig 16) — but the fixed
prefix cannot adapt: on skewed data such as FACE "a large number of keys
fall within (0, 2^50)" so most keys share one bucket and the binary search
degenerates (Fig 11).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.structures.base import (
    InternalStructure,
    bounded_binary_search,
)
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

_ENTRY_BYTES = 4  # 32-bit fence offsets, as in the RadixSpline paper


class RadixTableStructure(InternalStructure):
    """Flat ``2^r``-entry prefix table over fence keys."""

    name = "RadixTable"

    def __init__(self, r_bits: int = 18, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        if not 1 <= r_bits <= 30:
            raise InvalidConfigurationError(
                f"r_bits must be in [1, 30], got {r_bits}"
            )
        self.r_bits = r_bits
        self._table: List[int] = []
        self._min_key = 0
        self._shift = 0

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        self._min_key = fences[0]
        key_range = fences[-1] - fences[0]
        # The prefix is taken from the key's normalised position in the
        # covered range; skew in the raw keys translates directly into
        # bucket imbalance, as it does for real RadixSpline.
        self._shift = max(0, key_range.bit_length() - self.r_bits)
        slots = 1 << self.r_bits
        table = [0] * (slots + 1)
        for idx, fence in enumerate(fences):
            b = (fence - self._min_key) >> self._shift
            if b >= slots:
                b = slots - 1
            table[b + 1] = idx + 1
        # Forward-fill: table[b] = index of first fence in bucket >= b.
        for b in range(1, slots + 1):
            if table[b] < table[b - 1]:
                table[b] = table[b - 1]
        self._table = table

    def bucket_of(self, key: int) -> int:
        if key <= self._min_key:
            return 0
        b = (key - self._min_key) >> self._shift
        slots = 1 << self.r_bits
        return slots - 1 if b >= slots else b

    def lookup(self, key: int) -> int:
        if not self._table:
            raise EmptyIndexError("structure not built")
        charge = self.perf.charge
        charge(Event.DRAM_HOP)  # the table probe
        b = self.bucket_of(key)
        lo = self._table[b]
        hi = self._table[b + 1]
        # The rightmost fence <= key is in [lo - 1, hi - 1]: a key may fall
        # before its bucket's first fence, in which case the previous
        # bucket's last fence covers it.
        lo = max(0, lo - 1)
        hi = max(0, hi - 1)
        charge(Event.DRAM_HOP)  # first touch of the fence bucket
        return bounded_binary_search(self.fences, key, lo, hi, self.perf)

    def bucket_sizes(self) -> List[int]:
        """Fences per bucket — the skew diagnostic used by Fig 11."""
        return [
            self._table[b + 1] - self._table[b]
            for b in range(len(self._table) - 1)
        ]

    def avg_depth(self) -> float:
        return 1.0

    def max_depth(self) -> int:
        return 1

    def size_bytes(self) -> int:
        return len(self._table) * _ENTRY_BYTES
