"""B+tree internal structure over fence keys (FITing-tree's inner index).

Comparison-based routing: every level costs a cache-missing node hop plus
a binary search inside the node.  The paper's point (§IV-B): "BTREE
requires multiple comparing operations to find the target key, taking much
time" relative to calculated structures once there are many leaves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.structures.base import (
    InternalStructure,
    bounded_binary_search,
)
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

#: Bytes per B+tree slot (8-byte key + 8-byte child pointer).
_SLOT_BYTES = 16


class BTreeStructure(InternalStructure):
    """Static bottom-up-bulk-loaded B+tree routing to leaf indexes.

    ``levels[0]`` is the fence array itself; ``levels[k]`` holds every
    ``fanout``-th key of ``levels[k-1]``.  Lookup walks levels from the
    top, narrowing to a ``fanout``-wide window each time.
    """

    name = "BTREE"

    def __init__(self, fanout: int = 64, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        if fanout < 2:
            raise InvalidConfigurationError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self._levels: List[Sequence[int]] = []

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        self._levels = [fences]
        while len(self._levels[-1]) > self.fanout:
            self._levels.append(self._levels[-1][:: self.fanout])

    def lookup(self, key: int) -> int:
        if not self._levels:
            raise EmptyIndexError("structure not built")
        charge = self.perf.charge
        idx = 0
        for depth in range(len(self._levels) - 1, -1, -1):
            level = self._levels[depth]
            lo = idx
            hi = min(len(level) - 1, idx + self.fanout - 1)
            charge(Event.DRAM_HOP)  # descend into this node
            idx = bounded_binary_search(level, key, lo, hi, self.perf)
            if depth > 0:
                idx *= self.fanout
        return idx

    def avg_depth(self) -> float:
        return float(len(self._levels))

    def max_depth(self) -> int:
        return len(self._levels)

    def size_bytes(self) -> int:
        # The fence level is owned by the leaf layer; count inner levels.
        return sum(len(level) for level in self._levels[1:]) * _SLOT_BYTES

    @property
    def height(self) -> int:
        return len(self._levels)
