"""Two-layer Recursive Model Index structure (RMI / XIndex root).

The root model selects a second-layer model; the second-layer model
predicts the leaf index; an exponential search corrects the prediction.
Built top-down, so the maximum routing error is *not* bounded — the cost
of a lookup depends on how well the models fit (the paper's explanation
for RMI's large tail latency).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa import fit_least_squares
from repro.core.structures.base import InternalStructure, exponential_search
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

#: DRAM bytes per linear model: slope + intercept + base key.
_MODEL_BYTES = 24


class RMIStructure(InternalStructure):
    """Root linear model -> one of ``branching`` second-layer models."""

    name = "RMI"

    def __init__(
        self, branching: int = 1024, perf: Optional[PerfContext] = None
    ):
        super().__init__(perf)
        if branching < 1:
            raise InvalidConfigurationError(
                f"branching must be >= 1, got {branching}"
            )
        self.branching = branching
        self._root: Optional[LinearModel] = None
        self._leaf_models: List[LinearModel] = []

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        n = len(fences)
        branches = min(self.branching, n)

        # Root: map key -> second-layer bucket by rescaling an LSA fit of
        # key -> fence index.
        slope, intercept = fit_least_squares(fences, fences[0])
        scale = branches / n
        self._root = LinearModel(slope * scale, intercept * scale, fences[0])

        # Second layer: each bucket gets an LSA model over the fences the
        # *root* routes to it (top-down construction).
        buckets: List[List[int]] = [[] for _ in range(branches)]
        starts: List[int] = [0] * branches
        for idx, fence in enumerate(fences):
            b = self._root.predict_clamped(fence, branches)
            if not buckets[b]:
                starts[b] = idx
            buckets[b].append(fence)

        self._leaf_models = []
        prev_start = 0
        for b in range(branches):
            if buckets[b]:
                chunk = buckets[b]
                s, i = fit_least_squares(chunk, chunk[0])
                model = LinearModel(s, i + starts[b], chunk[0])
                prev_start = starts[b]
            else:
                # Empty bucket: fall back to a constant pointing at the
                # nearest populated range on the left.
                model = LinearModel(0.0, prev_start, 0)
            self._leaf_models.append(model)

    def lookup(self, key: int) -> int:
        if self._root is None:
            raise EmptyIndexError("structure not built")
        charge = self.perf.charge
        charge(Event.DRAM_HOP)
        charge(Event.MODEL_EVAL)
        bucket = self._root.predict_clamped(key, len(self._leaf_models))
        charge(Event.DRAM_HOP)
        charge(Event.MODEL_EVAL)
        guess = self._leaf_models[bucket].predict_clamped(key, len(self.fences))
        return exponential_search(self.fences, key, guess, self.perf)

    def avg_depth(self) -> float:
        return 2.0

    def max_depth(self) -> int:
        return 2

    def size_bytes(self) -> int:
        return (1 + len(self._leaf_models)) * _MODEL_BYTES
