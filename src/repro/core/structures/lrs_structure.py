"""Linear Recursive Structure (PGM-Index's internal layers).

Opt-PLA is applied recursively: the fence keys are approximated with
error-bounded segments, those segments' first keys form the next level,
and so on until a single segment remains.  Every level costs one model
evaluation plus a search bounded by eps — "the target position is obtained
by calculation" rather than comparison, which is why LRS beats BTREE once
there are many leaves (§IV-B).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import Approximation
from repro.core.approximation.optpla import OptPLAApproximator
from repro.core.structures.base import (
    InternalStructure,
    accumulate_replay_charges,
    exp_border_charges,
    exp_replay_charges,
    exponential_search,
)
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

#: Bytes per PGM segment: first key + slope + intercept.
_SEGMENT_BYTES = 24


class LRSStructure(InternalStructure):
    """Recursive error-bounded PLA layers over the fence keys."""

    name = "LRS"

    def __init__(self, eps: int = 4, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        if eps < 1:
            raise InvalidConfigurationError(f"eps must be >= 1, got {eps}")
        self.eps = eps
        self._levels: List[Approximation] = []
        self._level_keys: List[Sequence[int]] = []

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        approximator = OptPLAApproximator(eps=self.eps)
        self._levels = []
        self._level_keys = []
        keys: Sequence[int] = fences
        while True:
            approx = approximator.fit(keys)
            self._levels.append(approx)
            self._level_keys.append(keys)
            if approx.leaf_count == 1:
                break
            keys = approx.fences
        # Levels are stored bottom-up; lookups walk them top-down.
        self._levels.reverse()
        self._level_keys.reverse()
        self._level_keys_np = None

    def lookup(self, key: int) -> int:
        if not self._levels:
            raise EmptyIndexError("structure not built")
        charge = self.perf.charge
        seg_idx = 0
        for depth, approx in enumerate(self._levels):
            level_keys = self._level_keys[depth]
            seg = approx.segments[seg_idx]
            charge(Event.DRAM_HOP)
            charge(Event.MODEL_EVAL)
            guess = seg.start + seg.predict(key)
            pos = exponential_search(level_keys, key, guess, self.perf)
            if depth == len(self._levels) - 1:
                return pos
            # ``pos`` indexes this level's keys == next level's segments.
            seg_idx = pos
        return seg_idx

    def _level_arrays(self):
        """Exact-uint64 copies of every level's keys, or ``None``."""
        cached = getattr(self, "_level_keys_np", None)
        if cached is not None and cached[0] is self._levels:
            return cached[1]
        arrays = []
        for level_keys in self._level_keys:
            arr = _vec.as_u64(level_keys)
            if arr is None:
                self._level_keys_np = (self._levels, None)
                return None
            arrays.append(arr)
        self._level_keys_np = (self._levels, arrays)
        return arrays

    def lookup_many_exact(self, keys: Sequence[int], qs=None):
        """Batch :meth:`lookup` with the scalar ledger replayed exactly.

        Fully vectorized descent: per level, one ``searchsorted`` yields
        every query's true rank (which is also the routing result —
        rightmost fence <= key, clamped to 0) and
        :func:`repro.core.approximation.vectorized.segment_guesses`
        reproduces every ``seg.start + seg.predict(key)`` in one pass.
        The per-probe ledgers come from the memoized interior-trajectory
        charges (:func:`exp_replay_charges`) with the rare border
        queries replayed individually, so the aggregate charge issued at
        the end is bit-identical to running :meth:`lookup` per key —
        unlike the coarse-billed :meth:`lookup_many`.  Returns the
        segment indices as an int64 ndarray, or ``None`` (charging
        nothing) when the levels or queries cannot be vectorized
        exactly.
        """
        if not self._levels:
            raise EmptyIndexError("structure not built")
        arrays = self._level_arrays()
        if arrays is None:
            return None
        if qs is None:
            qs = _vec.as_u64(keys)
            if qs is None:
                return None
        params = [level.param_arrays() for level in self._levels]
        if any(p is None for p in params):
            return None
        if qs.size and int(qs.max()) >= 2**63:
            return None  # int64 key deltas would overflow
        np = _vec.np
        qs_i = qs.astype(np.int64)
        compare = hop = seq = 0
        seg_idx = np.zeros(qs.size, dtype=np.int64)
        for depth, level_arr in enumerate(arrays):
            astar = (
                np.searchsorted(level_arr, qs, side="right").astype(np.int64)
                - 1
            )
            guess = _vec.segment_guesses(params[depth], seg_idx, qs_i)
            n_level = int(level_arr.size)
            c, h, s = accumulate_replay_charges(
                astar - guess,
                guess,
                astar,
                0,
                n_level - 1,
                exp_replay_charges,
                lambda g, a, n=n_level: exp_border_charges(n, g, a),
            )
            compare += c
            hop += h
            seq += s
            seg_idx = np.maximum(astar, 0)
        n = qs.size
        charge = self.perf.charge
        charge(Event.DRAM_HOP, n * len(self._levels) + hop)
        charge(Event.MODEL_EVAL, n * len(self._levels))
        charge(Event.COMPARE, compare)
        charge(Event.DRAM_SEQ, seq)
        return seg_idx

    def avg_depth(self) -> float:
        return float(len(self._levels))

    def max_depth(self) -> int:
        return len(self._levels)

    def size_bytes(self) -> int:
        return sum(level.leaf_count for level in self._levels) * _SEGMENT_BYTES

    @property
    def height(self) -> int:
        return len(self._levels)
