"""Linear Recursive Structure (PGM-Index's internal layers).

Opt-PLA is applied recursively: the fence keys are approximated with
error-bounded segments, those segments' first keys form the next level,
and so on until a single segment remains.  Every level costs one model
evaluation plus a search bounded by eps — "the target position is obtained
by calculation" rather than comparison, which is why LRS beats BTREE once
there are many leaves (§IV-B).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.approximation.base import Approximation
from repro.core.approximation.optpla import OptPLAApproximator
from repro.core.structures.base import InternalStructure, exponential_search
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

#: Bytes per PGM segment: first key + slope + intercept.
_SEGMENT_BYTES = 24


class LRSStructure(InternalStructure):
    """Recursive error-bounded PLA layers over the fence keys."""

    name = "LRS"

    def __init__(self, eps: int = 4, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        if eps < 1:
            raise InvalidConfigurationError(f"eps must be >= 1, got {eps}")
        self.eps = eps
        self._levels: List[Approximation] = []
        self._level_keys: List[Sequence[int]] = []

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        approximator = OptPLAApproximator(eps=self.eps)
        self._levels = []
        self._level_keys = []
        keys: Sequence[int] = fences
        while True:
            approx = approximator.fit(keys)
            self._levels.append(approx)
            self._level_keys.append(keys)
            if approx.leaf_count == 1:
                break
            keys = approx.fences
        # Levels are stored bottom-up; lookups walk them top-down.
        self._levels.reverse()
        self._level_keys.reverse()

    def lookup(self, key: int) -> int:
        if not self._levels:
            raise EmptyIndexError("structure not built")
        charge = self.perf.charge
        seg_idx = 0
        for depth, approx in enumerate(self._levels):
            level_keys = self._level_keys[depth]
            seg = approx.segments[seg_idx]
            charge(Event.DRAM_HOP)
            charge(Event.MODEL_EVAL)
            guess = seg.start + seg.predict(key)
            pos = exponential_search(level_keys, key, guess, self.perf)
            if depth == len(self._levels) - 1:
                return pos
            # ``pos`` indexes this level's keys == next level's segments.
            seg_idx = pos
        return seg_idx

    def avg_depth(self) -> float:
        return float(len(self._levels))

    def max_depth(self) -> int:
        return len(self._levels)

    def size_bytes(self) -> int:
        return sum(level.leaf_count for level in self._levels) * _SEGMENT_BYTES

    @property
    def height(self) -> int:
        return len(self._levels)
