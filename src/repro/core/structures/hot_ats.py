"""Hot-aware Asymmetric Tree Structure — the paper's §V-B1 proposal.

"We also keenly found that the asymmetric tree structure can support the
hot data to be placed closer to the root node, which can shorten the
total number of queries and improve query performance, which is also our
future research direction."  This module implements that idea: the build
takes per-fence access weights and spends its depth budget where queries
actually go — a node terminates early when the *weighted* residual error
of its model is small, so popular regions sit near the root even if cold
regions need deeper subtrees.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.approximation.base import LinearModel
from repro.core.structures.ats_structure import ATSStructure
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext

_MAX_DEPTH = 32


class HotATSStructure(ATSStructure):
    """ATS whose termination rule weighs errors by access frequency.

    ``build_weighted(fences, weights)`` accepts one non-negative weight
    per fence (e.g. observed or predicted access counts).  A region whose
    *popularity-weighted* mean error is below ``error_threshold``
    terminates immediately; unpopular, hard-to-model regions may grow
    deep without hurting the average query.  ``build`` (unweighted)
    degrades to the plain ATS rule.
    """

    name = "HotATS"

    def __init__(
        self,
        max_node_fences: int = 64,
        max_fanout: int = 256,
        error_threshold: float = 8.0,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(
            max_node_fences=max_node_fences,
            max_fanout=max_fanout,
            error_threshold=error_threshold,
            perf=perf,
        )
        self._weights: Optional[Sequence[float]] = None

    def build_weighted(
        self, fences: Sequence[int], weights: Sequence[float]
    ) -> None:
        if len(weights) != len(fences):
            raise InvalidConfigurationError(
                "need exactly one weight per fence"
            )
        if any(w < 0 for w in weights):
            raise InvalidConfigurationError("weights must be >= 0")
        # Weights are kept after the build so weighted_avg_depth() can
        # evaluate the same access distribution.
        self._weights = list(weights)
        self.build(fences)

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        self._node_count = 0
        self._depth_weighted = 0.0
        self._depth_max = 0
        self._root = self._build_node(fences, 0, len(fences), 1)

    # The weighted error replaces the parent's max-error terminal test.
    def _max_error(
        self, model: LinearModel, fences: Sequence[int], lo: int, hi: int
    ) -> float:
        if self._weights is None:
            return super()._max_error(model, fences, lo, hi)
        total = len(fences)
        weighted = 0.0
        weight_sum = 0.0
        for idx in range(lo, hi):
            err = abs(model.predict_clamped(fences[idx], total) - idx)
            w = self._weights[idx]
            weighted += err * w
            weight_sum += w
        if weight_sum == 0.0:
            # Nobody ever queries this region: terminate immediately by
            # reporting a perfect fit.
            return 0.0
        return weighted / weight_sum

    def weighted_avg_depth(self) -> float:
        """Mean lookup depth under the access distribution used to build."""
        if self._root is None:
            raise EmptyIndexError("structure not built")
        if self._weights is None:
            return self.avg_depth()
        total_w = sum(self._weights)
        if total_w == 0:
            return self.avg_depth()
        acc = 0.0
        for idx, w in enumerate(self._weights):
            if w:
                acc += w * self._depth_of(self.fences[idx])
        return acc / total_w

    def _depth_of(self, key: int) -> int:
        node = self._root
        depth = 1
        while node.children is not None:
            slot = node.model.predict_clamped(key, len(node.children))
            node = node.children[slot]
            depth += 1
        return depth
