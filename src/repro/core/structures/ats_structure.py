"""Asymmetric Tree Structure (ALEX's internal index).

Built top-down with a cost-model flavour: a node whose linear model
already routes its fences accurately becomes a terminal immediately, while
poorly-fitting regions split into model-partitioned children and grow
deeper.  Leaf depth therefore varies — "this structure does not need to go
through the longest internal path ... for every query" (§IV-B) — giving a
low *average* depth (cf. Table II's 1.03/1.89 for ALEX).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa import fit_least_squares
from repro.core.structures.base import InternalStructure, exponential_search
from repro.errors import EmptyIndexError, InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.perf.events import Event

_MODEL_BYTES = 24
_POINTER_BYTES = 8
_MAX_DEPTH = 32


class _Node:
    """Inner node (``children`` set) or terminal node (``children=None``)."""

    __slots__ = ("model", "children", "lo", "hi")

    def __init__(self, model: LinearModel, lo: int, hi: int):
        self.model = model
        self.children: Optional[List["_Node"]] = None
        self.lo = lo  # covered fence range [lo, hi)
        self.hi = hi


class ATSStructure(InternalStructure):
    """Variable-depth model tree over fence keys."""

    name = "ATS"

    def __init__(
        self,
        max_node_fences: int = 64,
        max_fanout: int = 256,
        error_threshold: int = 8,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if max_node_fences < 1:
            raise InvalidConfigurationError("max_node_fences must be >= 1")
        if max_fanout < 2:
            raise InvalidConfigurationError("max_fanout must be >= 2")
        self.max_node_fences = max_node_fences
        self.max_fanout = max_fanout
        self.error_threshold = error_threshold
        self._root: Optional[_Node] = None
        self._node_count = 0
        self._depth_weighted = 0.0
        self._depth_max = 0

    # -- construction ---------------------------------------------------

    def build(self, fences: Sequence[int]) -> None:
        if not fences:
            raise EmptyIndexError("cannot build over zero fences")
        self.fences = fences
        self._node_count = 0
        self._depth_weighted = 0.0
        self._depth_max = 0
        self._root = self._build_node(fences, 0, len(fences), 1)

    def _fit_global(self, fences: Sequence[int], lo: int, hi: int) -> LinearModel:
        """Model predicting the *global* fence index for keys in [lo, hi)."""
        chunk = fences[lo:hi]
        slope, intercept = fit_least_squares(chunk, chunk[0])
        return LinearModel(max(slope, 0.0), intercept + lo, chunk[0])

    def _max_error(
        self, model: LinearModel, fences: Sequence[int], lo: int, hi: int
    ) -> int:
        worst = 0
        total = len(fences)
        for idx in range(lo, hi):
            err = abs(model.predict_clamped(fences[idx], total) - idx)
            if err > worst:
                worst = err
        return worst

    def _make_terminal(self, model: LinearModel, lo: int, hi: int, depth: int) -> _Node:
        if depth > self._depth_max:
            self._depth_max = depth
        self._depth_weighted += depth * (hi - lo)
        return _Node(model, lo, hi)

    def _build_node(
        self, fences: Sequence[int], lo: int, hi: int, depth: int
    ) -> _Node:
        self._node_count += 1
        model = self._fit_global(fences, lo, hi)
        n = hi - lo
        if (
            n <= self.max_node_fences
            or depth >= _MAX_DEPTH
            or self._max_error(model, fences, lo, hi) <= self.error_threshold
        ):
            return self._make_terminal(model, lo, hi, depth)

        fanout = min(self.max_fanout, max(2, n // self.max_node_fences))
        scale = fanout / n
        child_model = LinearModel(
            model.slope * scale, (model.intercept - lo) * scale, model.base_key
        )

        # The model is monotone over sorted fences, so each child slot maps
        # to a contiguous run of fences; record the run boundaries.
        boundaries = [lo]
        current_slot = 0
        for idx in range(lo, hi):
            slot = child_model.predict_clamped(fences[idx], fanout)
            while current_slot < slot:
                boundaries.append(idx)
                current_slot += 1
        while len(boundaries) < fanout:
            boundaries.append(hi)
        boundaries.append(hi)
        runs = [(boundaries[c], boundaries[c + 1]) for c in range(fanout)]

        if sum(1 for a, b in runs if b > a) <= 1:
            # The model cannot discriminate children (pathological CDF);
            # stop splitting and let the terminal correction search pay.
            return self._make_terminal(model, lo, hi, depth)

        node = _Node(child_model, lo, hi)
        children: List[Optional[_Node]] = []
        prev: Optional[_Node] = None
        for a, b in runs:
            if b > a:
                prev = self._build_node(fences, a, b, depth + 1)
            children.append(prev)
        # Leading empty slots route to the first real child (queries there
        # are corrected by the terminal search anyway).
        first_real = next(c for c in children if c is not None)
        node.children = [c if c is not None else first_real for c in children]
        return node

    # -- queries ----------------------------------------------------------

    def lookup(self, key: int) -> int:
        if self._root is None:
            raise EmptyIndexError("structure not built")
        charge = self.perf.charge
        node = self._root
        while node.children is not None:
            charge(Event.DRAM_HOP)
            charge(Event.MODEL_EVAL)
            slot = node.model.predict_clamped(key, len(node.children))
            node = node.children[slot]
        charge(Event.DRAM_HOP)
        charge(Event.MODEL_EVAL)
        guess = node.model.predict_clamped(key, len(self.fences))
        return exponential_search(self.fences, key, guess, self.perf)

    # -- metadata -----------------------------------------------------------

    def avg_depth(self) -> float:
        if not self.fences:
            return 0.0
        return self._depth_weighted / len(self.fences)

    def max_depth(self) -> int:
        return self._depth_max

    def size_bytes(self) -> int:
        return self._node_count * (_MODEL_BYTES + _POINTER_BYTES)
