"""Base class and shared search helpers for internal structures."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.errors import EmptyIndexError
from repro.perf.context import DEFAULT_CONTEXT, PerfContext, charge_probe
from repro.perf.events import Event


def exponential_search(
    fences: Sequence[int], key: int, guess: int, perf: PerfContext
) -> int:
    """Exact leaf index from a (possibly wrong) ``guess``.

    Returns the index of the rightmost fence <= key (clamped to 0), the
    same answer ``bisect_right(fences, key) - 1`` would give.  Each probe
    charges a comparison plus a locality-dependent memory access, so a
    better guess is genuinely cheaper — how prediction quality feeds the
    simulated clock.
    """
    n = len(fences)
    if n == 0:
        raise EmptyIndexError("no fences to search")
    if guess < 0:
        guess = 0
    elif guess >= n:
        guess = n - 1

    charge = perf.charge
    prev = guess
    charge(Event.COMPARE)
    if fences[guess] <= key:
        # Gallop right for the first fence > key.
        bound = 1
        while guess + bound < n:
            charge(Event.COMPARE)
            charge_probe(perf, guess + bound - prev)
            prev = guess + bound
            if fences[guess + bound] > key:
                break
            bound *= 2
        lo = guess + bound // 2
        hi = min(n - 1, guess + bound)
    else:
        # Gallop left for a fence <= key.
        bound = 1
        while guess - bound >= 0:
            charge(Event.COMPARE)
            charge_probe(perf, guess - bound - prev)
            prev = guess - bound
            if fences[guess - bound] <= key:
                break
            bound *= 2
        lo = max(0, guess - bound)
        hi = guess - bound // 2
    # Binary search for rightmost fence <= key within [lo, hi].
    while lo < hi:
        mid = (lo + hi + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if fences[mid] <= key:
            lo = mid
        else:
            hi = mid - 1
    return lo


def bounded_binary_search(
    fences: Sequence[int], key: int, lo: int, hi: int, perf: PerfContext
) -> int:
    """Rightmost fence <= key within ``[lo, hi]``, charging per probe."""
    charge = perf.charge
    prev = (lo + hi + 1) // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if fences[mid] <= key:
            lo = mid
        else:
            hi = mid - 1
    return max(0, lo)


class InternalStructure(ABC):
    """Routes a key to the index of the leaf segment covering it."""

    name: str = "structure"

    def __init__(self, perf: Optional[PerfContext] = None):
        self.perf = perf if perf is not None else DEFAULT_CONTEXT
        self.fences: Sequence[int] = ()

    @abstractmethod
    def build(self, fences: Sequence[int]) -> None:
        """Construct the structure over sorted, unique fence keys."""

    @abstractmethod
    def lookup(self, key: int) -> int:
        """Index of the rightmost fence <= key (0 if key < fences[0])."""

    @abstractmethod
    def avg_depth(self) -> float:
        """Mean number of node hops from root to a leaf pointer."""

    @abstractmethod
    def max_depth(self) -> int: ...

    @abstractmethod
    def size_bytes(self) -> int: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fences={len(self.fences)})"
