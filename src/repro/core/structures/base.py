"""Base class and shared search helpers for internal structures."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import repro.core.approximation.vectorized as _vec
from repro.errors import EmptyIndexError
from repro.perf.context import (
    DEFAULT_CONTEXT,
    PROBE_LOCALITY_KEYS,
    PerfContext,
    charge_probe,
)
from repro.perf.events import Event


def exponential_search(
    fences: Sequence[int], key: int, guess: int, perf: PerfContext
) -> int:
    """Exact leaf index from a (possibly wrong) ``guess``.

    Returns the index of the rightmost fence <= key (clamped to 0), the
    same answer ``bisect_right(fences, key) - 1`` would give.  Each probe
    charges a comparison plus a locality-dependent memory access, so a
    better guess is genuinely cheaper — how prediction quality feeds the
    simulated clock.
    """
    n = len(fences)
    if n == 0:
        raise EmptyIndexError("no fences to search")
    if guess < 0:
        guess = 0
    elif guess >= n:
        guess = n - 1

    charge = perf.charge
    prev = guess
    charge(Event.COMPARE)
    if fences[guess] <= key:
        # Gallop right for the first fence > key.
        bound = 1
        while guess + bound < n:
            charge(Event.COMPARE)
            charge_probe(perf, guess + bound - prev)
            prev = guess + bound
            if fences[guess + bound] > key:
                break
            bound *= 2
        lo = guess + bound // 2
        hi = min(n - 1, guess + bound)
    else:
        # Gallop left for a fence <= key.
        bound = 1
        while guess - bound >= 0:
            charge(Event.COMPARE)
            charge_probe(perf, guess - bound - prev)
            prev = guess - bound
            if fences[guess - bound] <= key:
                break
            bound *= 2
        lo = max(0, guess - bound)
        hi = guess - bound // 2
    # Binary search for rightmost fence <= key within [lo, hi].
    while lo < hi:
        mid = (lo + hi + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if fences[mid] <= key:
            lo = mid
        else:
            hi = mid - 1
    return lo


def replay_exponential_search(n, guess, astar):
    """``(compare, hop, seq, pos)`` that :func:`exponential_search` emits.

    Every probe compares ``fences[x] <= key``, which over sorted fences
    equals ``x <= astar`` with ``astar = bisect_right(fences, key) - 1``
    (``-1`` when the key precedes every fence) — so the trajectory and
    ledger are pure functions of ``(n, guess, astar)``.  Batch paths
    compute ``astar`` per query with one vectorized ``searchsorted`` and
    replay the charges here; ``pos`` equals the scalar return value.
    """
    compare = hop = seq = 0
    if guess < 0:
        guess = 0
    elif guess >= n:
        guess = n - 1
    prev = guess
    compare += 1
    if guess <= astar:
        bound = 1
        while guess + bound < n:
            compare += 1
            d = guess + bound - prev
            if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
                hop += 1
            else:
                seq += 1
            prev = guess + bound
            if guess + bound > astar:
                break
            bound *= 2
        lo = guess + bound // 2
        hi = min(n - 1, guess + bound)
    else:
        bound = 1
        while guess - bound >= 0:
            compare += 1
            d = guess - bound - prev
            if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
                hop += 1
            else:
                seq += 1
            prev = guess - bound
            if guess - bound <= astar:
                break
            bound *= 2
        lo = max(0, guess - bound)
        hi = guess - bound // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        compare += 1
        d = mid - prev
        if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
            hop += 1
        else:
            seq += 1
        prev = mid
        if mid <= astar:
            lo = mid
        else:
            hi = mid - 1
    return compare, hop, seq, lo


#: d -> (compare, hop, seq) of an interior exponential search (see
#: :func:`exp_replay_charges`); trajectories this far from the borders
#: depend only on the prediction error, so the memo is index-agnostic.
_EXP_REPLAY_MEMO: dict = {}


def exp_replay_charges(d: int):
    """``(compare, hop, seq)`` of an exponential search with error ``d``.

    Valid when every probe provably stays inside the fence array:
    ``guess - (2|d| + 2) >= 0`` and ``guess + (2|d| + 2) <= n - 1``
    (gallop bounds never exceed ``2|d|``, so neither loop condition nor
    a lo/hi clamp can fire).  Interior trajectories are then translation
    invariant — a pure function of ``d = astar - guess`` — which lets
    batch paths bill thousands of searches from a tiny memo instead of
    replaying each one.
    """
    hit = _EXP_REPLAY_MEMO.get(d)
    if hit is None:
        span = 2 * abs(d) + 4
        c, h, s, _ = replay_exponential_search(2 * span + 1, span, span + d)
        hit = _EXP_REPLAY_MEMO[d] = (c, h, s)
    return hit


#: (n, guess, astar) -> charges for searches too close to a border for
#: the translation-invariant memo.  Border queries cluster within
#: O(max_error) of the array ends, so the key space stays small; cleared
#: defensively if a pathological workload ever grows it.
_EXP_BORDER_MEMO: dict = {}


def exp_border_charges(n: int, guess: int, astar: int):
    """Memoized :func:`replay_exponential_search` charges for one query."""
    key = (n, guess, astar)
    hit = _EXP_BORDER_MEMO.get(key)
    if hit is None:
        if len(_EXP_BORDER_MEMO) > 65536:
            _EXP_BORDER_MEMO.clear()
        c, h, s, _ = replay_exponential_search(n, guess, astar)
        hit = _EXP_BORDER_MEMO[key] = (c, h, s)
    return hit


def accumulate_replay_charges(d, guess, astar, lo, hi, charges_of_d, replay):
    """Total ``(compare, hop, seq)`` for a batch of replayed searches.

    ``d``/``guess``/``astar`` are parallel int64 arrays.  Queries whose
    probe window provably stays inside ``[lo, hi]`` (margin
    ``2|d| + 2``) share the memoized per-error ledger ``charges_of_d``;
    the rare border queries replay individually via
    ``replay(guess, astar) -> (compare, hop, seq)``.
    """
    np = _vec.np
    margin = 2 * np.abs(d) + 2
    safe = (guess - margin >= lo) & (guess + margin <= hi)
    compare = hop = seq = 0
    if not safe.all():
        border = np.nonzero(~safe)[0]
        for g, a in zip(guess[border].tolist(), astar[border].tolist()):
            c, h, s = replay(g, a)
            compare += c
            hop += h
            seq += s
        d = d[safe]
    if d.size:
        vals, counts = np.unique(d, return_counts=True)
        for dv, cnt in zip(vals.tolist(), counts.tolist()):
            c, h, s = charges_of_d(dv)
            compare += c * cnt
            hop += h * cnt
            seq += s * cnt
    return compare, hop, seq


def bounded_binary_search(
    fences: Sequence[int], key: int, lo: int, hi: int, perf: PerfContext
) -> int:
    """Rightmost fence <= key within ``[lo, hi]``, charging per probe."""
    charge = perf.charge
    prev = (lo + hi + 1) // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if fences[mid] <= key:
            lo = mid
        else:
            hi = mid - 1
    return max(0, lo)


def replay_bounded_binary_search(lo, hi, astar):
    """``(compare, hop, seq, pos)`` that :func:`bounded_binary_search`
    emits — same replay principle as :func:`replay_exponential_search`:
    each probe's ``fences[mid] <= key`` equals ``mid <= astar``."""
    compare = hop = seq = 0
    prev = (lo + hi + 1) // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        compare += 1
        d = mid - prev
        if d > PROBE_LOCALITY_KEYS or d < -PROBE_LOCALITY_KEYS:
            hop += 1
        else:
            seq += 1
        prev = mid
        if mid <= astar:
            lo = mid
        else:
            hi = mid - 1
    return compare, hop, seq, max(0, lo)


class InternalStructure(ABC):
    """Routes a key to the index of the leaf segment covering it."""

    name: str = "structure"

    def __init__(self, perf: Optional[PerfContext] = None):
        self.perf = perf if perf is not None else DEFAULT_CONTEXT
        self.fences: Sequence[int] = ()

    @abstractmethod
    def build(self, fences: Sequence[int]) -> None:
        """Construct the structure over sorted, unique fence keys."""

    @abstractmethod
    def lookup(self, key: int) -> int:
        """Index of the rightmost fence <= key (0 if key < fences[0])."""

    def lookup_many(self, keys: Sequence[int]) -> List[int]:
        """Batch :meth:`lookup` over a *sorted* or unsorted query batch.

        Every structure answers the same contract (rightmost fence <=
        key, clamped to 0), so the fast path evaluates it directly with
        one ``searchsorted`` over the fence array.  The per-probe event
        ledger of the scalar descent is replaced by a coarse aggregate
        bill — one comparison per binary-search level plus one pointer
        chase per query — since batched routing genuinely skips the
        per-level node hops (that is the point of the optimisation).
        """
        fences = self.fences
        qs = _vec.as_u64(keys) if len(fences) else None
        if qs is None:
            return [self.lookup(key) for key in keys]
        fa = self._fence_array()
        if fa is None:
            return [self.lookup(key) for key in keys]
        np = _vec.np
        idx = np.searchsorted(fa, qs, side="right").astype(np.int64) - 1
        np.maximum(idx, 0, out=idx)
        levels = max(1, len(fences).bit_length())
        self.perf.charge(Event.COMPARE, len(keys) * levels)
        self.perf.charge(Event.DRAM_HOP, len(keys))
        return idx.tolist()

    def _fence_array(self):
        """Cached exact-uint64 copy of ``self.fences`` (or ``None``)."""
        cached = getattr(self, "_fences_np", None)
        if cached is not None and cached[0] is self.fences:
            return cached[1]
        arr = _vec.as_u64(self.fences)
        self._fences_np = (self.fences, arr)
        return arr

    @abstractmethod
    def avg_depth(self) -> float:
        """Mean number of node hops from root to a leaf pointer."""

    @abstractmethod
    def max_depth(self) -> int: ...

    @abstractmethod
    def size_bytes(self) -> int: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fences={len(self.fences)})"
