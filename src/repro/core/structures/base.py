"""Base class and shared search helpers for internal structures."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import repro.core.approximation.vectorized as _vec
from repro.errors import EmptyIndexError
from repro.perf.context import DEFAULT_CONTEXT, PerfContext, charge_probe
from repro.perf.events import Event


def exponential_search(
    fences: Sequence[int], key: int, guess: int, perf: PerfContext
) -> int:
    """Exact leaf index from a (possibly wrong) ``guess``.

    Returns the index of the rightmost fence <= key (clamped to 0), the
    same answer ``bisect_right(fences, key) - 1`` would give.  Each probe
    charges a comparison plus a locality-dependent memory access, so a
    better guess is genuinely cheaper — how prediction quality feeds the
    simulated clock.
    """
    n = len(fences)
    if n == 0:
        raise EmptyIndexError("no fences to search")
    if guess < 0:
        guess = 0
    elif guess >= n:
        guess = n - 1

    charge = perf.charge
    prev = guess
    charge(Event.COMPARE)
    if fences[guess] <= key:
        # Gallop right for the first fence > key.
        bound = 1
        while guess + bound < n:
            charge(Event.COMPARE)
            charge_probe(perf, guess + bound - prev)
            prev = guess + bound
            if fences[guess + bound] > key:
                break
            bound *= 2
        lo = guess + bound // 2
        hi = min(n - 1, guess + bound)
    else:
        # Gallop left for a fence <= key.
        bound = 1
        while guess - bound >= 0:
            charge(Event.COMPARE)
            charge_probe(perf, guess - bound - prev)
            prev = guess - bound
            if fences[guess - bound] <= key:
                break
            bound *= 2
        lo = max(0, guess - bound)
        hi = guess - bound // 2
    # Binary search for rightmost fence <= key within [lo, hi].
    while lo < hi:
        mid = (lo + hi + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if fences[mid] <= key:
            lo = mid
        else:
            hi = mid - 1
    return lo


def bounded_binary_search(
    fences: Sequence[int], key: int, lo: int, hi: int, perf: PerfContext
) -> int:
    """Rightmost fence <= key within ``[lo, hi]``, charging per probe."""
    charge = perf.charge
    prev = (lo + hi + 1) // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        charge(Event.COMPARE)
        charge_probe(perf, mid - prev)
        prev = mid
        if fences[mid] <= key:
            lo = mid
        else:
            hi = mid - 1
    return max(0, lo)


class InternalStructure(ABC):
    """Routes a key to the index of the leaf segment covering it."""

    name: str = "structure"

    def __init__(self, perf: Optional[PerfContext] = None):
        self.perf = perf if perf is not None else DEFAULT_CONTEXT
        self.fences: Sequence[int] = ()

    @abstractmethod
    def build(self, fences: Sequence[int]) -> None:
        """Construct the structure over sorted, unique fence keys."""

    @abstractmethod
    def lookup(self, key: int) -> int:
        """Index of the rightmost fence <= key (0 if key < fences[0])."""

    def lookup_many(self, keys: Sequence[int]) -> List[int]:
        """Batch :meth:`lookup` over a *sorted* or unsorted query batch.

        Every structure answers the same contract (rightmost fence <=
        key, clamped to 0), so the fast path evaluates it directly with
        one ``searchsorted`` over the fence array.  The per-probe event
        ledger of the scalar descent is replaced by a coarse aggregate
        bill — one comparison per binary-search level plus one pointer
        chase per query — since batched routing genuinely skips the
        per-level node hops (that is the point of the optimisation).
        """
        fences = self.fences
        qs = _vec.as_u64(keys) if len(fences) else None
        if qs is None:
            return [self.lookup(key) for key in keys]
        fa = self._fence_array()
        if fa is None:
            return [self.lookup(key) for key in keys]
        np = _vec.np
        idx = np.searchsorted(fa, qs, side="right").astype(np.int64) - 1
        np.maximum(idx, 0, out=idx)
        levels = max(1, len(fences).bit_length())
        self.perf.charge(Event.COMPARE, len(keys) * levels)
        self.perf.charge(Event.DRAM_HOP, len(keys))
        return idx.tolist()

    def _fence_array(self):
        """Cached exact-uint64 copy of ``self.fences`` (or ``None``)."""
        cached = getattr(self, "_fences_np", None)
        if cached is not None and cached[0] is self.fences:
            return cached[1]
        arr = _vec.as_u64(self.fences)
        self._fences_np = (self.fences, arr)
        return arr

    @abstractmethod
    def avg_depth(self) -> float:
        """Mean number of node hops from root to a leaf pointer."""

    @abstractmethod
    def max_depth(self) -> int: ...

    @abstractmethod
    def size_bytes(self) -> int: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fences={len(self.fences)})"
