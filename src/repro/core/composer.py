"""ComposedIndex: recombine the four design dimensions into a working index.

Section IV opens with the observation that "in theory, the four dimensions
of the existing learned indexes are orthogonal, i.e., they can be combined
to form brand new indexes".  ``ComposedIndex`` is that claim as code:

>>> from repro.core import ComposedIndex
>>> from repro.core.approximation import OptPLAApproximator
>>> from repro.core.structures import ATSStructure
>>> from repro.core.insertion.strategies import GappedStrategy
>>> from repro.core.retraining import ExpandOrSplitPolicy
>>> idx = ComposedIndex(
...     OptPLAApproximator(eps=32), ATSStructure(),
...     GappedStrategy(), ExpandOrSplitPolicy())

The learned indexes in :mod:`repro.learned` are purpose-built
implementations of the published designs; ``ComposedIndex`` exists for the
dimension-isolation experiments (Figs 17-18) and for exploring the design
space the paper recommends.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import Approximator
from repro.core.insertion.base import InsertResult, Leaf
from repro.core.insertion.strategies import InsertionStrategy
from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.core.retraining.base import RetrainPolicy
from repro.core.structures.base import InternalStructure
from repro.errors import ReproError
from repro.obs.trace import EventType
from repro.perf.context import PerfContext
from repro.perf.events import Event

_MAX_RETRAIN_ATTEMPTS = 4


class ComposedIndex(UpdatableIndex):
    """An updatable learned index assembled from the four dimensions."""

    #: Passes over the data a bulk build makes (fit + leaf construction);
    #: subclasses override to reflect their algorithm's build constant,
    #: which drives the recovery-time experiment (Fig 16).
    _build_passes = 2

    def __init__(
        self,
        approximator: Approximator,
        structure: InternalStructure,
        insertion: InsertionStrategy,
        retraining: RetrainPolicy,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        self.approximator = approximator
        self.structure = structure
        self.structure.perf = self.perf  # share one simulated clock
        self.insertion = insertion
        self.retraining = retraining
        self.leaves: List[Leaf] = []
        self.name = (
            f"{approximator.name}+{structure.name}"
            f"+{insertion.name}+{retraining.name}"
        )
        self._n = 0
        self._split_count = 0
        self._merge_count = 0

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        if not items:
            self.leaves = []
            self._n = 0
            return
        keys = [k for k, _ in items]
        values = [v for _, v in items]
        self.perf.charge(Event.RETRAIN_KEY, len(items) * self._build_passes)
        approx = self.approximator.fit(keys)
        self.perf.charge(Event.ALLOC, approx.leaf_count)
        self.leaves = [
            self.insertion.make_leaf(
                keys[seg.start : seg.start + seg.n],
                values[seg.start : seg.start + seg.n],
                seg,
                self.perf,
            )
            for seg in approx.segments
        ]
        self._n = len(items)
        self.perf.trace(
            EventType.NODE_ALLOC,
            index=self.name,
            reason="bulk_load",
            keys=len(items),
            count=approx.leaf_count,
            key_lo=keys[0],
            key_hi=keys[-1],
        )
        self._rebuild_structure()

    def _rebuild_structure(self) -> None:
        self.perf.charge(Event.ALLOC)
        self.structure.build([leaf.first_key for leaf in self.leaves])

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        if not self.leaves:
            return None
        idx = self.structure.lookup(key)
        return self.leaves[idx].get(key)

    def get_many(self, keys: Sequence[Key]) -> List[Optional[Value]]:
        """Sorted-batch leaf routing.

        The batch is argsorted, routed through the internal structure in
        one vectorized pass (see ``InternalStructure.lookup_many``), and
        each run of queries landing in the same leaf is answered with a
        single ``Leaf.get_many`` call; answers scatter back to the
        caller's order.  Any batch that cannot be converted exactly to
        uint64 takes the per-key fallback, so results always match
        ``[self.get(k) for k in keys]``.
        """
        n = len(keys)
        if not self.leaves or not n:
            return [None] * n
        qs = _vec.as_u64(keys)
        if qs is None:
            return [self.get(key) for key in keys]
        np = _vec.np
        order = np.argsort(qs, kind="stable")
        sorted_qs = qs[order]
        leaf_idx = self.structure.lookup_many(sorted_qs)
        order_list = order.tolist()
        sorted_keys = sorted_qs.tolist()
        results: List[Optional[Value]] = [None] * n
        start = 0
        while start < n:
            li = leaf_idx[start]
            end = start + 1
            while end < n and leaf_idx[end] == li:
                end += 1
            values = self.leaves[li].get_many(sorted_keys[start:end])
            for pos in range(start, end):
                results[order_list[pos]] = values[pos - start]
            start = end
        return results

    def __len__(self) -> int:
        return self._n

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if not self.leaves:
            return
        idx = self.structure.lookup(lo)
        while idx < len(self.leaves):
            leaf = self.leaves[idx]
            if leaf.first_key > hi:
                return
            yield from leaf.iter_range(lo, hi)
            idx += 1

    def scan_many(
        self, starts: Sequence[Key], count: int
    ) -> List[List[Tuple[Key, Value]]]:
        """Native batch scan: one structure lookup per start, then the
        run is stitched from whole-leaf extractions.

        A scan spanning N leaves is N ``Leaf.scan_from`` slice copies
        (occupancy-mask compaction for gapped leaves, bounded merges for
        buffered/fine-bin ones) instead of ``count`` iterator item
        probes.  Only the structure lookup charges events — exactly what
        the scalar ``range`` walk charges — so totals stay bit-identical
        to sequential :meth:`scan` calls.
        """
        if not self.leaves:
            return [[] for _ in starts]
        limit = count if count > 0 else 1
        leaves = self.leaves
        n_leaves = len(leaves)
        results: List[List[Tuple[Key, Value]]] = []
        for start in starts:
            idx = self.structure.lookup(start)
            out: List[Tuple[Key, Value]] = []
            while idx < n_leaves and len(out) < limit:
                run = leaves[idx].scan_from(start, limit - len(out))
                if run:
                    out.extend(run)
                idx += 1
            results.append(out)
        return results

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        if not self.leaves:
            self.leaves = [
                self.insertion.make_leaf([key], [value], None, self.perf)
            ]
            self._n = 1
            self._rebuild_structure()
            return
        for _ in range(_MAX_RETRAIN_ATTEMPTS):
            idx = self.structure.lookup(key)
            result = self.leaves[idx].insert(key, value)
            if result is InsertResult.INSERTED:
                self._n += 1
                return
            if result is InsertResult.UPDATED:
                return
            self._retrain(idx)
        raise ReproError(
            f"insert of key {key} did not converge after "
            f"{_MAX_RETRAIN_ATTEMPTS} retrains"
        )

    def upsert(self, key: Key, value: Value) -> Optional[Value]:
        """Single-descent insert-or-overwrite: one structure lookup plus
        one in-leaf rank search resolves both the old value and the write
        target (the default would probe and then insert — two descents)."""
        if not self.leaves:
            self.insert(key, value)
            return None
        for _ in range(_MAX_RETRAIN_ATTEMPTS):
            idx = self.structure.lookup(key)
            result, old = self.leaves[idx].upsert(key, value)
            if result is InsertResult.INSERTED:
                self._n += 1
                return None
            if result is InsertResult.UPDATED:
                return old
            self._retrain(idx)
        raise ReproError(
            f"upsert of key {key} did not converge after "
            f"{_MAX_RETRAIN_ATTEMPTS} retrains"
        )

    def insert_many(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Sorted-batch leaf routing for inserts.

        Mirrors ``get_many``: the batch is argsorted (stably, so on
        duplicate keys the later item still wins) and routed through
        ``InternalStructure.lookup_many`` in one pass.  Each run of keys
        landing in the same leaf is offered to ``Leaf.insert_batch``
        (vectorized merge-and-re-spread for gapped leaves); runs the leaf
        declines take the per-key loop.  A leaf reporting FULL falls back
        to the scalar ``insert`` (which runs the retrain loop) and the
        *remaining* suffix is re-routed, since retraining changes the
        leaf list.
        """
        n = len(items)
        if not n:
            return
        if not self.leaves:
            self.insert(*items[0])
            if n > 1:
                self.insert_many(items[1:])
            return
        qs = _vec.as_u64([k for k, _ in items])
        if qs is None:
            for key, value in items:
                self.insert(key, value)
            return
        np = _vec.np
        order = np.argsort(qs, kind="stable")
        sorted_qs = qs[order]
        pairs = [items[j] for j in order.tolist()]
        i = 0
        while i < n:
            leaf_idx = self.structure.lookup_many(sorted_qs[i:])
            total = len(leaf_idx)
            rerouted = False
            start = 0
            while start < total:
                li = leaf_idx[start]
                end = start + 1
                while end < total and leaf_idx[end] == li:
                    end += 1
                leaf = self.leaves[li]
                done = leaf.insert_batch(pairs[i + start : i + end])
                if done is not None:
                    self._n += done
                    start = end
                    continue
                for off in range(start, end):
                    key, value = pairs[i + off]
                    result = leaf.insert(key, value)
                    if result is InsertResult.INSERTED:
                        self._n += 1
                    elif result is InsertResult.FULL:
                        # Scalar insert retrains until the key fits, then
                        # the outer loop re-routes what is left.
                        self.insert(key, value)
                        i += off + 1
                        rerouted = True
                        break
                if rerouted:
                    break
                start = end
            if not rerouted:
                break

    def delete(self, key: Key) -> bool:
        if not self.leaves:
            return False
        idx = self.structure.lookup(key)
        removed = self.leaves[idx].delete(key)
        if not removed:
            return False
        self._n -= 1
        if self.leaves[idx].n == 0:
            # Drop the emptied leaf; the structure must forget its fence.
            first_key = self.leaves[idx].first_key
            del self.leaves[idx]
            self._merge_count += 1
            self.perf.trace(
                EventType.LEAF_MERGE,
                index=self.name,
                leaf=idx,
                key_lo=first_key,
                reason="leaf_emptied",
            )
            if self.leaves:
                self._rebuild_structure()
        return True

    def _retrain(self, idx: int) -> None:
        leaf = self.leaves[idx]
        old_n = leaf.n
        key_lo = leaf.first_key
        buffered = getattr(leaf, "buffer_fill", None)
        flushed = buffered() if callable(buffered) else 0
        mark = self.perf.begin()
        new_leaves = self.retraining.retrain_leaf(self, idx)
        self.leaves[idx : idx + 1] = new_leaves
        self._rebuild_structure()
        op = self.perf.end(mark)
        self.retraining.stats.record(old_n, op.time_ns)
        # The first key of the leaf after the retrained range is an
        # exclusive upper bound on the keys the retrain covered.
        nxt = idx + len(new_leaves)
        key_hi = self.leaves[nxt].first_key if nxt < len(self.leaves) else None
        if flushed:
            self.perf.trace(
                EventType.BUFFER_FLUSH,
                index=self.name,
                leaf=idx,
                key_lo=key_lo,
                key_hi=key_hi,
                keys=flushed,
                reason="merge_on_retrain",
            )
        if len(new_leaves) > 1:
            self._split_count += 1
            self.perf.trace(
                EventType.LEAF_SPLIT,
                index=self.name,
                leaf=idx,
                key_lo=key_lo,
                key_hi=key_hi,
                keys=old_n,
                count=len(new_leaves),
                reason="model_refit_split",
                cost_ns=op.time_ns,
            )
        self.perf.trace(
            EventType.RETRAIN,
            index=self.name,
            leaf=idx,
            key_lo=key_lo,
            key_hi=key_hi,
            keys=old_n,
            count=len(new_leaves),
            reason="leaf_full",
            cost_ns=op.time_ns,
        )

    # -- metadata -----------------------------------------------------------

    #: Per-leaf structural metadata: model (24B) + header/pointer (16B).
    _LEAF_META_BYTES = 40

    def size_bytes(self) -> int:
        return (
            self.structure.size_bytes()
            + len(self.leaves) * self._LEAF_META_BYTES
        )

    def key_store_bytes(self) -> int:
        return sum(leaf.capacity_slots for leaf in self.leaves) * 16

    def stats(self) -> IndexStats:
        rs = self.retraining.stats
        return IndexStats(
            depth_avg=self.structure.avg_depth() if self.leaves else 0.0,
            depth_max=self.structure.max_depth() if self.leaves else 0,
            leaf_count=len(self.leaves),
            retrain_count=rs.count,
            retrain_keys=rs.keys_retrained,
            retrain_time_ns=rs.time_ns,
            extra={
                "leaf_splits": self._split_count,
                "leaf_merges": self._merge_count,
            },
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=False,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="configurable",
            leaf_node="linear",
            approximation="configurable",
            insertion="configurable",
            retraining="configurable",
        )
