"""XIndex: a two-layer RMI root over buffered group nodes.

Groups hold LSA-fitted linear models over fixed key partitions, each with
an offsite insert buffer that merges back on retraining (§II-B4).  XIndex
is the only evaluated learned index supporting *concurrent writes* (via
RCU and two-phase compaction in the original; here the capability flag
drives the multi-threaded write model of Fig 14 — the single-threaded
algorithmic behaviour is identical).

Simplification vs. the published system (see DESIGN.md): the per-group
temporary buffer that absorbs writes *during* a background compaction is
not modelled, because the simulator executes retrains atomically.
"""

from __future__ import annotations

from typing import Optional

from repro.core.approximation import LSAApproximator
from repro.core.composer import ComposedIndex
from repro.core.insertion.strategies import BufferStrategy
from repro.core.interfaces import Capabilities
from repro.core.retraining import SplitRetrainPolicy
from repro.core.structures import RMIStructure
from repro.perf.context import PerfContext


class XIndexIndex(ComposedIndex):
    """XIndex with LSA group models and per-group insert buffers."""

    # RMI root training, group partitioning, per-group LSA fits, buffer
    # setup: the paper measures XIndex recovery ~ ALEX recovery (Fig 16).
    _build_passes = 5

    def __init__(
        self,
        group_size: int = 256,
        buffer_capacity: int = 256,
        rmi_branching: int = 1024,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(
            LSAApproximator(segment_size=group_size),
            RMIStructure(branching=rmi_branching),
            BufferStrategy(buffer_capacity=buffer_capacity),
            SplitRetrainPolicy(),
            perf=perf,
        )
        self.name = "XIndex"

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=False,
            concurrent_read=True,
            concurrent_write=True,
            inner_node="RMI",
            leaf_node="linear",
            approximation="LSA",
            insertion="offsite",
            retraining="retrain one node",
        )
