"""ALEX: gapped data nodes under an asymmetric model tree.

The defining mechanisms, all reproduced here through the core dimensions:

* **LSA-gap approximation** — leaf models are least-squares fits whose
  slope/intercept are rescaled so the keys spread over a larger gapped
  array, actively reshaping the stored CDF (§II-B3);
* **ATS internal structure** — model-routed nodes of varying depth;
* **gapped inplace insertion** — the model predicts the slot, a nearby
  gap absorbs the key with little movement, exponential search corrects
  wrong predictions;
* **expand-or-split retraining** — a dense node whose model still fits is
  expanded to the lower density bound; one that stopped fitting splits.

Simplification vs. the published system (documented in DESIGN.md): ALEX's
fanout-tree cost model for choosing per-node fanouts is replaced by the
ATS build heuristic (terminate where the model fits, split where it does
not), which produces the same qualitative asymmetry.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.approximation import LSAGapApproximator
from repro.core.composer import ComposedIndex
from repro.core.insertion.strategies import GappedStrategy
from repro.core.interfaces import Capabilities, Key, Value
from repro.core.retraining import ExpandOrSplitPolicy
from repro.core.structures import ATSStructure
from repro.perf.context import PerfContext
from repro.perf.events import Event


class ALEXIndex(ComposedIndex):
    """ALEX with the paper's density bounds (0.6 lower, 0.8 upper)."""

    # Fanout-tree cost-model search, per-node fits, gap sizing, placement
    # and verification passes; ALEX and XIndex have the slowest recovery
    # among the learned indexes (Fig 16, ~6x RS).
    _build_passes = 5

    def __init__(
        self,
        segment_size: int = 16384,
        density: float = 0.7,
        lower_density: float = 0.6,
        upper_density: float = 0.8,
        perf: Optional[PerfContext] = None,
    ):
        # Data nodes are large (ALEX grows nodes to millions of keys),
        # which keeps the asymmetric tree shallow — the avg depth of
        # 1.03-2 the paper reports in Table II.
        super().__init__(
            LSAGapApproximator(segment_size=segment_size, density=density),
            ATSStructure(max_node_fences=32),
            GappedStrategy(density=density, upper_density=upper_density),
            ExpandOrSplitPolicy(
                density=lower_density, max_leaf_keys=4 * segment_size
            ),
            perf=perf,
        )
        self.name = "ALEX"

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        # Gapped redistribution physically moves every key once more,
        # which is what makes ALEX's build/recovery the slowest of the
        # learned indexes (Fig 16).
        self.perf.charge(Event.KEY_MOVE, len(items))
        super().bulk_load(items)

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=False,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="asymmetric model tree",
            leaf_node="gapped linear",
            approximation="LSA+gap",
            insertion="inplace (gapped)",
            retraining="expand + retrain",
        )
