"""The six learned indexes the paper evaluates (§II, Table I).

Read-only:

* :class:`RMIIndex` — two-stage Recursive Model Index (Kraska et al. 2018).
* :class:`RadixSplineIndex` — one-pass spline + radix table (Kipf et al. 2020).

Updatable:

* :class:`FITingTree` — error-bounded PLA leaves under a B+tree, with
  *inplace* or *buffer* insertion (Galakatos et al. 2019).
* :class:`PGMIndex` / :class:`DynamicPGMIndex` — optimal PLA recursed into
  a Linear Recursive Structure; updatable via an LSM of static indexes
  (Ferragina & Vinciguerra 2020).
* :class:`ALEXIndex` — gapped arrays + asymmetric model tree with
  expand-or-split retraining (Ding et al. 2020).
* :class:`XIndexIndex` — 2-layer RMI root over buffered group nodes, the
  only evaluated learned index with concurrent writes (Tang et al. 2020).

Extension beyond the paper's evaluation:

* :class:`LIPPIndex` — precise-position learned index (Wu et al. 2021),
  the design §V-B points to but could not evaluate ("it is not open
  source now"); implemented here so that comparison can finally run.
* :class:`APEXIndex` — persistent-memory learned index (Lu et al. 2022,
  the paper's reference [6]): probe-and-stash PM data nodes, DRAM
  fingerprints, near-instant recovery.
* :class:`FINEdexIndex` — fine-grained level bins (Li et al. 2021, the
  paper's reference [7]); the bin design is itself a new option in the
  insertion dimension.
"""

from repro.learned.rmi import RMIIndex
from repro.learned.radix_spline import RadixSplineIndex
from repro.learned.fiting_tree import FITingTree
from repro.learned.pgm import DynamicPGMIndex, PGMIndex
from repro.learned.alex import ALEXIndex
from repro.learned.xindex import XIndexIndex
from repro.learned.lipp import LIPPIndex
from repro.learned.apex import APEXIndex
from repro.learned.finedex import FINEdexIndex

__all__ = [
    "RMIIndex",
    "RadixSplineIndex",
    "FITingTree",
    "PGMIndex",
    "DynamicPGMIndex",
    "ALEXIndex",
    "XIndexIndex",
    "LIPPIndex",
    "APEXIndex",
    "FINEdexIndex",
]
