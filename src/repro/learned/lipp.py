"""LIPP: Updatable Learned Index with Precise Positions (Wu et al. 2021).

The paper's §V-B singles LIPP out as the design its analysis predicts:
an asymmetric tree whose approximation *actively changes the stored
layout* so every model prediction is **exact** — "the LIPP has found this
critical point and successfully implemented this method ... Since it is
not open source now, we cannot evaluate it."  This module implements it,
so the repository can run the evaluation the authors could not.

Mechanics:

* Every node holds a linear model and a slot array.  A slot is empty,
  holds one key/value entry, or points to a child node.
* Keys are *placed at the slot the model predicts*, so a lookup needs no
  correction search at all: per level it costs one hop + one model
  evaluation, and the entry is either there or absent.
* Keys whose predictions collide are pushed into a child node built over
  just those keys (a steeper local model separates them).
* Inserting into an occupied slot creates a two-entry child; per-subtree
  insert counters trigger a rebuild (retrain) when a subtree has absorbed
  as many inserts as it had keys, which keeps depth logarithmic.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa import fit_least_squares
from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.core.retraining.base import RetrainStats
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.obs.trace import EventType
from repro.perf.events import Event

_SLOT_BYTES = 24  # tag + key + value/child pointer
_NODE_OVERHEAD = 48
_MAX_DEPTH = 64
_BUILD_PASSES = 4  # model fit + conflict-degree scan + placement + links


class _Entry:
    __slots__ = ("key", "value")

    def __init__(self, key: Key, value: Any):
        self.key = key
        self.value = value


class _Node:
    __slots__ = ("model", "slots", "n_keys", "inserts_since_build")

    def __init__(self, model: LinearModel, n_slots: int, n_keys: int):
        self.model = model
        self.slots: List[Any] = [None] * n_slots  # None | _Entry | _Node
        self.n_keys = n_keys
        self.inserts_since_build = 0


class LIPPIndex(UpdatableIndex):
    """Precise-position learned index (no correction search, ever)."""

    name = "LIPP"

    def __init__(
        self,
        slot_factor: float = 2.0,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if slot_factor < 1.0:
            raise InvalidConfigurationError("slot_factor must be >= 1.0")
        self.slot_factor = slot_factor
        self._root: Optional[_Node] = None
        self._n = 0
        self.retrain_stats = RetrainStats()

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._n = len(items)
        if not items:
            self._root = None
            return
        self.perf.charge(Event.RETRAIN_KEY, len(items) * _BUILD_PASSES)
        self._root = self._build_node(
            [k for k, _ in items], [v for _, v in items], 0
        )

    def _build_node(
        self, keys: Sequence[Key], values: Sequence[Any], depth: int
    ) -> _Node:
        n = len(keys)
        self.perf.charge(Event.ALLOC)
        if n == 1:
            node = _Node(LinearModel(0.0, 0.0, keys[0]), 1, 1)
            node.slots[0] = _Entry(keys[0], values[0])
            return node
        n_slots = max(2, int(n * self.slot_factor))
        slope, intercept = fit_least_squares(keys, keys[0])
        scale = n_slots / n
        model = LinearModel(slope * scale, intercept * scale, keys[0])
        node = _Node(model, n_slots, n)

        # Group keys by predicted slot; singletons become entries,
        # conflicting groups recurse into child nodes.
        group_start = 0
        current_slot = model.predict_clamped(keys[0], n_slots)
        for i in range(1, n + 1):
            slot = (
                model.predict_clamped(keys[i], n_slots) if i < n else -1
            )
            if slot == current_slot:
                continue
            size = i - group_start
            if size == 1:
                node.slots[current_slot] = _Entry(
                    keys[group_start], values[group_start]
                )
            else:
                node.slots[current_slot] = self._build_subtree(
                    keys[group_start:i], values[group_start:i], depth + 1
                )
            group_start = i
            current_slot = slot
        return node

    def _build_subtree(
        self, keys: Sequence[Key], values: Sequence[Any], depth: int
    ) -> Any:
        if depth >= _MAX_DEPTH:
            raise InvalidConfigurationError(
                "LIPP build exceeded maximum depth (degenerate key set)"
            )
        if len(keys) == 1:
            node = _Node(LinearModel(0.0, 0.0, keys[0]), 1, 1)
            node.slots[0] = _Entry(keys[0], values[0])
            self.perf.charge(Event.ALLOC)
            return node
        return self._build_node(keys, values, depth)

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        node = self._root
        charge = self.perf.charge
        while node is not None:
            charge(Event.DRAM_HOP)
            charge(Event.MODEL_EVAL)
            slot = node.model.predict_clamped(key, len(node.slots))
            cell = node.slots[slot]
            if cell is None:
                return None
            if isinstance(cell, _Entry):
                charge(Event.COMPARE)
                return cell.value if cell.key == key else None
            node = cell
        return None

    def __len__(self) -> int:
        return self._n

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        if self._root is None:
            self._root = self._build_subtree([key], [value], 0)
            self._n = 1
            return
        charge = self.perf.charge
        path: List[_Node] = []
        node = self._root
        while True:
            charge(Event.DRAM_HOP)
            charge(Event.MODEL_EVAL)
            path.append(node)
            slot = node.model.predict_clamped(key, len(node.slots))
            cell = node.slots[slot]
            if cell is None:
                node.slots[slot] = _Entry(key, value)
                self._n += 1
                break
            if isinstance(cell, _Entry):
                charge(Event.COMPARE)
                if cell.key == key:
                    cell.value = value
                    return
                # Conflict: push both entries into a fresh child.
                pair = sorted(
                    [(cell.key, cell.value), (key, value)]
                )
                node.slots[slot] = self._build_subtree(
                    [pair[0][0], pair[1][0]],
                    [pair[0][1], pair[1][1]],
                    len(path),
                )
                self._n += 1
                break
            node = cell
        # Bump insert counters along the path; rebuild the shallowest
        # subtree that has doubled since its last build.
        for depth, visited in enumerate(path):
            visited.inserts_since_build += 1
            if visited.inserts_since_build > max(64, visited.n_keys):
                self._rebuild_subtree(visited, path[depth - 1] if depth else None)
                break

    def _rebuild_subtree(self, node: _Node, parent: Optional[_Node]) -> None:
        mark = self.perf.begin()
        items = list(self._iter_node(node))
        self.perf.charge(Event.RETRAIN_KEY, len(items))
        fresh = self._build_node(
            [k for k, _ in items], [v for _, v in items], 0
        )
        if parent is None:
            self._root = fresh
        else:
            for i, cell in enumerate(parent.slots):
                if cell is node:
                    parent.slots[i] = fresh
                    break
        op = self.perf.end(mark)
        self.retrain_stats.record(len(items), op.time_ns)
        self.perf.trace(
            EventType.RETRAIN,
            index=self.name,
            key_lo=items[0][0] if items else None,
            key_hi=items[-1][0] if items else None,
            keys=len(items),
            reason="subtree_insert_pressure",
            cost_ns=op.time_ns,
        )

    def delete(self, key: Key) -> bool:
        node = self._root
        charge = self.perf.charge
        while node is not None:
            charge(Event.DRAM_HOP)
            charge(Event.MODEL_EVAL)
            slot = node.model.predict_clamped(key, len(node.slots))
            cell = node.slots[slot]
            if cell is None:
                return False
            if isinstance(cell, _Entry):
                charge(Event.COMPARE)
                if cell.key == key:
                    node.slots[slot] = None
                    self._n -= 1
                    return True
                return False
            node = cell
        return False

    # -- iteration -----------------------------------------------------------

    def _iter_node(self, node: _Node) -> Iterator[Tuple[Key, Any]]:
        for cell in node.slots:
            if cell is None:
                continue
            if isinstance(cell, _Entry):
                yield cell.key, cell.value
            else:
                yield from self._iter_node(cell)

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if self._root is None:
            return
        # Slot order is key order (models are monotone), so an in-order
        # walk yields sorted pairs; each node touch costs a hop.
        self.perf.charge(Event.DRAM_HOP)
        for key, value in self._iter_node(self._root):
            if key > hi:
                return
            if key >= lo:
                self.perf.charge(Event.DRAM_SEQ)
                yield key, value

    # -- metadata -----------------------------------------------------------

    def _walk_stats(self, node: _Node, depth: int, acc: dict) -> None:
        acc["nodes"] += 1
        acc["slots"] += len(node.slots)
        for cell in node.slots:
            if isinstance(cell, _Entry):
                acc["weighted_depth"] += depth
                acc["entries"] += 1
                acc["max_depth"] = max(acc["max_depth"], depth)
            elif isinstance(cell, _Node):
                self._walk_stats(cell, depth + 1, acc)

    def size_bytes(self) -> int:
        if self._root is None:
            return 0
        acc = {"nodes": 0, "slots": 0, "weighted_depth": 0, "entries": 0,
               "max_depth": 0}
        self._walk_stats(self._root, 1, acc)
        return acc["nodes"] * _NODE_OVERHEAD + acc["slots"] * _SLOT_BYTES

    def key_store_bytes(self) -> int:
        # LIPP stores entries inside its nodes; there is no separate
        # sorted array, so the node slots *are* the key store.
        return 0

    def stats(self) -> IndexStats:
        if self._root is None:
            return IndexStats()
        acc = {"nodes": 0, "slots": 0, "weighted_depth": 0, "entries": 0,
               "max_depth": 0}
        self._walk_stats(self._root, 1, acc)
        return IndexStats(
            depth_avg=acc["weighted_depth"] / max(1, acc["entries"]),
            depth_max=acc["max_depth"],
            leaf_count=acc["nodes"],
            retrain_count=self.retrain_stats.count,
            retrain_keys=self.retrain_stats.keys_retrained,
            retrain_time_ns=self.retrain_stats.time_ns,
            extra={"slots": acc["slots"], "entries": acc["entries"]},
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,  # error is exactly zero
            concurrent_read=True,
            concurrent_write=False,
            inner_node="asymmetric model tree",
            leaf_node="in-node entries",
            approximation="FMCD-style precise placement",
            insertion="inplace (model slot)",
            retraining="subtree rebuild",
        )
