"""FITing-tree: error-bounded PLA leaves under a B+tree inner index.

Following the paper's methodology (§III-A1), the approximation algorithm
is the *improved Opt-PLA* from PGM-Index rather than the original greedy
FSW ("the approximation algorithm of PGM-Index was proved to be
theoretically better ... this will help us compare the other design
dimensions between them"); pass ``approximation="greedy"`` to use the
original.  Both published insertion strategies are available:
``strategy="inplace"`` (FITing-tree-inp) and ``strategy="buffer"``
(FITing-tree-buf).
"""

from __future__ import annotations

from typing import Optional

from repro.core.approximation import GreedyPLAApproximator, OptPLAApproximator
from repro.core.composer import ComposedIndex
from repro.core.insertion.strategies import BufferStrategy, InplaceStrategy
from repro.core.interfaces import Capabilities
from repro.core.retraining import SplitRetrainPolicy
from repro.core.structures import BTreeStructure
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext


class FITingTree(ComposedIndex):
    """FITing-tree with selectable insertion strategy."""

    _build_passes = 2

    def __init__(
        self,
        eps: int = 16,
        strategy: str = "inplace",
        reserve: int = 128,
        buffer_capacity: int = 256,
        btree_fanout: int = 16,
        approximation: str = "optpla",
        perf: Optional[PerfContext] = None,
    ):
        if strategy == "inplace":
            insertion = InplaceStrategy(reserve=reserve)
            name = "FITing-tree-inp"
        elif strategy == "buffer":
            insertion = BufferStrategy(buffer_capacity=buffer_capacity)
            name = "FITing-tree-buf"
        else:
            raise InvalidConfigurationError(
                f"strategy must be 'inplace' or 'buffer', got {strategy!r}"
            )
        if approximation == "optpla":
            approximator = OptPLAApproximator(eps=eps)
        elif approximation == "greedy":
            approximator = GreedyPLAApproximator(eps=eps)
        else:
            raise InvalidConfigurationError(
                f"approximation must be 'optpla' or 'greedy', got {approximation!r}"
            )
        super().__init__(
            approximator,
            BTreeStructure(fanout=btree_fanout),
            insertion,
            SplitRetrainPolicy(),
            perf=perf,
        )
        self.name = name
        self.strategy = strategy

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="B+tree",
            leaf_node="linear",
            approximation="greedy / Opt-PLA",
            insertion="inplace | offsite",
            retraining="retrain one node",
        )
