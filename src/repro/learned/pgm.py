"""PGM-Index: optimal PLA recursed into itself, plus the LSM dynamisation.

:class:`PGMIndex` is the static index: Opt-PLA segments over the data with
a Linear Recursive Structure (recursive Opt-PLA over segment fences) on
top.  Both the routing and the leaf search are bounded by the configured
epsilons, so tail latency is bounded — the property the paper contrasts
with RMI.

:class:`DynamicPGMIndex` is the updatable variant: a logarithmic method
(Bentley-Saxe / LSM) over static PGM indexes.  "When a key is inserted,
the first empty set S_i is found and a new PGM-Index ... is created" from
the union of all smaller sets — frequent but individually cheap retrains
(Fig 18b's 'PGM-Index has the lowest average retraining time').
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.base import Approximation
from repro.core.approximation.optpla import OptPLAApproximator
from repro.core.insertion.base import (
    rank_border_charges,
    rank_replay_charges,
    rank_search,
)
from repro.core.structures.base import accumulate_replay_charges
from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    SortedIndex,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.core.retraining.base import RetrainStats
from repro.core.structures.lrs_structure import LRSStructure
from repro.errors import InvalidConfigurationError
from repro.obs.trace import EventType
from repro.perf.context import PerfContext
from repro.perf.events import Event

#: Sentinel marking a deleted key inside the LSM levels.
_TOMBSTONE = object()

#: Sentinel distinguishing "not found yet" from "resolved to None" while a
#: batched get drains through the LSM levels.
_MISSING = object()

#: Opt-PLA's convex-hull maintenance makes the build pass heavier than a
#: plain spline pass; this constant scales the charged build work.
_BUILD_PASSES = 2


class PGMIndex(SortedIndex):
    """Static PGM: Opt-PLA leaves + recursive Opt-PLA routing."""

    name = "PGM"

    def __init__(
        self,
        eps: int = 16,
        eps_internal: int = 4,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if eps < 1:
            raise InvalidConfigurationError(f"eps must be >= 1, got {eps}")
        self.eps = eps
        self.eps_internal = eps_internal
        self._keys: List[Key] = []
        self._values: List[Any] = []
        self._keys_np = None
        self._values_np = None
        self._pairs: Optional[List[Tuple[Key, Any]]] = None
        self._approx: Optional[Approximation] = None
        self._structure: Optional[LRSStructure] = None

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._keys = [k for k, _ in items]
        self._values = [v for _, v in items]
        self._keys_np = _vec.as_u64(self._keys)
        # Exact-integer payloads get a contiguous copy too, so batch
        # scans can materialize runs without chasing heap pointers.
        self._values_np = _vec.as_u64(self._values)
        self._pairs = None
        if not items:
            self._approx = None
            self._structure = None
            return
        self.perf.charge(Event.RETRAIN_KEY, len(items) * _BUILD_PASSES)
        self._approx = OptPLAApproximator(eps=self.eps).fit(self._keys)
        self.perf.charge(Event.ALLOC, self._approx.leaf_count)
        self._structure = LRSStructure(eps=self.eps_internal, perf=self.perf)
        self._structure.build(self._approx.fences)

    def _rank(self, key: Key) -> int:
        seg_idx = self._structure.lookup(key)
        seg = self._approx.segments[seg_idx]
        self.perf.charge(Event.DRAM_HOP)
        self.perf.charge(Event.MODEL_EVAL)
        guess = seg.start + seg.predict(key)
        return rank_search(self._keys, 0, len(self._keys) - 1, key, guess, self.perf)

    def get(self, key: Key) -> Optional[Value]:
        if self._approx is None:
            return None
        pos = self._rank(key)
        if pos >= 0 and self._keys[pos] == key:
            self.perf.charge(Event.DRAM_SEQ)
            return self._values[pos]
        return None

    def get_many(self, keys: Sequence[Key]) -> List[Optional[Value]]:
        """One ``searchsorted`` over the contiguous key array per batch.

        The per-probe ledger of the scalar descent (LRS hops, model
        evals, bounded search) collapses into an aggregate bill: one
        model eval per routing level and one comparison per halving of
        the 2*eps search window, per query.  Results are always exactly
        ``[self.get(k) for k in keys]``; inexact batches fall back.
        """
        if self._approx is None:
            return [None] * len(keys)
        qs = _vec.as_u64(keys) if self._keys_np is not None else None
        if qs is None:
            return [self.get(key) for key in keys]
        np = _vec.np
        pos = np.searchsorted(self._keys_np, qs, side="right").astype(np.int64) - 1
        hit = (pos >= 0) & (self._keys_np[np.maximum(pos, 0)] == qs)
        n = len(keys)
        levels = self._structure.height + 1
        window_steps = max(1, (2 * self.eps).bit_length())
        self.perf.charge(Event.MODEL_EVAL, n * levels)
        self.perf.charge(Event.DRAM_HOP, n * 2)
        self.perf.charge(Event.COMPARE, n * window_steps)
        self.perf.charge(Event.DRAM_SEQ, int(hit.sum()))
        values = self._values
        return [
            values[p] if h else None
            for p, h in zip(pos.tolist(), hit.tolist())
        ]

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if self._approx is None:
            return
        pos = self._rank(lo)
        if pos < 0 or self._keys[pos] < lo:
            pos += 1
        while pos < len(self._keys) and self._keys[pos] <= hi:
            self.perf.charge(Event.DRAM_SEQ)
            yield self._keys[pos], self._values[pos]
            pos += 1

    def scan_many(
        self, starts: Sequence[Key], count: int
    ) -> List[List[Tuple[Key, Value]]]:
        """Native batch scan: replayed positioning, sliced extraction.

        Fast path (exact-integer batches with numpy available): one
        ``searchsorted`` pair over the key array resolves every start's
        true rank and run begin, the LRS descent and leaf search ledgers
        are replayed in pure integer arithmetic
        (:meth:`LRSStructure.lookup_many_exact`,
        :func:`rank_border_charges`) without touching the key array, and
        the whole batch's charges are issued as four aggregate events.
        Totals stay bit-identical to sequential :meth:`scan` — the
        replays reproduce the scalar probe trajectories exactly — while
        skipping the per-probe ``charge`` calls and pointer-chasing list
        probes that dominate scalar positioning.  Inexact batches keep
        the per-start charged descent.
        """
        if self._approx is None:
            return [[] for _ in starts]
        limit = count if count > 0 else 1
        keys = self._keys
        values = self._values
        n = len(keys)
        out: List[List[Tuple[Key, Value]]] = []
        # Decide the whole fast path before charging anything, so a late
        # bail-out can never double-bill the routing descent.
        leaf_params = (
            self._approx.param_arrays() if self._keys_np is not None else None
        )
        qs = _vec.as_u64(starts) if leaf_params is not None else None
        seg_ids = (
            self._structure.lookup_many_exact(starts, qs=qs)
            if qs is not None and qs.size
            else None
        )
        if seg_ids is None:
            for start in starts:
                pos = self._rank(start)
                if pos < 0 or keys[pos] < start:
                    pos += 1
                take = min(limit, n - pos)
                if take > 0:
                    self.perf.charge(Event.DRAM_SEQ, take)
                    out.append(list(zip(keys[pos : pos + take],
                                        values[pos : pos + take])))
                else:
                    out.append([])
            return out
        np = _vec.np
        knp = self._keys_np
        astar = np.searchsorted(knp, qs, side="right").astype(np.int64) - 1
        guess = _vec.segment_guesses(leaf_params, seg_ids, qs.astype(np.int64))
        compare, hop, seq = accumulate_replay_charges(
            astar - guess,
            guess,
            astar,
            0,
            n - 1,
            rank_replay_charges,
            lambda g, a: rank_border_charges(n - 1, g, a),
        )
        # First index with key >= start, i.e. searchsorted(side="left").
        present = (knp[np.maximum(astar, 0)] == qs) & (astar >= 0)
        begin = astar + 1 - present
        takes = np.minimum(limit, n - begin)
        taken = int(takes.sum())
        # Materialized pair list, built lazily on the first batch scan:
        # extraction becomes a slice of consecutively allocated tuples
        # (pointer copies, zero allocation) instead of building every
        # pair from scratch per call.  Kept in sync by bulk_load and
        # set_value; value-equal to what sequential ``scan`` returns.
        pairs = self._pairs
        if pairs is None:
            pairs = self._pairs = list(zip(keys, values))
        out = [
            pairs[p : p + t]
            for p, t in zip(begin.tolist(), takes.tolist())
        ]
        m = len(starts)
        charge = self.perf.charge
        charge(Event.DRAM_HOP, m + hop)
        charge(Event.MODEL_EVAL, m)
        charge(Event.COMPARE, compare)
        charge(Event.DRAM_SEQ, seq + taken)
        return out

    def __len__(self) -> int:
        return len(self._keys)

    def set_value(self, key: Key, value: Any) -> bool:
        """Overwrite the payload of an existing key in place."""
        pos = self._rank(key)
        if pos >= 0 and self._keys[pos] == key:
            self.perf.charge(Event.DRAM_SEQ)
            self._values[pos] = value
            if self._values_np is not None:
                if type(value) is int and 0 <= value < 2**64:
                    self._values_np[pos] = value
                else:
                    self._values_np = None  # payload left the u64 domain
            if self._pairs is not None:
                self._pairs[pos] = (self._keys[pos], value)
            return True
        return False

    def items_list(self) -> List[Tuple[Key, Any]]:
        """All stored pairs in key order (used by the LSM merge)."""
        return list(zip(self._keys, self._values))

    def size_bytes(self) -> int:
        if self._approx is None:
            return 0
        return self._approx.leaf_count * 24 + self._structure.size_bytes()

    def stats(self) -> IndexStats:
        if self._approx is None:
            return IndexStats()
        return IndexStats(
            depth_avg=float(self._structure.height + 1),
            depth_max=self._structure.height + 1,
            leaf_count=self._approx.leaf_count,
            avg_error=self._approx.avg_error,
            max_error=self._approx.max_error,
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=False,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="recursive linear",
            leaf_node="linear",
            approximation="Opt-PLA",
            insertion="-",
            retraining="-",
        )


class DynamicPGMIndex(UpdatableIndex):
    """LSM (logarithmic method) of static PGM indexes, with tombstones."""

    name = "PGM"
    insert_is_upsert = False

    def __init__(
        self,
        eps: int = 16,
        eps_internal: int = 4,
        base_level_size: int = 64,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if base_level_size < 1:
            raise InvalidConfigurationError("base_level_size must be >= 1")
        self.eps = eps
        self.eps_internal = eps_internal
        self.base_level_size = base_level_size
        # levels[0] is a small sorted staging buffer; levels[i >= 1] hold
        # static PGM indexes of geometrically growing capacity.
        self._buffer: List[Tuple[Key, Any]] = []
        self._levels: List[Optional[PGMIndex]] = []
        self.retrain_stats = RetrainStats()

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._buffer = []
        self._levels = []
        if not items:
            return
        level = self._level_for(len(items))
        self._levels = [None] * level + [self._build_level(list(items))]

    def _level_for(self, n: int) -> int:
        level = 0
        cap = self.base_level_size
        while cap < n:
            cap *= 2
            level += 1
        return level

    def _level_capacity(self, i: int) -> int:
        return self.base_level_size * (1 << i)

    def _build_level(self, items: List[Tuple[Key, Any]]) -> PGMIndex:
        pgm = PGMIndex(self.eps, self.eps_internal, perf=self.perf)
        pgm.bulk_load(items)
        return pgm

    # -- mutation -----------------------------------------------------------

    def _put(self, key: Key, value: Any) -> None:
        # Stage into the level-0 buffer (sorted insert).
        mid = len(self._buffer) // 2
        keys = [k for k, _ in self._buffer]
        pos = (
            rank_search(keys, 0, len(keys) - 1, key, mid, self.perf) + 1
            if keys
            else 0
        )
        if pos > 0 and self._buffer[pos - 1][0] == key:
            self._buffer[pos - 1] = (key, value)
            return
        self.perf.charge(Event.KEY_MOVE, len(self._buffer) - pos)
        self._buffer.insert(pos, (key, value))
        if len(self._buffer) >= self.base_level_size:
            self._carry()

    def _carry(self) -> None:
        """Merge the buffer and every full prefix level into the first slot
        that can hold the result (the logarithmic method)."""
        mark = self.perf.begin()
        flushed = len(self._buffer)
        merged: List[Tuple[Key, Any]] = list(self._buffer)
        self._buffer = []
        target = 0
        while True:
            if target >= len(self._levels):
                self._levels.append(None)
            level = self._levels[target]
            if level is not None:
                merged = self._merge(merged, level.items_list())
                self._levels[target] = None
            if len(merged) <= self._level_capacity(target):
                break
            target += 1
        self.perf.charge(Event.RETRAIN_KEY, len(merged))
        self._levels[target] = self._build_level(merged)
        op = self.perf.end(mark)
        self.retrain_stats.record(len(merged), op.time_ns)
        self.perf.trace(
            EventType.BUFFER_FLUSH,
            index=self.name,
            leaf=0,
            keys=flushed,
            reason="staging_buffer_full",
        )
        self.perf.trace(
            EventType.RETRAIN,
            index=self.name,
            leaf=target,
            key_lo=merged[0][0] if merged else None,
            key_hi=merged[-1][0] if merged else None,
            keys=len(merged),
            count=target + 1,
            reason="lsm_carry",
            cost_ns=op.time_ns,
        )

    @staticmethod
    def _merge(
        newer: List[Tuple[Key, Any]], older: List[Tuple[Key, Any]]
    ) -> List[Tuple[Key, Any]]:
        """Two-way merge; on duplicate keys the newer value wins."""
        out: List[Tuple[Key, Any]] = []
        i = j = 0
        while i < len(newer) and j < len(older):
            kn, ko = newer[i][0], older[j][0]
            if kn < ko:
                out.append(newer[i])
                i += 1
            elif kn > ko:
                out.append(older[j])
                j += 1
            else:
                out.append(newer[i])
                i += 1
                j += 1
        out.extend(newer[i:])
        out.extend(older[j:])
        return out

    def insert(self, key: Key, value: Value) -> None:
        self._put(key, value)

    def insert_many(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Native batch insert: one merge into the buffer, one carry.

        Sequential ``insert`` pays a rank search plus a list shift per
        key and triggers a carry every ``base_level_size`` inserts; the
        batch path sorts the items once (stably, so the batch's last
        write of a duplicate key wins), merges them into the staging
        buffer in one newest-wins pass, and carries at most once.  The
        observable LSM state is the same — staged keys shadow deeper
        copies either way — while the event bill is the coarse aggregate
        of the one merge (see ``docs/performance.md``).
        """
        if len(items) <= 1:
            for key, value in items:
                self._put(key, value)
            return
        batch: List[Tuple[Key, Any]] = []
        for key, value in sorted(items, key=lambda kv: kv[0]):
            if batch and batch[-1][0] == key:
                batch[-1] = (key, value)  # in-batch duplicate: last wins
            else:
                batch.append((key, value))
        self.perf.charge(Event.DRAM_HOP)
        self.perf.charge(Event.COMPARE, len(batch) + len(self._buffer))
        self.perf.charge(Event.KEY_MOVE, len(batch) + len(self._buffer))
        self._buffer = self._merge(batch, self._buffer)
        if len(self._buffer) >= self.base_level_size:
            self._carry()

    def update(self, key: Key, value: Value) -> bool:
        """In-place payload overwrite: a value update does not change the
        key set, so it must not grow the LSM (it would otherwise shadow
        the old version and bloat every future merge)."""
        self.perf.charge(Event.DRAM_HOP)
        for i, (k, v) in enumerate(self._buffer):
            self.perf.charge(Event.COMPARE)
            if k == key:
                if v is _TOMBSTONE:
                    return False
                self._buffer[i] = (key, value)
                return True
            if k > key:
                break
        for level in self._levels:
            if level is not None and level.set_value(key, value):
                return True
        return False

    def delete(self, key: Key) -> bool:
        if self.get(key) is None:
            return False
        self._put(key, _TOMBSTONE)
        return True

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        self.perf.charge(Event.DRAM_HOP)
        for k, v in self._buffer:
            self.perf.charge(Event.COMPARE)
            if k == key:
                return None if v is _TOMBSTONE else v
            if k > key:
                break
        for level in self._levels:
            if level is None:
                continue
            hit = level.get(key)
            if hit is not None:
                return None if hit is _TOMBSTONE else hit
        return None

    def get_many(self, keys: Sequence[Key]) -> List[Optional[Value]]:
        """Batch get through the LSM: buffer first, then levels newest-first.

        Unresolved keys drain level by level, so each static PGM level
        answers one (shrinking) batch with its own vectorized
        ``get_many``; tombstones resolve a key to ``None`` and stop the
        drain, matching the scalar path's first-writer-wins semantics.
        """
        n = len(keys)
        out: List[Optional[Value]] = [None] * n
        unresolved = list(range(n))
        if self._buffer:
            self.perf.charge(Event.DRAM_HOP)
            self.perf.charge(Event.COMPARE, n)
            staged = dict(self._buffer)
            still: List[int] = []
            for i in unresolved:
                value = staged.get(keys[i], _MISSING)
                if value is _MISSING:
                    still.append(i)
                else:
                    out[i] = None if value is _TOMBSTONE else value
            unresolved = still
        for level in self._levels:
            if level is None or not unresolved:
                continue
            values = level.get_many([keys[i] for i in unresolved])
            still = []
            for i, value in zip(unresolved, values):
                if value is None:
                    still.append(i)
                else:
                    out[i] = None if value is _TOMBSTONE else value
            unresolved = still
        return out

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        sources: List[List[Tuple[Key, Any]]] = []
        if self._buffer:
            sources.append([(k, v) for k, v in self._buffer if lo <= k <= hi])
        for level in self._levels:
            if level is not None:
                sources.append(list(level.range(lo, hi)))
        merged: List[Tuple[Key, Any]] = []
        for source in sources:  # newest first: first writer wins
            merged = self._merge(merged, source)
        for k, v in merged:
            if v is not _TOMBSTONE:
                yield k, v

    def __len__(self) -> int:
        return sum(1 for _ in self.range(0, 2**64))

    # -- metadata -----------------------------------------------------------

    def items_count_raw(self) -> int:
        """Total stored pairs including shadowed ones and tombstones."""
        return len(self._buffer) + sum(
            len(level) for level in self._levels if level is not None
        )

    def size_bytes(self) -> int:
        total = len(self._buffer) * 16
        for level in self._levels:
            if level is not None:
                total += level.size_bytes()
        return total

    def stats(self) -> IndexStats:
        live = [lv for lv in self._levels if lv is not None]
        depth = max((lv.stats().depth_max for lv in live), default=0)
        return IndexStats(
            depth_avg=float(depth),
            depth_max=depth,
            leaf_count=sum(lv.stats().leaf_count for lv in live),
            retrain_count=self.retrain_stats.count,
            retrain_keys=self.retrain_stats.keys_retrained,
            retrain_time_ns=self.retrain_stats.time_ns,
            extra={"levels": len(self._levels)},
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="recursive linear",
            leaf_node="linear",
            approximation="Opt-PLA",
            insertion="offsite (LSM)",
            retraining="LSM merge",
        )
