"""Recursive Model Index (RMI) — the original read-only learned index.

A two-stage model tree built top-down: the root model routes a key to one
of ``branching`` second-stage models, and the chosen model predicts the
key's position in the sorted array.  Errors are *measured* after building
(RMI stores min/max error bounds per model) but are not bounded by
construction — which is why the paper finds RMI's tail latency "much
larger than PGM-Index" despite good average throughput.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa import fit_least_squares
from repro.core.insertion.base import rank_search
from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    SortedIndex,
    Value,
    check_sorted_unique,
)
from repro.perf.context import PerfContext
from repro.perf.events import Event

_MODEL_BYTES = 24
#: Build passes over the data: stage-1 fit, stage-1 routing, stage-2 fits.
_BUILD_PASSES = 3


class RMIIndex(SortedIndex):
    """Static two-stage RMI over a sorted key/value array."""

    name = "RMI"

    def __init__(
        self, branching: Optional[int] = None, perf: Optional[PerfContext] = None
    ):
        super().__init__(perf)
        self.branching = branching
        self._keys: List[Key] = []
        self._values: List[Any] = []
        self._root: Optional[LinearModel] = None
        self._models: List[LinearModel] = []
        self._errors: List[int] = []

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._keys = [k for k, _ in items]
        self._values = [v for _, v in items]
        n = len(items)
        if n == 0:
            self._root = None
            self._models = []
            self._errors = []
            return
        branches = self.branching or max(16, n // 32)
        branches = min(branches, n)
        self.perf.charge(Event.RETRAIN_KEY, n * _BUILD_PASSES)
        self.perf.charge(Event.ALLOC, branches + 1)

        slope, intercept = fit_least_squares(self._keys, self._keys[0])
        scale = branches / n
        self._root = LinearModel(slope * scale, intercept * scale, self._keys[0])

        buckets: List[List[int]] = [[] for _ in range(branches)]
        for idx, key in enumerate(self._keys):
            buckets[self._root.predict_clamped(key, branches)].append(idx)

        self._models = []
        self._errors = []
        prev_pos = 0
        for bucket in buckets:
            if bucket:
                chunk = [self._keys[i] for i in bucket]
                s, i0 = fit_least_squares(chunk, chunk[0])
                model = LinearModel(s, i0 + bucket[0], chunk[0])
                worst = 0
                for pos in bucket:
                    err = abs(model.predict_clamped(self._keys[pos], n) - pos)
                    if err > worst:
                        worst = err
                prev_pos = bucket[0]
            else:
                model = LinearModel(0.0, prev_pos, 0)
                worst = 0
            self._models.append(model)
            self._errors.append(worst)

    # -- queries ----------------------------------------------------------

    def _predict(self, key: Key) -> int:
        charge = self.perf.charge
        charge(Event.DRAM_HOP)
        charge(Event.MODEL_EVAL)
        bucket = self._root.predict_clamped(key, len(self._models))
        charge(Event.DRAM_HOP)
        charge(Event.MODEL_EVAL)
        return self._models[bucket].predict_clamped(key, len(self._keys))

    def _rank(self, key: Key) -> int:
        guess = self._predict(key)
        # First touch of the sorted key array is a third cache miss, on
        # top of the two model levels (Table II's depth accounting).
        self.perf.charge(Event.DRAM_HOP)
        return rank_search(self._keys, 0, len(self._keys) - 1, key, guess, self.perf)

    def get(self, key: Key) -> Optional[Value]:
        if self._root is None:
            return None
        pos = self._rank(key)
        if pos >= 0 and self._keys[pos] == key:
            self.perf.charge(Event.DRAM_SEQ)
            return self._values[pos]
        return None

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if self._root is None:
            return
        pos = self._rank(lo)
        if pos < 0 or self._keys[pos] < lo:
            pos += 1
        while pos < len(self._keys) and self._keys[pos] <= hi:
            self.perf.charge(Event.DRAM_SEQ)
            yield self._keys[pos], self._values[pos]
            pos += 1

    def __len__(self) -> int:
        return len(self._keys)

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        return (1 + len(self._models)) * _MODEL_BYTES + len(self._errors) * 4

    def stats(self) -> IndexStats:
        if not self._models:
            return IndexStats()
        populated = [e for e in self._errors]
        return IndexStats(
            depth_avg=2.0,
            depth_max=2,
            leaf_count=len(self._models),
            avg_error=sum(populated) / len(populated),
            max_error=max(populated),
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=False,
            bounded_error=False,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="linear model",
            leaf_node="linear model",
            approximation="machine learning (LSA stages)",
            insertion="-",
            retraining="-",
        )
