"""FINEdex: fine-grained learned index with level bins (paper ref [7]).

Li et al. (VLDB 2021) train error-bounded models over the data and attach
a small *level bin* at each insertion position; a full bin retrains only
the model it belongs to.  The design targets "scalable and concurrent
memory systems": because inserts touch a single bin and retraining is
per-model, writers rarely conflict — so, like XIndex, it carries the
concurrent-write capability.

Composed from the dimension framework: Opt-PLA training (FINEdex's
training also guarantees a maximum error), a Linear Recursive Structure
over the models, the :class:`FineGrainedStrategy` insertion dimension,
and retrain-one-node.
"""

from __future__ import annotations

from typing import Optional

from repro.core.approximation import OptPLAApproximator
from repro.core.composer import ComposedIndex
from repro.core.insertion.fine_bins import FineBinLeaf
from repro.core.insertion.strategies import InsertionStrategy, _dense_model_from
from repro.core.interfaces import Capabilities
from repro.core.retraining import SplitRetrainPolicy
from repro.core.structures import LRSStructure
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext


class FineGrainedStrategy(InsertionStrategy):
    """FINEdex's level-bin insertion as a 4th insertion-dimension option."""

    name = "fine-bins"

    def __init__(self, bin_capacity: int = 16, max_bin_fraction: float = 1.0):
        if bin_capacity < 1:
            raise InvalidConfigurationError("bin_capacity must be >= 1")
        self.bin_capacity = bin_capacity
        self.max_bin_fraction = max_bin_fraction

    def make_leaf(self, keys, values, segment, perf) -> FineBinLeaf:
        model, max_error = _dense_model_from(segment, keys)
        return FineBinLeaf(
            keys,
            values,
            model,
            max_error,
            self.bin_capacity,
            self.max_bin_fraction,
            perf,
        )


class FINEdexIndex(ComposedIndex):
    """FINEdex assembled from the four dimensions."""

    _build_passes = 3  # training + flattening + bin scaffolding

    def __init__(
        self,
        eps: int = 16,
        bin_capacity: int = 16,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(
            OptPLAApproximator(eps=eps),
            LRSStructure(eps=4),
            FineGrainedStrategy(bin_capacity=bin_capacity),
            SplitRetrainPolicy(),
            perf=perf,
        )
        self.name = "FINEdex"

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=True,
            inner_node="recursive linear",
            leaf_node="linear + level bins",
            approximation="error-bounded training",
            insertion="per-position level bins",
            retraining="retrain one model",
        )
