"""APEX: a persistent-memory learned index (Lu et al., VLDB 2022).

The paper's introduction lists APEX among the updatable learned indexes
but the evaluation keeps every index in DRAM (Viper's design).  APEX
makes the opposite bet: the index itself lives in persistent memory, so
a crash loses almost nothing — at the price of paying Optane latency on
the data-node hot path.  This implementation reproduces APEX's three key
mechanisms on our simulated hardware:

* **Probe-and-stash data nodes** — a key's model-predicted slot is probed
  only within one 256-byte PM block (16 slots); keys that would need a
  longer shift go to a per-node stash instead.  One block read answers
  most lookups.
* **Selective DRAM metadata** — per-slot fingerprints and occupancy
  bitmaps live in DRAM, so misses are filtered without touching PM.
* **Near-instant recovery** — the structure is already persistent; only
  the DRAM accelerators are rebuilt by a single streaming pass.

The extension benchmark (``bench_ext_apex.py``) runs the trade-off:
APEX reads slower than DRAM-resident ALEX but recovers orders of
magnitude faster.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.approximation.base import LinearModel
from repro.core.approximation.lsa import fit_least_squares
from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.core.retraining.base import RetrainStats
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.obs.trace import EventType
from repro.perf.events import Event

#: Slots per probe window == one 256-byte Optane block of 16-byte pairs.
_WINDOW = 16
_PAIR_BYTES = 16


class _DataNode:
    """A PM-resident gapped array probed one block at a time."""

    __slots__ = ("model", "slot_keys", "slot_values", "stash", "n_keys",
                 "first_key")

    def __init__(self, keys: Sequence[Key], values: Sequence[Any],
                 density: float):
        n = len(keys)
        slots = max(_WINDOW, int(n / density) + _WINDOW)
        slope, intercept = fit_least_squares(keys, keys[0])
        scale = slots / max(1, n)
        self.model = LinearModel(slope * scale, intercept * scale, keys[0])
        self.slot_keys: List[Optional[Key]] = [None] * slots
        self.slot_values: List[Any] = [None] * slots
        self.stash: Dict[Key, Any] = {}
        self.n_keys = 0
        self.first_key = keys[0]
        for key, value in zip(keys, values):
            self._place_initial(key, value)

    def _window_of(self, key: Key) -> int:
        predicted = self.model.predict_clamped(key, len(self.slot_keys))
        return (predicted // _WINDOW) * _WINDOW

    def _place_initial(self, key: Key, value: Any) -> None:
        base = self._window_of(key)
        for slot in range(base, min(base + _WINDOW, len(self.slot_keys))):
            if self.slot_keys[slot] is None:
                self.slot_keys[slot] = key
                self.slot_values[slot] = value
                self.n_keys += 1
                return
        self.stash[key] = value
        self.n_keys += 1


class APEXIndex(UpdatableIndex):
    """Persistent-memory learned index with probe-and-stash data nodes."""

    name = "APEX"

    def __init__(
        self,
        node_size: int = 4096,
        density: float = 0.8,
        stash_limit_fraction: float = 0.1,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if node_size < _WINDOW:
            raise InvalidConfigurationError(f"node_size must be >= {_WINDOW}")
        if not 0.0 < density <= 1.0:
            raise InvalidConfigurationError("density must be in (0, 1]")
        if not 0.0 < stash_limit_fraction <= 1.0:
            raise InvalidConfigurationError(
                "stash_limit_fraction must be in (0, 1]"
            )
        self.node_size = node_size
        self.density = density
        self.stash_limit_fraction = stash_limit_fraction
        self._nodes: List[_DataNode] = []
        self._fences: List[Key] = []
        self._n = 0
        self.retrain_stats = RetrainStats()

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._nodes = []
        self._fences = []
        self._n = len(items)
        if not items:
            return
        keys = [k for k, _ in items]
        values = [v for _, v in items]
        # Every key is written once to PM plus one model pass.
        self.perf.charge(Event.RETRAIN_KEY, len(items))
        self.perf.charge(
            Event.NVM_WRITE, (len(items) * _PAIR_BYTES + 255) // 256
        )
        for start in range(0, len(items), self.node_size):
            chunk_keys = keys[start : start + self.node_size]
            chunk_values = values[start : start + self.node_size]
            self._append_node(_DataNode(chunk_keys, chunk_values, self.density))

    def _append_node(self, node: _DataNode) -> None:
        self.perf.charge(Event.ALLOC)
        self._nodes.append(node)
        self._fences.append(node.first_key)

    def _route(self, key: Key) -> int:
        """Inner structure: DRAM-resident fence search (ALEX-style ATS,
        charged as one model hop + bounded correction)."""
        charge = self.perf.charge
        charge(Event.DRAM_HOP)
        charge(Event.MODEL_EVAL)
        return max(0, bisect_right(self._fences, key) - 1)

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        if not self._nodes:
            return None
        node = self._nodes[self._route(key)]
        charge = self.perf.charge
        charge(Event.MODEL_EVAL)
        base = node._window_of(key)
        # DRAM fingerprints filter the window before PM is touched.
        charge(Event.COMPARE, 2)
        charge(Event.NVM_READ)  # the one probe block
        for slot in range(base, min(base + _WINDOW, len(node.slot_keys))):
            if node.slot_keys[slot] == key:
                return node.slot_values[slot]
        if node.stash:
            charge(Event.HASH)
            charge(Event.DRAM_HOP)
            if key in node.stash:
                charge(Event.NVM_READ)
                return node.stash[key]
        return None

    def __len__(self) -> int:
        return self._n

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        if not self._nodes:
            self._append_node(_DataNode([key], [value], self.density))
            self._n = 1
            return
        node = self._nodes[self._route(key)]
        charge = self.perf.charge
        charge(Event.MODEL_EVAL)
        base = node._window_of(key)
        charge(Event.NVM_READ)  # read-modify the probe block
        free = -1
        for slot in range(base, min(base + _WINDOW, len(node.slot_keys))):
            existing = node.slot_keys[slot]
            if existing == key:
                node.slot_values[slot] = value
                charge(Event.NVM_WRITE)
                return
            if existing is None and free < 0:
                free = slot
        if key in node.stash:
            charge(Event.HASH)
            node.stash[key] = value
            charge(Event.NVM_WRITE)
            return
        if free >= 0:
            node.slot_keys[free] = key
            node.slot_values[free] = value
            charge(Event.NVM_WRITE)
        else:
            charge(Event.HASH)
            node.stash[key] = value
            charge(Event.NVM_WRITE)
        node.n_keys += 1
        self._n += 1
        if len(node.stash) > node.n_keys * self.stash_limit_fraction:
            self._smo(node)

    def _smo(self, node: _DataNode) -> None:
        """Structure modification: rebuild (and possibly split) the node."""
        mark = self.perf.begin()
        items = self._node_items(node, charge=False)
        keys = [k for k, _ in items]
        values = [v for _, v in items]
        self.perf.charge(Event.RETRAIN_KEY, len(keys))
        self.perf.charge(
            Event.NVM_WRITE, (len(keys) * _PAIR_BYTES + 255) // 256
        )
        idx = self._nodes.index(node)
        # Expansion rebuilds at a lower density so the probe windows have
        # fresh headroom; if even the expanded placement stashes too much
        # (the model no longer fits the keys) the node splits instead.
        expand_density = self.density * 0.75
        if len(keys) > self.node_size:
            replacements = None
        else:
            rebuilt = _DataNode(keys, values, expand_density)
            stash_budget = len(keys) * self.stash_limit_fraction / 2
            if len(rebuilt.stash) > stash_budget and len(keys) >= 2 * _WINDOW:
                replacements = None
            else:
                replacements = [rebuilt]
        if replacements is None:
            mid = len(keys) // 2
            replacements = [
                _DataNode(keys[:mid], values[:mid], expand_density),
                _DataNode(keys[mid:], values[mid:], expand_density),
            ]
        self.perf.charge(Event.ALLOC, len(replacements))
        self._nodes[idx : idx + 1] = replacements
        self._fences[idx : idx + 1] = [r.first_key for r in replacements]
        measured = self.perf.end(mark)
        self.retrain_stats.record(len(keys), measured.time_ns)
        if len(replacements) > 1:
            self.perf.trace(
                EventType.LEAF_SPLIT,
                index=self.name,
                leaf=idx,
                key_lo=keys[0],
                key_hi=keys[-1],
                keys=len(keys),
                count=len(replacements),
                reason="stash_overflow",
                cost_ns=measured.time_ns,
            )
        self.perf.trace(
            EventType.RETRAIN,
            index=self.name,
            leaf=idx,
            key_lo=keys[0],
            key_hi=keys[-1],
            keys=len(keys),
            count=len(replacements),
            reason="smo",
            cost_ns=measured.time_ns,
        )

    def delete(self, key: Key) -> bool:
        if not self._nodes:
            return False
        node = self._nodes[self._route(key)]
        charge = self.perf.charge
        charge(Event.MODEL_EVAL)
        base = node._window_of(key)
        charge(Event.NVM_READ)
        for slot in range(base, min(base + _WINDOW, len(node.slot_keys))):
            if node.slot_keys[slot] == key:
                node.slot_keys[slot] = None
                node.slot_values[slot] = None
                charge(Event.NVM_WRITE)
                node.n_keys -= 1
                self._n -= 1
                return True
        if key in node.stash:
            charge(Event.HASH)
            del node.stash[key]
            charge(Event.NVM_WRITE)
            node.n_keys -= 1
            self._n -= 1
            return True
        return False

    # -- iteration -----------------------------------------------------------

    def _node_items(self, node: _DataNode, charge: bool = True) -> List[Tuple[Key, Any]]:
        if charge:
            blocks = (len(node.slot_keys) * _PAIR_BYTES + 255) // 256
            self.perf.charge(Event.NVM_READ, max(1, blocks // 4))
        slot_items = [
            (k, node.slot_values[i])
            for i, k in enumerate(node.slot_keys)
            if k is not None
        ]
        merged = slot_items + list(node.stash.items())
        merged.sort()
        return merged

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if not self._nodes:
            return
        idx = max(0, bisect_right(self._fences, lo) - 1)
        self.perf.charge(Event.DRAM_HOP)
        while idx < len(self._nodes):
            node = self._nodes[idx]
            if node.first_key > hi and idx > 0:
                return
            for key, value in self._node_items(node):
                if key > hi:
                    return
                if key >= lo:
                    yield key, value
            idx += 1

    # -- recovery -----------------------------------------------------------

    def recover_metadata(self) -> float:
        """Rebuild the DRAM accelerators after a crash; the PM-resident
        structure itself needs nothing.  Returns simulated nanoseconds —
        APEX's headline: near-instant recovery."""
        mark = self.perf.begin()
        # One streaming pass to rebuild fingerprints/bitmaps: sequential
        # PM reads at bandwidth + a DRAM write per block.
        total_slots = sum(len(n.slot_keys) for n in self._nodes)
        blocks = max(1, (total_slots * _PAIR_BYTES) // 256)
        self.perf.charge(Event.NVM_READ, max(1, blocks // 32))
        self.perf.charge(Event.DRAM_SEQ, blocks)
        self.perf.charge(Event.ALLOC, len(self._nodes))
        return self.perf.end(mark).time_ns

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        # DRAM footprint: inner fences + per-node metadata (fingerprints
        # are 1 byte per slot).
        slots = sum(len(n.slot_keys) for n in self._nodes)
        return len(self._fences) * 16 + slots // 8 + slots

    def key_store_bytes(self) -> int:
        # The key store is in PM, not DRAM.
        return 0

    def stats(self) -> IndexStats:
        stash_total = sum(len(n.stash) for n in self._nodes)
        return IndexStats(
            depth_avg=2.0,
            depth_max=2,
            leaf_count=len(self._nodes),
            retrain_count=self.retrain_stats.count,
            retrain_keys=self.retrain_stats.keys_retrained,
            retrain_time_ns=self.retrain_stats.time_ns,
            extra={"stash_keys": stash_total},
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,  # probes are bounded to one block + stash
            concurrent_read=True,
            concurrent_write=False,
            inner_node="DRAM fence array",
            leaf_node="PM probe-and-stash",
            approximation="LSA+gap (PM blocks)",
            insertion="inplace (window) | stash",
            retraining="SMO rebuild/split",
        )
