"""RadixSpline — a single-pass error-bounded spline behind a radix table.

Lookup: extract the key's r-bit prefix, probe the radix table for the
spline-point interval, binary-search the (few) spline points there, then
interpolate between the surrounding knots and search the data within the
spline's error bound.  Build is a single pass, which is why RS recovers
fastest in Fig 16; the fixed prefix is why it collapses on FACE (Fig 11).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

import repro.core.approximation.vectorized as _vec
from repro.core.approximation.spline import SplineModel, build_spline
from repro.core.insertion.base import rank_search, replay_rank_search
from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    SortedIndex,
    Value,
    check_sorted_unique,
)
from repro.core.structures.base import (
    bounded_binary_search,
    replay_bounded_binary_search,
)
from repro.perf.context import PerfContext
from repro.perf.events import Event

_KNOT_BYTES = 16
_TABLE_ENTRY_BYTES = 4


class RadixSplineIndex(SortedIndex):
    """Static spline + radix table over a sorted key/value array."""

    name = "RS"

    def __init__(
        self,
        eps: int = 32,
        r_bits: Optional[int] = None,
        perf: Optional[PerfContext] = None,
    ):
        """``r_bits=None`` sizes the table once, at the *first* build, to
        ``log2(n) - 10`` (the paper's 18 bits for 200M keys targets ~2^10
        keys per prefix bucket).  Crucially the prefix width then stays
        fixed — "the r-bit prefixes do not change when the data increases"
        — which is exactly what degrades RS from 200M to 800M (§III-B)."""
        super().__init__(perf)
        self.eps = eps
        self.r_bits = r_bits
        self._keys: List[Key] = []
        self._values: List[Any] = []
        self._keys_np = None
        self._knots_np = None
        self._spline: Optional[SplineModel] = None
        self._table: List[int] = []
        self._min_key = 0
        self._shift = 0

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._keys = [k for k, _ in items]
        self._values = [v for _, v in items]
        self._keys_np = _vec.as_u64(self._keys)
        n = len(items)
        if n == 0:
            self._spline = None
            self._knots_np = None
            self._table = []
            return
        if self.r_bits is None:
            self.r_bits = max(6, min(18, n.bit_length() - 10))
        # One pass over the data: the defining property of RS's build.
        self.perf.charge(Event.RETRAIN_KEY, n)
        self._spline = build_spline(self._keys, self.eps)
        knot_keys = self._spline.knot_keys
        self._knots_np = _vec.as_u64(knot_keys)

        self._min_key = self._keys[0]
        key_range = self._keys[-1] - self._keys[0]
        self._shift = max(0, key_range.bit_length() - self.r_bits)
        slots = 1 << self.r_bits
        self.perf.charge(Event.ALLOC, 1 + len(knot_keys))
        table = [0] * (slots + 1)
        for idx, kk in enumerate(knot_keys):
            b = (kk - self._min_key) >> self._shift
            if b >= slots:
                b = slots - 1
            table[b + 1] = idx + 1
        for b in range(1, slots + 1):
            if table[b] < table[b - 1]:
                table[b] = table[b - 1]
        self._table = table

    # -- queries ----------------------------------------------------------

    def _bucket(self, key: Key) -> int:
        if key <= self._min_key:
            return 0
        b = (key - self._min_key) >> self._shift
        slots = 1 << self.r_bits
        return slots - 1 if b >= slots else b

    def _knot_index(self, key: Key) -> int:
        """Rightmost spline knot <= key, via radix table + binary search."""
        charge = self.perf.charge
        charge(Event.DRAM_HOP)  # radix table probe
        b = self._bucket(key)
        lo = max(0, self._table[b] - 1)
        hi = max(0, self._table[b + 1] - 1)
        charge(Event.DRAM_HOP)  # spline-point array
        return bounded_binary_search(
            self._spline.knot_keys, key, lo, hi, self.perf
        )

    def _rank(self, key: Key) -> int:
        spline = self._spline
        idx = self._knot_index(key)
        self.perf.charge(Event.MODEL_EVAL)
        if idx >= len(spline.knots) - 1:
            guess = spline.knots[-1][1]
        else:
            k0, p0 = spline.knots[idx]
            k1, p1 = spline.knots[idx + 1]
            if key <= k0:
                guess = p0
            else:
                guess = p0 + int((p1 - p0) * (key - k0) / (k1 - k0))
        self.perf.charge(Event.DRAM_HOP)  # first touch of the key array
        return rank_search(
            self._keys, 0, len(self._keys) - 1, key, guess, self.perf
        )

    def get(self, key: Key) -> Optional[Value]:
        if self._spline is None:
            return None
        pos = self._rank(key)
        if pos >= 0 and self._keys[pos] == key:
            self.perf.charge(Event.DRAM_SEQ)
            return self._values[pos]
        return None

    def get_many(self, keys: Sequence[Key]) -> List[Optional[Value]]:
        """One ``searchsorted`` over the key array for the whole batch.

        The radix probe + knot interpolation + bounded search per key is
        billed as one aggregate charge: a table probe and model eval per
        query plus one comparison per halving of the eps window.
        Results always equal ``[self.get(k) for k in keys]``.
        """
        if self._spline is None:
            return [None] * len(keys)
        qs = _vec.as_u64(keys) if self._keys_np is not None else None
        if qs is None:
            return [self.get(key) for key in keys]
        np = _vec.np
        pos = np.searchsorted(self._keys_np, qs, side="right").astype(np.int64) - 1
        hit = (pos >= 0) & (self._keys_np[np.maximum(pos, 0)] == qs)
        n = len(keys)
        window_steps = max(1, (2 * self.eps).bit_length())
        self.perf.charge(Event.DRAM_HOP, n * 2)
        self.perf.charge(Event.MODEL_EVAL, n)
        self.perf.charge(Event.COMPARE, n * window_steps)
        self.perf.charge(Event.DRAM_SEQ, int(hit.sum()))
        values = self._values
        return [
            values[p] if h else None
            for p, h in zip(pos.tolist(), hit.tolist())
        ]

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if self._spline is None:
            return
        pos = self._rank(lo)
        if pos < 0 or self._keys[pos] < lo:
            pos += 1
        while pos < len(self._keys) and self._keys[pos] <= hi:
            self.perf.charge(Event.DRAM_SEQ)
            yield self._keys[pos], self._values[pos]
            pos += 1

    def scan_many(
        self, starts: Sequence[Key], count: int
    ) -> List[List[Tuple[Key, Value]]]:
        """Native batch scan: replayed positioning, sliced extraction.

        Fast path (exact-integer batches with numpy available): one
        ``searchsorted`` over the knot keys and one pair over the data
        resolve every start's bounded-search rank, leaf rank, and run
        begin; :func:`replay_bounded_binary_search` and
        :func:`replay_rank_search` reproduce the scalar probe ledgers in
        pure integer arithmetic, and the batch's charges go out as four
        aggregate events — totals bit-identical to sequential
        :meth:`scan`.  Inexact batches keep the per-start charged loop.
        """
        if self._spline is None:
            return [[] for _ in starts]
        limit = count if count > 0 else 1
        keys = self._keys
        values = self._values
        n = len(keys)
        out: List[List[Tuple[Key, Value]]] = []
        qs = (
            _vec.as_u64(starts)
            if self._keys_np is not None and self._knots_np is not None
            else None
        )
        if qs is None:
            for start in starts:
                pos = self._rank(start)
                if pos < 0 or keys[pos] < start:
                    pos += 1
                take = min(limit, n - pos)
                if take > 0:
                    self.perf.charge(Event.DRAM_SEQ, take)
                    out.append(list(zip(keys[pos : pos + take],
                                        values[pos : pos + take])))
                else:
                    out.append([])
            return out
        np = _vec.np
        astar = (
            np.searchsorted(self._keys_np, qs, side="right").astype(np.int64)
            - 1
        ).tolist()
        kastar = (
            np.searchsorted(self._knots_np, qs, side="right").astype(np.int64)
            - 1
        ).tolist()
        begin = np.searchsorted(self._keys_np, qs, side="left").tolist()
        knots = self._spline.knots
        table = self._table
        last = len(knots) - 1
        compare = hop = seq = taken = 0
        for i, start in enumerate(starts):
            b = self._bucket(start)
            lo = max(0, table[b] - 1)
            hi = max(0, table[b + 1] - 1)
            c, h, s, idx = replay_bounded_binary_search(lo, hi, kastar[i])
            compare += c
            hop += h
            seq += s
            if idx >= last:
                guess = knots[-1][1]
            else:
                k0, p0 = knots[idx]
                k1, p1 = knots[idx + 1]
                if start <= k0:
                    guess = p0
                else:
                    guess = p0 + int((p1 - p0) * (start - k0) / (k1 - k0))
            c, h, s, _ = replay_rank_search(0, n - 1, guess, astar[i])
            compare += c
            hop += h
            seq += s
            pos = begin[i]
            take = min(limit, n - pos)
            if take > 0:
                taken += take
                out.append(list(zip(keys[pos : pos + take],
                                    values[pos : pos + take])))
            else:
                out.append([])
        m = len(starts)
        charge = self.perf.charge
        charge(Event.DRAM_HOP, m * 3 + hop)
        charge(Event.MODEL_EVAL, m)
        charge(Event.COMPARE, compare)
        charge(Event.DRAM_SEQ, seq + taken)
        return out

    def __len__(self) -> int:
        return len(self._keys)

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        knots = len(self._spline.knots) if self._spline else 0
        return knots * _KNOT_BYTES + len(self._table) * _TABLE_ENTRY_BYTES

    def stats(self) -> IndexStats:
        if self._spline is None:
            return IndexStats()
        sizes = [
            self._table[b + 1] - self._table[b]
            for b in range(len(self._table) - 1)
        ]
        return IndexStats(
            depth_avg=1.0,
            depth_max=1,
            leaf_count=max(1, len(self._spline.knots) - 1),
            avg_error=self.eps / 2.0,
            max_error=self.eps,
            extra={"max_bucket_knots": max(sizes) if sizes else 0},
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=False,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="radix table",
            leaf_node="spline",
            approximation="one-pass spline",
            insertion="-",
            retraining="-",
        )
