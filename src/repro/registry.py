"""The index registry: one pluggable table behind CLI, benchmarks, and tests.

The paper's methodology is running the *same* twelve-plus indexes through
the *same* Viper store under the *same* workloads (§III).  Everything that
needs "all the indexes" — ``python -m repro info``/``bench``, the
``benchmarks/bench_*`` figure modules, the contract test suite — consumes
this module instead of maintaining its own factory table, the shape that
SOSD and "Are Updatable Learned Indexes Ready?" credit for their
extensibility: registering an index *once* makes it reachable everywhere.

Vocabulary:

* **canonical name** — the display name used in result tables ("ALEX",
  "FITing-tree-buf").  Unique across the registry.
* **alias** — alternative lookup keys ("alex", "fiting-buf"); resolution
  is case-insensitive and treats ``_`` as ``-``.
* **category** — one of :data:`CATEGORIES`; which comparison class the
  index belongs to (Table I's grouping plus our extensions).
* **figure** — which paper comparison sets include the index
  (:data:`FIGURES`); an index may appear under a different label per
  figure (the read-only case calls the static PGM just "PGM").

Typical use::

    from repro.registry import resolve, specs, factories

    index = resolve("alex").build(perf)          # CLI-style lookup
    for spec in specs(category="traditional"):   # filtered iteration
        ...
    READ_CASE = factories(figure="read")         # name -> factory views
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.concurrency.spec import ConcurrencySpec
from repro.core.interfaces import Index, SortedIndex
from repro.errors import InvalidConfigurationError, ReproError
from repro.learned import (
    ALEXIndex,
    APEXIndex,
    DynamicPGMIndex,
    FINEdexIndex,
    FITingTree,
    LIPPIndex,
    PGMIndex,
    RadixSplineIndex,
    RMIIndex,
    XIndexIndex,
)
from repro.perf.context import PerfContext
from repro.traditional import CCEH, BPlusTree, BwTree, Masstree, SkipList, Wormhole

#: Comparison classes.  ``learned-readonly`` and ``learned-updatable``
#: mirror Table I's split; ``hash`` is CCEH (unsorted, so excluded from
#: range experiments); ``extension`` marks the beyond-the-paper indexes
#: (LIPP, APEX, FINEdex) that no paper figure includes.
CATEGORIES = (
    "learned-readonly",
    "learned-updatable",
    "traditional",
    "hash",
    "extension",
)

#: Paper comparison sets an index can belong to:
#:
#: * ``read``  — the read-only competitor set (Figs 10-12, Tables II/III).
#: * ``write`` — the updatable competitor set (Figs 13-15).
#: * ``ext``   — the beyond-the-paper extension benches (``bench_ext_*``).
FIGURES = ("read", "write", "ext")


def _normalize(name: str) -> str:
    return name.strip().casefold().replace("_", "-")


class UnknownIndexError(ReproError, KeyError):
    """Lookup of an index name/alias that no registered spec answers to."""


@dataclass(frozen=True)
class IndexSpec:
    """Everything the framework needs to know about one index."""

    #: Canonical display name, unique across the registry.
    name: str
    #: The index class (or any callable accepting ``perf=`` plus kwargs).
    factory: Callable[..., Index]
    #: One of :data:`CATEGORIES`.
    category: str
    #: Alternative lookup keys; the first one is the CLI name.
    aliases: Tuple[str, ...] = ()
    #: Figure tag -> display label used in that comparison set.
    figures: Mapping[str, str] = field(default_factory=dict)
    #: Keyword arguments the factory is called with unless overridden.
    default_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: One-line provenance/description shown in docs and ``info``.
    description: str = ""
    #: How the index behaves under concurrent threads (Table I's CC
    #: column); drives the multithread projection simulator.  The
    #: default — one global lock, no blocking retrains — is the
    #: conservative assumption for an index that ships no CC scheme.
    concurrency: ConcurrencySpec = field(default_factory=ConcurrencySpec)

    def __post_init__(self) -> None:
        if not isinstance(self.concurrency, ConcurrencySpec):
            raise InvalidConfigurationError(
                f"index {self.name!r}: concurrency must be a "
                f"ConcurrencySpec, got {type(self.concurrency).__name__}"
            )
        if self.category not in CATEGORIES:
            raise InvalidConfigurationError(
                f"index {self.name!r}: unknown category {self.category!r}; "
                f"one of {CATEGORIES}"
            )
        for figure in self.figures:
            if figure not in FIGURES:
                raise InvalidConfigurationError(
                    f"index {self.name!r}: unknown figure {figure!r}; "
                    f"one of {FIGURES}"
                )

    @property
    def cli_name(self) -> str:
        """The name ``python -m repro bench --index`` advertises."""
        return self.aliases[0] if self.aliases else _normalize(self.name)

    def label_in(self, figure: str) -> str:
        """Display label of this index inside ``figure`` result tables."""
        return self.figures.get(figure, self.name)

    def build(self, perf: Optional[PerfContext] = None, **overrides: Any) -> Index:
        """Construct the index on ``perf`` (kwargs override the defaults)."""
        kwargs = {**self.default_kwargs, **overrides}
        return self.factory(perf=perf, **kwargs)

    #: Specs are callable with the ``factory(perf)`` shape every pre-registry
    #: call site used, so a spec drops into any ``Dict[str, IndexFactory]``.
    __call__ = build


_SPECS: Dict[str, IndexSpec] = {}
_ALIASES: Dict[str, str] = {}


def register(spec: Optional[IndexSpec] = None, /, **kwargs: Any):
    """Register an :class:`IndexSpec` (or build one from kwargs).

    Three forms::

        register(IndexSpec(...))                      # explicit spec

        register(name="Frob", factory=FrobIndex,      # keyword form
                 category="extension", aliases=("frob",))

        @register(name="Frob", category="extension")  # class decorator
        class FrobIndex(UpdatableIndex): ...

    Returns the spec (or, as a decorator, the class).
    """
    if spec is not None:
        if kwargs:
            raise InvalidConfigurationError(
                "register() takes an IndexSpec or keyword arguments, not both"
            )
        return _register(spec)
    if "factory" in kwargs:
        return _register(IndexSpec(**kwargs))

    def decorate(cls: Callable[..., Index]):
        _register(IndexSpec(factory=cls, **kwargs))
        return cls

    return decorate


def _register(spec: IndexSpec) -> IndexSpec:
    keys = {_normalize(spec.name), *(_normalize(a) for a in spec.aliases)}
    for key in keys:
        owner = _ALIASES.get(key)
        if owner is not None and owner != spec.name:
            raise InvalidConfigurationError(
                f"index name/alias {key!r} of {spec.name!r} is already "
                f"registered by {owner!r}"
            )
    if spec.name in _SPECS:
        raise InvalidConfigurationError(f"index {spec.name!r} already registered")
    _SPECS[spec.name] = spec
    for key in keys:
        _ALIASES[key] = spec.name
    return spec


def unregister(name: str) -> None:
    """Remove a spec (mainly for tests registering throwaway indexes)."""
    spec = resolve(name)
    del _SPECS[spec.name]
    for key, owner in list(_ALIASES.items()):
        if owner == spec.name:
            del _ALIASES[key]


def resolve(name: str) -> IndexSpec:
    """Look up a spec by canonical name or any alias (case-insensitive)."""
    canonical = _ALIASES.get(_normalize(name))
    if canonical is None:
        raise UnknownIndexError(
            f"unknown index {name!r}; one of {sorted(_ALIASES)}"
        )
    return _SPECS[canonical]


def specs(
    category: Union[str, Iterable[str], None] = None,
    figure: Optional[str] = None,
) -> List[IndexSpec]:
    """Registered specs, in registration order, optionally filtered.

    ``category`` is one of :data:`CATEGORIES` or an iterable of them;
    ``figure`` keeps only indexes belonging to that comparison set.
    """
    if isinstance(category, str):
        category = (category,)
    if category is not None:
        category = tuple(category)
        for cat in category:
            if cat not in CATEGORIES:
                raise InvalidConfigurationError(
                    f"unknown category {cat!r}; one of {CATEGORIES}"
                )
    if figure is not None and figure not in FIGURES:
        raise InvalidConfigurationError(
            f"unknown figure {figure!r}; one of {FIGURES}"
        )
    out = []
    for spec in _SPECS.values():
        if category is not None and spec.category not in category:
            continue
        if figure is not None and figure not in spec.figures:
            continue
        out.append(spec)
    return out


def has_native_batch(index: Union[Index, type]) -> bool:
    """Whether ``index`` overrides the per-key ``Index.get_many`` fallback.

    The batch contract holds either way; this only distinguishes a real
    vectorized path from the default loop, so benchmarks and the
    perf-smoke gate can hold native implementations to "faster than
    scalar" without penalising fallback indexes for list bookkeeping.
    """
    cls = index if isinstance(index, type) else type(index)
    return cls.get_many is not Index.get_many


def has_native_batch_insert(index: Union[Index, type]) -> bool:
    """Whether ``index`` overrides the per-key ``Index.insert_many`` fallback.

    The write-batch counterpart of :func:`has_native_batch`: the
    ``insert_many`` contract (observably equivalent to sequential
    inserts, last write wins on duplicates) holds either way, this only
    tells benchmarks which indexes have a real bulk write path to hold
    to "faster than scalar".
    """
    cls = index if isinstance(index, type) else type(index)
    return cls.insert_many is not Index.insert_many


def has_native_batch_upsert(index: Union[Index, type]) -> bool:
    """Whether ``index`` overrides the per-key ``Index.upsert_many`` fallback.

    A native ``upsert_many`` resolves each item's old value in the same
    descent that writes the new one, so ``ViperStore.put_many`` can skip
    its separate ``get_many`` probe pass for such indexes.
    """
    cls = index if isinstance(index, type) else type(index)
    return cls.upsert_many is not Index.upsert_many


def has_native_batch_scan(index: Union[Index, type]) -> bool:
    """Whether ``index`` overrides the per-start ``SortedIndex.scan_many``
    fallback.

    The scan-batch counterpart of :func:`has_native_batch`: the
    ``scan_many`` contract (tuples, order, and simulated charges
    bit-identical to sequential ``scan`` calls) holds either way; this
    only tells benchmarks which sorted indexes have a real vectorized
    range-extraction path to hold to "faster than scalar".  Always False
    for unsorted (hash) indexes, which have no scan at all.
    """
    cls = index if isinstance(index, type) else type(index)
    return (
        issubclass(cls, SortedIndex)
        and cls.scan_many is not SortedIndex.scan_many
    )


def _bound_factory(
    spec: IndexSpec, overrides: Mapping[str, Any]
) -> Callable[..., Index]:
    def make(perf: Optional[PerfContext] = None, **kwargs: Any) -> Index:
        return spec.build(perf, **{**overrides, **kwargs})

    make.spec = spec  # type: ignore[attr-defined]
    return make


def factories(
    figure: Optional[str] = None,
    category: Union[str, Iterable[str], None] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Dict[str, Callable[..., Index]]:
    """A ``label -> factory(perf)`` view over :func:`specs`.

    Labels come from the figure membership when ``figure`` is given
    (``spec.label_in(figure)``), else the canonical name.  ``overrides``
    maps canonical names to extra constructor kwargs — how a benchmark
    pins tuning (e.g. RS's fixed prefix width) without a private table.
    """
    overrides = overrides or {}
    view: Dict[str, Callable[..., Index]] = {}
    for spec in specs(category=category, figure=figure):
        label = spec.label_in(figure) if figure is not None else spec.name
        if label in view:
            raise InvalidConfigurationError(
                f"duplicate label {label!r} in factories(figure={figure!r}, "
                f"category={category!r})"
            )
        view[label] = _bound_factory(spec, overrides.get(spec.name, {}))
    return view


# --------------------------------------------------------------- built-ins
#
# Registration order is presentation order: it fixes row order in
# ``python -m repro info`` and in every figure generated from a
# ``factories(...)`` view, matching the paper's table layout.

register(IndexSpec(
    name="RMI",
    factory=RMIIndex,
    category="learned-readonly",
    aliases=("rmi",),
    figures={"read": "RMI"},
    description="two-stage recursive model index (Kraska et al.)",
    concurrency=ConcurrencySpec(
        scheme="lock_free",
        notes="static after build; lookups touch immutable models",
    ),
))
register(IndexSpec(
    name="RS",
    factory=RadixSplineIndex,
    category="learned-readonly",
    aliases=("rs", "radix-spline", "radixspline"),
    figures={"read": "RS"},
    description="radix table over a one-pass spline (Kipf et al.)",
    concurrency=ConcurrencySpec(
        scheme="lock_free",
        notes="static after build; spline and radix table are immutable",
    ),
))
register(IndexSpec(
    name="FITing-tree-inp",
    factory=FITingTree,
    category="learned-updatable",
    aliases=("fiting-inp", "fiting-tree-inp"),
    figures={"write": "FITing-tree-inp"},
    default_kwargs={"strategy": "inplace"},
    description="FITing-tree with in-place leaf inserts",
    concurrency=ConcurrencySpec(
        scheme="global_lock",
        notes="no CC scheme published; whole tree behind one rwlock",
    ),
))
register(IndexSpec(
    name="FITing-tree-buf",
    factory=FITingTree,
    category="learned-updatable",
    aliases=("fiting-buf", "fiting-tree-buf", "fiting-tree"),
    figures={"read": "FITing-tree", "write": "FITing-tree-buf"},
    default_kwargs={"strategy": "buffer"},
    description="FITing-tree with per-leaf offsite insert buffers",
    concurrency=ConcurrencySpec(
        scheme="global_lock",
        notes="no CC scheme published; whole tree behind one rwlock",
    ),
))
register(IndexSpec(
    name="PGM",
    factory=DynamicPGMIndex,
    category="learned-updatable",
    aliases=("pgm", "pgm-dynamic", "dynamic-pgm"),
    figures={"write": "PGM"},
    description="LSM of bounded-error PGM levels (Ferragina & Vinciguerra)",
    concurrency=ConcurrencySpec(
        scheme="global_lock",
        notes="LSM carries merge into fresh levels off the read path",
    ),
))
register(IndexSpec(
    name="PGM-static",
    factory=PGMIndex,
    category="learned-readonly",
    aliases=("pgm-static",),
    figures={"read": "PGM"},
    description="static bounded-error piecewise-linear PGM",
    concurrency=ConcurrencySpec(
        scheme="lock_free",
        notes="static after build",
    ),
))
register(IndexSpec(
    name="ALEX",
    factory=ALEXIndex,
    category="learned-updatable",
    aliases=("alex",),
    figures={"read": "ALEX", "write": "ALEX"},
    description="gapped-array adaptive learned index (Ding et al.)",
    concurrency=ConcurrencySpec(
        scheme="global_lock",
        retrain_blocking=True,
        notes="ships no CC (Table I); global rwlock, node rebuilds block",
    ),
))
register(IndexSpec(
    name="XIndex",
    factory=XIndexIndex,
    category="learned-updatable",
    aliases=("xindex",),
    figures={"read": "XIndex", "write": "XIndex"},
    description="RMI root over groups with delta buffers (Tang et al.)",
    concurrency=ConcurrencySpec(
        scheme="fine_grained_latch",
        latch_domains=64,
        retrain_blocking=True,
        notes="per-group latches; group merge-retrain blocks writers",
    ),
))
register(IndexSpec(
    name="BTree",
    factory=BPlusTree,
    category="traditional",
    aliases=("btree", "b+tree", "bplustree"),
    figures={"read": "BTree", "write": "BTree"},
    description="cache-conscious B+tree baseline",
    concurrency=ConcurrencySpec(
        scheme="fine_grained_latch",
        latch_domains=256,
        notes="latch crabbing over nodes",
    ),
))
register(IndexSpec(
    name="Skiplist",
    factory=SkipList,
    category="traditional",
    aliases=("skiplist",),
    figures={"read": "Skiplist", "write": "Skiplist"},
    description="deterministic-seeded probabilistic skip list",
    concurrency=ConcurrencySpec(
        scheme="lock_free",
        notes="CAS tower links; conflicts only on the same node",
    ),
))
register(IndexSpec(
    name="Masstree",
    factory=Masstree,
    category="traditional",
    aliases=("masstree",),
    figures={"read": "Masstree", "write": "Masstree"},
    description="trie of B+trees over 8-byte key slices",
    concurrency=ConcurrencySpec(
        scheme="optimistic_read",
        latch_domains=256,
        retry_base=0.15,
        notes="version-validated reads, per-node write latches",
    ),
))
register(IndexSpec(
    name="Bwtree",
    factory=BwTree,
    category="traditional",
    aliases=("bwtree", "bw-tree"),
    figures={"read": "Bwtree", "write": "Bwtree"},
    description="delta-chain Bw-tree with consolidation",
    concurrency=ConcurrencySpec(
        scheme="optimistic_read",
        latch_domains=256,
        retry_base=0.10,
        notes="latch-free delta CAS on the mapping table",
    ),
))
register(IndexSpec(
    name="Wormhole",
    factory=Wormhole,
    category="traditional",
    aliases=("wormhole",),
    figures={"read": "Wormhole", "write": "Wormhole"},
    description="hashed trie over sorted leaf lists",
    concurrency=ConcurrencySpec(
        scheme="fine_grained_latch",
        latch_domains=256,
        notes="per-leaf rwlocks under the hashed anchor trie",
    ),
))
register(IndexSpec(
    name="CCEH",
    factory=CCEH,
    category="hash",
    aliases=("cceh",),
    figures={"read": "CCEH", "write": "CCEH"},
    description="cacheline-conscious extendible hashing (unsorted)",
    concurrency=ConcurrencySpec(
        scheme="fine_grained_latch",
        latch_domains=1024,
        notes="contends per segment; directory grows the domain count",
    ),
))
register(IndexSpec(
    name="LIPP",
    factory=LIPPIndex,
    category="extension",
    aliases=("lipp",),
    figures={"ext": "LIPP"},
    description="precise-position learned index (the paper's §V-B call)",
    concurrency=ConcurrencySpec(
        scheme="global_lock",
        retrain_blocking=True,
        notes="no CC scheme; precise-position subtree rebuilds block",
    ),
))
register(IndexSpec(
    name="APEX",
    factory=APEXIndex,
    category="extension",
    aliases=("apex",),
    figures={"ext": "APEX"},
    description="PM-resident learned index, metadata-only recovery",
    concurrency=ConcurrencySpec(
        scheme="fine_grained_latch",
        latch_domains=256,
        notes="per-node locks with PM-aware SMO protocol",
    ),
))
register(IndexSpec(
    name="FINEdex",
    factory=FINEdexIndex,
    category="extension",
    aliases=("finedex",),
    figures={"ext": "FINEdex"},
    description="level-bin fine-grained learned index",
    concurrency=ConcurrencySpec(
        scheme="fine_grained_latch",
        latch_domains=128,
        retrain_blocking=True,
        notes="level-bin latches; level retraining blocks its bins",
    ),
))

__all__ = [
    "CATEGORIES",
    "FIGURES",
    "IndexSpec",
    "UnknownIndexError",
    "factories",
    "has_native_batch",
    "has_native_batch_insert",
    "has_native_batch_scan",
    "has_native_batch_upsert",
    "register",
    "resolve",
    "specs",
    "unregister",
]
