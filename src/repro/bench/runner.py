"""Measurement loops: run an operation stream, record simulated latencies."""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.core.interfaces import Index
from repro.perf.bandwidth import BandwidthModel
from repro.perf.context import PerfContext
from repro.perf.latency import LatencyRecorder
from repro.store.viper import ViperStore
from repro.workloads.ycsb import Operation, OpKind


def run_index_ops(
    index: Index, ops: Iterable[Operation], perf: PerfContext
) -> Tuple[LatencyRecorder, float]:
    """Execute ``ops`` against a bare index; returns (latencies, bytes/op)."""
    recorder = LatencyRecorder()
    total_bytes = 0
    for op in ops:
        mark = perf.begin()
        if op.kind is OpKind.READ:
            index.get(op.key)
        elif op.kind is OpKind.UPDATE or op.kind is OpKind.INSERT:
            index.insert(op.key, op.key)
        elif op.kind is OpKind.RMW:
            index.get(op.key)
            index.insert(op.key, op.key)
        elif op.kind is OpKind.SCAN:
            index.scan(op.key, op.scan_length)
        measured = perf.end(mark)
        recorder.record(measured.time_ns)
        total_bytes += measured.bytes
    bytes_per_op = total_bytes / max(1, len(recorder))
    return recorder, bytes_per_op


def run_store_ops(
    store: ViperStore, ops: Iterable[Operation], perf: PerfContext
) -> Tuple[LatencyRecorder, float]:
    """Execute ``ops`` end-to-end through the Viper store."""
    recorder = LatencyRecorder()
    total_bytes = 0
    for op in ops:
        mark = perf.begin()
        if op.kind is OpKind.READ:
            store.get(op.key)
        elif op.kind is OpKind.UPDATE or op.kind is OpKind.INSERT:
            store.put(op.key, op.key)
        elif op.kind is OpKind.RMW:
            value = store.get(op.key)
            store.put(op.key, value)
        elif op.kind is OpKind.SCAN:
            store.scan(op.key, op.scan_length)
        measured = perf.end(mark)
        recorder.record(measured.time_ns)
        total_bytes += measured.bytes
    bytes_per_op = total_bytes / max(1, len(recorder))
    return recorder, bytes_per_op


def measure_build(
    build: Callable[[], None], perf: PerfContext
) -> float:
    """Simulated nanoseconds taken by ``build()`` (bulk load / recovery)."""
    mark = perf.begin()
    build()
    return perf.end(mark).time_ns


def thread_scaling(
    mean_ns: float,
    p999_ns: float,
    bytes_per_op: float,
    threads: Sequence[int],
    bandwidth: BandwidthModel = BandwidthModel(),
) -> List[dict]:
    """Project single-thread results onto N threads under a shared
    memory-bandwidth pool (Figs 12 and 14)."""
    rows = []
    for t in threads:
        rows.append(
            {
                "threads": t,
                "throughput_mops": bandwidth.throughput_mops(
                    t, bytes_per_op, mean_ns
                ),
                "p999_ns": bandwidth.tail_latency_ns(
                    t, bytes_per_op, mean_ns, p999_ns
                ),
                "slowdown": bandwidth.slowdown(t, bytes_per_op, mean_ns),
            }
        )
    return rows
