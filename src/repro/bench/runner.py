"""Measurement loop: run an operation stream, record simulated latencies.

One executor serves every target.  A small adapter protocol
(:class:`OpTarget`) presents bare indexes and the Viper store uniformly;
an ``OpKind -> handler`` dispatch table maps each workload operation onto
adapter calls.  Adding an execution backend (a sharded store, a remote
stub) means writing one adapter — the workload semantics, the capability
checks, and the per-kind latency accounting are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.interfaces import Index, SortedIndex
from repro.errors import UnsupportedOperationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.perf.bandwidth import BandwidthModel
from repro.perf.breakdown import Profiler
from repro.perf.context import PerfContext
from repro.perf.latency import LatencyRecorder
from repro.store.viper import ViperStore
from repro.workloads.ycsb import Operation, OpKind


class OpTarget:
    """What the executor needs from an execution backend.

    Adapters translate the uniform get/put/scan surface onto a concrete
    target.  ``supports_scan`` gates SCAN dispatch so unsorted targets
    fail with :class:`UnsupportedOperationError` — never ``AttributeError``.
    """

    #: Display name of whatever is being driven.
    name: str = "target"
    #: Whether SCAN operations can be served (sorted order available).
    supports_scan: bool = False

    def get(self, key: int):
        raise NotImplementedError

    def get_many(self, keys: Sequence[int]):
        """Batch point lookup; targets with a native fast path override."""
        return [self.get(key) for key in keys]

    def put(self, key: int, value) -> None:
        raise NotImplementedError

    def put_many(self, items: Sequence[Tuple[int, int]]) -> None:
        """Batch write; targets with a native fast path override."""
        for key, value in items:
            self.put(key, value)

    def scan(self, key: int, count: int):
        raise NotImplementedError

    def scan_many(self, starts: Sequence[int], count: int):
        """Batch scan; targets with a native fast path override."""
        return [self.scan(start, count) for start in starts]


class IndexAdapter(OpTarget):
    """Drive a bare :class:`Index` (no store, values live in the index)."""

    def __init__(self, index: Index):
        self.index = index
        self.name = index.name
        self.supports_scan = isinstance(index, SortedIndex)

    def get(self, key: int):
        return self.index.get(key)

    def get_many(self, keys: Sequence[int]):
        return self.index.get_many(keys)

    def put(self, key: int, value) -> None:
        self.index.insert(key, value)

    def put_many(self, items: Sequence[Tuple[int, int]]) -> None:
        self.index.insert_many(items)

    def scan(self, key: int, count: int):
        return self.index.scan(key, count)

    def scan_many(self, starts: Sequence[int], count: int):
        return self.index.scan_many(starts, count)


class StoreAdapter(OpTarget):
    """Drive operations end-to-end through a :class:`ViperStore`."""

    def __init__(self, store: ViperStore):
        self.store = store
        self.name = f"viper[{store.index.name}]"
        self.supports_scan = isinstance(store.index, SortedIndex)

    def get(self, key: int):
        return self.store.get(key)

    def get_many(self, keys: Sequence[int]):
        return self.store.get_many(keys)

    def put(self, key: int, value) -> None:
        self.store.put(key, value)

    def put_many(self, items: Sequence[Tuple[int, int]]) -> None:
        self.store.put_many(list(items))

    def scan(self, key: int, count: int):
        return self.store.scan(key, count)

    def scan_many(self, starts: Sequence[int], count: int):
        return self.store.scan_many(starts, count)


# ------------------------------------------------------------- dispatch

def _do_read(target: OpTarget, op: Operation) -> None:
    target.get(op.key)


def _do_write(target: OpTarget, op: Operation) -> None:
    target.put(op.key, op.key)


def _do_rmw(target: OpTarget, op: Operation) -> None:
    value = target.get(op.key)
    # A not-yet-inserted key reads None; writing that back would persist
    # None as the value.  YCSB's RMW on a missing key writes the fresh
    # record instead.
    target.put(op.key, value if value is not None else op.key)


def _do_scan(target: OpTarget, op: Operation) -> None:
    if not target.supports_scan:
        raise UnsupportedOperationError(
            f"{target.name} cannot serve ordered scans"
        )
    target.scan(op.key, op.scan_length)


#: The one place operation semantics live: OpKind -> handler.
OP_HANDLERS: Dict[OpKind, Callable[[OpTarget, Operation], None]] = {
    OpKind.READ: _do_read,
    OpKind.UPDATE: _do_write,
    OpKind.INSERT: _do_write,
    OpKind.RMW: _do_rmw,
    OpKind.SCAN: _do_scan,
}


@dataclass
class ExecutionResult:
    """Everything one executor pass measures."""

    recorder: LatencyRecorder
    bytes_per_op: float
    #: Latency breakdown per operation kind (only kinds that occurred).
    by_kind: Dict[OpKind, LatencyRecorder] = field(default_factory=dict)

    def kind_summary(self) -> List[Tuple[str, int, float, float]]:
        """Rows of ``(kind, ops, mean ns, p99.9 ns)`` sorted by time share."""
        rows = [
            (kind.value, len(rec), rec.mean(), rec.p999())
            for kind, rec in self.by_kind.items()
        ]
        rows.sort(key=lambda r: -(r[1] * r[2]))
        return rows

    #: ``recorder, bytes_per_op = execute_ops(...)`` keeps working at the
    #: pre-refactor call sites.
    def __iter__(self):
        return iter((self.recorder, self.bytes_per_op))


def execute_ops(
    target: OpTarget,
    ops: Iterable[Operation],
    perf: PerfContext,
    profiler: Optional[Profiler] = None,
    batch_size: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[ProgressReporter] = None,
) -> ExecutionResult:
    """Execute ``ops`` against ``target``, measuring each on ``perf``.

    Pass a :class:`~repro.perf.breakdown.Profiler` to additionally
    attribute every operation's hardware events by kind ("what is in my
    p99.9?" — see ``docs/cost_model.md``).

    ``batch_size > 1`` enables batch dispatch: runs of *consecutive
    same-kind* READ, UPDATE, INSERT, or SCAN operations are grouped (up
    to ``batch_size``) and served with a single ``target.get_many`` /
    ``target.put_many`` / ``target.scan_many`` call; a kind change (or
    an RMW, which stays scalar) flushes the pending batch so the
    workload's interleaving semantics are preserved.  SCAN runs batch
    only while consecutive ops share the same ``scan_length`` (YCSB
    draws it per op) and only on scan-capable targets — unsorted
    targets keep the scalar path so they still fail with
    :class:`UnsupportedOperationError`.  Each batched op is recorded at the batch's
    amortised per-op latency, so recorder lengths and bytes/op stay
    comparable to ``batch_size=1``.  Batched measurements reach the
    profiler with ``ops=len(batch)`` so its per-op attribution splits
    the coarse charge across the run.

    ``metrics`` merges the run's per-kind counts, bytes, and latency
    histograms into a :class:`~repro.obs.metrics.MetricsRegistry` after
    the loop (zero per-op overhead); ``progress`` emits throttled live
    progress/throughput lines while the loop runs.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    recorder = LatencyRecorder()
    by_kind: Dict[OpKind, LatencyRecorder] = {}
    total_bytes = 0

    batch: List[Operation] = []
    batch_kind: Optional[OpKind] = None

    def flush_batch() -> int:
        nonlocal batch_kind
        mark = perf.begin()
        if batch_kind is OpKind.READ:
            target.get_many([op.key for op in batch])
        elif batch_kind is OpKind.SCAN:
            target.scan_many([op.key for op in batch], batch[0].scan_length)
        else:
            # Mirrors _do_write: the key doubles as the value.
            target.put_many([(op.key, op.key) for op in batch])
        measured = perf.end(mark)
        per_op_ns = measured.time_ns / len(batch)
        kind_rec = by_kind.get(batch_kind)
        if kind_rec is None:
            kind_rec = by_kind[batch_kind] = LatencyRecorder()
        for _ in batch:
            recorder.record(per_op_ns)
            kind_rec.record(per_op_ns)
        if profiler is not None:
            profiler.record_measured(batch_kind.value, measured, ops=len(batch))
        batch.clear()
        batch_kind = None
        return measured.bytes

    _BATCHABLE = (OpKind.READ, OpKind.UPDATE, OpKind.INSERT)

    for op in ops:
        batchable = op.kind in _BATCHABLE or (
            op.kind is OpKind.SCAN and target.supports_scan
        )
        if batch_size > 1 and batchable:
            if batch and (
                batch_kind is not op.kind
                or (
                    op.kind is OpKind.SCAN
                    and op.scan_length != batch[0].scan_length
                )
            ):
                total_bytes += flush_batch()
            batch.append(op)
            batch_kind = op.kind
            if len(batch) >= batch_size:
                total_bytes += flush_batch()
                if progress is not None:
                    progress.maybe(len(recorder), perf)
            continue
        if batch:
            total_bytes += flush_batch()
        handler = OP_HANDLERS[op.kind]
        mark = perf.begin()
        handler(target, op)
        measured = perf.end(mark)
        recorder.record(measured.time_ns)
        kind_rec = by_kind.get(op.kind)
        if kind_rec is None:
            kind_rec = by_kind[op.kind] = LatencyRecorder()
        kind_rec.record(measured.time_ns)
        total_bytes += measured.bytes
        if profiler is not None:
            profiler.record_measured(op.kind.value, measured)
        if progress is not None:
            progress.maybe(len(recorder), perf)
    if batch:
        total_bytes += flush_batch()
    if progress is not None:
        progress.finish(len(recorder), perf)
    if metrics is not None:
        metrics.counter("repro_bytes_total", target=target.name).inc(total_bytes)
        for kind, kind_rec in by_kind.items():
            metrics.counter(
                "repro_ops_total", target=target.name, kind=kind.value
            ).inc(len(kind_rec))
            metrics.histogram(
                "repro_op_latency_ns", target=target.name, kind=kind.value
            ).merge(kind_rec.histogram)
    bytes_per_op = total_bytes / max(1, len(recorder))
    return ExecutionResult(recorder, bytes_per_op, by_kind)


def run_index_ops(
    index: Index,
    ops: Iterable[Operation],
    perf: PerfContext,
    profiler: Optional[Profiler] = None,
    batch_size: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[ProgressReporter] = None,
) -> ExecutionResult:
    """Execute ``ops`` against a bare index; unpacks as (latencies, bytes/op)."""
    return execute_ops(
        IndexAdapter(index), ops, perf, profiler, batch_size, metrics, progress
    )


def run_store_ops(
    store: ViperStore,
    ops: Iterable[Operation],
    perf: PerfContext,
    profiler: Optional[Profiler] = None,
    batch_size: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[ProgressReporter] = None,
) -> ExecutionResult:
    """Execute ``ops`` end-to-end through the Viper store."""
    return execute_ops(
        StoreAdapter(store), ops, perf, profiler, batch_size, metrics, progress
    )


def measure_build(
    build: Callable[[], None], perf: PerfContext
) -> float:
    """Simulated nanoseconds taken by ``build()`` (bulk load / recovery)."""
    mark = perf.begin()
    build()
    return perf.end(mark).time_ns


#: Per-switch bookkeeping cost charged to the GIL-bound projection: CPython
#: releases the GIL every ``sys.getswitchinterval()`` (5 ms default); the
#: handoff itself costs roughly a context switch per interval, which is
#: negligible per-op — the dominant effect is simply *no parallelism*.
_GIL_SWITCH_OVERHEAD = 0.02


def thread_scaling(
    mean_ns: float,
    p999_ns: float,
    bytes_per_op: float,
    threads: Sequence[int],
    bandwidth: BandwidthModel = BandwidthModel(),
    projection: str = "analytic",
    concurrency: Optional["ConcurrencySpec"] = None,
    write_fraction: float = 0.0,
    retrain_every: int = 0,
    retrain_stall_ns: float = 0.0,
    ops_per_thread: int = 800,
    seed: int = 0,
    measured_runner: Optional[Callable[[Sequence[int]], List[dict]]] = None,
    spans=None,
) -> List[dict]:
    """Project single-thread results onto N workers (Figs 12 and 14).

    Three projections are available:

    * ``projection="analytic"`` — the closed-form bandwidth model: N
      workers share only the socket's memory-bandwidth pool.  This is
      the pre-simulator behaviour, kept byte-identical as a fallback
      and as the sanity baseline the simulator is compared against.
    * ``projection="sim"`` — the discrete-event simulator
      (:mod:`repro.concurrency.sim`): per-thread op streams scheduled
      on the simulated clock, charging latch waits, optimistic-read
      retries, and retrain stalls per ``concurrency`` (the index's
      :class:`~repro.concurrency.spec.ConcurrencySpec`) on top of the
      same bandwidth pool.  Rows gain ``latch_wait_share``,
      ``retrain_stall_share``, ``retries``, and ``retrain_stalls``.
    * ``projection="measured"`` — no model at all: ``measured_runner``
      (typically a closure over
      :func:`repro.concurrency.parallel.measure_scaling`) runs the real
      process-parallel engine at each worker count and returns
      wall-clock rows.  This is the closed-loop validation of the other
      two projections; the CLI and Fig 12/14 benchmarks print its rows
      side by side with the simulated ones.

    The model-based projections emit ``gil_thread_mops`` — **thread-based** scaling
    inside one CPython interpreter, where the GIL serialises the index
    code so aggregate throughput is pinned at the single-thread rate
    (minus a small handoff overhead once more than one thread contends).
    The gap between that column and the others is the reason the
    real-time benchmark harness uses processes, not threads.

    A ``spans`` recorder (:class:`~repro.obs.spans.SpanRecorder`) is
    forwarded to the ``sim`` projection so simulated per-op span trees
    land beside the measured ones (diffable with the same exporters).
    """
    if projection not in ("analytic", "sim", "measured"):
        raise ValueError(
            f"unknown projection {projection!r}; "
            f"one of ('analytic', 'sim', 'measured')"
        )
    if projection == "measured":
        if measured_runner is None:
            raise ValueError(
                "projection='measured' needs a measured_runner callable "
                "(see repro.concurrency.parallel.measure_scaling)"
            )
        return measured_runner(threads)
    rows = []
    if projection == "analytic":
        for t in threads:
            gil_ns = mean_ns * (1.0 + (_GIL_SWITCH_OVERHEAD if t > 1 else 0.0))
            rows.append(
                {
                    "threads": t,
                    "throughput_mops": bandwidth.throughput_mops(
                        t, bytes_per_op, mean_ns
                    ),
                    "gil_thread_mops": 1e3 / gil_ns,
                    "p999_ns": bandwidth.tail_latency_ns(
                        t, bytes_per_op, mean_ns, p999_ns
                    ),
                    "slowdown": bandwidth.slowdown(t, bytes_per_op, mean_ns),
                }
            )
        return rows

    from repro.concurrency.sim import OpProfile, simulate_scaling
    from repro.concurrency.spec import ConcurrencySpec

    spec = concurrency if concurrency is not None else ConcurrencySpec()
    profile = OpProfile(
        mean_ns=mean_ns,
        p999_ns=p999_ns,
        bytes_per_op=bytes_per_op,
        retrain_every=retrain_every,
        retrain_stall_ns=retrain_stall_ns,
    )
    for t, result in zip(
        threads,
        simulate_scaling(
            spec,
            profile,
            threads,
            write_fraction=write_fraction,
            ops_per_thread=ops_per_thread,
            bandwidth=bandwidth,
            seed=seed,
            spans=spans,
        ),
    ):
        gil_ns = mean_ns * (1.0 + (_GIL_SWITCH_OVERHEAD if t > 1 else 0.0))
        rows.append(
            {
                "threads": t,
                "throughput_mops": result.throughput_mops,
                "gil_thread_mops": 1e3 / gil_ns,
                "p999_ns": result.p999_ns,
                "slowdown": result.bandwidth_slowdown,
                "latch_wait_share": result.latch_wait_share,
                "retrain_stall_share": result.retrain_stall_share,
                "retries": result.retries,
                "retrain_stalls": result.retrain_stalls,
            }
        )
    return rows
