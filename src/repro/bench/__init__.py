"""Benchmark harness: drive indexes/stores with workloads, report results.

* :mod:`repro.bench.runner` — the unified operation executor: an
  ``OpKind``-dispatched loop over an :class:`~repro.bench.runner.OpTarget`
  adapter (bare index or Viper store), with per-kind latency breakdowns,
  plus build/recovery measurement and the multi-thread scaling model.
* :mod:`repro.bench.metrics` — result records (throughput, tail latency).
* :mod:`repro.bench.report` — fixed-width table rendering and result-file
  output used by every ``benchmarks/bench_*`` module.
"""

from repro.bench.metrics import BenchResult
from repro.bench.runner import (
    ExecutionResult,
    IndexAdapter,
    OP_HANDLERS,
    OpTarget,
    StoreAdapter,
    execute_ops,
    measure_build,
    run_index_ops,
    run_store_ops,
    thread_scaling,
)
from repro.bench.report import format_bars, format_table, write_result

__all__ = [
    "BenchResult",
    "ExecutionResult",
    "IndexAdapter",
    "OP_HANDLERS",
    "OpTarget",
    "StoreAdapter",
    "execute_ops",
    "measure_build",
    "run_index_ops",
    "run_store_ops",
    "thread_scaling",
    "format_table",
    "format_bars",
    "write_result",
]
