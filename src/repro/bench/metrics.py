"""Benchmark result records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.latency import LatencyRecorder


@dataclass
class BenchResult:
    """One (index, workload) measurement in simulated time."""

    index: str
    workload: str
    ops: int
    throughput_mops: float
    mean_ns: float
    p50_ns: float
    p99_ns: float
    p999_ns: float
    bytes_per_op: float = 0.0
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        index: str,
        workload: str,
        recorder: LatencyRecorder,
        bytes_per_op: float = 0.0,
        **extra,
    ) -> "BenchResult":
        return cls(
            index=index,
            workload=workload,
            ops=len(recorder),
            throughput_mops=recorder.throughput_mops(),
            mean_ns=recorder.mean(),
            p50_ns=recorder.p50(),
            p99_ns=recorder.p99(),
            p999_ns=recorder.p999(),
            bytes_per_op=bytes_per_op,
            extra=dict(extra),
        )

    def row(self) -> list:
        """Default table row used by the figure benches."""
        return [
            self.index,
            f"{self.throughput_mops:.2f}",
            f"{self.p50_ns / 1000:.2f}",
            f"{self.p999_ns / 1000:.2f}",
        ]
