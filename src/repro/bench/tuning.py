"""Hyper-parameter tuning, the way the paper did it.

§III-A1: "We first separately evaluate the performance of each index with
different hyperparameters and choose their configurations with the best
performance."  :func:`grid_search` reproduces that step for any index:
build one instance per parameter combination, replay a probe workload,
and rank the combinations by simulated cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.interfaces import Index
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext


@dataclass
class Trial:
    """One evaluated parameter combination."""

    params: Dict[str, Any]
    read_ns: float
    insert_ns: float
    build_ns: float
    size_bytes: int

    def score(self, read_weight: float = 1.0, insert_weight: float = 0.0) -> float:
        return self.read_ns * read_weight + self.insert_ns * insert_weight


@dataclass
class TuningResult:
    """Outcome of a grid search: the winner plus the full trial table."""

    best: Trial
    trials: List[Trial] = field(default_factory=list)

    def ranked(self, **weights) -> List[Trial]:
        return sorted(self.trials, key=lambda t: t.score(**weights))


def grid_search(
    factory: Callable[..., Index],
    grid: Dict[str, Sequence[Any]],
    items: Sequence[Tuple[int, Any]],
    probe_keys: Sequence[int],
    insert_items: Sequence[Tuple[int, Any]] = (),
    read_weight: float = 1.0,
    insert_weight: float = 0.0,
) -> TuningResult:
    """Evaluate every combination in ``grid`` and return the best.

    ``factory(**params, perf=...)`` must build an index; each combination
    is bulk-loaded with ``items``, probed with ``probe_keys`` and
    optionally fed ``insert_items``.  Costs are simulated nanoseconds.
    Combinations that raise ``InvalidConfigurationError`` are skipped
    (grids may include values that only some indexes accept).
    """
    if not grid:
        raise InvalidConfigurationError("grid must contain parameters")
    if not probe_keys and not insert_items:
        raise InvalidConfigurationError("nothing to measure")

    names = list(grid)
    trials: List[Trial] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        perf = PerfContext()
        try:
            index = factory(**params, perf=perf)
        except InvalidConfigurationError:
            continue
        mark = perf.begin()
        index.bulk_load(items)
        build_ns = perf.end(mark).time_ns

        read_ns = 0.0
        if probe_keys:
            mark = perf.begin()
            for key in probe_keys:
                index.get(key)
            read_ns = perf.end(mark).time_ns / len(probe_keys)

        insert_ns = 0.0
        if insert_items:
            mark = perf.begin()
            for key, value in insert_items:
                index.insert(key, value)
            insert_ns = perf.end(mark).time_ns / len(insert_items)

        trials.append(
            Trial(params, read_ns, insert_ns, build_ns, index.size_bytes())
        )

    if not trials:
        raise InvalidConfigurationError("every grid combination was invalid")
    best = min(
        trials,
        key=lambda t: t.score(read_weight=read_weight, insert_weight=insert_weight),
    )
    return TuningResult(best=best, trials=trials)
